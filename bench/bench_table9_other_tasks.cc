// Reproduces Table IX: link prediction (Photo/Computers/CS, AUC %) and
// graph classification (NCI1/PTC_MR/PROTEINS stand-ins, accuracy %).
//
// Paper shape to verify: E2GCL tops both task families; GCA is the
// strongest baseline.

#include "bench_common.h"

#include "eval/graph_level.h"
#include "graph/tu_generator.h"

int main() {
  using namespace e2gcl;
  using namespace e2gcl::bench;

  PrintHeader("Table IX: link prediction (AUC %) / graph classification (%)");

  const std::vector<ModelKind> models = {
      ModelKind::kAfgrl, ModelKind::kBgrl, ModelKind::kMvgrl,
      ModelKind::kGrace, ModelKind::kGca, ModelKind::kE2gcl};
  const int runs = BenchRuns();

  std::printf("\nLink prediction\n");
  {
    const std::vector<std::string> datasets = {"photo", "computers", "cs"};
    std::vector<std::string> header = {"Model"};
    for (const auto& d : datasets) header.push_back(d);
    Table table(header, {8, 13, 13, 13});
    for (ModelKind kind : models) {
      std::vector<std::string> row = {ModelKindName(kind)};
      for (const auto& dataset : datasets) {
        Graph g = LoadBenchDataset(dataset);
        std::vector<double> aucs;
        for (int r = 0; r < runs; ++r) {
          RunConfig cfg = DefaultRunConfig();
          cfg.seed = 1 + r;
          aucs.push_back(RunLinkPrediction(kind, g, cfg));
        }
        row.push_back(FormatMeanStd(ComputeMeanStd(aucs)));
        std::fflush(stdout);
      }
      table.AddRow(row);
    }
    table.Print();
  }

  std::printf("\nGraph classification\n");
  {
    const auto datasets = GraphClassificationDatasets();
    std::vector<std::string> header = {"Model"};
    for (const auto& d : datasets) header.push_back(d);
    Table table(header, {8, 13, 13, 13});
    for (ModelKind kind : models) {
      std::vector<std::string> row = {ModelKindName(kind)};
      for (const auto& dataset : datasets) {
        TuDataset ds = GenerateTuDataset(GetTuSpec(dataset), 0xabcd);
        std::vector<double> accs;
        for (int r = 0; r < runs; ++r) {
          RunConfig cfg = DefaultRunConfig();
          cfg.seed = 1 + r;
          // The union graph is large but extremely sparse; smaller
          // budgets per graph are the paper's setting (k_i = r |V_i|).
          cfg.e2gcl.node_ratio = 0.4;
          accs.push_back(RunGraphClassification(kind, ds, cfg));
        }
        row.push_back(FormatMeanStd(ComputeMeanStd(accs)));
        std::fflush(stdout);
      }
      table.AddRow(row);
    }
    table.Print();
  }
  return 0;
}
