// Reproduces Fig. 4(d): accuracy on Cora as the neighbor-sampling
// ratios tau-hat and tau-tilde sweep {0, 0.2, ..., 1.4} (the paper
// shows the full grid; we print the grid with a coarser tilde axis).
//
// Paper shape to verify: inverted-U — tiny tau destroys locality,
// huge tau adds noise; the best cell sits in the middle/upper range.

#include "bench_common.h"

int main() {
  using namespace e2gcl;
  using namespace e2gcl::bench;

  PrintHeader("Fig. 4(d): accuracy (%) vs tau-hat (rows) x tau-tilde (cols)");

  const std::vector<float> taus = {0.0f, 0.2f, 0.4f, 0.6f,
                                   0.8f, 1.0f, 1.2f, 1.4f};
  const std::vector<float> tildes = {0.2f, 0.6f, 1.0f, 1.4f};

  Graph g = LoadBenchDataset("cora");
  std::vector<std::string> header = {"tau_hat\\tilde"};
  for (float t : tildes) header.push_back(FormatF(t, 1));
  Table table(header, {13, 8, 8, 8, 8});

  for (float tau_hat : taus) {
    std::vector<std::string> row = {FormatF(tau_hat, 1)};
    for (float tau_tilde : tildes) {
      RunConfig cfg = DefaultRunConfig();
      cfg.e2gcl.view_hat.tau = tau_hat;
      cfg.e2gcl.view_tilde.tau = tau_tilde;
      RunResult res = RunNodeClassification(ModelKind::kE2gcl, g, cfg);
      row.push_back(FormatF(res.accuracy * 100.0));
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
