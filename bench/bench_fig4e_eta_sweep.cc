// Reproduces Fig. 4(e): accuracy on Cora as the feature-perturbation
// strengths eta-hat and eta-tilde sweep {0, 0.2, ..., 1.4}.
//
// Paper shape to verify: inverted-U — moderate perturbation gives
// diverse locality-preserved views; very large eta perturbs important
// features and hurts.

#include "bench_common.h"

int main() {
  using namespace e2gcl;
  using namespace e2gcl::bench;

  PrintHeader("Fig. 4(e): accuracy (%) vs eta-hat (rows) x eta-tilde (cols)");

  const std::vector<float> etas = {0.0f, 0.2f, 0.4f, 0.6f,
                                   0.8f, 1.0f, 1.2f, 1.4f};
  const std::vector<float> tildes = {0.2f, 0.6f, 1.0f, 1.4f};

  Graph g = LoadBenchDataset("cora");
  std::vector<std::string> header = {"eta_hat\\tilde"};
  for (float t : tildes) header.push_back(FormatF(t, 1));
  Table table(header, {13, 8, 8, 8, 8});

  for (float eta_hat : etas) {
    std::vector<std::string> row = {FormatF(eta_hat, 1)};
    for (float eta_tilde : tildes) {
      RunConfig cfg = DefaultRunConfig();
      cfg.e2gcl.view_hat.eta = eta_hat;
      cfg.e2gcl.view_tilde.eta = eta_tilde;
      RunResult res = RunNodeClassification(ModelKind::kE2gcl, g, cfg);
      row.push_back(FormatF(res.accuracy * 100.0));
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
