// Million-node scale benchmark for the sharded, out-of-core
// pre-training path (src/shard/). Two phases, run as SEPARATE
// processes so the training process's VmHWM — the number the peak-RSS
// gate reads — never includes graph generation:
//
//   bench_scale --prepare <store_dir> [--scale F] [--seed S]
//       Generates the `synthetic-1m` SBM (optionally scaled down for
//       smokes) and writes it as a GraphStore.
//
//   bench_scale --train <store_dir> [--shards N] [--epochs E]
//               [--max-rss-mb M]
//       Opens the store and runs sharded out-of-core pre-training
//       end-to-end (partition -> per-shard coreset selection ->
//       contrastive epochs). Writes BENCH_scale.json — an array of
//       {"name", "threads", "ns_per_iter", "wall_s", "peak_rss_bytes"}
//       records keyed for tools/bench_compare, which
//       tools/check_scale.sh gates at a 1.25x threshold. With
//       --max-rss-mb the process exits 3 when its peak RSS exceeds the
//       budget — the out-of-core guarantee, enforced where a
//       fully-resident run provably cannot pass (see DESIGN.md).
//       Set E2GCL_BENCH_JSON to change the output path.
//
// The coreset budget is a small absolute fraction with a fixed sample
// size: the greedy selector's round cost is O(n_s x core), so the
// paper-default r = 0.4 at 1M nodes is a multi-hour single-core run.
// A scale benchmark wants wall-clock dominated by the streaming and
// training machinery it gates, not by selector rounds.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "graph/datasets.h"
#include "obs/resource.h"
#include "parallel/thread_pool.h"
#include "shard/graph_store.h"
#include "shard/sharded_trainer.h"

namespace e2gcl {
namespace {

struct BenchRecord {
  std::string name;
  int threads;
  double ns_per_iter;
  double wall_s;
  std::int64_t peak_rss_bytes;
};

void WriteJson(const std::vector<BenchRecord>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"threads\": %d, "
                 "\"ns_per_iter\": %.3f, \"wall_s\": %.3f, "
                 "\"peak_rss_bytes\": %lld}%s\n",
                 r.name.c_str(), r.threads, r.ns_per_iter, r.wall_s,
                 static_cast<long long>(r.peak_rss_bytes),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_scale: wrote %zu records to %s\n",
               records.size(), path);
}

int Prepare(const std::string& dir, double scale, std::uint64_t seed) {
  std::printf("bench_scale: generating synthetic-1m (scale %.3f)...\n",
              scale);
  Graph g = LoadDatasetScaled("synthetic-1m", scale, seed);
  std::printf("bench_scale: %lld nodes, %lld edges, %lld features\n",
              static_cast<long long>(g.num_nodes),
              static_cast<long long>(g.num_edges()),
              static_cast<long long>(g.feature_dim()));
  if (!GraphStore::Write(dir, g)) {
    std::fprintf(stderr, "bench_scale: cannot write store to %s\n",
                 dir.c_str());
    return 1;
  }
  std::printf("bench_scale: store written to %s (prepare peak rss %.1f MB)\n",
              dir.c_str(), PeakRssBytes() / (1024.0 * 1024.0));
  return 0;
}

int TrainPhase(const std::string& dir, int shards, int epochs,
               std::int64_t max_rss_mb) {
#if defined(__GLIBC__)
  // Pin the malloc mmap threshold so matrix-sized blocks are mmap'd and
  // returned to the OS the moment they are freed. glibc's default
  // dynamic threshold promotes them to the sbrk heap after the first
  // few frees, where freed working sets linger and inflate VmHWM far
  // above live memory — this gate measures the trainer, not the
  // allocator's retention policy.
  mallopt(M_MMAP_THRESHOLD, 1 << 20);
#endif
  GraphStore store;
  if (!store.Open(dir)) {
    std::fprintf(stderr,
                 "bench_scale: cannot open store %s (run --prepare first)\n",
                 dir.c_str());
    return 1;
  }
  const std::int64_t n = store.num_nodes();

  ShardedConfig cfg;
  cfg.num_shards = shards;
  cfg.halo_hops = 1;
  cfg.base.epochs = epochs;
  cfg.base.hidden_dim = 64;
  cfg.base.embed_dim = 64;
  // Batch anchors per shard. The batch ball the (L+1)-hop forward runs
  // on grows ~8^3 nodes per anchor at synthetic-1m degree, and the
  // retained forward tape is linear in the ball, so the anchor count is
  // the lever that keeps one training step inside the peak-RSS budget.
  cfg.base.batch_size = 16;
  cfg.base.seed = 1;
  // Small absolute coreset with a fixed sample size (see header note);
  // floor of 64 keeps heavily scaled-down smokes meaningful.
  cfg.base.node_ratio =
      std::max(64.0 / static_cast<double>(n), 0.002);
  cfg.base.selector.num_clusters = 32;
  cfg.base.selector.sample_size = 8;
  cfg.base.selector.auto_sample_size = false;

  std::printf("bench_scale: training on %lld nodes, %d shards, %d epochs\n",
              static_cast<long long>(n), shards, epochs);
  ShardedTrainer trainer(store, cfg);
  TrainResult result = trainer.Train();
  if (!result.ok()) {
    std::fprintf(stderr, "bench_scale: training failed (status %d)\n",
                 static_cast<int>(result.status));
    return 1;
  }

  const E2gclStats& stats = trainer.stats();
  const std::int64_t peak = PeakRssBytes();
  const int threads = GetNumThreads();
  std::printf(
      "bench_scale: cut %.2f%%, selected %zu, selection %.2fs, "
      "total %.2fs, peak rss %.1f MB\n",
      100.0 * trainer.partition().CutFraction(),
      trainer.selection().nodes.size(), stats.selection_seconds,
      stats.total_seconds, peak / (1024.0 * 1024.0));

  std::vector<BenchRecord> records;
  records.push_back({"scale/select", threads,
                     stats.selection_seconds * 1e9, stats.selection_seconds,
                     peak});
  records.push_back({"scale/pretrain", threads,
                     stats.total_seconds * 1e9 /
                         std::max(1, stats.epochs_run),
                     stats.total_seconds, peak});
  const char* out = std::getenv("E2GCL_BENCH_JSON");
  WriteJson(records, out != nullptr ? out : "BENCH_scale.json");

  if (max_rss_mb > 0 && peak > max_rss_mb * 1024 * 1024) {
    std::fprintf(stderr,
                 "bench_scale: PEAK RSS BUDGET EXCEEDED: %.1f MB > %lld MB\n",
                 peak / (1024.0 * 1024.0),
                 static_cast<long long>(max_rss_mb));
    return 3;
  }
  if (max_rss_mb > 0) {
    std::printf("bench_scale: peak rss %.1f MB within %lld MB budget\n",
                peak / (1024.0 * 1024.0),
                static_cast<long long>(max_rss_mb));
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_scale --prepare <store_dir> [--scale F] "
               "[--seed S]\n"
               "       bench_scale --train <store_dir> [--shards N] "
               "[--epochs E] [--max-rss-mb M]\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string mode;
  std::string dir;
  double scale = 1.0;
  std::uint64_t seed = 1;
  int shards = 8;
  int epochs = 2;
  std::int64_t max_rss_mb = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_scale: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--prepare" || arg == "--train") {
      mode = arg;
      dir = next();
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--shards") {
      shards = std::atoi(next());
    } else if (arg == "--epochs") {
      epochs = std::atoi(next());
    } else if (arg == "--max-rss-mb") {
      max_rss_mb = std::atoll(next());
    } else {
      return Usage();
    }
  }
  if (dir.empty() || (mode != "--prepare" && mode != "--train")) {
    return Usage();
  }
  if (mode == "--prepare") {
    if (scale <= 0.0 || scale > 1.0) return Usage();
    return Prepare(dir, scale, seed);
  }
  if (shards < 1 || epochs < 1) return Usage();
  return TrainPhase(dir, shards, epochs, max_rss_mb);
}

}  // namespace
}  // namespace e2gcl

int main(int argc, char** argv) { return e2gcl::Main(argc, argv); }
