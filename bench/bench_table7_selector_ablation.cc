// Reproduces Table VII: node-selection strategies (Random, Degree,
// KMeans, KCG, Grain, ours) feeding the identical E2GCL view generator
// and trainer.
//
// Paper shape to verify: Ours > Grain > KCG/KMeans > Degree > Random.
//
// We run the ablation at a tight budget (r = 0.1) where the coreset
// choice actually matters; at the paper's default r = 0.4 a 40% sample
// of these synthetic graphs is representative for every strategy.

#include "bench_common.h"

#include "baselines/selectors.h"

int main() {
  using namespace e2gcl;
  using namespace e2gcl::bench;

  PrintHeader("Table VII: selection strategies (accuracy % +- std)");

  const std::vector<SelectorKind> kinds = {
      SelectorKind::kRandom,       SelectorKind::kDegree,
      SelectorKind::kKMeans,       SelectorKind::kKCenterGreedy,
      SelectorKind::kGrain,        SelectorKind::kE2gcl};

  const auto datasets = SmallDatasets();
  std::vector<std::string> header = {"Selector"};
  for (const auto& d : datasets) header.push_back(d);
  Table table(header, {9, 13, 13, 13, 13, 13});

  const int runs = BenchRuns();
  for (SelectorKind kind : kinds) {
    std::vector<std::string> row = {SelectorKindName(kind)};
    for (const auto& dataset : datasets) {
      Graph g = LoadBenchDataset(dataset);
      std::vector<double> accs;
      for (int r = 0; r < runs; ++r) {
        RunConfig cfg = DefaultRunConfig();
        cfg.seed = 1 + r;
        cfg.e2gcl.seed = cfg.seed;
        cfg.e2gcl.node_ratio = 0.1;
        cfg.e2gcl.external_selector =
            [kind](const Matrix& raw, const Graph& graph,
                   const SelectorConfig& sc, Rng& rng) {
              return SelectNodes(kind, graph, raw, sc.budget, sc, rng);
            };
        RunResult res = RunNodeClassification(ModelKind::kE2gcl, g, cfg);
        accs.push_back(res.accuracy * 100.0);
      }
      row.push_back(FormatMeanStd(ComputeMeanStd(accs)));
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
