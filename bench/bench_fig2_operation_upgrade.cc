// Reproduces Fig. 2: adding augmentation operations to existing models
// improves accuracy on Cora and Computers.
//
//   ADGCL  {ED}      -> upgraded with {FP, EA}
//   MVGRL  {EA, ED}  -> upgraded with {FP}
//   GRACE  {FM, ED}  -> upgraded with {EA, FP}
//   GCA    {FM, ED}  -> upgraded with {EA, FP}
//
// Paper shape to verify: every upgraded variant (blue line) sits above
// its original (red line) on both datasets.

#include "bench_common.h"

namespace {

using namespace e2gcl;
using namespace e2gcl::bench;

double RunGraceVariant(const Graph& g, const GraceConfig& base, int runs) {
  std::vector<double> accs;
  for (int r = 0; r < runs; ++r) {
    GraceConfig cfg = base;
    cfg.seed = 1 + r;
    cfg.epochs = BenchEpochs();
    GraceTrainer trainer(g, cfg);
    trainer.Train();
    Rng split_rng(cfg.seed * 7919 + 13);
    NodeSplit split = RandomNodeSplit(g.num_nodes, 0.1, 0.1, split_rng);
    accs.push_back(100.0 *
                   LinearProbeAccuracy(trainer.encoder().Encode(g),
                                       g.labels, g.num_classes, split));
  }
  return ComputeMeanStd(accs).mean;
}

double RunMvgrlVariant(const Graph& g, float fp_eta, int runs) {
  std::vector<double> accs;
  for (int r = 0; r < runs; ++r) {
    MvgrlConfig cfg;
    cfg.seed = 1 + r;
    cfg.epochs = BenchEpochs();
    cfg.feature_perturb_eta = fp_eta;
    MvgrlTrainer trainer(g, cfg);
    trainer.Train();
    Rng split_rng(cfg.seed * 7919 + 13);
    NodeSplit split = RandomNodeSplit(g.num_nodes, 0.1, 0.1, split_rng);
    accs.push_back(100.0 * LinearProbeAccuracy(trainer.Embed(), g.labels,
                                               g.num_classes, split));
  }
  return ComputeMeanStd(accs).mean;
}

}  // namespace

int main() {
  PrintHeader("Fig. 2: operation-set upgrades (accuracy %, orig -> upgraded)");

  const int runs = BenchRuns();
  for (const std::string dataset : {"cora", "computers"}) {
    Graph g = LoadBenchDataset(dataset);
    std::printf("\n%s\n", dataset.c_str());
    Table table({"Model", "Ops", "Original", "Upgraded ops", "Upgraded"},
                {7, 10, 10, 14, 10});

    // ADGCL: {ED} only (no feature masking), upgraded with {FP, EA}.
    {
      GraceConfig orig;
      orig.mask_features = false;
      GraceConfig up = orig;
      up.add_edge_ratio = 0.08f;
      up.feature_perturb_eta = 0.15f;
      table.AddRow({"ADGCL", "{ED}", FormatF(RunGraceVariant(g, orig, runs)),
                    "{ED,FP,EA}", FormatF(RunGraceVariant(g, up, runs))});
      std::fflush(stdout);
    }
    // MVGRL: {EA, ED} via diffusion, upgraded with {FP}.
    {
      table.AddRow({"MVGRL", "{EA,ED}", FormatF(RunMvgrlVariant(g, 0.0f, runs)),
                    "{EA,ED,FP}", FormatF(RunMvgrlVariant(g, 0.15f, runs))});
      std::fflush(stdout);
    }
    // GRACE: {FM, ED}, upgraded with {EA, FP}.
    {
      GraceConfig orig;
      GraceConfig up = orig;
      up.add_edge_ratio = 0.08f;
      up.feature_perturb_eta = 0.15f;
      table.AddRow({"GRACE", "{FM,ED}", FormatF(RunGraceVariant(g, orig, runs)),
                    "{FM,ED,EA,FP}", FormatF(RunGraceVariant(g, up, runs))});
      std::fflush(stdout);
    }
    // GCA: adaptive {FM, ED}, upgraded with {EA, FP}.
    {
      GraceConfig orig;
      orig.adaptive = true;
      GraceConfig up = orig;
      up.add_edge_ratio = 0.08f;
      up.feature_perturb_eta = 0.15f;
      table.AddRow({"GCA", "{FM,ED}", FormatF(RunGraceVariant(g, orig, runs)),
                    "{FM,ED,EA,FP}", FormatF(RunGraceVariant(g, up, runs))});
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
