// Reproduces Table VIII: the view-generator sampling ablation
//   E2GCL\F\S: uniform feature perturbation AND uniform edge sampling
//   E2GCL\S:   uniform edge sampling, feature-score-aware perturbation
//   E2GCL\F:   uniform feature perturbation, edge-score-aware sampling
//   E2GCL:     both importance-aware (full model)
//
// Paper shape to verify: full > \F > \S > \F\S (edge importance matters
// more than feature importance).

#include "bench_common.h"

int main() {
  using namespace e2gcl;
  using namespace e2gcl::bench;

  PrintHeader("Table VIII: view-generator sampling ablation (accuracy %)");

  struct Variant {
    const char* name;
    bool importance_edges;
    bool importance_features;
  };
  const Variant variants[] = {{"E2GCL\\F\\S", false, false},
                              {"E2GCL\\S", false, true},
                              {"E2GCL\\F", true, false},
                              {"E2GCL", true, true}};

  const auto datasets = SmallDatasets();
  std::vector<std::string> header = {"Variant"};
  for (const auto& d : datasets) header.push_back(d);
  Table table(header, {10, 13, 13, 13, 13, 13});

  const int runs = BenchRuns();
  for (const Variant& variant : variants) {
    std::vector<std::string> row = {variant.name};
    for (const auto& dataset : datasets) {
      Graph g = LoadBenchDataset(dataset);
      RunConfig cfg = DefaultRunConfig();
      for (ViewConfig* vc : {&cfg.e2gcl.view_hat, &cfg.e2gcl.view_tilde}) {
        vc->importance_edges = variant.importance_edges;
        vc->importance_features = variant.importance_features;
      }
      AggregateResult agg = RunRepeated(ModelKind::kE2gcl, g, cfg, runs);
      row.push_back(FormatMeanStd(agg.accuracy));
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
