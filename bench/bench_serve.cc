// Serving-path micro-benchmark: GetEmbedding throughput and latency
// through the micro-batching queue, swept over compute thread count and
// batch size, for both cache-cold (lazy, evicting) and cache-hot
// regimes plus the precompute mode.
//
// Writes BENCH_serve.json — an array of
//   {"name", "threads", "batch", "ns_per_iter", "p50_us", "p99_us",
//    "qps"}
// records keyed for tools/bench_compare (name + "#t" + threads), which
// tools/check_serve.sh gates at a 1.25x regression threshold. Set
// E2GCL_BENCH_JSON to change the output path.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "io/checkpoint.h"
#include "nn/gcn.h"
#include "parallel/thread_pool.h"
#include "serve/embedding_server.h"
#include "tensor/rng.h"

namespace e2gcl {
namespace {

constexpr int kClientThreads = 4;
constexpr int kQueriesPerClient = 400;

struct BenchRecord {
  std::string name;
  int threads;
  std::int64_t batch;
  double ns_per_iter;
  double p50_us;
  double p99_us;
  double qps;
};

Graph BenchGraph() {
  SbmSpec spec;
  spec.num_nodes = 1024;
  spec.num_classes = 4;
  spec.feature_dim = 32;
  spec.avg_degree = 8;
  spec.informative_dims_per_class = 6;
  return GenerateSbm(spec, 1);
}

TrainerCheckpoint BenchCheckpoint(const Graph& g) {
  GcnConfig cfg;
  cfg.dims = {g.feature_dim(), 64, 32};
  Rng rng(2);
  GcnEncoder encoder(cfg, rng);
  TrainerCheckpoint ckpt;
  ckpt.epoch = 0;
  ckpt.config_fingerprint = 1;
  ckpt.encoder_params = encoder.params().CloneValues();
  return ckpt;
}

/// Fires kClientThreads concurrent clients at the server and returns the
/// pooled per-request wall latencies in microseconds.
std::vector<double> DriveClients(EmbeddingServer& server,
                                 std::int64_t num_nodes) {
  std::vector<std::vector<double>> per_client(kClientThreads);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + static_cast<std::uint64_t>(c));
      per_client[c].reserve(kQueriesPerClient);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::int64_t node = rng.UniformInt(num_nodes);
        const auto t0 = std::chrono::steady_clock::now();
        const std::vector<float> row = server.GetEmbedding(node);
        const auto t1 = std::chrono::steady_clock::now();
        if (row.empty()) std::abort();  // keep the call observable
        per_client[c].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::vector<double> all;
  for (const auto& v : per_client) all.insert(all.end(), v.begin(), v.end());
  return all;
}

BenchRecord Summarize(const std::string& name, int threads,
                      std::int64_t batch, std::vector<double> latencies_us,
                      double wall_seconds) {
  std::sort(latencies_us.begin(), latencies_us.end());
  const std::size_t n = latencies_us.size();
  BenchRecord rec;
  rec.name = name;
  rec.threads = threads;
  rec.batch = batch;
  rec.p50_us = latencies_us[n / 2];
  rec.p99_us = latencies_us[std::min(n - 1, n * 99 / 100)];
  rec.qps = static_cast<double>(n) / wall_seconds;
  rec.ns_per_iter = wall_seconds * 1e9 / static_cast<double>(n);
  return rec;
}

/// TopKSimilar variant of DriveClients: each query asks for the 8
/// nearest nodes, the answer set that the int8 path approximates and
/// then rescores.
std::vector<double> DriveTopKClients(EmbeddingServer& server,
                                     std::int64_t num_nodes) {
  std::vector<std::vector<double>> per_client(kClientThreads);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(200 + static_cast<std::uint64_t>(c));
      per_client[c].reserve(kQueriesPerClient);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::int64_t node = rng.UniformInt(num_nodes);
        const auto t0 = std::chrono::steady_clock::now();
        const TopKResult top = server.TopKSimilar(node, 8);
        const auto t1 = std::chrono::steady_clock::now();
        if (top.nodes.empty()) std::abort();  // keep the call observable
        per_client[c].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::vector<double> all;
  for (const auto& v : per_client) all.insert(all.end(), v.begin(), v.end());
  return all;
}

BenchRecord RunTopKConfig(const Graph& g, const TrainerCheckpoint& ckpt,
                          const std::string& name, int threads,
                          const ServeOptions& options) {
  SetNumThreads(threads);
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, options, &error);
  if (server == nullptr) {
    std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
    std::exit(1);
  }
  DriveTopKClients(*server, g.num_nodes);  // warm-up pass
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> lat = DriveTopKClients(*server, g.num_nodes);
  const auto t1 = std::chrono::steady_clock::now();
  return Summarize(name, threads, options.max_batch, std::move(lat),
                   std::chrono::duration<double>(t1 - t0).count());
}

/// Overload scenario: twice as many clients as admission slots, so the
/// max_queue_depth watermark sheds a fraction of admissions and
/// RetryWithBackoff recovers them. ns_per_iter is wall time per *served*
/// request — the end-to-end cost of a query under saturation, retries
/// and backoff included. The shed count goes to stderr so a silent
/// no-shedding run is visible.
BenchRecord RunOverloadConfig(const Graph& g, const TrainerCheckpoint& ckpt,
                              const std::string& name, int threads) {
  SetNumThreads(threads);
  ServeOptions options;
  options.max_batch = 16;
  options.batch_deadline_us = 100;
  options.cache_capacity = 256;  // cold regime: batches are slow enough
                                 // for the queue to actually fill
  options.max_queue_depth = 4;
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, options, &error);
  if (server == nullptr) {
    std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
    std::exit(1);
  }
  constexpr int kOverloadClients = 8;
  constexpr int kServedPerClient = 200;
  std::atomic<std::int64_t> shed{0};
  const auto drive = [&] {
    std::vector<std::vector<double>> per_client(kOverloadClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kOverloadClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(300 + static_cast<std::uint64_t>(c));
        RetryPolicy policy;
        policy.max_attempts = 8;
        policy.initial_backoff_us = 50;
        per_client[c].reserve(kServedPerClient);
        for (int q = 0; q < kServedPerClient; ++q) {
          const std::int64_t node = rng.UniformInt(g.num_nodes);
          const auto t0 = std::chrono::steady_clock::now();
          EmbeddingResponse r;
          do {
            r = RetryWithBackoff(policy, [&] {
              EmbeddingResponse resp =
                  server->GetEmbedding(node, ServeRequestOptions{});
              if (resp.status == ServeStatus::kOverloaded) {
                shed.fetch_add(1, std::memory_order_relaxed);
              }
              return resp;
            });
          } while (!r.served());
          const auto t1 = std::chrono::steady_clock::now();
          if (r.row.empty()) std::abort();  // keep the call observable
          per_client[c].push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
      });
    }
    for (std::thread& t : clients) t.join();
    std::vector<double> all;
    for (const auto& v : per_client) {
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  };
  drive();  // warm-up pass
  shed.store(0);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> lat = drive();
  const auto t1 = std::chrono::steady_clock::now();
  std::fprintf(stderr, "bench_serve: %s shed %lld of %d admissions\n",
               name.c_str(), static_cast<long long>(shed.load()),
               kOverloadClients * kServedPerClient);
  return Summarize(name, threads, options.max_batch, std::move(lat),
                   std::chrono::duration<double>(t1 - t0).count());
}

BenchRecord RunConfig(const Graph& g, const TrainerCheckpoint& ckpt,
                      const std::string& name, int threads,
                      const ServeOptions& options, bool warm) {
  SetNumThreads(threads);
  std::string error;
  auto server = EmbeddingServer::FromCheckpoint(g, ckpt, options, &error);
  if (server == nullptr) {
    std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
    std::exit(1);
  }
  if (warm) DriveClients(*server, g.num_nodes);  // populate the cache
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> lat = DriveClients(*server, g.num_nodes);
  const auto t1 = std::chrono::steady_clock::now();
  return Summarize(name, threads, options.max_batch, std::move(lat),
                   std::chrono::duration<double>(t1 - t0).count());
}

void WriteJson(const std::vector<BenchRecord>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"threads\": %d, \"batch\": %lld, "
                 "\"ns_per_iter\": %.3f, \"p50_us\": %.3f, "
                 "\"p99_us\": %.3f, \"qps\": %.1f}%s\n",
                 r.name.c_str(), r.threads,
                 static_cast<long long>(r.batch), r.ns_per_iter, r.p50_us,
                 r.p99_us, r.qps, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_serve: wrote %zu records to %s\n",
               records.size(), path);
}

}  // namespace
}  // namespace e2gcl

int main() {
  using namespace e2gcl;
  const Graph g = BenchGraph();
  const TrainerCheckpoint ckpt = BenchCheckpoint(g);
  std::vector<BenchRecord> records;

  std::printf("%-28s %8s %6s %12s %9s %9s %10s\n", "config", "threads",
              "batch", "ns/req", "p50(us)", "p99(us)", "qps");
  for (int threads : {1, 2, 4}) {
    for (std::int64_t batch : {std::int64_t{1}, std::int64_t{16},
                               std::int64_t{64}}) {
      ServeOptions lazy;
      lazy.max_batch = batch;
      lazy.batch_deadline_us = 100;
      // Cache below the working set: steady-state eviction + recompute.
      lazy.cache_capacity = 256;
      records.push_back(RunConfig(
          g, ckpt, "serve/lazy_cold/b" + std::to_string(batch), threads,
          lazy, /*warm=*/false));

      ServeOptions hot = lazy;
      hot.cache_capacity = 2 * g.num_nodes;  // whole graph stays resident
      records.push_back(RunConfig(
          g, ckpt, "serve/lazy_hot/b" + std::to_string(batch), threads,
          hot, /*warm=*/true));
    }
    ServeOptions pre;
    pre.precompute = true;
    pre.max_batch = 16;
    pre.batch_deadline_us = 100;
    records.push_back(RunConfig(g, ckpt, "serve/precompute/b16", threads,
                                pre, /*warm=*/false));

    // Top-k similarity: exact fp32 scan vs the int8 path (approximate
    // ScoreAll then exact rescore of an 8*4 candidate pool).
    ServeOptions topk = pre;
    records.push_back(
        RunTopKConfig(g, ckpt, "serve/topk_fp32/b16", threads, topk));
    topk.quantize_int8 = true;  // rescore_factor stays at the default 4
    records.push_back(
        RunTopKConfig(g, ckpt, "serve/topk_int8/b16", threads, topk));
    topk.rescore_factor = 0;  // approximate-only ranking
    records.push_back(
        RunTopKConfig(g, ckpt, "serve/topk_int8_approx/b16", threads, topk));
    for (std::size_t i = records.size() - 10; i < records.size(); ++i) {
      const BenchRecord& r = records[i];
      std::printf("%-28s %8d %6lld %12.0f %9.1f %9.1f %10.0f\n",
                  r.name.c_str(), r.threads,
                  static_cast<long long>(r.batch), r.ns_per_iter, r.p50_us,
                  r.p99_us, r.qps);
    }
  }

  // Saturated-admission scenario (load shedding + bounded retry).
  records.push_back(RunOverloadConfig(g, ckpt, "serve/overload/b16", 4));
  {
    const BenchRecord& r = records.back();
    std::printf("%-28s %8d %6lld %12.0f %9.1f %9.1f %10.0f\n",
                r.name.c_str(), r.threads, static_cast<long long>(r.batch),
                r.ns_per_iter, r.p50_us, r.p99_us, r.qps);
  }

  const char* path = std::getenv("E2GCL_BENCH_JSON");
  WriteJson(records, path != nullptr ? path : "BENCH_serve.json");
  return 0;
}
