// Reproduces Table IV: node classification accuracy (mean ± std, %) of
// all 13 models on the five small datasets.
//
// Paper shape to verify: E2GCL tops every column; GCL models (GCA,
// GRACE, MVGRL, AFGRL) beat traditional unsupervised (DW/N2V); MLP is
// the weakest.

#include "bench_common.h"

int main() {
  using namespace e2gcl;
  using namespace e2gcl::bench;

  PrintHeader("Table IV: node classification accuracy (% +- std)");

  const auto datasets = SmallDatasets();
  std::vector<std::string> header = {"Model"};
  for (const auto& d : datasets) header.push_back(d);
  Table table(header, {8, 13, 13, 13, 13, 13});

  const int runs = BenchRuns();
  for (ModelKind kind : Table4Models()) {
    std::vector<std::string> row = {ModelKindName(kind)};
    for (const auto& dataset : datasets) {
      Graph g = LoadBenchDataset(dataset);
      RunConfig cfg = DefaultRunConfig();
      AggregateResult agg = RunRepeated(kind, g, cfg, runs);
      row.push_back(FormatMeanStd(agg.accuracy));
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
