// Reproduces Table V: accuracy, average selection time (ST) and total
// training time (TT) on the two large graphs (arxiv-like and
// products-like stand-ins, scaled; see DESIGN.md).
//
// As in the paper, TT is the time for the model to *converge*: we probe
// the linear-evaluation accuracy along the training trajectory and
// report the earliest wall-clock time at which the model reaches within
// 0.5 accuracy points of its own best (probe time excluded from the
// clock). ST is the coreset-selection time (E2GCL only).
//
// Paper shape to verify: E2GCL reaches the best accuracy with the
// smallest TT, and ST is a small fraction of TT.

#include <chrono>

#include "bench_common.h"

namespace {

using namespace e2gcl;
using namespace e2gcl::bench;

struct ConvergedRun {
  double best_accuracy = 0.0;   // %
  double converge_seconds = 0.0;
  double selection_seconds = 0.0;
};

ConvergedRun RunToConvergence(ModelKind kind, const Graph& g) {
  RunConfig cfg = DefaultRunConfig();
  cfg.epochs = 2 * BenchEpochs();
  cfg.e2gcl.selector.num_clusters = 200;

  Rng split_rng(7919 + 13);
  NodeSplit split = RandomNodeSplit(g.num_nodes, 0.1, 0.1, split_rng);

  struct Snapshot {
    double seconds;
    Matrix embedding;
  };
  std::vector<Snapshot> snapshots;
  double probe_overhead = 0.0;
  const int stride = std::max(1, cfg.epochs / 8);
  auto callback = [&](int epoch, double seconds, const GcnEncoder& enc) {
    if (epoch % stride != stride - 1) return;
    const auto t0 = std::chrono::steady_clock::now();
    snapshots.push_back({seconds - probe_overhead, enc.Encode(g)});
    probe_overhead += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  };
  E2gclStats stats;
  ComputeEmbedding(kind, g, cfg, &stats, callback);

  ConvergedRun result;
  result.selection_seconds = stats.selection_seconds;
  std::vector<double> accs;
  for (const Snapshot& s : snapshots) {
    accs.push_back(100.0 * LinearProbeAccuracy(s.embedding, g.labels,
                                               g.num_classes, split,
                                               cfg.probe));
    result.best_accuracy = std::max(result.best_accuracy, accs.back());
  }
  for (std::size_t i = 0; i < accs.size(); ++i) {
    if (accs[i] >= result.best_accuracy - 0.5) {
      result.converge_seconds = snapshots[i].seconds;
      break;
    }
  }
  return result;
}

}  // namespace

int main() {
  PrintHeader(
      "Table V: large graphs (accuracy % / ST seconds / TT-to-convergence)");

  const std::vector<ModelKind> models = {
      ModelKind::kAfgrl, ModelKind::kMvgrl, ModelKind::kGrace,
      ModelKind::kGca, ModelKind::kE2gcl};

  for (const std::string dataset : {"arxiv", "products"}) {
    Graph g = LoadBenchDataset(dataset);
    std::printf("\n%s-like (|V| = %lld, |E| = %lld)\n", dataset.c_str(),
                static_cast<long long>(g.num_nodes),
                static_cast<long long>(g.num_edges()));
    Table table({"Model", "Accuracy", "ST(s)", "TT(s)"}, {8, 10, 9, 9});
    for (ModelKind kind : models) {
      ConvergedRun run = RunToConvergence(kind, g);
      table.AddRow({ModelKindName(kind), FormatF(run.best_accuracy),
                    kind == ModelKind::kE2gcl
                        ? FormatF(run.selection_seconds)
                        : "-",
                    FormatF(run.converge_seconds)});
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
