// Reproduces Fig. 4(a): node classification accuracy as the node budget
// ratio r shrinks from 1 to 1/2^10 on the five small datasets.
//
// Paper shape to verify: accuracy stays flat for moderate r (redundant
// nodes exist) and then drops as r becomes tiny, with the dense
// Photo/Computers dropping hardest.

#include "bench_common.h"

int main() {
  using namespace e2gcl;
  using namespace e2gcl::bench;

  PrintHeader("Fig. 4(a): accuracy vs node budget ratio r");

  std::vector<double> ratios;
  for (int p = 0; p <= 10; ++p) ratios.push_back(1.0 / (1 << p));

  const auto datasets = SmallDatasets();
  std::vector<std::string> header = {"r"};
  for (const auto& d : datasets) header.push_back(d);
  Table table(header, {9, 10, 10, 10, 10, 10});

  // Load each dataset once.
  std::vector<Graph> graphs;
  for (const auto& d : datasets) graphs.push_back(LoadBenchDataset(d));

  for (double r : ratios) {
    std::vector<std::string> row = {FormatF(r, 5)};
    for (const Graph& g : graphs) {
      RunConfig cfg = DefaultRunConfig();
      cfg.e2gcl.node_ratio = r;
      RunResult res = RunNodeClassification(ModelKind::kE2gcl, g, cfg);
      row.push_back(FormatF(res.accuracy * 100.0));
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
