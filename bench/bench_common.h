#ifndef E2GCL_BENCH_BENCH_COMMON_H_
#define E2GCL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/protocol.h"
#include "graph/datasets.h"

/// \file
/// Shared helpers for the table/figure reproduction binaries. Each
/// binary regenerates one table or figure of the paper on the synthetic
/// dataset stand-ins (see DESIGN.md) and prints the same rows/series the
/// paper reports. Absolute numbers differ from the paper (different
/// data, CPU instead of GPU); the comparison *shape* is the target.

namespace e2gcl {
namespace bench {

/// Per-dataset node-count scale used by the benches so the whole suite
/// finishes on a laptop CPU. The five small datasets keep their paper
/// node counts on Cora/Citeseer and are shrunk proportionally on the
/// larger ones; the experiment *ratios* (budget fractions, ST/TT) are
/// scale-free. Override the global multiplier with E2GCL_BENCH_SCALE.
inline double BenchScale(const std::string& dataset) {
  double base = 1.0;
  if (dataset == "photo") base = 0.22;
  if (dataset == "computers") base = 0.13;
  if (dataset == "cs") base = 0.10;
  if (dataset == "arxiv") base = 0.35;
  if (dataset == "products") base = 0.22;
  const char* env = std::getenv("E2GCL_BENCH_SCALE");
  if (env != nullptr) base *= std::atof(env);
  return base > 1.0 ? 1.0 : base;
}

/// Loads the bench-scaled stand-in for `dataset`.
inline Graph LoadBenchDataset(const std::string& dataset,
                              std::uint64_t seed = 0x5eed) {
  return LoadDatasetScaled(dataset, BenchScale(dataset), seed);
}

/// Number of repeated runs per cell (paper: 10; bench default: 2).
inline int BenchRuns() {
  const char* env = std::getenv("E2GCL_BENCH_RUNS");
  return env != nullptr ? std::max(1, std::atoi(env)) : 2;
}

/// Pre-training epochs per run (bench default keeps cells in seconds).
inline int BenchEpochs() {
  const char* env = std::getenv("E2GCL_BENCH_EPOCHS");
  return env != nullptr ? std::max(1, std::atoi(env)) : 22;
}

/// Default experiment configuration shared by all benches.
inline RunConfig DefaultRunConfig() {
  RunConfig cfg;
  cfg.epochs = BenchEpochs();
  cfg.supervised.epochs = 4 * BenchEpochs();
  cfg.deepwalk.epochs = 2;
  cfg.probe.epochs = 120;
  return cfg;
}

/// Minimal fixed-width table printer (similar row format to the paper).
class Table {
 public:
  explicit Table(std::vector<std::string> header,
                 std::vector<int> widths = {})
      : header_(std::move(header)), widths_(std::move(widths)) {
    if (widths_.empty()) widths_.assign(header_.size(), 14);
  }

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    PrintRow(header_);
    std::string sep;
    for (int w : widths_) sep += std::string(w, '-') + "  ";
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row);
  }

 private:
  void PrintRow(const std::vector<std::string>& row) const {
    for (std::size_t i = 0; i < row.size(); ++i) {
      const int w = i < widths_.size() ? widths_[i] : 14;
      std::printf("%-*s  ", w, row[i].c_str());
    }
    std::printf("\n");
  }

  std::vector<std::string> header_;
  std::vector<int> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FormatMeanStd(const MeanStd& ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f±%.2f", ms.mean, ms.std);
  return buf;
}

inline std::string FormatF(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline void PrintHeader(const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("Synthetic dataset stand-ins (see DESIGN.md); shapes, not\n");
  std::printf("absolute numbers, are comparable to the paper.\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace e2gcl

#endif  // E2GCL_BENCH_BENCH_COMMON_H_
