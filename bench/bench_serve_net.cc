// End-to-end network serving benchmark: closed-loop clients speaking
// the binary protocol over loopback TCP against a NetServer, measuring
// what the wire adds on top of the in-process serving path that
// bench_serve times (framing, CRC, syscalls, the event loop, worker
// handoff).
//
// By default the benchmark self-hosts: it builds the same 1024-node SBM
// model as bench_serve, starts an EmbeddingServer + NetServer on an
// ephemeral loopback port, and drives it. Set E2GCL_NET_TARGET to
// "host:port" to aim the client fleet at an already-running
// `e2gcl_serve --listen` instead — the records then measure that
// server's configuration, so baseline and candidate must come from
// the same flow (tools/check_net.sh keeps the two in lockstep).
//
// Writes the same BenchRecord schema as bench_serve —
//   {"name", "threads", "batch", "ns_per_iter", "p50_us", "p99_us",
//    "qps"}
// — to E2GCL_BENCH_JSON (default BENCH_serve_net.json), so
// tools/bench_compare can gate net/ records against the committed
// bench/BENCH_serve.json alongside the in-process ones.
//
// With --merge-into PATH the fresh net/ records are spliced into an
// existing bench JSON array (replacing any previous net/ records,
// leaving the serve/ ones untouched); tools/check_net.sh --rebaseline
// uses this to refresh the committed baseline in place.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "io/checkpoint.h"
#include "io/json.h"
#include "net/client.h"
#include "net/server.h"
#include "nn/gcn.h"
#include "serve/embedding_server.h"
#include "tensor/rng.h"

namespace e2gcl {
namespace {

constexpr int kClientThreads = 4;
constexpr int kQueriesPerClient = 400;

struct BenchRecord {
  std::string name;
  int threads;
  std::int64_t batch;
  double ns_per_iter;
  double p50_us;
  double p99_us;
  double qps;
};

Graph BenchGraph() {
  SbmSpec spec;
  spec.num_nodes = 1024;
  spec.num_classes = 4;
  spec.feature_dim = 32;
  spec.avg_degree = 8;
  spec.informative_dims_per_class = 6;
  return GenerateSbm(spec, 1);
}

TrainerCheckpoint BenchCheckpoint(const Graph& g) {
  GcnConfig cfg;
  cfg.dims = {g.feature_dim(), 64, 32};
  Rng rng(2);
  GcnEncoder encoder(cfg, rng);
  TrainerCheckpoint ckpt;
  ckpt.epoch = 0;
  ckpt.config_fingerprint = 1;
  ckpt.encoder_params = encoder.params().CloneValues();
  return ckpt;
}

enum class Op { kEmbed, kScore, kTopK };

/// One closed-loop client fleet: `threads` threads, each with its own
/// NetClient (the client is intentionally not thread-safe), firing
/// kQueriesPerClient requests of `op` back to back. Returns the pooled
/// per-request wall latencies in microseconds.
std::vector<double> DriveNetClients(const std::string& host, int port,
                                    Op op, int threads,
                                    std::int64_t num_nodes) {
  std::vector<std::vector<double>> per_client(
      static_cast<std::size_t>(threads));
  std::vector<std::thread> clients;
  for (int c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      std::string error;
      net::NetClientOptions copts;
      auto client = net::NetClient::Connect(host, port, copts, &error);
      if (client == nullptr) {
        std::fprintf(stderr, "bench_serve_net: connect: %s\n",
                     error.c_str());
        std::abort();
      }
      Rng rng(400 + static_cast<std::uint64_t>(c));
      auto& lat = per_client[static_cast<std::size_t>(c)];
      lat.reserve(kQueriesPerClient);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::int64_t node = rng.UniformInt(num_nodes);
        const auto t0 = std::chrono::steady_clock::now();
        bool ok = false;
        switch (op) {
          case Op::kEmbed: {
            const EmbeddingResponse r = client->GetEmbedding(node);
            ok = r.served() && !r.row.empty();
            break;
          }
          case Op::kScore: {
            const std::int64_t other = rng.UniformInt(num_nodes);
            const ScoreResponse r = client->ScoreLink(node, other);
            ok = r.served();
            break;
          }
          case Op::kTopK: {
            const TopKResponse r = client->TopKSimilar(node, 8);
            ok = r.served() && !r.result.nodes.empty();
            break;
          }
        }
        const auto t1 = std::chrono::steady_clock::now();
        if (!ok) {
          std::fprintf(stderr, "bench_serve_net: request failed: %s\n",
                       client->last_error().c_str());
          std::abort();
        }
        lat.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::vector<double> all;
  for (const auto& v : per_client) all.insert(all.end(), v.begin(), v.end());
  return all;
}

BenchRecord Summarize(const std::string& name, int threads,
                      std::int64_t batch, std::vector<double> latencies_us,
                      double wall_seconds) {
  std::sort(latencies_us.begin(), latencies_us.end());
  const std::size_t n = latencies_us.size();
  BenchRecord rec;
  rec.name = name;
  rec.threads = threads;
  rec.batch = batch;
  rec.p50_us = latencies_us[n / 2];
  rec.p99_us = latencies_us[std::min(n - 1, n * 99 / 100)];
  rec.qps = static_cast<double>(n) / wall_seconds;
  rec.ns_per_iter = wall_seconds * 1e9 / static_cast<double>(n);
  return rec;
}

BenchRecord RunScenario(const std::string& host, int port,
                        const std::string& name, Op op, int threads,
                        std::int64_t num_nodes) {
  DriveNetClients(host, port, op, threads, num_nodes);  // warm-up pass
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> lat =
      DriveNetClients(host, port, op, threads, num_nodes);
  const auto t1 = std::chrono::steady_clock::now();
  return Summarize(name, threads, /*batch=*/16, std::move(lat),
                   std::chrono::duration<double>(t1 - t0).count());
}

void WriteJson(const std::vector<BenchRecord>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve_net: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"threads\": %d, \"batch\": %lld, "
                 "\"ns_per_iter\": %.3f, \"p50_us\": %.3f, "
                 "\"p99_us\": %.3f, \"qps\": %.1f}%s\n",
                 r.name.c_str(), r.threads,
                 static_cast<long long>(r.batch), r.ns_per_iter, r.p50_us,
                 r.p99_us, r.qps, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_serve_net: wrote %zu records to %s\n",
               records.size(), path);
}

/// Splices the fresh net/ records into the bench JSON at `path`:
/// existing records keep their order, previous net/ records are
/// replaced, and anything else (the serve/ sweep) is untouched.
int MergeInto(const std::vector<BenchRecord>& records,
              const std::string& path) {
  JsonValue doc;
  std::string error;
  if (!LoadJsonFile(path, &doc, &error) || !doc.is_array()) {
    std::fprintf(stderr, "bench_serve_net: --merge-into %s: %s\n",
                 path.c_str(), error.empty() ? "not an array" : error.c_str());
    return 1;
  }
  JsonValue merged = JsonValue::Array();
  for (const JsonValue& item : doc.items()) {
    const JsonValue* name = item.Find("name");
    if (name != nullptr && name->is_string() &&
        name->AsString().rfind("net/", 0) == 0) {
      continue;  // replaced below
    }
    merged.Append(item);
  }
  for (const BenchRecord& r : records) {
    JsonValue obj = JsonValue::Object();
    obj.Set("name", JsonValue::Str(r.name));
    obj.Set("threads", JsonValue::Int(r.threads));
    obj.Set("batch", JsonValue::Int(r.batch));
    obj.Set("ns_per_iter", JsonValue::Double(r.ns_per_iter));
    obj.Set("p50_us", JsonValue::Double(r.p50_us));
    obj.Set("p99_us", JsonValue::Double(r.p99_us));
    obj.Set("qps", JsonValue::Double(r.qps));
    merged.Append(std::move(obj));
  }
  if (!WriteJsonFile(path, merged)) {
    std::fprintf(stderr, "bench_serve_net: cannot rewrite %s\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(stderr, "bench_serve_net: merged %zu net/ records into %s\n",
               records.size(), path.c_str());
  return 0;
}

}  // namespace
}  // namespace e2gcl

int main(int argc, char** argv) {
  using namespace e2gcl;

  std::string merge_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--merge-into") == 0 && i + 1 < argc) {
      merge_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--merge-into BENCH.json]\n", argv[0]);
      return 2;
    }
  }

  const Graph g = BenchGraph();

  // Self-host unless E2GCL_NET_TARGET says otherwise.
  std::string host = "127.0.0.1";
  int port = 0;
  std::unique_ptr<EmbeddingServer> server;
  std::unique_ptr<net::NetServer> netsrv;
  const char* target = std::getenv("E2GCL_NET_TARGET");
  if (target != nullptr && target[0] != '\0') {
    const std::string spec(target);
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr,
                   "bench_serve_net: E2GCL_NET_TARGET must be host:port\n");
      return 2;
    }
    host = spec.substr(0, colon);
    port = std::atoi(spec.c_str() + colon + 1);
  } else {
    const TrainerCheckpoint ckpt = BenchCheckpoint(g);
    ServeOptions options;
    options.precompute = true;  // measure the wire, not the encoder
    options.max_batch = 16;
    options.batch_deadline_us = 100;
    std::string error;
    server = EmbeddingServer::FromCheckpoint(g, ckpt, options, &error);
    if (server == nullptr) {
      std::fprintf(stderr, "bench_serve_net: %s\n", error.c_str());
      return 1;
    }
    net::NetServerOptions nopts;
    nopts.num_workers = 4;
    netsrv = net::NetServer::Start(server.get(), nopts, &error);
    if (netsrv == nullptr) {
      std::fprintf(stderr, "bench_serve_net: %s\n", error.c_str());
      return 1;
    }
    port = netsrv->port();
  }

  std::vector<BenchRecord> records;
  std::printf("%-28s %8s %6s %12s %9s %9s %10s\n", "config", "threads",
              "batch", "ns/req", "p50(us)", "p99(us)", "qps");
  const struct {
    const char* name;
    Op op;
    int threads;
  } kScenarios[] = {
      {"net/embed/b16", Op::kEmbed, 1},
      {"net/embed/b16", Op::kEmbed, kClientThreads},
      {"net/score/b16", Op::kScore, kClientThreads},
      {"net/topk/b16", Op::kTopK, kClientThreads},
  };
  for (const auto& s : kScenarios) {
    records.push_back(
        RunScenario(host, port, s.name, s.op, s.threads, g.num_nodes));
    const BenchRecord& r = records.back();
    std::printf("%-28s %8d %6lld %12.0f %9.1f %9.1f %10.0f\n",
                r.name.c_str(), r.threads,
                static_cast<long long>(r.batch), r.ns_per_iter, r.p50_us,
                r.p99_us, r.qps);
  }

  if (netsrv != nullptr) netsrv->BeginShutdown();
  netsrv.reset();
  if (server != nullptr) server->BeginShutdown();

  if (!merge_path.empty()) return MergeInto(records, merge_path);
  const char* path = std::getenv("E2GCL_BENCH_JSON");
  WriteJson(records, path != nullptr ? path : "BENCH_serve_net.json");
  return 0;
}
