// Reproduces Table VI: the framework ablation grid
//   E2GCL_{A,U}: all nodes, uniform augmentation
//   E2GCL_{S,U}: selected nodes, uniform augmentation
//   E2GCL_{A,I}: all nodes, importance-aware augmentation
//   E2GCL_{S,I}: selected nodes, importance-aware augmentation (full)
//
// Paper shape to verify: the *,I rows beat the *,U rows, and S,I is
// comparable to A,I despite training on 40% of the nodes.

#include "bench_common.h"

int main() {
  using namespace e2gcl;
  using namespace e2gcl::bench;

  PrintHeader("Table VI: framework ablation (accuracy % +- std)");

  struct Variant {
    const char* name;
    bool selector;
    bool importance;
  };
  const Variant variants[] = {{"E2GCL_{A,U}", false, false},
                              {"E2GCL_{S,U}", true, false},
                              {"E2GCL_{A,I}", false, true},
                              {"E2GCL_{S,I}", true, true}};

  const auto datasets = SmallDatasets();
  std::vector<std::string> header = {"Variant"};
  for (const auto& d : datasets) header.push_back(d);
  Table table(header, {12, 13, 13, 13, 13, 13});

  const int runs = BenchRuns();
  for (const Variant& variant : variants) {
    std::vector<std::string> row = {variant.name};
    for (const auto& dataset : datasets) {
      Graph g = LoadBenchDataset(dataset);
      RunConfig cfg = DefaultRunConfig();
      cfg.e2gcl.use_selector = variant.selector;
      for (ViewConfig* vc : {&cfg.e2gcl.view_hat, &cfg.e2gcl.view_tilde}) {
        vc->importance_edges = variant.importance;
        vc->importance_features = variant.importance;
      }
      AggregateResult agg = RunRepeated(ModelKind::kE2gcl, g, cfg, runs);
      row.push_back(FormatMeanStd(agg.accuracy));
      std::fflush(stdout);
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
