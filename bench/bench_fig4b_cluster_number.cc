// Reproduces Fig. 4(b): effect of the cluster count n_c on accuracy,
// selection time, and total training time (Computers and arxiv-like),
// all normalized to the first point (n_c = 30) as in the paper.
//
// Paper shape to verify: selection time grows with n_c while accuracy
// and total time barely move.

#include "bench_common.h"

int main() {
  using namespace e2gcl;
  using namespace e2gcl::bench;

  PrintHeader("Fig. 4(b): sweep of cluster number n_c (normalized to first)");

  const std::vector<std::int64_t> ncs = {30, 60, 90, 120, 180};

  for (const std::string dataset : {"computers", "arxiv"}) {
    Graph g = LoadBenchDataset(dataset);
    std::printf("\n%s (n_s = 300)\n", dataset.c_str());
    Table table({"n_c", "acc(norm)", "ST(norm)", "TT(norm)", "acc%", "ST(s)",
                 "TT(s)"},
                {6, 10, 10, 10, 8, 8, 8});
    double acc0 = 0.0, st0 = 0.0, tt0 = 0.0;
    for (std::int64_t nc : ncs) {
      RunConfig cfg = DefaultRunConfig();
      cfg.e2gcl.selector.num_clusters = nc;
      cfg.e2gcl.selector.sample_size = 300;
      RunResult res = RunNodeClassification(ModelKind::kE2gcl, g, cfg);
      if (nc == ncs.front()) {
        acc0 = res.accuracy;
        st0 = res.selection_seconds;
        tt0 = res.total_seconds;
      }
      table.AddRow({std::to_string(nc), FormatF(res.accuracy / acc0, 3),
                    FormatF(res.selection_seconds / st0, 3),
                    FormatF(res.total_seconds / tt0, 3),
                    FormatF(res.accuracy * 100.0),
                    FormatF(res.selection_seconds, 3),
                    FormatF(res.total_seconds, 2)});
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
