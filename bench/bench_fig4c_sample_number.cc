// Reproduces Fig. 4(c): effect of the per-round sample count n_s on
// accuracy, selection time, and total training time (Computers and
// arxiv-like), normalized to the first point (n_s = 100).
//
// Paper shape to verify: selection time grows with n_s; accuracy rises
// then stabilizes; total time barely moves.

#include "bench_common.h"

int main() {
  using namespace e2gcl;
  using namespace e2gcl::bench;

  PrintHeader("Fig. 4(c): sweep of sample number n_s (normalized to first)");

  const std::vector<std::int64_t> nss = {100, 200, 400, 700, 1000};

  for (const std::string dataset : {"computers", "arxiv"}) {
    Graph g = LoadBenchDataset(dataset);
    std::printf("\n%s (n_c = 120)\n", dataset.c_str());
    Table table({"n_s", "acc(norm)", "ST(norm)", "TT(norm)", "acc%", "ST(s)",
                 "TT(s)"},
                {6, 10, 10, 10, 8, 8, 8});
    double acc0 = 0.0, st0 = 0.0, tt0 = 0.0;
    for (std::int64_t ns : nss) {
      RunConfig cfg = DefaultRunConfig();
      cfg.e2gcl.selector.num_clusters = 120;
      cfg.e2gcl.selector.sample_size = ns;
      cfg.e2gcl.selector.auto_sample_size = false;
      // Keep the sweep tractable: n_s * k evaluations per run.
      cfg.e2gcl.node_ratio = 0.1;
      RunResult res = RunNodeClassification(ModelKind::kE2gcl, g, cfg);
      if (ns == nss.front()) {
        acc0 = res.accuracy;
        st0 = res.selection_seconds;
        tt0 = res.total_seconds;
      }
      table.AddRow({std::to_string(ns), FormatF(res.accuracy / acc0, 3),
                    FormatF(res.selection_seconds / st0, 3),
                    FormatF(res.total_seconds / tt0, 3),
                    FormatF(res.accuracy * 100.0),
                    FormatF(res.selection_seconds, 3),
                    FormatF(res.total_seconds, 2)});
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
