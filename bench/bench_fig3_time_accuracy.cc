// Reproduces Fig. 3: accuracy-vs-training-time curves on Cora and
// Citeseer for the strongest GCL baselines and E2GCL. The training
// clock includes E2GCL's selection time (as in the paper).
//
// Paper shape to verify: E2GCL's curve rises faster and plateaus at or
// above the baselines.

#include <chrono>

#include "bench_common.h"

namespace {

using namespace e2gcl;
using namespace e2gcl::bench;

struct CurvePoint {
  double seconds;
  double accuracy;
};

std::vector<CurvePoint> RunCurve(ModelKind kind, const Graph& g) {
  RunConfig cfg = DefaultRunConfig();
  cfg.epochs = 2 * BenchEpochs();

  Rng split_rng(7919 + 13);
  NodeSplit split = RandomNodeSplit(g.num_nodes, 0.1, 0.1, split_rng);

  struct Snapshot {
    double seconds;
    Matrix embedding;
  };
  std::vector<Snapshot> snapshots;
  double probe_overhead = 0.0;
  const int stride = std::max(1, cfg.epochs / 10);
  auto callback = [&](int epoch, double seconds, const GcnEncoder& enc) {
    if (epoch % stride != stride - 1) return;
    const auto t0 = std::chrono::steady_clock::now();
    Matrix emb = enc.Encode(g);
    snapshots.push_back({seconds - probe_overhead, std::move(emb)});
    probe_overhead += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  };
  ComputeEmbedding(kind, g, cfg, nullptr, callback);

  std::vector<CurvePoint> curve;
  for (const Snapshot& s : snapshots) {
    const double acc = 100.0 * LinearProbeAccuracy(s.embedding, g.labels,
                                                   g.num_classes, split,
                                                   cfg.probe);
    curve.push_back({s.seconds, acc});
  }
  return curve;
}

}  // namespace

int main() {
  PrintHeader("Fig. 3: accuracy-vs-time curves (seconds, accuracy %)");

  const std::vector<ModelKind> models = {
      ModelKind::kAfgrl, ModelKind::kBgrl, ModelKind::kMvgrl,
      ModelKind::kGrace, ModelKind::kGca, ModelKind::kE2gcl};

  for (const std::string dataset : {"cora", "citeseer"}) {
    Graph g = LoadBenchDataset(dataset);
    std::printf("\n%s\n", dataset.c_str());
    for (ModelKind kind : models) {
      auto curve = RunCurve(kind, g);
      std::printf("%-6s:", ModelKindName(kind).c_str());
      for (const auto& p : curve) {
        std::printf(" (%.2fs, %.2f)", p.seconds, p.accuracy);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
