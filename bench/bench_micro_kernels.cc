// Engineering micro-benchmarks (google-benchmark) for the kernels every
// experiment leans on: SpMM (GCN propagation), dense GEMM, KMeans, the
// coreset selector, the contrastive loss, and view generation throughput.
//
// Kernels that go through the thread pool run a thread-scaling sweep
// (1/2/4/8 via SetNumThreads, the same knob E2GCL_NUM_THREADS controls).
// Besides the usual console table, the binary writes BENCH_kernels.json —
// one record per run: {kernel, size, threads, ns_per_iter} — so the perf
// trajectory is machine-trackable across commits. Set E2GCL_BENCH_JSON to
// change the output path.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "autograd/loss.h"
#include "cluster/kmeans.h"
#include "core/node_selector.h"
#include "core/raw_aggregation.h"
#include "core/view_generator.h"
#include "graph/generators.h"
#include "parallel/thread_pool.h"
#include "tensor/csr.h"

namespace e2gcl {
namespace {

constexpr std::int64_t kThreadSweep[] = {1, 2, 4, 8};

void ThreadSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t t : kThreadSweep) b->Arg(t);
}

Graph BenchGraph(std::int64_t n) {
  SbmSpec spec;
  spec.num_nodes = n;
  spec.num_classes = 8;
  spec.feature_dim = 128;
  spec.avg_degree = 12;
  spec.informative_dims_per_class = 8;
  return GenerateSbm(spec, 0xbe7c);
}

// --------------------------------------------------------------------------
// Fixed-shape kernels swept over thread counts (arg 0 = threads).
// --------------------------------------------------------------------------

// The acceptance kernel: 512 x 512 x 512 dense GEMM.
void BM_Gemm512Cube(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(512, 512, 0, 1, rng);
  Matrix b = Matrix::RandomNormal(512, 512, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["size"] = 512;
  state.SetItemsProcessed(state.iterations() * 512 * 512 * 512);
}
BENCHMARK(BM_Gemm512Cube)->Apply(ThreadSweep)->UseRealTime();

// Arxiv-scale SpMM: ~20k nodes at avg degree 12 (plus self loops) matches
// the arxiv-like dataset's nnz within a few percent.
void BM_SpmmArxivScale(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  const std::int64_t n = 20000;
  Graph g = BenchGraph(n);
  CsrMatrix an = NormalizedAdjacency(g);
  Rng rng(2);
  Matrix x = Matrix::RandomNormal(n, 64, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Spmm(an, x));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["size"] = static_cast<double>(n);
  state.counters["nnz"] = static_cast<double>(an.nnz());
  state.SetItemsProcessed(state.iterations() * an.nnz() * 64);
}
BENCHMARK(BM_SpmmArxivScale)->Apply(ThreadSweep)->UseRealTime();

void BM_SpmmTransposedAArxivScale(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  const std::int64_t n = 20000;
  Graph g = BenchGraph(n);
  CsrMatrix an = NormalizedAdjacency(g);
  Rng rng(2);
  Matrix x = Matrix::RandomNormal(n, 64, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpmmTransposedA(an, x));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["size"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations() * an.nnz() * 64);
}
BENCHMARK(BM_SpmmTransposedAArxivScale)->Apply(ThreadSweep)->UseRealTime();

void BM_KMeansThreads(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  Graph g = BenchGraph(4096);
  Matrix r = RawAggregation(g, 2);
  KMeansOptions opts;
  opts.num_clusters = 64;
  opts.max_iters = 10;
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(KMeans(r, opts, rng));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["size"] = 4096;
}
BENCHMARK(BM_KMeansThreads)->Apply(ThreadSweep)->UseRealTime();

void BM_InfoNceThreads(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(7);
  const Matrix z1 = NormalizeRowsL2(Matrix::RandomNormal(1024, 64, 0, 1, rng));
  const Matrix z2 = NormalizeRowsL2(Matrix::RandomNormal(1024, 64, 0, 1, rng));
  for (auto _ : state) {
    Var a = Var::Param(z1);
    Var b = Var::Param(z2);
    Var loss = ag::InfoNce(a, b, 0.5f);
    loss.Backward();
    benchmark::DoNotOptimize(loss.value()(0, 0));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["size"] = 1024;
}
BENCHMARK(BM_InfoNceThreads)->Apply(ThreadSweep)->UseRealTime();

// --------------------------------------------------------------------------
// Size-swept kernels at the default thread count (arg 0 = problem size).
// --------------------------------------------------------------------------

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(n, 128, 0, 1, rng);
  Matrix b = Matrix::RandomNormal(128, 64, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * 128 * 64);
}
BENCHMARK(BM_Gemm)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Spmm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Graph g = BenchGraph(n);
  CsrMatrix an = NormalizedAdjacency(g);
  Rng rng(2);
  Matrix x = Matrix::RandomNormal(n, 64, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Spmm(an, x));
  }
  state.SetItemsProcessed(state.iterations() * an.nnz() * 64);
}
BENCHMARK(BM_Spmm)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_RawAggregation(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RawAggregation(g, 2));
  }
}
BENCHMARK(BM_RawAggregation)->Arg(2048)->Arg(8192);

void BM_KMeans(benchmark::State& state) {
  Graph g = BenchGraph(4096);
  Matrix r = RawAggregation(g, 2);
  KMeansOptions opts;
  opts.num_clusters = state.range(0);
  opts.max_iters = 10;
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(KMeans(r, opts, rng));
  }
}
BENCHMARK(BM_KMeans)->Arg(30)->Arg(120);

void BM_SelectCoreset(benchmark::State& state) {
  Graph g = BenchGraph(4096);
  Matrix r = RawAggregation(g, 2);
  SelectorConfig cfg;
  cfg.budget = state.range(0);
  cfg.num_clusters = 64;
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(SelectCoreset(r, cfg, rng));
  }
}
BENCHMARK(BM_SelectCoreset)->Arg(128)->Arg(512)->Arg(1638);

void BM_GlobalViewGeneration(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0));
  ViewGenerator gen(g);
  ViewConfig cfg{.tau = 0.8f, .eta = 0.4f};
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.GenerateGlobalView(cfg, rng));
  }
}
BENCHMARK(BM_GlobalViewGeneration)->Arg(2048)->Arg(8192);

void BM_PerNodeViewGeneration(benchmark::State& state) {
  Graph g = BenchGraph(4096);
  ViewGenerator gen(g);
  ViewConfig cfg{.tau = 0.8f, .eta = 0.4f};
  Rng rng(6);
  std::int64_t root = 0;
  for (auto _ : state) {
    std::int64_t root_idx;
    benchmark::DoNotOptimize(
        gen.GeneratePerNodeView(root, 2, cfg, rng, &root_idx));
    root = (root + 1) % g.num_nodes;
  }
}
BENCHMARK(BM_PerNodeViewGeneration);

// --------------------------------------------------------------------------
// JSON emission: tee every finished run into BENCH_kernels.json.
// --------------------------------------------------------------------------

struct RunRecord {
  std::string kernel;  // benchmark name up to the first '/'
  std::string name;    // full run name
  std::int64_t size;   // first numeric arg (or 0)
  std::int64_t threads;
  double ns_per_iter;
};

/// Console reporter that also captures per-run records for the JSON dump.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      RunRecord rec;
      rec.name = run.benchmark_name();
      const auto slash = rec.name.find('/');
      rec.kernel = rec.name.substr(0, slash);
      // Thread-swept benches report their fixed problem size via a
      // counter; size-swept benches encode it as the first arg.
      const auto size_it = run.counters.find("size");
      if (size_it != run.counters.end()) {
        rec.size = static_cast<std::int64_t>(size_it->second.value);
      } else if (slash != std::string::npos) {
        rec.size = std::strtoll(rec.name.c_str() + slash + 1, nullptr, 10);
      } else {
        rec.size = 0;
      }
      const auto it = run.counters.find("threads");
      rec.threads = it != run.counters.end()
                        ? static_cast<std::int64_t>(it->second.value)
                        : GetNumThreads();
      rec.ns_per_iter = run.iterations > 0
                            ? run.real_accumulated_time /
                                  static_cast<double>(run.iterations) * 1e9
                            : 0.0;
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<RunRecord>& records() const { return records_; }

 private:
  std::vector<RunRecord> records_;
};

void WriteJson(const std::vector<RunRecord>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro_kernels: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    std::fprintf(f,
                 "  {\"kernel\": \"%s\", \"name\": \"%s\", \"size\": %lld, "
                 "\"threads\": %lld, \"ns_per_iter\": %.3f}%s\n",
                 r.kernel.c_str(), r.name.c_str(),
                 static_cast<long long>(r.size),
                 static_cast<long long>(r.threads), r.ns_per_iter,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "bench_micro_kernels: wrote %zu records to %s\n",
               records.size(), path);
}

}  // namespace
}  // namespace e2gcl

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  e2gcl::JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* path = std::getenv("E2GCL_BENCH_JSON");
  e2gcl::WriteJson(reporter.records(), path != nullptr ? path
                                                       : "BENCH_kernels.json");
  benchmark::Shutdown();
  return 0;
}
