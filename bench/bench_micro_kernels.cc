// Engineering micro-benchmarks (google-benchmark) for the kernels every
// experiment leans on: SpMM (GCN propagation), dense GEMM, KMeans, the
// coreset selector, and view generation throughput.

#include <benchmark/benchmark.h>

#include "cluster/kmeans.h"
#include "core/node_selector.h"
#include "core/raw_aggregation.h"
#include "core/view_generator.h"
#include "graph/generators.h"
#include "tensor/csr.h"

namespace e2gcl {
namespace {

Graph BenchGraph(std::int64_t n) {
  SbmSpec spec;
  spec.num_nodes = n;
  spec.num_classes = 8;
  spec.feature_dim = 128;
  spec.avg_degree = 12;
  spec.informative_dims_per_class = 8;
  return GenerateSbm(spec, 0xbe7c);
}

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(n, 128, 0, 1, rng);
  Matrix b = Matrix::RandomNormal(128, 64, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * 128 * 64);
}
BENCHMARK(BM_Gemm)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Spmm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Graph g = BenchGraph(n);
  CsrMatrix an = NormalizedAdjacency(g);
  Rng rng(2);
  Matrix x = Matrix::RandomNormal(n, 64, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Spmm(an, x));
  }
  state.SetItemsProcessed(state.iterations() * an.nnz() * 64);
}
BENCHMARK(BM_Spmm)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_RawAggregation(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RawAggregation(g, 2));
  }
}
BENCHMARK(BM_RawAggregation)->Arg(2048)->Arg(8192);

void BM_KMeans(benchmark::State& state) {
  Graph g = BenchGraph(4096);
  Matrix r = RawAggregation(g, 2);
  KMeansOptions opts;
  opts.num_clusters = state.range(0);
  opts.max_iters = 10;
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(KMeans(r, opts, rng));
  }
}
BENCHMARK(BM_KMeans)->Arg(30)->Arg(120);

void BM_SelectCoreset(benchmark::State& state) {
  Graph g = BenchGraph(4096);
  Matrix r = RawAggregation(g, 2);
  SelectorConfig cfg;
  cfg.budget = state.range(0);
  cfg.num_clusters = 64;
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(SelectCoreset(r, cfg, rng));
  }
}
BENCHMARK(BM_SelectCoreset)->Arg(128)->Arg(512)->Arg(1638);

void BM_GlobalViewGeneration(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0));
  ViewGenerator gen(g);
  ViewConfig cfg{.tau = 0.8f, .eta = 0.4f};
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.GenerateGlobalView(cfg, rng));
  }
}
BENCHMARK(BM_GlobalViewGeneration)->Arg(2048)->Arg(8192);

void BM_PerNodeViewGeneration(benchmark::State& state) {
  Graph g = BenchGraph(4096);
  ViewGenerator gen(g);
  ViewConfig cfg{.tau = 0.8f, .eta = 0.4f};
  Rng rng(6);
  std::int64_t root = 0;
  for (auto _ : state) {
    std::int64_t root_idx;
    benchmark::DoNotOptimize(
        gen.GeneratePerNodeView(root, 2, cfg, rng, &root_idx));
    root = (root + 1) % g.num_nodes;
  }
}
BENCHMARK(BM_PerNodeViewGeneration);

}  // namespace
}  // namespace e2gcl

BENCHMARK_MAIN();
