#!/usr/bin/env bash
# End-to-end network serving perf gate: builds the e2gcl_serve CLI,
# bench_serve_net, and bench_compare; starts a real `e2gcl_serve
# --listen` process on an ephemeral loopback port; drives it with the
# closed-loop bench client fleet; and gates the fresh net/ records
# against the committed bench/BENCH_serve.json baseline.
#
#   tools/check_net.sh                    # gate against the baseline
#   tools/check_net.sh --threshold 1.25   # tighter gate
#   tools/check_net.sh --rebaseline       # refresh the net/ baseline
#
# The default threshold matches tools/check_serve.sh's 1.5x: loopback
# round trips sit in the tens of microseconds, where scheduler noise
# alone exceeds bench_compare's default 25%. --rebaseline runs the
# IDENTICAL server-process flow (same dataset, same serve flags, same
# client fleet) and splices the fresh net/ records into
# bench/BENCH_serve.json in place, leaving the serve/ records alone —
# baseline and candidate must measure the same workload or the gate
# compares apples to oranges.
#
# Exit codes follow bench_compare: 0 = within threshold,
# 1 = regression(s), 2 = usage/file error.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
BASELINE="$ROOT/bench/BENCH_serve.json"

REBASELINE=0
COMPARE_ARGS=()
HAVE_THRESHOLD=0
while [ $# -gt 0 ]; do
  case "$1" in
    --rebaseline) REBASELINE=1 ;;
    --threshold) HAVE_THRESHOLD=1; COMPARE_ARGS+=("$1") ;;
    *) COMPARE_ARGS+=("$1") ;;
  esac
  shift
done
if [ "$HAVE_THRESHOLD" = 0 ]; then
  COMPARE_ARGS=(--threshold 1.5 "${COMPARE_ARGS[@]}")
fi

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" \
  --target e2gcl_serve_cli bench_serve_net bench_compare >/dev/null

if [ "$REBASELINE" = 0 ] && [ ! -f "$BASELINE" ]; then
  echo "check_net: missing baseline $BASELINE (run with --rebaseline)" >&2
  exit 2
fi

# Start a real server process the way an operator would: a quick
# one-epoch pre-train (the gate measures the wire, not the encoder),
# precomputed embeddings, ephemeral port.
WORK="$(mktemp -d)"
SERVER_PID=
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

"$BUILD/tools/e2gcl_serve" --train --dataset cora --epochs 1 \
  --precompute --listen 0 --net-workers 4 >"$WORK/server.log" &
SERVER_PID=$!

# The server prints "listening on port N" once the socket is bound.
PORT=
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on port \([0-9][0-9]*\)$/\1/p' \
    "$WORK/server.log" | head -n1)"
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "check_net: server exited before binding; log follows" >&2
    cat "$WORK/server.log" >&2
    exit 2
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "check_net: server never reported its port" >&2
  exit 2
fi

if [ "$REBASELINE" = 1 ]; then
  E2GCL_NET_TARGET="127.0.0.1:$PORT" \
    "$BUILD/bench/bench_serve_net" --merge-into "$BASELINE"
  echo "check_net: net/ baseline records rewritten in $BASELINE"
  exit 0
fi

CANDIDATE="$WORK/BENCH_net_candidate.json"
E2GCL_NET_TARGET="127.0.0.1:$PORT" E2GCL_BENCH_JSON="$CANDIDATE" \
  "$BUILD/bench/bench_serve_net"

# The candidate holds only net/ records; bench_compare reports the
# serve/ records that exist only in the baseline as notes, not
# regressions, so the shared baseline file gates both benches.
"$BUILD/tools/bench_compare" "${COMPARE_ARGS[@]}" "$BASELINE" "$CANDIDATE"
