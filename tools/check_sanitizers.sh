#!/usr/bin/env bash
# Builds the library under ThreadSanitizer and AddressSanitizer and runs
# the suites that exercise the parallel kernels and the fault-tolerance
# machinery (checkpoint I/O, kill/resume, death tests). Usage:
#
#   tools/check_sanitizers.sh            # both sanitizers (default)
#   tools/check_sanitizers.sh thread     # ThreadSanitizer only
#   tools/check_sanitizers.sh address    # AddressSanitizer only
#
# Each sanitized tree lives in build-<sanitizer>/ next to the regular
# build/ so configurations never share object files.
set -euo pipefail

case "${1:-both}" in
  thread)  SANITIZERS=(thread) ;;
  address) SANITIZERS=(address) ;;
  both)    SANITIZERS=(thread address) ;;
  *) echo "usage: $0 [thread|address|both]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# The race-prone and fault-injection code paths live in these binaries;
# running the full suite under sanitizers takes far longer without
# covering more of the interesting code.
TARGETS=(
  parallel_test
  tensor_matrix_test
  tensor_csr_test
  kmeans_test
  core_selector_test
  core_trainer_test
  core_view_test
  autograd_ops_test
  autograd_loss_test
  serialize_test
  io_robustness_test
  fault_tolerance_test
  failure_injection_test
  obs_test
  run_report_test
  bench_compare_test
)

status=0
for SANITIZER in "${SANITIZERS[@]}"; do
  BUILD="$ROOT/build-$SANITIZER"
  cmake -B "$BUILD" -S "$ROOT" -DE2GCL_SANITIZE="$SANITIZER" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j "$(nproc)" --target "${TARGETS[@]}"

  # Exercise a real pool even on small CI machines; fail on any report.
  export E2GCL_NUM_THREADS="${E2GCL_NUM_THREADS:-4}"
  if [ "$SANITIZER" = thread ]; then
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
  fi

  # Run each gtest binary directly (ctest registers per-case names,
  # which makes selecting whole binaries awkward); any sanitizer report
  # fails it.
  for t in "${TARGETS[@]}"; do
    echo "=== $t ($SANITIZER) ==="
    if ! "$BUILD/tests/$t"; then
      status=1
    fi
  done
done
exit $status
