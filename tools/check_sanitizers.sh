#!/usr/bin/env bash
# One command for the whole static + dynamic analysis gate: the
# e2gcl_lint pass, then ThreadSanitizer, AddressSanitizer, and
# UndefinedBehaviorSanitizer builds running the suites that exercise
# the parallel kernels and the fault-tolerance machinery (checkpoint
# I/O, kill/resume, death tests), plus a clang thread-safety-analysis
# build leg over the annotated serving/net stack. Usage:
#
#   tools/check_sanitizers.sh               # lint + all legs below
#   tools/check_sanitizers.sh lint          # static analysis only
#   tools/check_sanitizers.sh thread        # ThreadSanitizer only
#   tools/check_sanitizers.sh address       # AddressSanitizer only
#   tools/check_sanitizers.sh undefined     # UBSan only
#   tools/check_sanitizers.sh portable      # E2GCL_SIMD=portable build only
#   tools/check_sanitizers.sh threadsafety  # -DE2GCL_THREAD_SAFETY=ON build
#
# The portable leg rebuilds with -DE2GCL_SIMD=portable and runs the
# same suites, proving the scalar kernel fallback stays green on
# machines (or compilers) without AVX2. The fallback also runs under
# every sanitizer leg regardless of that leg's dispatched backend:
# simd_portable.cc is always compiled, and simd_kernels_test (in the
# target list below) calls the simd::portable::* kernels directly.
#
# The threadsafety leg is build-only: it compiles the annotated targets
# with -Wthread-safety -Werror=thread-safety under clang (see
# src/core/thread_annotations.h); under gcc the mode configures as a
# documented no-op skip, so the leg passes trivially there.
#
# Each configured tree lives in build-<config>/ next to the regular
# build/ so configurations never share object files. A per-leg PASS/FAIL
# summary prints at the end; the exit code is nonzero if any leg failed.
set -euo pipefail

RUN_LINT=0
case "${1:-all}" in
  lint)         LEGS=(); RUN_LINT=1 ;;
  thread)       LEGS=(thread) ;;
  address)      LEGS=(address) ;;
  undefined)    LEGS=(undefined) ;;
  portable)     LEGS=(portable) ;;
  threadsafety) LEGS=(threadsafety) ;;
  both)         LEGS=(thread address) ;;
  all)          LEGS=(thread address undefined portable threadsafety)
                RUN_LINT=1 ;;
  *) echo "usage: $0 [lint|thread|address|undefined|portable|threadsafety|both|all]" >&2
     exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

LEG_NAMES=()
LEG_RESULTS=()
record() {  # record <leg-name> <0|nonzero>
  LEG_NAMES+=("$1")
  if [ "$2" = 0 ]; then LEG_RESULTS+=(PASS); else LEG_RESULTS+=(FAIL); fi
}

if [ "$RUN_LINT" = 1 ]; then
  echo "=== e2gcl_lint ==="
  lint_status=0
  "$ROOT/tools/check_lint.sh" || lint_status=1
  record lint "$lint_status"
fi

# The race-prone and fault-injection code paths live in these binaries;
# running the full suite under sanitizers takes far longer without
# covering more of the interesting code.
TARGETS=(
  parallel_test
  tensor_matrix_test
  tensor_csr_test
  simd_kernels_test
  kmeans_test
  core_selector_test
  core_trainer_test
  core_view_test
  autograd_ops_test
  autograd_loss_test
  serialize_test
  io_robustness_test
  fault_tolerance_test
  failure_injection_test
  obs_test
  run_report_test
  bench_compare_test
  hash_order_test
  serve_test
  serve_robustness_test
  net_protocol_test
  net_serve_test
  lint_test
  shard_test
)

for LEG in "${LEGS[@]}"; do
  BUILD="$ROOT/build-$LEG"
  leg_status=0

  if [ "$LEG" = threadsafety ]; then
    # Build-only leg: the annotated libraries under clang's
    # -Wthread-safety (or a documented skip under gcc).
    echo "=== threadsafety (build only) ==="
    if ! cmake -B "$BUILD" -S "$ROOT" -DE2GCL_THREAD_SAFETY=ON \
        -DE2GCL_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo; then
      leg_status=1
    elif ! cmake --build "$BUILD" -j "$(nproc)" \
        --target e2gcl_parallel e2gcl_obs e2gcl_serve e2gcl_net; then
      leg_status=1
    fi
    record "$LEG" "$leg_status"
    continue
  fi

  if [ "$LEG" = portable ]; then
    # Not a sanitizer: a plain build forced onto the scalar SIMD
    # backend, running the same suites (plus the kernel parity tests,
    # which become exact-equality comparisons in this mode).
    cmake -B "$BUILD" -S "$ROOT" -DE2GCL_SIMD=portable \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  else
    cmake -B "$BUILD" -S "$ROOT" -DE2GCL_SANITIZE="$LEG" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  fi
  cmake --build "$BUILD" -j "$(nproc)" --target "${TARGETS[@]}"

  # Exercise a real pool even on small CI machines; fail on any report.
  export E2GCL_NUM_THREADS="${E2GCL_NUM_THREADS:-4}"
  if [ "$LEG" = thread ]; then
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
  fi

  # Run each gtest binary directly (ctest registers per-case names,
  # which makes selecting whole binaries awkward); any sanitizer report
  # fails it.
  for t in "${TARGETS[@]}"; do
    echo "=== $t ($LEG) ==="
    if ! "$BUILD/tests/$t"; then
      leg_status=1
    fi
  done
  record "$LEG" "$leg_status"
done

echo
echo "=== summary ==="
status=0
for i in "${!LEG_NAMES[@]}"; do
  printf '%-14s %s\n' "${LEG_NAMES[$i]}" "${LEG_RESULTS[$i]}"
  if [ "${LEG_RESULTS[$i]}" = FAIL ]; then status=1; fi
done
if [ "${#LEG_NAMES[@]}" = 0 ]; then
  echo "(no legs ran)"
fi
exit $status
