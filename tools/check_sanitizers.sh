#!/usr/bin/env bash
# One command for the whole static + dynamic analysis gate: the
# e2gcl_lint pass, then ThreadSanitizer, AddressSanitizer, and
# UndefinedBehaviorSanitizer builds running the suites that exercise
# the parallel kernels and the fault-tolerance machinery (checkpoint
# I/O, kill/resume, death tests). Usage:
#
#   tools/check_sanitizers.sh             # lint + sanitizers + portable
#   tools/check_sanitizers.sh lint        # static analysis only
#   tools/check_sanitizers.sh thread     # ThreadSanitizer only
#   tools/check_sanitizers.sh address    # AddressSanitizer only
#   tools/check_sanitizers.sh undefined  # UBSan only
#   tools/check_sanitizers.sh portable   # E2GCL_SIMD=portable build only
#
# The portable leg rebuilds with -DE2GCL_SIMD=portable and runs the
# same suites, proving the scalar kernel fallback stays green on
# machines (or compilers) without AVX2. The fallback also runs under
# every sanitizer leg regardless of that leg's dispatched backend:
# simd_portable.cc is always compiled, and simd_kernels_test (in the
# target list below) calls the simd::portable::* kernels directly.
#
# Each configured tree lives in build-<config>/ next to the regular
# build/ so configurations never share object files.
set -euo pipefail

RUN_LINT=0
case "${1:-all}" in
  lint)      SANITIZERS=(); RUN_LINT=1 ;;
  thread)    SANITIZERS=(thread) ;;
  address)   SANITIZERS=(address) ;;
  undefined) SANITIZERS=(undefined) ;;
  portable)  SANITIZERS=(portable) ;;
  both)      SANITIZERS=(thread address) ;;
  all)       SANITIZERS=(thread address undefined portable); RUN_LINT=1 ;;
  *) echo "usage: $0 [lint|thread|address|undefined|portable|both|all]" >&2
     exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

status=0
if [ "$RUN_LINT" = 1 ]; then
  echo "=== e2gcl_lint ==="
  "$ROOT/tools/check_lint.sh" || status=1
fi

# The race-prone and fault-injection code paths live in these binaries;
# running the full suite under sanitizers takes far longer without
# covering more of the interesting code.
TARGETS=(
  parallel_test
  tensor_matrix_test
  tensor_csr_test
  simd_kernels_test
  kmeans_test
  core_selector_test
  core_trainer_test
  core_view_test
  autograd_ops_test
  autograd_loss_test
  serialize_test
  io_robustness_test
  fault_tolerance_test
  failure_injection_test
  obs_test
  run_report_test
  bench_compare_test
  hash_order_test
  serve_test
  serve_robustness_test
  net_protocol_test
  net_serve_test
  lint_test
)

for SANITIZER in "${SANITIZERS[@]}"; do
  BUILD="$ROOT/build-$SANITIZER"
  if [ "$SANITIZER" = portable ]; then
    # Not a sanitizer: a plain build forced onto the scalar SIMD
    # backend, running the same suites (plus the kernel parity tests,
    # which become exact-equality comparisons in this mode).
    cmake -B "$BUILD" -S "$ROOT" -DE2GCL_SIMD=portable \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  else
    cmake -B "$BUILD" -S "$ROOT" -DE2GCL_SANITIZE="$SANITIZER" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
  fi
  cmake --build "$BUILD" -j "$(nproc)" --target "${TARGETS[@]}"

  # Exercise a real pool even on small CI machines; fail on any report.
  export E2GCL_NUM_THREADS="${E2GCL_NUM_THREADS:-4}"
  if [ "$SANITIZER" = thread ]; then
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
  fi

  # Run each gtest binary directly (ctest registers per-case names,
  # which makes selecting whole binaries awkward); any sanitizer report
  # fails it.
  for t in "${TARGETS[@]}"; do
    echo "=== $t ($SANITIZER) ==="
    if ! "$BUILD/tests/$t"; then
      status=1
    fi
  done
done
exit $status
