// Scratch tuning driver (not part of the bench suite).
#include <cstdio>
#include <cstdlib>
#include "eval/protocol.h"
#include "graph/datasets.h"

using namespace e2gcl;

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "cora";
  const double scale = argc > 2 ? atof(argv[2]) : 1.0;
  const int epochs = argc > 3 ? atoi(argv[3]) : 40;
  const float lr = argc > 4 ? atof(argv[4]) : 0.01f;
  Graph g = LoadDatasetScaled(dataset, scale, 0x5eed);
  std::printf("dataset=%s n=%lld e=%lld epochs=%d lr=%.3f\n", dataset.c_str(),
              (long long)g.num_nodes, (long long)g.num_edges(), epochs, lr);
  auto run = [&](const char* name, ModelKind kind, auto mutate) {
    RunConfig cfg;
    cfg.epochs = epochs;
    cfg.e2gcl.lr = lr;
    cfg.supervised.epochs = 4 * epochs;
    mutate(cfg);
    AggregateResult agg = RunRepeated(kind, g, cfg, 2);
    std::printf("%-14s %6.2f ± %5.2f  (ST %.2fs TT %.2fs)\n", name,
                agg.accuracy.mean, agg.accuracy.std, agg.selection_seconds,
                agg.total_seconds);
    std::fflush(stdout);
  };
  run("MLP", ModelKind::kMlp, [](RunConfig&){});
  run("GCN", ModelKind::kGcn, [](RunConfig&){});
  run("GRACE", ModelKind::kGrace, [](RunConfig&){});
  run("GCA", ModelKind::kGca, [](RunConfig&){});
  run("DGI", ModelKind::kDgi, [](RunConfig&){});
  run("DGI(lr1e-2)", ModelKind::kDgi, [](RunConfig& c){ c.dgi.lr = 1e-2f; });
  run("DGI(2layer)", ModelKind::kDgi, [](RunConfig& c){ c.dgi.num_layers = 2; });
  run("BGRL", ModelKind::kBgrl, [](RunConfig&){});
  run("BGRL(lr5e-3)", ModelKind::kBgrl, [](RunConfig& c){ c.bgrl.lr = 5e-3f; });
  run("BGRL(ema.9)", ModelKind::kBgrl, [](RunConfig& c){ c.bgrl.lr = 5e-3f; c.bgrl.ema_decay = 0.9f; });
  run("AFGRL(ema.9)", ModelKind::kAfgrl, [](RunConfig& c){ c.bgrl.lr = 5e-3f; c.bgrl.ema_decay = 0.9f; });
  run("E2GCL(S,I)", ModelKind::kE2gcl, [](RunConfig&){});
  run("E2GCL(A,I)", ModelKind::kE2gcl, [](RunConfig& c){ c.e2gcl.use_selector = false; });
  run("E2GCL(S,U)", ModelKind::kE2gcl, [](RunConfig& c){
    for (ViewConfig* vc : {&c.e2gcl.view_hat, &c.e2gcl.view_tilde}) {
      vc->importance_edges = false; vc->importance_features = false; }});
  run("E2GCL(A,U)", ModelKind::kE2gcl, [](RunConfig& c){
    c.e2gcl.use_selector = false;
    for (ViewConfig* vc : {&c.e2gcl.view_hat, &c.e2gcl.view_tilde}) {
      vc->importance_edges = false; vc->importance_features = false; }});
  run("E2GCL\\S", ModelKind::kE2gcl, [](RunConfig& c){
    for (ViewConfig* vc : {&c.e2gcl.view_hat, &c.e2gcl.view_tilde}) {
      vc->importance_edges = false; }});
  run("E2GCL\\F", ModelKind::kE2gcl, [](RunConfig& c){
    for (ViewConfig* vc : {&c.e2gcl.view_hat, &c.e2gcl.view_tilde}) {
      vc->importance_features = false; }});
  return 0;
}
