// Compares two telemetry files — run_report.json objects or
// BENCH_*.json micro-benchmark arrays — and exits nonzero when the
// candidate regressed past the threshold. Gives CI a perf gate:
//
//   bench_compare [--threshold 1.25] [--require-equal-counters]
//                 baseline.json candidate.json
//
// Exit codes: 0 = within threshold, 1 = regression(s), 2 = usage or
// file error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/report_compare.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--threshold X] [--require-equal-counters] "
      "<baseline.json> <candidate.json>\n"
      "  --threshold X             flag timings slower than baseline*X "
      "(default 1.25; must be > 0)\n"
      "  --require-equal-counters  run reports only: counter maps must "
      "match exactly\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  e2gcl::CompareOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_compare: --threshold needs a value\n");
        Usage(argv[0]);
        return 2;
      }
      char* end = nullptr;
      options.threshold = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || !(options.threshold > 0.0)) {
        std::fprintf(stderr, "bench_compare: bad threshold '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--require-equal-counters") {
      options.require_equal_counters = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    Usage(argv[0]);
    return 2;
  }

  const e2gcl::CompareResult result =
      e2gcl::CompareReportFiles(files[0], files[1], options);
  if (!result.error.empty()) {
    std::fprintf(stderr, "bench_compare: error: %s\n", result.error.c_str());
    return e2gcl::CompareExitCode(result);
  }
  for (const std::string& note : result.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const std::string& regression : result.regressions) {
    std::printf("REGRESSION: %s\n", regression.c_str());
  }
  if (result.ok) {
    std::printf("ok: no regressions past %.3gx threshold\n",
                options.threshold);
  } else {
    std::printf("%zu regression(s) past %.3gx threshold\n",
                result.regressions.size(), options.threshold);
  }
  return e2gcl::CompareExitCode(result);
}
