#!/usr/bin/env bash
# Serving-latency perf gate: builds bench_serve + bench_compare, runs
# the serving sweep, and compares the fresh numbers against the
# committed baseline bench/BENCH_serve.json at bench_compare's default
# 1.25x regression threshold.
#
#   tools/check_serve.sh                    # gate against the baseline
#   tools/check_serve.sh --threshold 1.25   # tighter gate
#   tools/check_serve.sh --rebaseline       # rewrite the committed seed
#
# The default threshold is 1.5x (looser than bench_compare's 1.25x):
# since the SIMD + greedy-flush work the hot-path configs sit at a few
# microseconds per request, where single-core run-to-run scheduling
# noise alone exceeds 25%. The committed baseline is a worst-of-N
# envelope over repeated runs for the same reason. Pass --threshold to
# override.
#
# Exit codes follow bench_compare: 0 = within threshold,
# 1 = regression(s), 2 = usage/file error.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
BASELINE="$ROOT/bench/BENCH_serve.json"

REBASELINE=0
COMPARE_ARGS=()
HAVE_THRESHOLD=0
while [ $# -gt 0 ]; do
  case "$1" in
    --rebaseline) REBASELINE=1 ;;
    --threshold) HAVE_THRESHOLD=1; COMPARE_ARGS+=("$1") ;;
    *) COMPARE_ARGS+=("$1") ;;
  esac
  shift
done
if [ "$HAVE_THRESHOLD" = 0 ]; then
  COMPARE_ARGS=(--threshold 1.5 "${COMPARE_ARGS[@]}")
fi

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target bench_serve bench_compare \
  >/dev/null

if [ "$REBASELINE" = 1 ]; then
  E2GCL_BENCH_JSON="$BASELINE" "$BUILD/bench/bench_serve"
  echo "check_serve: baseline rewritten at $BASELINE"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "check_serve: missing baseline $BASELINE (run with --rebaseline)" >&2
  exit 2
fi

CANDIDATE="$BUILD/BENCH_serve.json"
E2GCL_BENCH_JSON="$CANDIDATE" "$BUILD/bench/bench_serve"
"$BUILD/tools/bench_compare" "${COMPARE_ARGS[@]}" "$BASELINE" "$CANDIDATE"
