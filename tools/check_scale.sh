#!/usr/bin/env bash
# Million-node scale gate: builds bench_scale + bench_compare, runs the
# sharded out-of-core pre-training smoke on the full `synthetic-1m`
# graph under a hard peak-RSS budget, and compares the fresh timings
# against the committed baseline bench/BENCH_scale.json at
# bench_compare's default 1.25x regression threshold.
#
#   tools/check_scale.sh                  # gate against the baseline
#   tools/check_scale.sh --rebaseline     # rewrite the committed seed
#   tools/check_scale.sh --fresh-store    # regenerate the graph store
#   tools/check_scale.sh --threshold 1.5  # override the perf threshold
#
# The RSS budget (default 160 MB, E2GCL_SCALE_RSS_MB to override) is
# chosen so a fully-resident run provably cannot pass: the 1.05M-node
# graph's feature matrix (134 MB) plus CSR adjacency (~42 MB) alone
# exceed it before any model state or activations. The graph is
# generated and stored by a SEPARATE process from the training run, so
# the training process's VmHWM — the value the gate reads — never
# includes generation (VmHWM is a process-lifetime high-water mark).
#
# Exit codes follow bench_compare: 0 = within threshold + budget,
# 1 = perf regression(s), 2 = usage/file error, 3 = RSS budget blown.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
BASELINE="$ROOT/bench/BENCH_scale.json"
STORE="${E2GCL_SCALE_STORE:-$BUILD/scale_store}"
RSS_MB="${E2GCL_SCALE_RSS_MB:-160}"

REBASELINE=0
FRESH_STORE=0
COMPARE_ARGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --rebaseline) REBASELINE=1 ;;
    --fresh-store) FRESH_STORE=1 ;;
    *) COMPARE_ARGS+=("$1") ;;
  esac
  shift
done

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target bench_scale bench_compare \
  >/dev/null

if [ "$FRESH_STORE" = 1 ]; then
  rm -rf "$STORE"
fi
if [ ! -f "$STORE/meta.e2gcl" ]; then
  "$BUILD/bench/bench_scale" --prepare "$STORE"
else
  echo "check_scale: reusing graph store at $STORE (--fresh-store to regen)"
fi

run_train() {  # run_train <json-out>
  E2GCL_BENCH_JSON="$1" "$BUILD/bench/bench_scale" \
    --train "$STORE" --max-rss-mb "$RSS_MB"
}

if [ "$REBASELINE" = 1 ]; then
  run_train "$BASELINE"
  echo "check_scale: baseline rewritten at $BASELINE"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "check_scale: missing baseline $BASELINE (run with --rebaseline)" >&2
  exit 2
fi

CANDIDATE="$BUILD/BENCH_scale.json"
run_train "$CANDIDATE"
"$BUILD/tools/bench_compare" "${COMPARE_ARGS[@]}" "$BASELINE" "$CANDIDATE"
