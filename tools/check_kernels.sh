#!/usr/bin/env bash
# Kernel perf gate: builds bench_micro_kernels + bench_compare, runs
# the kernel sweep, and compares the fresh numbers against the
# committed baseline bench/BENCH_kernels.json at bench_compare's
# default 1.25x regression threshold.
#
#   tools/check_kernels.sh                    # gate against the baseline
#   tools/check_kernels.sh --threshold 1.5    # looser gate
#   tools/check_kernels.sh --rebaseline       # rewrite the committed seed
#
# The committed baseline was produced by the default E2GCL_SIMD=auto
# build (AVX2 where the toolchain supports it); gate a portable build
# against its own rebaseline, not the AVX2 seed.
#
# Exit codes follow bench_compare: 0 = within threshold,
# 1 = regression(s), 2 = usage/file error.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build"
BASELINE="$ROOT/bench/BENCH_kernels.json"
# Short repetitions keep the sweep tractable; the 1.25x threshold has
# plenty of margin over the run-to-run noise this leaves. google-benchmark
# on some installs rejects duration suffixes, so the value stays numeric.
MIN_TIME="${E2GCL_BENCH_MIN_TIME:-0.2}"

REBASELINE=0
COMPARE_ARGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --rebaseline) REBASELINE=1 ;;
    *) COMPARE_ARGS+=("$1") ;;
  esac
  shift
done

cmake -B "$BUILD" -S "$ROOT" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" \
  --target bench_micro_kernels bench_compare >/dev/null

if [ "$REBASELINE" = 1 ]; then
  E2GCL_BENCH_JSON="$BASELINE" "$BUILD/bench/bench_micro_kernels" \
    --benchmark_min_time="$MIN_TIME"
  echo "check_kernels: baseline rewritten at $BASELINE"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "check_kernels: missing baseline $BASELINE (run with --rebaseline)" >&2
  exit 2
fi

CANDIDATE="$BUILD/BENCH_kernels.json"
E2GCL_BENCH_JSON="$CANDIDATE" "$BUILD/bench/bench_micro_kernels" \
  --benchmark_min_time="$MIN_TIME"
"$BUILD/tools/bench_compare" "${COMPARE_ARGS[@]}" "$BASELINE" "$CANDIDATE"
