#!/usr/bin/env bash
# Lint gate: builds e2gcl_lint (with -Werror on, so the gate also
# proves the tree compiles warning-clean) and runs it over src/,
# tools/ and tests/. Exits nonzero on any unsuppressed finding.
#
#   tools/check_lint.sh           # text diagnostics
#   tools/check_lint.sh --json    # machine-readable report on stdout
#
# If clang-tidy is installed, the advisory .clang-tidy baseline is also
# run over src/ (findings are reported but never fail the gate — see
# DESIGN.md "Static analysis & invariants").
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-lint"

cmake -B "$BUILD" -S "$ROOT" -DE2GCL_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target e2gcl_lint >/dev/null

status=0
"$BUILD/tools/e2gcl_lint" --root "$ROOT" "$@" || status=$?

if command -v clang-tidy >/dev/null 2>&1; then
  echo "--- clang-tidy (advisory) ---" >&2
  # Advisory only: report, never gate.
  find "$ROOT/src" -name '*.cc' -print0 |
    xargs -0 -n 8 clang-tidy -p "$BUILD" --quiet 2>/dev/null || true
fi

exit $status
