#!/usr/bin/env bash
# Lint gate: builds e2gcl_lint (with -Werror on, so the gate also
# proves the tree compiles warning-clean) and runs it over src/,
# tools/ and tests/. Exits nonzero on any unsuppressed finding.
#
#   tools/check_lint.sh           # text diagnostics
#   tools/check_lint.sh --json    # machine-readable report on stdout
#
# If clang-tidy is installed, the advisory .clang-tidy baseline is also
# run over src/ (findings are reported but never fail the gate — see
# DESIGN.md "Static analysis & invariants").
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-lint"

cmake -B "$BUILD" -S "$ROOT" -DE2GCL_WERROR=ON \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target e2gcl_lint >/dev/null

status=0
"$BUILD/tools/e2gcl_lint" --root "$ROOT" "$@" || status=$?

if command -v clang-tidy >/dev/null 2>&1; then
  echo "--- clang-tidy (advisory) ---" >&2
  # Advisory only: report, never gate.
  find "$ROOT/src" -name '*.cc' -print0 |
    xargs -0 -n 8 clang-tidy -p "$BUILD" --quiet 2>/dev/null || true
fi

# Thread-safety leg: compile the concurrent subsystems under clang's
# -Wthread-safety (promoted to errors by E2GCL_THREAD_SAFETY=ON). This
# is where the E2GCL_GUARDED_BY / E2GCL_REQUIRES annotations in
# core/thread_annotations.h are actually checked; on a gcc-only host
# the mode configures as a documented no-op, so the leg builds (proving
# the annotation macros expand cleanly) but the capability analysis
# itself only gates where clang is available.
echo "--- thread-safety build leg ---" >&2
TS_BUILD="$ROOT/build-threadsafety"
cmake -B "$TS_BUILD" -S "$ROOT" -DE2GCL_THREAD_SAFETY=ON \
  -DE2GCL_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
if ! cmake --build "$TS_BUILD" -j "$(nproc)" \
    --target e2gcl_parallel e2gcl_obs e2gcl_serve e2gcl_net >/dev/null; then
  echo "thread-safety build leg FAILED" >&2
  status=1
fi

exit $status
