// Command-line runner: pre-train any model on any named dataset
// stand-in and report linear-probe accuracy plus timings.
//
// Usage:
//   e2gcl_cli [--dataset cora] [--model e2gcl] [--epochs 40]
//             [--ratio 0.4] [--scale 1.0] [--runs 2] [--seed 1]
//             [--save-embedding path.csv]
//
// Models: mlp gcn deepwalk node2vec gae vgae dgi bgrl afgrl mvgrl grace
//         gca e2gcl.
// Datasets: cora citeseer photo computers cs arxiv products.

#include <cstdio>
#include <cstring>
#include <string>

#include "eval/io.h"
#include "eval/protocol.h"
#include "graph/datasets.h"

int main(int argc, char** argv) {
  using namespace e2gcl;

  std::string dataset = "cora";
  std::string model = "e2gcl";
  std::string save_embedding;
  int epochs = 40;
  double ratio = 0.4;
  double scale = 1.0;
  int runs = 2;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = next("--dataset")) dataset = v;
    else if (const char* v2 = next("--model")) model = v2;
    else if (const char* v3 = next("--epochs")) epochs = std::atoi(v3);
    else if (const char* v4 = next("--ratio")) ratio = std::atof(v4);
    else if (const char* v5 = next("--scale")) scale = std::atof(v5);
    else if (const char* v6 = next("--runs")) runs = std::atoi(v6);
    else if (const char* v7 = next("--seed")) seed = std::strtoull(v7, nullptr, 10);
    else if (const char* v8 = next("--save-embedding")) save_embedding = v8;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  Graph g = LoadDatasetScaled(dataset, scale, 0x5eed);
  std::printf("dataset %s (scale %.2f): %lld nodes, %lld edges, %lld dims, "
              "%lld classes\n",
              dataset.c_str(), scale, (long long)g.num_nodes,
              (long long)g.num_edges(), (long long)g.feature_dim(),
              (long long)g.num_classes);

  ModelKind kind = ModelKindFromName(model);
  RunConfig cfg;
  cfg.epochs = epochs;
  cfg.seed = seed;
  cfg.supervised.epochs = 3 * epochs;
  cfg.e2gcl.node_ratio = ratio;

  AggregateResult agg = RunRepeated(kind, g, cfg, runs);
  std::printf("%s: accuracy %.2f%% ± %.2f  (selection %.2fs, total %.2fs)\n",
              ModelKindName(kind).c_str(), agg.accuracy.mean,
              agg.accuracy.std, agg.selection_seconds, agg.total_seconds);

  if (!save_embedding.empty() && kind != ModelKind::kMlp &&
      kind != ModelKind::kGcn) {
    Matrix emb = ComputeEmbedding(kind, g, cfg);
    if (SaveMatrixCsv(emb, save_embedding)) {
      std::printf("embedding written to %s\n", save_embedding.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", save_embedding.c_str());
      return 1;
    }
  }
  return 0;
}
