// Command-line runner: pre-train any model on any named dataset
// stand-in and report linear-probe accuracy plus timings.
//
// Usage:
//   e2gcl_cli [--dataset cora] [--model e2gcl] [--epochs 40]
//             [--ratio 0.4] [--scale 1.0] [--runs 2] [--seed 1]
//             [--save-embedding path.csv]
//             [--checkpoint-dir dir] [--resume] [--max-retries 2]
//             [--checkpoint-every 10]
//             [--obs-report report.json] [--obs-off]
//
// Models: mlp gcn deepwalk node2vec gae vgae dgi bgrl afgrl mvgrl grace
//         gca e2gcl.
// Datasets: cora citeseer photo computers cs arxiv products.
//
// Fault tolerance (e2gcl model only): --checkpoint-dir enables atomic
// epoch-stamped checkpoints; --resume continues from the newest valid
// one; --max-retries bounds the NaN-recovery retry budget.

#include <cerrno>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "eval/io.h"
#include "eval/protocol.h"
#include "graph/datasets.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "shard/sharded_trainer.h"

namespace {

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --dataset <name>         cora|citeseer|photo|computers|cs|arxiv|"
      "products (default cora)\n"
      "  --model <name>           mlp|gcn|deepwalk|node2vec|gae|vgae|dgi|"
      "bgrl|afgrl|mvgrl|grace|gca|e2gcl (default e2gcl)\n"
      "  --epochs <int>           pre-training epochs (default 40)\n"
      "  --ratio <float>          e2gcl node budget r (default 0.4)\n"
      "  --scale <float>          dataset size multiplier (default 1.0)\n"
      "  --runs <int>             repeated runs to aggregate (default 2)\n"
      "  --seed <uint64>          base RNG seed (default 1)\n"
      "  --save-embedding <path>  write the final embedding as CSV\n"
      "  --checkpoint-dir <dir>   write atomic training checkpoints here "
      "(e2gcl only; forces --runs 1)\n"
      "  --resume                 resume from the newest valid checkpoint\n"
      "  --max-retries <int>      NaN-divergence retry budget (default 2)\n"
      "  --checkpoint-every <int> epochs between checkpoints (default 10)\n"
      "  --obs-report <path>      write a versioned run_report.json for the "
      "training run (e2gcl only; forces --runs 1)\n"
      "  --obs-off                disable metric/span recording "
      "(counters in any report read 0)\n"
      "  --shards <int>           partition-parallel sharded pre-training "
      "with this many shards (e2gcl only; skips the linear probe)\n"
      "  --halo-hops <int>        halo rings around each shard core "
      "(default 1)\n"
      "  --out-of-core            serve the graph from an on-disk store "
      "instead of keeping it resident (requires --shards)\n"
      "  --store-dir <dir>        graph-store directory for --out-of-core/"
      "--prepare-store (default e2gcl_graph_store)\n"
      "  --prepare-store          generate the dataset, write the graph "
      "store to --store-dir, and exit (run training in a separate process "
      "so its peak RSS excludes generation)\n",
      prog);
}

/// Strict whole-token integer parse; "", "12x", and out-of-range fail.
bool ParseInt(const char* s, long long lo, long long hi, long long* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  if (v < lo || v > hi) return false;
  *out = v;
  return true;
}

bool ParseU64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseDouble(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace e2gcl;

  std::string dataset = "cora";
  std::string model = "e2gcl";
  std::string save_embedding;
  std::string checkpoint_dir;
  std::string obs_report;
  bool resume = false;
  bool obs_off = false;
  long long epochs = 40;
  long long runs = 2;
  long long max_retries = 2;
  long long checkpoint_every = 10;
  double ratio = 0.4;
  double scale = 1.0;
  std::uint64_t seed = 1;
  long long shards = 1;
  long long halo_hops = 1;
  bool out_of_core = false;
  bool prepare_store = false;
  std::string store_dir = "e2gcl_graph_store";

  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    auto invalid = [&](const char* v) {
      std::fprintf(stderr, "%s: invalid value for %s: '%s'\n", argv[0], flag,
                   v);
      Usage(argv[0]);
      std::exit(2);
    };
    if (std::strcmp(flag, "--dataset") == 0) {
      dataset = value();
    } else if (std::strcmp(flag, "--model") == 0) {
      model = value();
    } else if (std::strcmp(flag, "--epochs") == 0) {
      const char* v = value();
      if (!ParseInt(v, 1, 1000000, &epochs)) invalid(v);
    } else if (std::strcmp(flag, "--ratio") == 0) {
      const char* v = value();
      if (!ParseDouble(v, &ratio) || ratio <= 0.0 || ratio > 1.0) invalid(v);
    } else if (std::strcmp(flag, "--scale") == 0) {
      const char* v = value();
      if (!ParseDouble(v, &scale) || scale <= 0.0) invalid(v);
    } else if (std::strcmp(flag, "--runs") == 0) {
      const char* v = value();
      if (!ParseInt(v, 1, 10000, &runs)) invalid(v);
    } else if (std::strcmp(flag, "--seed") == 0) {
      const char* v = value();
      if (!ParseU64(v, &seed)) invalid(v);
    } else if (std::strcmp(flag, "--save-embedding") == 0) {
      save_embedding = value();
    } else if (std::strcmp(flag, "--checkpoint-dir") == 0) {
      checkpoint_dir = value();
    } else if (std::strcmp(flag, "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(flag, "--max-retries") == 0) {
      const char* v = value();
      if (!ParseInt(v, 0, 1000, &max_retries)) invalid(v);
    } else if (std::strcmp(flag, "--checkpoint-every") == 0) {
      const char* v = value();
      if (!ParseInt(v, 1, 1000000, &checkpoint_every)) invalid(v);
    } else if (std::strcmp(flag, "--obs-report") == 0) {
      obs_report = value();
      if (obs_report.empty()) invalid("");
    } else if (std::strcmp(flag, "--obs-off") == 0) {
      obs_off = true;
    } else if (std::strcmp(flag, "--shards") == 0) {
      const char* v = value();
      if (!ParseInt(v, 1, 4096, &shards)) invalid(v);
    } else if (std::strcmp(flag, "--halo-hops") == 0) {
      const char* v = value();
      if (!ParseInt(v, 0, 8, &halo_hops)) invalid(v);
    } else if (std::strcmp(flag, "--out-of-core") == 0) {
      out_of_core = true;
    } else if (std::strcmp(flag, "--store-dir") == 0) {
      store_dir = value();
      if (store_dir.empty()) invalid("");
    } else if (std::strcmp(flag, "--prepare-store") == 0) {
      prepare_store = true;
    } else if (std::strcmp(flag, "--help") == 0 ||
               std::strcmp(flag, "-h") == 0) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag: %s\n", argv[0], flag);
      Usage(argv[0]);
      return 2;
    }
  }

  ModelKind kind = ModelKindFromName(model);

  if (!checkpoint_dir.empty()) {
    if (kind != ModelKind::kE2gcl) {
      std::fprintf(stderr,
                   "%s: --checkpoint-dir is only supported for --model "
                   "e2gcl\n",
                   argv[0]);
      return 2;
    }
    if (runs != 1) {
      std::fprintf(stderr,
                   "note: --checkpoint-dir forces --runs 1 (checkpoints "
                   "track a single training trajectory)\n");
      runs = 1;
    }
  }
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "%s: --resume requires --checkpoint-dir\n", argv[0]);
    return 2;
  }
  if (!obs_report.empty()) {
    if (kind != ModelKind::kE2gcl) {
      std::fprintf(stderr,
                   "%s: --obs-report is only supported for --model e2gcl\n",
                   argv[0]);
      return 2;
    }
    if (runs != 1) {
      std::fprintf(stderr,
                   "note: --obs-report forces --runs 1 (the report records a "
                   "single training trajectory)\n");
      runs = 1;
    }
  }
  if (obs_off) SetObsEnabled(false);

  if (prepare_store) {
    Graph g = LoadDatasetScaled(dataset, scale, 0x5eed);
    std::printf("dataset %s (scale %.2f): %lld nodes, %lld edges\n",
                dataset.c_str(), scale, (long long)g.num_nodes,
                (long long)g.num_edges());
    if (!GraphStore::Write(store_dir, g)) {
      std::fprintf(stderr, "%s: failed to write graph store %s\n", argv[0],
                   store_dir.c_str());
      return 1;
    }
    std::printf("graph store written to %s\n", store_dir.c_str());
    return 0;
  }

  if (shards > 1 || out_of_core) {
    if (kind != ModelKind::kE2gcl) {
      std::fprintf(stderr,
                   "%s: --shards/--out-of-core are only supported for "
                   "--model e2gcl\n",
                   argv[0]);
      return 2;
    }
    ShardedConfig scfg;
    scfg.base.epochs = static_cast<int>(epochs);
    scfg.base.seed = seed;
    scfg.base.node_ratio = ratio;
    scfg.base.checkpoint_dir = checkpoint_dir;
    scfg.base.checkpoint_every = static_cast<int>(checkpoint_every);
    scfg.base.resume = resume;
    scfg.base.report_path = obs_report;
    scfg.num_shards = static_cast<int>(shards);
    scfg.halo_hops = static_cast<int>(halo_hops);

    auto run_sharded = [&](ShardedTrainer& trainer) -> int {
      TrainResult res = trainer.Train();
      const E2gclStats& st = trainer.stats();
      std::printf(
          "sharded e2gcl: status %s, shards %lld, cut %.2f%%, epochs %d, "
          "selection %.2fs, total %.2fs, peak rss %.1f MB\n",
          res.ok() ? "ok" : res.message.c_str(), shards,
          100.0 * trainer.partition().CutFraction(), st.epochs_run,
          st.selection_seconds, st.total_seconds,
          static_cast<double>(PeakRssBytes()) / (1024.0 * 1024.0));
      return res.ok() ? 0 : 1;
    };
    if (out_of_core) {
      GraphStore store;
      if (!store.Open(store_dir)) {
        std::printf("graph store %s not found; generating %s\n",
                    store_dir.c_str(), dataset.c_str());
        {
          Graph g = LoadDatasetScaled(dataset, scale, 0x5eed);
          if (!GraphStore::Write(store_dir, g)) {
            std::fprintf(stderr, "%s: failed to write graph store %s\n",
                         argv[0], store_dir.c_str());
            return 1;
          }
        }
        if (!store.Open(store_dir)) {
          std::fprintf(stderr, "%s: failed to open graph store %s\n",
                       argv[0], store_dir.c_str());
          return 1;
        }
      }
      std::printf("out-of-core: %lld nodes, %lld dims from %s\n",
                  (long long)store.num_nodes(), (long long)store.feature_dim(),
                  store_dir.c_str());
      ShardedTrainer trainer(store, scfg);
      return run_sharded(trainer);
    }
    Graph g = LoadDatasetScaled(dataset, scale, 0x5eed);
    std::printf("dataset %s (scale %.2f): %lld nodes, %lld edges\n",
                dataset.c_str(), scale, (long long)g.num_nodes,
                (long long)g.num_edges());
    ShardedTrainer trainer(g, scfg);
    return run_sharded(trainer);
  }

  Graph g = LoadDatasetScaled(dataset, scale, 0x5eed);
  std::printf("dataset %s (scale %.2f): %lld nodes, %lld edges, %lld dims, "
              "%lld classes\n",
              dataset.c_str(), scale, (long long)g.num_nodes,
              (long long)g.num_edges(), (long long)g.feature_dim(),
              (long long)g.num_classes);

  RunConfig cfg;
  cfg.epochs = static_cast<int>(epochs);
  cfg.seed = seed;
  cfg.supervised.epochs = 3 * static_cast<int>(epochs);
  cfg.e2gcl.node_ratio = ratio;
  cfg.e2gcl.checkpoint_dir = checkpoint_dir;
  cfg.e2gcl.checkpoint_every = static_cast<int>(checkpoint_every);
  cfg.e2gcl.resume = resume;
  cfg.e2gcl.max_retries = static_cast<int>(max_retries);
  cfg.e2gcl.report_path = obs_report;

  AggregateResult agg = RunRepeated(kind, g, cfg, static_cast<int>(runs));
  std::printf("%s: accuracy %.2f%% ± %.2f  (selection %.2fs, total %.2fs)\n",
              ModelKindName(kind).c_str(), agg.accuracy.mean,
              agg.accuracy.std, agg.selection_seconds, agg.total_seconds);

  if (!save_embedding.empty() && kind != ModelKind::kMlp &&
      kind != ModelKind::kGcn) {
    Matrix emb = ComputeEmbedding(kind, g, cfg);
    if (SaveMatrixCsv(emb, save_embedding)) {
      std::printf("embedding written to %s\n", save_embedding.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", save_embedding.c_str());
      return 1;
    }
  }
  return 0;
}
