#include "tools/lint/rules.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace e2gcl {
namespace lint {

namespace {

// ---------------------------------------------------------------------
// Shared helpers.

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool InLibrary(const std::string& path) { return StartsWith(path, "src/"); }

bool IsHeader(const std::string& path) { return EndsWith(path, ".h"); }

void Add(std::vector<Finding>* out, const std::string& rule, Severity sev,
         const std::string& path, int line, std::string message) {
  Finding f;
  f.rule = rule;
  f.severity = sev;
  f.file = path;
  f.line = line;
  f.message = std::move(message);
  out->push_back(std::move(f));
}

/// Joins per-line views back into one string (offsets -> line numbers
/// via LineStarts/LineOf) for rules that need multi-line extents.
std::string Join(const std::vector<std::string>& lines) {
  std::ostringstream ss;
  for (const std::string& l : lines) ss << l << '\n';
  return ss.str();
}

std::vector<std::size_t> LineStarts(const std::string& joined) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < joined.size(); ++i) {
    if (joined[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

int LineOf(const std::vector<std::size_t>& starts, std::size_t offset) {
  auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<int>(it - starts.begin());  // 1-based
}

/// Offset one past the matching ')' for the '(' at `open`, or npos when
/// unbalanced.
std::size_t BalancedParenEnd(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds whole-word occurrences of `word` in `line`, returning their
/// start offsets.
std::vector<std::size_t> FindWord(const std::string& line,
                                  const std::string& word) {
  std::vector<std::size_t> hits;
  std::size_t pos = line.find(word);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = line.find(word, pos + 1);
  }
  return hits;
}

char PrevNonSpace(const std::string& line, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (line[pos] != ' ' && line[pos] != '\t') return line[pos];
  }
  return '\0';
}

// ---------------------------------------------------------------------
// Rule: unordered-iteration
//
// Hash-container iteration order depends on the implementation's hash
// seed, bucket count, and insertion history; feeding it into a
// float accumulation or an ordered output silently breaks the
// bit-identical-results contract (DESIGN.md "Threading model"). The
// rule flags every range-for over — and every .begin() drain of — a
// std::unordered_{map,set} declared in the same file. Order-safe
// drains (sorted immediately after) carry a justified suppression.

void RuleUnorderedIteration(const std::string& path, const LexedFile& lexed,
                            std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  static const std::regex kDecl(
      R"(unordered_(?:map|set)\s*<[^;{]*>\s+(\w+))");
  static const std::regex kRangeFor(R"(for\s*\([^;)]*?:\s*(\w+)\s*\))");
  std::set<std::string> unordered_vars;
  for (const std::string& line : lexed.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      unordered_vars.insert((*it)[1].str());
    }
  }
  if (unordered_vars.empty()) return;
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    const std::string& line = lexed.code[i];
    for (std::sregex_iterator it(line.begin(), line.end(), kRangeFor), end;
         it != end; ++it) {
      const std::string var = (*it)[1].str();
      if (unordered_vars.count(var) != 0) {
        Add(out, "unordered-iteration", Severity::kError, path,
            static_cast<int>(i + 1),
            "range-for over std::unordered container '" + var +
                "' is hash-order-dependent; iterate a sorted drain instead");
      }
    }
    const std::size_t dot = line.find(".begin()");
    if (dot != std::string::npos && dot > 0) {
      std::size_t b = dot;
      while (b > 0 && IsWordChar(line[b - 1])) --b;
      const std::string var = line.substr(b, dot - b);
      if (unordered_vars.count(var) != 0) {
        Add(out, "unordered-iteration", Severity::kError, path,
            static_cast<int>(i + 1),
            "draining std::unordered container '" + var +
                "' via .begin() yields hash order; sort the result or "
                "justify why order does not matter");
      }
    }
  }
}

// ---------------------------------------------------------------------
// Rule: banned-random
//
// All randomness must flow through tensor/rng (seeded SplitMix64/
// xoshiro) so runs are reproducible from a single seed. libc rand/
// srand, wall-clock seeding, and std::random_device are all
// nondeterministic across runs or platforms.

void RuleBannedRandom(const std::string& path, const LexedFile& lexed,
                      std::vector<Finding>* out) {
  if (StartsWith(path, "src/tensor/rng")) return;  // the one sanctioned home
  static const std::regex kBanned(
      R"((^|[^\w.])((?:std::)?(?:rand|srand|time))\s*\(|(random_device))");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    const std::string& line = lexed.code[i];
    std::smatch m;
    if (std::regex_search(line, m, kBanned)) {
      const std::string api = m[2].matched ? m[2].str() : m[3].str();
      Add(out, "banned-random", Severity::kError, path,
          static_cast<int>(i + 1),
          "nondeterminism API '" + api +
              "' is banned; use tensor/rng so runs replay from one seed");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: atomic-float
//
// Atomic float/double accumulation commits results in scheduling
// order, which breaks bit-identical reductions at different thread
// counts; reductions must use chunk-ordered partials instead.

void RuleAtomicFloat(const std::string& path, const LexedFile& lexed,
                     std::vector<Finding>* out) {
  static const std::regex kAtomic(R"(atomic\s*<\s*(float|double)\s*>)");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    std::smatch m;
    const std::string& line = lexed.code[i];
    if (std::regex_search(line, m, kAtomic)) {
      Add(out, "atomic-float", Severity::kError, path,
          static_cast<int>(i + 1),
          "std::atomic<" + m[1].str() +
              "> commits in scheduling order; reduce via chunk-ordered "
              "partials (see parallel/parallel_for.h)");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: raw-file-write
//
// Library writes must be atomic (tmp + fsync + rename) so a crash
// never leaves a torn file; WriteFileAtomic / WriteStateFile /
// WriteJsonFile are the only sanctioned sinks. Flags std::ofstream and
// write-mode fopen in src/ (reads are fine).

void RuleRawFileWrite(const std::string& path, const LexedFile& lexed,
                      std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  static const std::regex kFopenWrite(R"(fopen\s*\([^;]*"[wa][^"]*")");
  for (std::size_t i = 0; i < lexed.code_with_strings.size(); ++i) {
    const std::string& line = lexed.code_with_strings[i];
    if (!FindWord(line, "ofstream").empty()) {
      Add(out, "raw-file-write", Severity::kError, path,
          static_cast<int>(i + 1),
          "std::ofstream bypasses atomic-write discipline; route writes "
          "through WriteFileAtomic (io/serialize.h)");
    }
    if (std::regex_search(line, kFopenWrite)) {
      Add(out, "raw-file-write", Severity::kError, path,
          static_cast<int>(i + 1),
          "write-mode fopen bypasses atomic-write discipline; route "
          "writes through WriteFileAtomic (io/serialize.h)");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: naked-new-delete
//
// Library code owns memory via containers and smart pointers; a naked
// new/delete is either a leak, a double-free waiting to happen, or an
// intentionally leaked process-lifetime singleton — the latter gets a
// justified suppression so the intent is recorded.

void RuleNakedNewDelete(const std::string& path, const LexedFile& lexed,
                        std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    const std::string& line = lexed.code[i];
    for (std::size_t pos : FindWord(line, "new")) {
      // `= delete`-style defaulted declarations don't apply to new;
      // skip `operator new` and placement forms conservatively.
      std::size_t after = pos + 3;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after >= line.size() || !(IsWordChar(line[after]))) continue;
      Add(out, "naked-new-delete", Severity::kError, path,
          static_cast<int>(i + 1),
          "naked 'new' in library code; use containers/smart pointers "
          "or justify an intentional process-lifetime leak");
    }
    for (std::size_t pos : FindWord(line, "delete")) {
      if (PrevNonSpace(line, pos) == '=') continue;  // = delete;
      Add(out, "naked-new-delete", Severity::kError, path,
          static_cast<int>(i + 1),
          "naked 'delete' in library code; prefer owning containers or "
          "smart pointers");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: stdout-in-library
//
// The library reports through return values, TrainResult events, and
// obs metrics; stdout belongs to the CLIs. (fprintf(stderr, ...) for
// non-fatal warnings and snprintf formatting are allowed.)

void RuleStdoutInLibrary(const std::string& path, const LexedFile& lexed,
                         std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  static const std::regex kStdout(R"(fprintf\s*\(\s*stdout|\bputs\s*\()");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    const std::string& line = lexed.code[i];
    const bool hit = !FindWord(line, "cout").empty() ||
                     !FindWord(line, "printf").empty() ||
                     std::regex_search(line, kStdout);
    if (hit) {
      Add(out, "stdout-in-library", Severity::kError, path,
          static_cast<int>(i + 1),
          "library code must not write to stdout; report via return "
          "values, events, or obs metrics");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: parallel-reduction
//
// A `acc += ...` on a variable captured from outside a ParallelFor
// body is a cross-chunk data race and, even if atomic, commits in
// scheduling order. Reductions must write per-chunk partials
// (ParallelForChunks + chunk-indexed slots) and reduce in chunk order
// on the calling thread. Heuristic: compound assignment to a plain
// identifier not declared inside the parallel body.

void RuleParallelReduction(const std::string& path, const LexedFile& lexed,
                           std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  const std::string joined = Join(lexed.code);
  const std::vector<std::size_t> starts = LineStarts(joined);
  static const std::regex kCall(R"(ParallelFor(?:Chunks)?\s*\()");
  static const std::regex kCompound(R"((^|[^\w.\]>)])(\w+)\s*([-+*])=[^=])");
  for (std::sregex_iterator it(joined.begin(), joined.end(), kCall), end;
       it != end; ++it) {
    const std::size_t open = it->position() + it->length() - 1;
    const std::size_t close = BalancedParenEnd(joined, open);
    if (close == std::string::npos) continue;
    const std::string body = joined.substr(open, close - open);
    for (std::sregex_iterator bit(body.begin(), body.end(), kCompound), bend;
         bit != bend; ++bit) {
      const std::string var = (*bit)[2].str();
      // Locally-declared accumulators (per-row/per-chunk scalars) are
      // fine; look for a type-ish token immediately before `var` within
      // the body.
      const std::regex decl("(float|double|auto|int|long|std::\\w+)[&\\s]+" +
                            var + "\\b");
      if (std::regex_search(body, decl)) continue;
      Add(out, "parallel-reduction", Severity::kWarning, path,
          LineOf(starts, open + static_cast<std::size_t>(bit->position(2))),
          "compound assignment to captured '" + var +
              "' inside a parallel body; use chunk-indexed partials "
              "reduced in chunk order");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: include-guard
//
// Every header needs #pragma once or a matched #ifndef/#define guard;
// a missing or mismatched guard breaks one-definition hygiene
// silently.

void RuleIncludeGuard(const std::string& path, const LexedFile& lexed,
                      std::vector<Finding>* out) {
  if (!IsHeader(path)) return;
  const std::string joined = Join(lexed.code);
  if (joined.find("#pragma once") != std::string::npos) return;
  static const std::regex kIfndef(R"(#ifndef\s+(\w+))");
  static const std::regex kDefine(R"(#define\s+(\w+))");
  std::smatch mi, md;
  const bool has_ifndef = std::regex_search(joined, mi, kIfndef);
  const bool has_define = std::regex_search(joined, md, kDefine);
  if (!has_ifndef || !has_define) {
    Add(out, "include-guard", Severity::kError, path, 1,
        "header lacks an include guard (#pragma once or "
        "#ifndef/#define pair)");
    return;
  }
  if (mi[1].str() != md[1].str()) {
    const std::vector<std::size_t> starts = LineStarts(joined);
    Add(out, "include-guard", Severity::kError, path,
        LineOf(starts, static_cast<std::size_t>(md.position(0))),
        "include guard mismatch: #ifndef " + mi[1].str() +
            " vs #define " + md[1].str());
    return;
  }
  if (joined.find("#endif") == std::string::npos) {
    Add(out, "include-guard", Severity::kError, path, 1,
        "include guard is never closed with #endif");
  }
}

// ---------------------------------------------------------------------
// Rule: float-index-cast
//
// Truncating a float-valued expression straight into an index or count
// hides the rounding decision (and on ties makes it platform-
// dependent). Rounding must be explicit: std::llround, std::floor,
// std::ceil, or std::trunc before the cast.

bool IsIndexType(const std::string& t) {
  static const std::set<std::string> kTypes = {
      "int",           "long",          "unsigned",      "size_t",
      "std::size_t",   "ptrdiff_t",     "std::ptrdiff_t", "int32_t",
      "int64_t",       "uint32_t",      "uint64_t",      "std::int32_t",
      "std::int64_t",  "std::uint32_t", "std::uint64_t"};
  return kTypes.count(t) != 0;
}

void RuleFloatIndexCast(const std::string& path, const LexedFile& lexed,
                        std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  const std::string joined = Join(lexed.code);
  const std::vector<std::size_t> starts = LineStarts(joined);
  static const std::regex kCast(R"(static_cast<\s*([\w:]+)\s*>\s*\()");
  static const std::regex kFloaty(
      R"(\b\d+\.\d*f?|\bfloat\b|\bdouble\b|\w*frac\w*|\w*prob\w*|\w*ratio\w*)");
  static const std::regex kRounded(R"(round|floor|ceil|trunc)");
  for (std::sregex_iterator it(joined.begin(), joined.end(), kCast), end;
       it != end; ++it) {
    if (!IsIndexType((*it)[1].str())) continue;
    const std::size_t open = it->position() + it->length() - 1;
    const std::size_t close = BalancedParenEnd(joined, open);
    if (close == std::string::npos) continue;
    std::string arg = joined.substr(open + 1, close - open - 2);
    // sizeof(float) et al. are byte counts, not float values.
    static const std::regex kSizeof(R"(sizeof\s*\([^)]*\))");
    arg = std::regex_replace(arg, kSizeof, "");
    if (std::regex_search(arg, kFloaty) && !std::regex_search(arg, kRounded)) {
      Add(out, "float-index-cast", Severity::kWarning, path,
          LineOf(starts, static_cast<std::size_t>(it->position())),
          "float-valued expression cast to " + (*it)[1].str() +
              " without explicit rounding; wrap in std::llround/"
              "std::floor (or justify)");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: raw-simd-intrinsic
//
// Vector intrinsics (and <immintrin.h>) are confined to the kernel
// layer src/tensor/simd/: everything else calls the dispatched simd::
// primitives, so the portable build is honest (no stray AVX2 in a
// "portable" binary) and the per-build-config determinism contract has
// a single audit surface. The suppression escape exists for a justified
// one-off (e.g. a prefetch hint), not for growing a second kernel layer.

void RuleRawSimdIntrinsic(const std::string& path, const LexedFile& lexed,
                          std::vector<Finding>* out) {
  if (StartsWith(path, "src/tensor/simd/")) return;
  static const std::regex kIntrinsic(
      R"((^|[^\w])(_mm\w*|__m(?:128|256|512)\w*)\b)");
  static const std::regex kInclude(
      R"(#include\s*[<"](?:x86intrin|immintrin|emmintrin|avxintrin|avx2intrin)\.h[>"])");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lexed.code[i], m, kIntrinsic)) {
      Add(out, "raw-simd-intrinsic", Severity::kError, path,
          static_cast<int>(i + 1),
          "raw vector intrinsic '" + m[2].str() +
              "' outside src/tensor/simd/; call the dispatched simd:: "
              "kernels instead");
    }
    if (std::regex_search(lexed.code_with_strings[i], kInclude)) {
      Add(out, "raw-simd-intrinsic", Severity::kError, path,
          static_cast<int>(i + 1),
          "intrinsics header included outside src/tensor/simd/; include "
          "tensor/simd/simd.h and use the dispatched kernels");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: raw-socket-io
//
// Raw socket syscalls and the socket/poller headers are confined to
// src/net/ — the one place where wire-format validation, CRC checks,
// partial-read/-write handling, and MSG_NOSIGNAL discipline live. A
// ::send elsewhere in the library would bypass all of it. Follows the
// raw-file-write/stdout-in-library family: the rest of src/ talks to
// the network through net::NetServer/net::NetClient. Tools and tests
// are exempt (test fixtures forge hostile byte streams on purpose).

void RuleRawSocketIo(const std::string& path, const LexedFile& lexed,
                     std::vector<Finding>* out) {
  if (!InLibrary(path) || StartsWith(path, "src/net/")) return;
  // (?:^|[^\w:]) keeps qualified lookalikes like std::bind from matching:
  // only a global-scope :: call counts.
  static const std::regex kSyscall(
      R"((?:^|[^\w:])::(socket|accept|bind|listen|connect|send|sendto|recv|recvfrom|setsockopt|getsockname|getpeername)\s*\()");
  static const std::regex kHeader(
      R"(#include\s*[<"](?:sys/socket|sys/epoll|poll|netinet/in|netinet/tcp|arpa/inet|netdb)\.h[>"])");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lexed.code[i], m, kSyscall)) {
      Add(out, "raw-socket-io", Severity::kError, path,
          static_cast<int>(i + 1),
          "raw socket call '::" + m[1].str() +
              "' outside src/net/; go through net::NetServer/"
              "net::NetClient so framing and error discipline apply");
    }
    if (std::regex_search(lexed.code_with_strings[i], kHeader)) {
      Add(out, "raw-socket-io", Severity::kError, path,
          static_cast<int>(i + 1),
          "socket/poller header included outside src/net/; the network "
          "surface lives in src/net/ only");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: test-include-in-library
//
// src/ must stay layerable: library translation units cannot reach
// into tests/ or tools/, and rooted includes keep the build graph
// acyclic.

void RuleTestIncludeInLibrary(const std::string& path, const LexedFile& lexed,
                              std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  static const std::regex kBadInclude(
      R"(#include\s*"(tests/|tools/|\.\./))");
  for (std::size_t i = 0; i < lexed.code_with_strings.size(); ++i) {
    std::smatch m;
    const std::string& line = lexed.code_with_strings[i];
    if (std::regex_search(line, m, kBadInclude)) {
      Add(out, "test-include-in-library", Severity::kError, path,
          static_cast<int>(i + 1),
          "library code must not include '" + m[1].str() +
              "' headers; dependencies flow src -> tools/tests only");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"unordered-iteration", Severity::kError,
       "no hash-order-dependent iteration over std::unordered_{map,set} "
       "in library code"},
      {"banned-random", Severity::kError,
       "rand/srand/time()/random_device banned outside src/tensor/rng"},
      {"atomic-float", Severity::kError,
       "no std::atomic<float|double>; reductions use chunk-ordered "
       "partials"},
      {"raw-file-write", Severity::kError,
       "library file writes go through WriteFileAtomic"},
      {"naked-new-delete", Severity::kError,
       "no naked new/delete in library code"},
      {"stdout-in-library", Severity::kError,
       "no printf/std::cout in library code"},
      {"parallel-reduction", Severity::kWarning,
       "ParallelFor bodies must not compound-assign captured scalars"},
      {"include-guard", Severity::kError,
       "headers carry a matched include guard or #pragma once"},
      {"float-index-cast", Severity::kWarning,
       "float->index casts make rounding explicit"},
      {"raw-simd-intrinsic", Severity::kError,
       "vector intrinsics and <immintrin.h> only under src/tensor/simd/"},
      {"raw-socket-io", Severity::kError,
       "socket syscalls and socket headers only under src/net/"},
      {"test-include-in-library", Severity::kError,
       "src/ headers never include tests/ or tools/"},
      {"suppression-justification", Severity::kError,
       "every suppression names a known rule and carries a "
       "justification"},
  };
  return kRules;
}

void RunAllRules(const std::string& path, const LexedFile& lexed,
                 std::vector<Finding>* out) {
  RuleUnorderedIteration(path, lexed, out);
  RuleBannedRandom(path, lexed, out);
  RuleAtomicFloat(path, lexed, out);
  RuleRawFileWrite(path, lexed, out);
  RuleNakedNewDelete(path, lexed, out);
  RuleStdoutInLibrary(path, lexed, out);
  RuleParallelReduction(path, lexed, out);
  RuleIncludeGuard(path, lexed, out);
  RuleFloatIndexCast(path, lexed, out);
  RuleRawSimdIntrinsic(path, lexed, out);
  RuleRawSocketIo(path, lexed, out);
  RuleTestIncludeInLibrary(path, lexed, out);
}

}  // namespace lint
}  // namespace e2gcl
