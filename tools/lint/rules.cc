#include "tools/lint/rules.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace e2gcl {
namespace lint {

namespace {

// ---------------------------------------------------------------------
// Shared helpers.

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool InLibrary(const std::string& path) { return StartsWith(path, "src/"); }

bool IsHeader(const std::string& path) { return EndsWith(path, ".h"); }

void Add(std::vector<Finding>* out, const std::string& rule, Severity sev,
         const std::string& path, int line, std::string message) {
  Finding f;
  f.rule = rule;
  f.severity = sev;
  f.file = path;
  f.line = line;
  f.message = std::move(message);
  out->push_back(std::move(f));
}

/// Joins per-line views back into one string (offsets -> line numbers
/// via LineStarts/LineOf) for rules that need multi-line extents.
std::string Join(const std::vector<std::string>& lines) {
  std::ostringstream ss;
  for (const std::string& l : lines) ss << l << '\n';
  return ss.str();
}

std::vector<std::size_t> LineStarts(const std::string& joined) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < joined.size(); ++i) {
    if (joined[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

int LineOf(const std::vector<std::size_t>& starts, std::size_t offset) {
  auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<int>(it - starts.begin());  // 1-based
}

/// Offset one past the matching ')' for the '(' at `open`, or npos when
/// unbalanced.
std::size_t BalancedParenEnd(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds whole-word occurrences of `word` in `line`, returning their
/// start offsets.
std::vector<std::size_t> FindWord(const std::string& line,
                                  const std::string& word) {
  std::vector<std::size_t> hits;
  std::size_t pos = line.find(word);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = line.find(word, pos + 1);
  }
  return hits;
}

char PrevNonSpace(const std::string& line, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (line[pos] != ' ' && line[pos] != '\t') return line[pos];
  }
  return '\0';
}

// ---------------------------------------------------------------------
// Rule: unordered-iteration
//
// Hash-container iteration order depends on the implementation's hash
// seed, bucket count, and insertion history; feeding it into a
// float accumulation or an ordered output silently breaks the
// bit-identical-results contract (DESIGN.md "Threading model"). The
// rule flags every range-for over — and every .begin() drain of — a
// std::unordered_{map,set} declared in the same file. Order-safe
// drains (sorted immediately after) carry a justified suppression.

void RuleUnorderedIteration(const std::string& path, const LexedFile& lexed,
                            std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  static const std::regex kDecl(
      R"(unordered_(?:map|set)\s*<[^;{]*>\s+(\w+))");
  static const std::regex kRangeFor(R"(for\s*\([^;)]*?:\s*(\w+)\s*\))");
  std::set<std::string> unordered_vars;
  for (const std::string& line : lexed.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kDecl), end;
         it != end; ++it) {
      unordered_vars.insert((*it)[1].str());
    }
  }
  if (unordered_vars.empty()) return;
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    const std::string& line = lexed.code[i];
    for (std::sregex_iterator it(line.begin(), line.end(), kRangeFor), end;
         it != end; ++it) {
      const std::string var = (*it)[1].str();
      if (unordered_vars.count(var) != 0) {
        Add(out, "unordered-iteration", Severity::kError, path,
            static_cast<int>(i + 1),
            "range-for over std::unordered container '" + var +
                "' is hash-order-dependent; iterate a sorted drain instead");
      }
    }
    const std::size_t dot = line.find(".begin()");
    if (dot != std::string::npos && dot > 0) {
      std::size_t b = dot;
      while (b > 0 && IsWordChar(line[b - 1])) --b;
      const std::string var = line.substr(b, dot - b);
      if (unordered_vars.count(var) != 0) {
        Add(out, "unordered-iteration", Severity::kError, path,
            static_cast<int>(i + 1),
            "draining std::unordered container '" + var +
                "' via .begin() yields hash order; sort the result or "
                "justify why order does not matter");
      }
    }
  }
}

// ---------------------------------------------------------------------
// Rule: banned-random
//
// All randomness must flow through tensor/rng (seeded SplitMix64/
// xoshiro) so runs are reproducible from a single seed. libc rand/
// srand, wall-clock seeding, and std::random_device are all
// nondeterministic across runs or platforms.

void RuleBannedRandom(const std::string& path, const LexedFile& lexed,
                      std::vector<Finding>* out) {
  if (StartsWith(path, "src/tensor/rng")) return;  // the one sanctioned home
  static const std::regex kBanned(
      R"((^|[^\w.])((?:std::)?(?:rand|srand|time))\s*\(|(random_device))");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    const std::string& line = lexed.code[i];
    std::smatch m;
    if (std::regex_search(line, m, kBanned)) {
      const std::string api = m[2].matched ? m[2].str() : m[3].str();
      Add(out, "banned-random", Severity::kError, path,
          static_cast<int>(i + 1),
          "nondeterminism API '" + api +
              "' is banned; use tensor/rng so runs replay from one seed");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: atomic-float
//
// Atomic float/double accumulation commits results in scheduling
// order, which breaks bit-identical reductions at different thread
// counts; reductions must use chunk-ordered partials instead.

void RuleAtomicFloat(const std::string& path, const LexedFile& lexed,
                     std::vector<Finding>* out) {
  static const std::regex kAtomic(R"(atomic\s*<\s*(float|double)\s*>)");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    std::smatch m;
    const std::string& line = lexed.code[i];
    if (std::regex_search(line, m, kAtomic)) {
      Add(out, "atomic-float", Severity::kError, path,
          static_cast<int>(i + 1),
          "std::atomic<" + m[1].str() +
              "> commits in scheduling order; reduce via chunk-ordered "
              "partials (see parallel/parallel_for.h)");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: raw-file-write
//
// Library writes must be atomic (tmp + fsync + rename) so a crash
// never leaves a torn file; WriteFileAtomic / WriteStateFile /
// WriteJsonFile are the only sanctioned sinks. Flags std::ofstream and
// write-mode fopen in src/ (reads are fine).

void RuleRawFileWrite(const std::string& path, const LexedFile& lexed,
                      std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  static const std::regex kFopenWrite(R"(fopen\s*\([^;]*"[wa][^"]*")");
  for (std::size_t i = 0; i < lexed.code_with_strings.size(); ++i) {
    const std::string& line = lexed.code_with_strings[i];
    if (!FindWord(line, "ofstream").empty()) {
      Add(out, "raw-file-write", Severity::kError, path,
          static_cast<int>(i + 1),
          "std::ofstream bypasses atomic-write discipline; route writes "
          "through WriteFileAtomic (io/serialize.h)");
    }
    if (std::regex_search(line, kFopenWrite)) {
      Add(out, "raw-file-write", Severity::kError, path,
          static_cast<int>(i + 1),
          "write-mode fopen bypasses atomic-write discipline; route "
          "writes through WriteFileAtomic (io/serialize.h)");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: naked-new-delete
//
// Library code owns memory via containers and smart pointers; a naked
// new/delete is either a leak, a double-free waiting to happen, or an
// intentionally leaked process-lifetime singleton — the latter gets a
// justified suppression so the intent is recorded.

void RuleNakedNewDelete(const std::string& path, const LexedFile& lexed,
                        std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    const std::string& line = lexed.code[i];
    for (std::size_t pos : FindWord(line, "new")) {
      // `= delete`-style defaulted declarations don't apply to new;
      // skip `operator new` and placement forms conservatively.
      std::size_t after = pos + 3;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after >= line.size() || !(IsWordChar(line[after]))) continue;
      Add(out, "naked-new-delete", Severity::kError, path,
          static_cast<int>(i + 1),
          "naked 'new' in library code; use containers/smart pointers "
          "or justify an intentional process-lifetime leak");
    }
    for (std::size_t pos : FindWord(line, "delete")) {
      if (PrevNonSpace(line, pos) == '=') continue;  // = delete;
      Add(out, "naked-new-delete", Severity::kError, path,
          static_cast<int>(i + 1),
          "naked 'delete' in library code; prefer owning containers or "
          "smart pointers");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: stdout-in-library
//
// The library reports through return values, TrainResult events, and
// obs metrics; stdout belongs to the CLIs. (fprintf(stderr, ...) for
// non-fatal warnings and snprintf formatting are allowed.)

void RuleStdoutInLibrary(const std::string& path, const LexedFile& lexed,
                         std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  static const std::regex kStdout(R"(fprintf\s*\(\s*stdout|\bputs\s*\()");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    const std::string& line = lexed.code[i];
    const bool hit = !FindWord(line, "cout").empty() ||
                     !FindWord(line, "printf").empty() ||
                     std::regex_search(line, kStdout);
    if (hit) {
      Add(out, "stdout-in-library", Severity::kError, path,
          static_cast<int>(i + 1),
          "library code must not write to stdout; report via return "
          "values, events, or obs metrics");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: parallel-reduction
//
// A `acc += ...` on a variable captured from outside a ParallelFor
// body is a cross-chunk data race and, even if atomic, commits in
// scheduling order. Reductions must write per-chunk partials
// (ParallelForChunks + chunk-indexed slots) and reduce in chunk order
// on the calling thread. Heuristic: compound assignment to a plain
// identifier not declared inside the parallel body.

void RuleParallelReduction(const std::string& path, const LexedFile& lexed,
                           std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  const std::string joined = Join(lexed.code);
  const std::vector<std::size_t> starts = LineStarts(joined);
  static const std::regex kCall(R"(ParallelFor(?:Chunks)?\s*\()");
  static const std::regex kCompound(R"((^|[^\w.\]>)])(\w+)\s*([-+*])=[^=])");
  for (std::sregex_iterator it(joined.begin(), joined.end(), kCall), end;
       it != end; ++it) {
    const std::size_t open = it->position() + it->length() - 1;
    const std::size_t close = BalancedParenEnd(joined, open);
    if (close == std::string::npos) continue;
    const std::string body = joined.substr(open, close - open);
    for (std::sregex_iterator bit(body.begin(), body.end(), kCompound), bend;
         bit != bend; ++bit) {
      const std::string var = (*bit)[2].str();
      // Locally-declared accumulators (per-row/per-chunk scalars) are
      // fine; look for a type-ish token immediately before `var` within
      // the body.
      const std::regex decl("(float|double|auto|int|long|std::\\w+)[&\\s]+" +
                            var + "\\b");
      if (std::regex_search(body, decl)) continue;
      Add(out, "parallel-reduction", Severity::kWarning, path,
          LineOf(starts, open + static_cast<std::size_t>(bit->position(2))),
          "compound assignment to captured '" + var +
              "' inside a parallel body; use chunk-indexed partials "
              "reduced in chunk order");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: include-guard
//
// Every header needs #pragma once or a matched #ifndef/#define guard;
// a missing or mismatched guard breaks one-definition hygiene
// silently.

void RuleIncludeGuard(const std::string& path, const LexedFile& lexed,
                      std::vector<Finding>* out) {
  if (!IsHeader(path)) return;
  const std::string joined = Join(lexed.code);
  if (joined.find("#pragma once") != std::string::npos) return;
  static const std::regex kIfndef(R"(#ifndef\s+(\w+))");
  static const std::regex kDefine(R"(#define\s+(\w+))");
  std::smatch mi, md;
  const bool has_ifndef = std::regex_search(joined, mi, kIfndef);
  const bool has_define = std::regex_search(joined, md, kDefine);
  if (!has_ifndef || !has_define) {
    Add(out, "include-guard", Severity::kError, path, 1,
        "header lacks an include guard (#pragma once or "
        "#ifndef/#define pair)");
    return;
  }
  if (mi[1].str() != md[1].str()) {
    const std::vector<std::size_t> starts = LineStarts(joined);
    Add(out, "include-guard", Severity::kError, path,
        LineOf(starts, static_cast<std::size_t>(md.position(0))),
        "include guard mismatch: #ifndef " + mi[1].str() +
            " vs #define " + md[1].str());
    return;
  }
  if (joined.find("#endif") == std::string::npos) {
    Add(out, "include-guard", Severity::kError, path, 1,
        "include guard is never closed with #endif");
  }
}

// ---------------------------------------------------------------------
// Rule: float-index-cast
//
// Truncating a float-valued expression straight into an index or count
// hides the rounding decision (and on ties makes it platform-
// dependent). Rounding must be explicit: std::llround, std::floor,
// std::ceil, or std::trunc before the cast.

bool IsIndexType(const std::string& t) {
  static const std::set<std::string> kTypes = {
      "int",           "long",          "unsigned",      "size_t",
      "std::size_t",   "ptrdiff_t",     "std::ptrdiff_t", "int32_t",
      "int64_t",       "uint32_t",      "uint64_t",      "std::int32_t",
      "std::int64_t",  "std::uint32_t", "std::uint64_t"};
  return kTypes.count(t) != 0;
}

void RuleFloatIndexCast(const std::string& path, const LexedFile& lexed,
                        std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  const std::string joined = Join(lexed.code);
  const std::vector<std::size_t> starts = LineStarts(joined);
  static const std::regex kCast(R"(static_cast<\s*([\w:]+)\s*>\s*\()");
  static const std::regex kFloaty(
      R"(\b\d+\.\d*f?|\bfloat\b|\bdouble\b|\w*frac\w*|\w*prob\w*|\w*ratio\w*)");
  static const std::regex kRounded(R"(round|floor|ceil|trunc)");
  for (std::sregex_iterator it(joined.begin(), joined.end(), kCast), end;
       it != end; ++it) {
    if (!IsIndexType((*it)[1].str())) continue;
    const std::size_t open = it->position() + it->length() - 1;
    const std::size_t close = BalancedParenEnd(joined, open);
    if (close == std::string::npos) continue;
    std::string arg = joined.substr(open + 1, close - open - 2);
    // sizeof(float) et al. are byte counts, not float values.
    static const std::regex kSizeof(R"(sizeof\s*\([^)]*\))");
    arg = std::regex_replace(arg, kSizeof, "");
    if (std::regex_search(arg, kFloaty) && !std::regex_search(arg, kRounded)) {
      Add(out, "float-index-cast", Severity::kWarning, path,
          LineOf(starts, static_cast<std::size_t>(it->position())),
          "float-valued expression cast to " + (*it)[1].str() +
              " without explicit rounding; wrap in std::llround/"
              "std::floor (or justify)");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: raw-simd-intrinsic
//
// Vector intrinsics (and <immintrin.h>) are confined to the kernel
// layer src/tensor/simd/: everything else calls the dispatched simd::
// primitives, so the portable build is honest (no stray AVX2 in a
// "portable" binary) and the per-build-config determinism contract has
// a single audit surface. The suppression escape exists for a justified
// one-off (e.g. a prefetch hint), not for growing a second kernel layer.

void RuleRawSimdIntrinsic(const std::string& path, const LexedFile& lexed,
                          std::vector<Finding>* out) {
  if (StartsWith(path, "src/tensor/simd/")) return;
  static const std::regex kIntrinsic(
      R"((^|[^\w])(_mm\w*|__m(?:128|256|512)\w*)\b)");
  static const std::regex kInclude(
      R"(#include\s*[<"](?:x86intrin|immintrin|emmintrin|avxintrin|avx2intrin)\.h[>"])");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lexed.code[i], m, kIntrinsic)) {
      Add(out, "raw-simd-intrinsic", Severity::kError, path,
          static_cast<int>(i + 1),
          "raw vector intrinsic '" + m[2].str() +
              "' outside src/tensor/simd/; call the dispatched simd:: "
              "kernels instead");
    }
    if (std::regex_search(lexed.code_with_strings[i], kInclude)) {
      Add(out, "raw-simd-intrinsic", Severity::kError, path,
          static_cast<int>(i + 1),
          "intrinsics header included outside src/tensor/simd/; include "
          "tensor/simd/simd.h and use the dispatched kernels");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: raw-socket-io
//
// Raw socket syscalls and the socket/poller headers are confined to
// src/net/ — the one place where wire-format validation, CRC checks,
// partial-read/-write handling, and MSG_NOSIGNAL discipline live. A
// ::send elsewhere in the library would bypass all of it. Follows the
// raw-file-write/stdout-in-library family: the rest of src/ talks to
// the network through net::NetServer/net::NetClient. Tools and tests
// are exempt (test fixtures forge hostile byte streams on purpose).

void RuleRawSocketIo(const std::string& path, const LexedFile& lexed,
                     std::vector<Finding>* out) {
  if (!InLibrary(path) || StartsWith(path, "src/net/")) return;
  // (?:^|[^\w:]) keeps qualified lookalikes like std::bind from matching:
  // only a global-scope :: call counts.
  static const std::regex kSyscall(
      R"((?:^|[^\w:])::(socket|accept|bind|listen|connect|send|sendto|recv|recvfrom|setsockopt|getsockname|getpeername)\s*\()");
  static const std::regex kHeader(
      R"(#include\s*[<"](?:sys/socket|sys/epoll|poll|netinet/in|netinet/tcp|arpa/inet|netdb)\.h[>"])");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lexed.code[i], m, kSyscall)) {
      Add(out, "raw-socket-io", Severity::kError, path,
          static_cast<int>(i + 1),
          "raw socket call '::" + m[1].str() +
              "' outside src/net/; go through net::NetServer/"
              "net::NetClient so framing and error discipline apply");
    }
    if (std::regex_search(lexed.code_with_strings[i], kHeader)) {
      Add(out, "raw-socket-io", Severity::kError, path,
          static_cast<int>(i + 1),
          "socket/poller header included outside src/net/; the network "
          "surface lives in src/net/ only");
    }
  }
}

// ---------------------------------------------------------------------
// Rule: test-include-in-library
//
// src/ must stay layerable: library translation units cannot reach
// into tests/ or tools/, and rooted includes keep the build graph
// acyclic.

void RuleTestIncludeInLibrary(const std::string& path, const LexedFile& lexed,
                              std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  static const std::regex kBadInclude(
      R"(#include\s*"(tests/|tools/|\.\./))");
  for (std::size_t i = 0; i < lexed.code_with_strings.size(); ++i) {
    std::smatch m;
    const std::string& line = lexed.code_with_strings[i];
    if (std::regex_search(line, m, kBadInclude)) {
      Add(out, "test-include-in-library", Severity::kError, path,
          static_cast<int>(i + 1),
          "library code must not include '" + m[1].str() +
              "' headers; dependencies flow src -> tools/tests only");
    }
  }
}

// ---------------------------------------------------------------------
// Concurrency-discipline rules: a per-translation-unit function index.
//
// The four rules below are flow-aware: they parse every function
// *definition* out of the lexed code view (name, parameter list, the
// qualifier/annotation region before '{', and the brace-balanced body),
// build a same-file name-based call graph, and track which e2gcl::Mutex
// capabilities are held at each point of a body (MutexLock scopes by
// brace depth, mid-scope .Unlock()/.Lock(), and E2GCL_REQUIRES
// annotations implying the capability for the whole body). Everything
// is per file by design — the same heuristic, suppressible contract as
// every other rule, not a whole-program analysis; clang's
// -Wthread-safety (E2GCL_THREAD_SAFETY=ON) is the semantic checker
// these rules complement.

/// Offset one past the matching '}' for the '{' at `open`, or npos.
std::size_t BalancedBraceEnd(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

bool IsControlKeyword(const std::string& w) {
  static const std::set<std::string> kKeywords = {
      "if",     "else",    "for",     "while",         "switch",
      "catch",  "return",  "sizeof",  "defined",       "alignof",
      "alignas", "decltype", "static_assert", "new",   "delete",
      "throw",  "do",      "case",    "assert"};
  return kKeywords.count(w) != 0;
}

/// True when the text between a parameter list's ')' and the body's '{'
/// contains only qualifiers (const/noexcept/override/final/try),
/// E2GCL_* annotations, or a constructor initializer list — i.e. the
/// paren/brace pair really is a function definition, not `while (...) {`
/// innards or an initialized variable.
bool IsQualifierRegion(std::string region) {
  // Accept everything from the first single ':' — a ctor-init list can
  // contain arbitrary expressions ('::' is not a list start).
  for (std::size_t i = 0; i < region.size(); ++i) {
    if (region[i] != ':') continue;
    const bool doubled = (i + 1 < region.size() && region[i + 1] == ':') ||
                         (i > 0 && region[i - 1] == ':');
    if (doubled) {
      ++i;  // skip the second ':'
      continue;
    }
    region.resize(i);
    break;
  }
  static const std::regex kAnnotation(R"(E2GCL_[A-Z_]+(\s*\([^()]*\))?)");
  region = std::regex_replace(region, kAnnotation, " ");
  static const std::regex kQualifier(
      R"(\b(const|noexcept|override|final|try|mutable)\b)");
  region = std::regex_replace(region, kQualifier, " ");
  return region.find_first_not_of(" \t\n") == std::string::npos;
}

struct FunctionDef {
  std::string name;    // last name component (method name for X::Y)
  std::string header;  // name through the char before '{' (quals incl.)
  std::string body;    // brace-balanced body, code view
  std::size_t body_begin = 0;  // offset of '{' in FunctionIndex::joined
  int line = 0;                // 1-based line of the name
};

struct FunctionIndex {
  std::string joined;                // Join(lexed.code)
  std::vector<std::size_t> starts;   // LineStarts(joined)
  std::vector<FunctionDef> defs;     // in file order
};

FunctionIndex BuildFunctionIndex(const LexedFile& lexed) {
  FunctionIndex idx;
  idx.joined = Join(lexed.code);
  idx.starts = LineStarts(idx.joined);
  const std::string& t = idx.joined;
  static const std::regex kName(R"(([A-Za-z_]\w*)\s*\()");
  for (std::sregex_iterator it(t.begin(), t.end(), kName), end; it != end;
       ++it) {
    const std::string name = (*it)[1].str();
    if (IsControlKeyword(name)) continue;
    // Annotation macros trailing a signature (E2GCL_REQUIRES(mu_) {...})
    // would otherwise index as a second definition of the same body.
    if (StartsWith(name, "E2GCL_")) continue;
    const std::size_t name_pos = static_cast<std::size_t>(it->position());
    // Never treat a preprocessor line (#if defined(...) etc.) as code.
    std::size_t line_start = t.rfind('\n', name_pos);
    line_start = line_start == std::string::npos ? 0 : line_start + 1;
    const std::size_t first = t.find_first_not_of(" \t", line_start);
    if (first != std::string::npos && t[first] == '#') continue;
    const std::size_t open = name_pos + static_cast<std::size_t>(it->length()) - 1;
    const std::size_t close = BalancedParenEnd(t, open);
    if (close == std::string::npos) continue;
    // The body '{' must come before any ';' (a ';' means declaration,
    // statement, or expression — not a definition).
    std::size_t brace = std::string::npos;
    for (std::size_t j = close; j < t.size(); ++j) {
      if (t[j] == ';') break;
      if (t[j] == '{') {
        brace = j;
        break;
      }
    }
    if (brace == std::string::npos) continue;
    if (!IsQualifierRegion(t.substr(close, brace - close))) continue;
    const std::size_t body_end = BalancedBraceEnd(t, brace);
    if (body_end == std::string::npos) continue;
    FunctionDef def;
    def.name = name;
    def.header = t.substr(name_pos, brace - name_pos);
    def.body = t.substr(brace, body_end - brace);
    def.body_begin = brace;
    def.line = LineOf(idx.starts, name_pos);
    idx.defs.push_back(std::move(def));
  }
  return idx;
}

/// Splits an annotation argument list ("mu_", "a, b") into trimmed
/// member tokens.
std::vector<std::string> SplitAnnotationArgs(const std::string& args) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= args.size()) {
    std::size_t comma = args.find(',', pos);
    if (comma == std::string::npos) comma = args.size();
    std::string tok = args.substr(pos, comma - pos);
    const std::size_t b = tok.find_first_not_of(" \t&!*");
    const std::size_t e = tok.find_last_not_of(" \t");
    if (b != std::string::npos) out.push_back(tok.substr(b, e - b + 1));
    pos = comma + 1;
  }
  return out;
}

// --- guard tracking ----------------------------------------------------

struct HeldLock {
  std::string var;  // lock variable name; "" for REQUIRES-implied
  std::string cap;  // capability text, e.g. "mu_" or "shard.mu"
  int depth = 0;    // brace depth at acquisition (0 = whole body)
  bool active = true;
};

enum class EvKind { kOpenBrace, kCloseBrace, kAcquire, kUnlock, kRelock, kCall };

struct GuardEvent {
  std::size_t pos = 0;
  EvKind kind = EvKind::kOpenBrace;
  std::string a;      // acquire: lock var; unlock/relock: lock var; call: name
  std::string b;      // acquire: capability; call: "*" for (*name)(...)
};

std::vector<GuardEvent> CollectGuardEvents(const std::string& body) {
  std::vector<GuardEvent> events;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '{') events.push_back({i, EvKind::kOpenBrace, "", ""});
    if (body[i] == '}') events.push_back({i, EvKind::kCloseBrace, "", ""});
  }
  static const std::regex kAcquire(R"(MutexLock\s+(\w+)\s*\(([^)]*)\))");
  for (std::sregex_iterator it(body.begin(), body.end(), kAcquire), end;
       it != end; ++it) {
    std::string cap = (*it)[2].str();
    const std::size_t b = cap.find_first_not_of(" \t");
    const std::size_t e = cap.find_last_not_of(" \t");
    cap = b == std::string::npos ? "" : cap.substr(b, e - b + 1);
    events.push_back({static_cast<std::size_t>(it->position()),
                      EvKind::kAcquire, (*it)[1].str(), cap});
  }
  static const std::regex kUnlock(R"((\w+)\.Unlock\s*\(\s*\))");
  for (std::sregex_iterator it(body.begin(), body.end(), kUnlock), end;
       it != end; ++it) {
    events.push_back({static_cast<std::size_t>(it->position()),
                      EvKind::kUnlock, (*it)[1].str(), ""});
  }
  static const std::regex kRelock(R"((\w+)\.Lock\s*\(\s*\))");
  for (std::sregex_iterator it(body.begin(), body.end(), kRelock), end;
       it != end; ++it) {
    events.push_back({static_cast<std::size_t>(it->position()),
                      EvKind::kRelock, (*it)[1].str(), ""});
  }
  static const std::regex kCall(
      R"((?:\(\s*\*\s*([A-Za-z_]\w*)\s*\)|([A-Za-z_]\w*))\s*\()");
  for (std::sregex_iterator it(body.begin(), body.end(), kCall), end;
       it != end; ++it) {
    if ((*it)[1].matched) {
      events.push_back({static_cast<std::size_t>(it->position()),
                        EvKind::kCall, (*it)[1].str(), "*"});
    } else {
      const std::string name = (*it)[2].str();
      if (IsControlKeyword(name)) continue;
      events.push_back({static_cast<std::size_t>(it->position()),
                        EvKind::kCall, name, ""});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const GuardEvent& x, const GuardEvent& y) {
                     return x.pos < y.pos;
                   });
  return events;
}

/// Capabilities a definition's E2GCL_REQUIRES annotation implies are
/// held for the whole body.
std::vector<std::string> RequiredCaps(const FunctionDef& def) {
  std::vector<std::string> caps;
  static const std::regex kRequires(R"(E2GCL_REQUIRES\s*\(([^)]*)\))");
  for (std::sregex_iterator it(def.header.begin(), def.header.end(),
                               kRequires),
       end;
       it != end; ++it) {
    for (const std::string& c : SplitAnnotationArgs((*it)[1].str())) {
      caps.push_back(c);
    }
  }
  return caps;
}

/// Walks `def`'s body in source order, maintaining the held-capability
/// stack, and invokes `visit(event, held)` for every kAcquire and kCall
/// event (with `held` NOT yet including the lock a kAcquire is taking).
template <typename Visit>
void WalkGuards(const FunctionDef& def, Visit visit) {
  std::vector<HeldLock> held;
  for (const std::string& cap : RequiredCaps(def)) {
    held.push_back({"", cap, 0, true});
  }
  int depth = 0;
  for (const GuardEvent& ev : CollectGuardEvents(def.body)) {
    switch (ev.kind) {
      case EvKind::kOpenBrace:
        ++depth;
        break;
      case EvKind::kCloseBrace:
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        break;
      case EvKind::kAcquire:
        visit(ev, held);
        held.push_back({ev.a, ev.b, depth, true});
        break;
      case EvKind::kUnlock:
        for (HeldLock& h : held) {
          if (h.var == ev.a) h.active = false;
        }
        break;
      case EvKind::kRelock:
        for (HeldLock& h : held) {
          if (h.var == ev.a) h.active = true;
        }
        break;
      case EvKind::kCall:
        visit(ev, held);
        break;
    }
  }
}

bool AnyActive(const std::vector<HeldLock>& held) {
  for (const HeldLock& h : held) {
    if (h.active) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Rule: blocking-in-event-loop
//
// Functions marked E2GCL_LOOP_BODY (the net event loop) and everything
// reachable from them through the same-file call graph must never
// block: a blocking syscall, condition wait, sleep, or join inside the
// loop stalls every connection at once. The poller's bounded wait is
// the loop's single sanctioned block and carries a justified
// suppression at its call site; nonblocking-fd syscalls (EAGAIN-bounded
// recv/send/accept/read) are likewise suppressed where the fd mode is
// established. ::poll/::epoll_wait are deliberately NOT in the pattern
// set — the poller primitive itself is the sanctioned place to block.

const std::vector<std::string>& BlockingPatterns() {
  static const std::vector<std::string> kPatterns = {
      ".wait(",      "->wait(",     ".wait_for(",   ".wait_until(",
      ".Wait(",      "->Wait(",     ".WaitUntil(",  "->WaitUntil(",
      "sleep_for(",  "sleep_until(", "usleep(",     "nanosleep(",
      "::sleep(",    "::recv(",     "::recvfrom(",  "::read(",
      "::accept(",   "::connect(",  "::send(",      "::sendto(",
      "::write(",    ".join(",      "->join("};
  return kPatterns;
}

void RuleBlockingInEventLoop(const std::string& path, const LexedFile& lexed,
                             std::vector<Finding>* out) {
  // Cheap early-out: no marker, no roots, no work.
  bool has_marker = false;
  for (const std::string& line : lexed.code) {
    if (line.find("E2GCL_LOOP_BODY") != std::string::npos) {
      has_marker = true;
      break;
    }
  }
  if (!has_marker) return;
  const FunctionIndex idx = BuildFunctionIndex(lexed);
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < idx.defs.size(); ++i) {
    by_name[idx.defs[i].name].push_back(i);
  }
  // BFS from every E2GCL_LOOP_BODY-marked definition; reachability is
  // independent of suppressions (a suppressed call site still pulls its
  // callee into the analyzed set).
  std::map<std::size_t, std::string> reached_via;  // def -> root name
  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < idx.defs.size(); ++i) {
    if (idx.defs[i].header.find("E2GCL_LOOP_BODY") != std::string::npos) {
      reached_via.emplace(i, idx.defs[i].name);
      queue.push_back(i);
    }
  }
  if (queue.empty()) return;
  static const std::regex kCallName(R"(([A-Za-z_]\w*)\s*\()");
  while (!queue.empty()) {
    const std::size_t cur = queue.back();
    queue.pop_back();
    const std::string& body = idx.defs[cur].body;
    const std::string root = reached_via[cur];
    for (std::sregex_iterator it(body.begin(), body.end(), kCallName), end;
         it != end; ++it) {
      const auto callee = by_name.find((*it)[1].str());
      if (callee == by_name.end()) continue;
      for (std::size_t j : callee->second) {
        if (j == cur || reached_via.count(j) != 0) continue;
        reached_via.emplace(j, root);
        queue.push_back(j);
      }
    }
  }
  for (const auto& [def_idx, root] : reached_via) {
    const FunctionDef& def = idx.defs[def_idx];
    for (const std::string& pattern : BlockingPatterns()) {
      std::size_t pos = def.body.find(pattern);
      while (pos != std::string::npos) {
        Add(out, "blocking-in-event-loop", Severity::kError, path,
            LineOf(idx.starts, def.body_begin + pos),
            "blocking call '" + pattern.substr(0, pattern.size() - 1) +
                "' in '" + def.name + "', reachable from event-loop body '" +
                root + "'; the loop may only block in the poller's bounded "
                "wait");
        pos = def.body.find(pattern, pos + 1);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Rule: unannotated-mutex
//
// Every mutex/condition-variable member in src/ must participate in the
// thread-safety story: a Mutex (or std::mutex) either guards something
// — its name appears as an E2GCL_* annotation argument somewhere in the
// file — or its own declaration carries an ordering annotation; a
// CondVar (or std::condition_variable) declaration must itself say
// which mutex guards it (E2GCL_GUARDED_BY on the declaration). An
// unannotated primitive is invisible to -Wthread-safety, which is
// exactly how unguarded state slips in.

void RuleUnannotatedMutex(const std::string& path, const LexedFile& lexed,
                          std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  static const std::regex kDecl(
      R"(^\s*(?:mutable\s+)?(?:static\s+)?(?:e2gcl::)?(Mutex|CondVar|std::mutex|std::recursive_mutex|std::shared_mutex|std::timed_mutex|std::condition_variable_any|std::condition_variable)\s+(\w+))");
  static const std::regex kAnnotationArgs(
      R"(E2GCL_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|EXCLUDES|ACQUIRED_BEFORE|ACQUIRED_AFTER)\s*\(([^)]*)\))");
  std::set<std::string> referenced;
  for (const std::string& line : lexed.code) {
    for (std::sregex_iterator it(line.begin(), line.end(), kAnnotationArgs),
         end;
         it != end; ++it) {
      for (const std::string& tok : SplitAnnotationArgs((*it)[1].str())) {
        referenced.insert(tok);
      }
    }
  }
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lexed.code[i], m, kDecl)) continue;
    const std::string type = m[1].str();
    const std::string name = m[2].str();
    // The whole declaration statement (annotations may wrap lines).
    std::string stmt = lexed.code[i];
    for (std::size_t j = i + 1;
         j < lexed.code.size() && stmt.find(';') == std::string::npos; ++j) {
      stmt += ' ';
      stmt += lexed.code[j];
    }
    const bool is_condvar =
        type == "CondVar" || type.find("condition_variable") != std::string::npos;
    if (is_condvar) {
      if (stmt.find("E2GCL_GUARDED_BY(") == std::string::npos) {
        Add(out, "unannotated-mutex", Severity::kError, path,
            static_cast<int>(i + 1),
            "condition variable '" + name +
                "' must declare its guarding mutex (E2GCL_GUARDED_BY on "
                "the declaration) so waits and notifies stay paired with "
                "the guarded predicate");
      }
    } else {
      const bool decl_annotated = stmt.find("E2GCL_") != std::string::npos;
      if (!decl_annotated && referenced.count(name) == 0) {
        Add(out, "unannotated-mutex", Severity::kError, path,
            static_cast<int>(i + 1),
            "mutex '" + name +
                "' guards nothing: no E2GCL_GUARDED_BY/REQUIRES/... in "
                "this file names it, and its declaration carries no "
                "annotation (see core/thread_annotations.h)");
      }
    }
  }
}

// ---------------------------------------------------------------------
// Rule: lock-order
//
// The acquisition-order graph — E2GCL_ACQUIRED_BEFORE/AFTER edges on
// declarations, `// e2gcl-lock-order: a < b` manifest comments, and
// every nesting actually observed in a body (an inner MutexLock while
// another capability is held) — must be acyclic within the file, and a
// capability must never be re-acquired while already held. A cycle is a
// latent deadlock: two threads taking the edges in opposite order stall
// forever.

void RuleLockOrder(const std::string& path, const LexedFile& lexed,
                   std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  // (before, after) -> line that established the edge (first wins).
  std::map<std::pair<std::string, std::string>, int> edges;
  auto identifier_like = [](const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
          c != '.' && c != '-' && c != '>') {
        return false;
      }
    }
    return std::isalpha(static_cast<unsigned char>(s[0])) != 0 ||
           s[0] == '_';
  };
  auto add_edge = [&](const std::string& before, const std::string& after,
                      int line) {
    if (before == after) return;  // self-edges reported separately
    if (!identifier_like(before) || !identifier_like(after)) return;
    edges.emplace(std::make_pair(before, after), line);
  };
  static const std::regex kBefore(R"((\w+)\s+E2GCL_ACQUIRED_BEFORE\(([^)]*)\))");
  static const std::regex kAfter(R"((\w+)\s+E2GCL_ACQUIRED_AFTER\(([^)]*)\))");
  for (std::size_t i = 0; i < lexed.code.size(); ++i) {
    const std::string& line = lexed.code[i];
    // Never read annotation *macro definitions* as declared edges.
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;
    for (std::sregex_iterator it(line.begin(), line.end(), kBefore), end;
         it != end; ++it) {
      for (const std::string& arg : SplitAnnotationArgs((*it)[2].str())) {
        add_edge((*it)[1].str(), arg, static_cast<int>(i + 1));
      }
    }
    for (std::sregex_iterator it(line.begin(), line.end(), kAfter), end;
         it != end; ++it) {
      for (const std::string& arg : SplitAnnotationArgs((*it)[2].str())) {
        add_edge(arg, (*it)[1].str(), static_cast<int>(i + 1));
      }
    }
  }
  // Declared-order manifests live in comments: `e2gcl-lock-order: a < b`.
  static const std::regex kManifest(
      R"(e2gcl-lock-order:\s*(\w+(?:\s*<\s*\w+)+))");
  for (const auto& [line, text] : lexed.comments) {
    std::smatch m;
    std::string rest = text;
    while (std::regex_search(rest, m, kManifest)) {
      const std::string chain = m[1].str();
      static const std::regex kTok(R"(\w+)");
      std::string prev;
      for (std::sregex_iterator it(chain.begin(), chain.end(), kTok), end;
           it != end; ++it) {
        const std::string tok = it->str();
        if (!prev.empty()) add_edge(prev, tok, line);
        prev = tok;
      }
      rest = m.suffix().str();
    }
  }
  // Observed nestings (and self-nesting errors) from every body.
  const FunctionIndex idx = BuildFunctionIndex(lexed);
  for (const FunctionDef& def : idx.defs) {
    WalkGuards(def, [&](const GuardEvent& ev,
                        const std::vector<HeldLock>& held) {
      if (ev.kind != EvKind::kAcquire) return;
      const int line = LineOf(idx.starts, def.body_begin + ev.pos);
      for (const HeldLock& h : held) {
        if (!h.active) continue;
        if (h.cap == ev.b) {
          Add(out, "lock-order", Severity::kError, path, line,
              "'" + ev.b + "' acquired in '" + def.name +
                  "' while already held (self-deadlock on a "
                  "non-recursive mutex)");
        } else {
          add_edge(h.cap, ev.b, line);
        }
      }
    });
  }
  // Cycle check: DFS over the merged graph. Any cycle means the
  // declared and observed orders cannot all be followed at once.
  std::map<std::string, std::vector<std::string>> graph;
  for (const auto& [edge, line] : edges) {
    graph[edge.first].push_back(edge.second);
  }
  std::set<std::string> done;
  for (const auto& [start, ignored] : graph) {
    if (done.count(start) != 0) continue;
    // Iterative DFS with an explicit path for the error message.
    std::vector<std::pair<std::string, std::size_t>> stack{{start, 0}};
    std::set<std::string> on_path{start};
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto it = graph.find(node);
      if (it == graph.end() || next >= it->second.size()) {
        done.insert(node);
        on_path.erase(node);
        stack.pop_back();
        continue;
      }
      const std::string child = it->second[next++];
      if (on_path.count(child) != 0) {
        std::string cycle = child;
        for (std::size_t k = 0; k < stack.size(); ++k) {
          if (on_path.count(stack[k].first) != 0) {
            cycle += " -> " + stack[k].first;
          }
        }
        cycle += " -> " + child;
        Add(out, "lock-order", Severity::kError, path,
            edges[std::make_pair(node, child)],
            "lock acquisition order cycle (" + cycle +
                "): declared and observed orders must be acyclic — fix "
                "the nesting or the e2gcl-lock-order manifest");
        done.insert(node);
        on_path.erase(node);
        stack.pop_back();
        continue;
      }
      if (done.count(child) == 0) {
        on_path.insert(child);
        stack.push_back({child, 0});
      }
    }
  }
}

// ---------------------------------------------------------------------
// Rule: hold-lock-across-callback
//
// User-supplied code must never run under an e2gcl::Mutex: a callback
// that blocks stalls every waiter, and one that re-enters the
// subsystem deadlocks on the non-recursive lock. The rule flags, while
// any capability is held, calls through (*ptr)(...), calls to names
// declared std::function in the same file, and calls to names with
// callback-convention suffixes (fn/cb/callback/handler/hook). Virtual
// dispatch cannot be resolved per-TU and is approximated by the same
// naming convention. The fix is the FlusherLoop shape: Unlock, call,
// Lock.

bool HasCallbackSuffix(std::string name) {
  while (!name.empty() && name.back() == '_') name.pop_back();
  static const std::vector<std::string> kSuffixes = {"fn", "cb", "callback",
                                                     "handler", "hook"};
  for (const std::string& s : kSuffixes) {
    if (EndsWith(name, s)) return true;
  }
  return false;
}

void RuleHoldLockAcrossCallback(const std::string& path,
                                const LexedFile& lexed,
                                std::vector<Finding>* out) {
  if (!InLibrary(path)) return;
  const std::string joined = Join(lexed.code);
  // Names declared with std::function type anywhere in this file
  // (members, locals, parameters).
  std::set<std::string> fn_typed;
  std::size_t pos = joined.find("std::function<");
  while (pos != std::string::npos) {
    std::size_t i = pos + 13;  // at '<'
    int depth = 0;
    while (i < joined.size()) {
      if (joined[i] == '<') ++depth;
      if (joined[i] == '>' && --depth == 0) break;
      ++i;
    }
    if (i < joined.size()) {
      static const std::regex kVar(R"(^[\s&*]*([A-Za-z_]\w*))");
      const std::string after = joined.substr(i + 1, 160);
      std::smatch m;
      if (std::regex_search(after, m, kVar)) fn_typed.insert(m[1].str());
    }
    pos = joined.find("std::function<", pos + 1);
  }
  const FunctionIndex idx = BuildFunctionIndex(lexed);
  for (const FunctionDef& def : idx.defs) {
    WalkGuards(def, [&](const GuardEvent& ev,
                        const std::vector<HeldLock>& held) {
      if (ev.kind != EvKind::kCall || !AnyActive(held)) return;
      const bool deref = ev.b == "*";
      if (!deref && fn_typed.count(ev.a) == 0 && !HasCallbackSuffix(ev.a)) {
        return;
      }
      std::string cap;
      for (const HeldLock& h : held) {
        if (h.active) cap = h.cap;
      }
      Add(out, "hold-lock-across-callback", Severity::kError, path,
          LineOf(idx.starts, def.body_begin + ev.pos),
          "callback '" + ev.a + "' invoked in '" + def.name + "' while '" +
              cap + "' is held; drop the lock around user code "
              "(Unlock/call/Lock) so it cannot block or re-enter");
    });
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"unordered-iteration", Severity::kError,
       "no hash-order-dependent iteration over std::unordered_{map,set} "
       "in library code"},
      {"banned-random", Severity::kError,
       "rand/srand/time()/random_device banned outside src/tensor/rng"},
      {"atomic-float", Severity::kError,
       "no std::atomic<float|double>; reductions use chunk-ordered "
       "partials"},
      {"raw-file-write", Severity::kError,
       "library file writes go through WriteFileAtomic"},
      {"naked-new-delete", Severity::kError,
       "no naked new/delete in library code"},
      {"stdout-in-library", Severity::kError,
       "no printf/std::cout in library code"},
      {"parallel-reduction", Severity::kWarning,
       "ParallelFor bodies must not compound-assign captured scalars"},
      {"include-guard", Severity::kError,
       "headers carry a matched include guard or #pragma once"},
      {"float-index-cast", Severity::kWarning,
       "float->index casts make rounding explicit"},
      {"raw-simd-intrinsic", Severity::kError,
       "vector intrinsics and <immintrin.h> only under src/tensor/simd/"},
      {"raw-socket-io", Severity::kError,
       "socket syscalls and socket headers only under src/net/"},
      {"test-include-in-library", Severity::kError,
       "src/ headers never include tests/ or tools/"},
      {"blocking-in-event-loop", Severity::kError,
       "no blocking call reachable from an E2GCL_LOOP_BODY event loop"},
      {"unannotated-mutex", Severity::kError,
       "every mutex guards something; every condvar declares its mutex"},
      {"lock-order", Severity::kError,
       "declared + observed lock acquisition order is acyclic, no "
       "re-acquisition while held"},
      {"hold-lock-across-callback", Severity::kError,
       "no user callback invoked while a mutex capability is held"},
      {"suppression-justification", Severity::kError,
       "every suppression names a known rule and carries a "
       "justification"},
  };
  return kRules;
}

const std::vector<RuleEntry>& RuleTable() {
  static const std::vector<RuleEntry> kTable = {
      {"unordered-iteration", &RuleUnorderedIteration},
      {"banned-random", &RuleBannedRandom},
      {"atomic-float", &RuleAtomicFloat},
      {"raw-file-write", &RuleRawFileWrite},
      {"naked-new-delete", &RuleNakedNewDelete},
      {"stdout-in-library", &RuleStdoutInLibrary},
      {"parallel-reduction", &RuleParallelReduction},
      {"include-guard", &RuleIncludeGuard},
      {"float-index-cast", &RuleFloatIndexCast},
      {"raw-simd-intrinsic", &RuleRawSimdIntrinsic},
      {"raw-socket-io", &RuleRawSocketIo},
      {"test-include-in-library", &RuleTestIncludeInLibrary},
      {"blocking-in-event-loop", &RuleBlockingInEventLoop},
      {"unannotated-mutex", &RuleUnannotatedMutex},
      {"lock-order", &RuleLockOrder},
      {"hold-lock-across-callback", &RuleHoldLockAcrossCallback},
  };
  return kTable;
}

namespace {
// Linting is single-threaded (LintTree walks files sequentially), so
// the stats accumulator is a plain file-local.
bool g_stats_enabled = false;
std::vector<RuleStat> g_stats;
}  // namespace

void SetRuleStatsEnabled(bool enabled) { g_stats_enabled = enabled; }

std::vector<RuleStat> RuleStats() { return g_stats; }

void ResetRuleStats() { g_stats.clear(); }

void RunAllRules(const std::string& path, const LexedFile& lexed,
                 std::vector<Finding>* out) {
  const std::vector<RuleEntry>& table = RuleTable();
  if (!g_stats_enabled) {
    for (const RuleEntry& entry : table) entry.fn(path, lexed, out);
    return;
  }
  if (g_stats.size() != table.size()) {
    g_stats.assign(table.size(), RuleStat{});
    for (std::size_t i = 0; i < table.size(); ++i) {
      g_stats[i].name = table[i].name;
    }
  }
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::size_t before = out->size();
    const auto t0 = std::chrono::steady_clock::now();
    table[i].fn(path, lexed, out);
    const auto t1 = std::chrono::steady_clock::now();
    g_stats[i].nanos +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    g_stats[i].findings += static_cast<std::int64_t>(out->size() - before);
  }
}

}  // namespace lint
}  // namespace e2gcl
