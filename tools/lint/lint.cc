#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "tools/lint/rules.h"

namespace e2gcl {
namespace lint {

const char* SeverityName(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

bool IsKnownRule(const std::string& name) {
  for (const RuleInfo& r : Rules()) {
    if (r.name == name) return true;
  }
  // The meta-rule is a valid allow() target too (a file may need to
  // exempt a fixture that deliberately embeds a bad suppression).
  return name == "suppression-justification";
}

// ---------------------------------------------------------------------
// Lexer: one pass over the file tracking comment/string state, emitting
// two parallel code views plus the comment texts, with every
// `e2gcl-lint:` suppression marker parsed as the comment is flushed —
// rule passes and the matcher consume the pre-parsed list instead of
// re-scanning comment text.

namespace {

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Parses every allow-marker (the e2gcl-lint tag, an allow() clause
/// naming a rule, a colon, a justification) out of one comment's text.
/// Syntax only — validation (unknown rule, empty justification) is
/// LintContent's job, so the lexer stays engine-agnostic.
void ParseSuppressionMarkers(const std::string& text, int line,
                             std::vector<RawSuppression>* out) {
  static const std::string kTag = "e2gcl-lint:";
  std::size_t pos = text.find(kTag);
  while (pos != std::string::npos) {
    const std::size_t cursor = pos + kTag.size();
    const std::size_t allow = text.find("allow(", cursor);
    if (allow == std::string::npos) break;
    const std::size_t close = text.find(')', allow);
    RawSuppression raw;
    raw.comment_line = line;
    if (close == std::string::npos) {
      raw.malformed = true;
      out->push_back(std::move(raw));
      break;
    }
    raw.rule = Trim(text.substr(allow + 6, close - allow - 6));
    const std::size_t colon = text.find(':', close);
    if (colon != std::string::npos) {
      raw.justification = Trim(text.substr(colon + 1));
    }
    out->push_back(std::move(raw));
    pos = text.find(kTag, close);
  }
}

}  // namespace

LexedFile Lex(const std::string& content) {
  LexedFile out;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string code_line, strings_line, comment_text;
  int line = 1;
  int comment_start_line = 0;

  auto flush_line = [&]() {
    out.code.push_back(code_line);
    out.code_with_strings.push_back(strings_line);
    code_line.clear();
    strings_line.clear();
  };
  auto flush_comment = [&]() {
    if (!comment_text.empty() || comment_start_line != 0) {
      ParseSuppressionMarkers(comment_text, comment_start_line,
                              &out.suppressions);
      out.comments.emplace_back(comment_start_line, comment_text);
    }
    comment_text.clear();
    comment_start_line = 0;
  };

  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      }
      flush_line();
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_start_line = line;
          code_line += "  ";
          strings_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_start_line = line;
          code_line += "  ";
          strings_line += "  ";
          ++i;
        } else if (c == '"' && i > 0 && content[i - 1] == 'R' &&
                   (i < 2 || !(std::isalnum(static_cast<unsigned char>(
                                   content[i - 2])) != 0 ||
                               content[i - 2] == '_'))) {
          // Raw string literal R"delim(...)delim": consume to its
          // terminator so embedded quotes/comments can't derail the
          // lexer (test fixtures embed whole snippets this way).
          std::size_t open = content.find('(', i + 1);
          if (open == std::string::npos) {
            code_line += '"';
            strings_line += '"';
            continue;
          }
          const std::string delim = content.substr(i + 1, open - i - 1);
          const std::string closer = ")" + delim + "\"";
          std::size_t close = content.find(closer, open + 1);
          if (close == std::string::npos) close = n;  // unterminated
          code_line += '"';
          strings_line += '"';
          for (std::size_t j = i + 1;
               j < std::min(n, close + closer.size()); ++j) {
            if (content[j] == '\n') {
              flush_line();
              ++line;
            } else {
              code_line += ' ';
              strings_line += content[j] == '"' ? ' ' : content[j];
            }
          }
          i = std::min(n, close + closer.size()) - 1;
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
          strings_line += '"';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
          strings_line += '\'';
        } else {
          code_line += c;
          strings_line += c;
        }
        break;
      case State::kLineComment:
        if (c == '\\' && next == '\n') {
          // Phase-2 line splicing: a backslash-newline inside a `//`
          // comment continues the comment onto the next physical line
          // (the splice happens before comment recognition, so the
          // "next line" is still comment text, not code).
          comment_text += ' ';
          code_line += ' ';
          strings_line += ' ';
          flush_line();
          ++line;
          ++i;  // consume the newline; state stays kLineComment
        } else {
          comment_text += c;
          code_line += ' ';
          strings_line += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::kCode;
          code_line += "  ";
          strings_line += "  ";
          ++i;
        } else {
          comment_text += c;
          code_line += ' ';
          strings_line += ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next == '\n') {
          // Spliced string literal: consuming the newline silently
          // would shift every later finding's line number, so the line
          // break is flushed here exactly like a literal newline.
          code_line += ' ';
          strings_line += ' ';
          flush_line();
          ++line;
          ++i;  // the literal continues on the next line
        } else if (c == '\\' && next != '\0') {
          code_line += "  ";
          strings_line += "\\";
          strings_line += next;
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
          strings_line += '"';
        } else {
          code_line += ' ';
          strings_line += c;
        }
        break;
      case State::kChar:
        if (c == '\\' && next == '\n') {
          code_line += ' ';
          strings_line += ' ';
          flush_line();
          ++line;
          ++i;  // spliced char literal: same line accounting as kString
        } else if (c == '\\' && next != '\0') {
          code_line += "  ";
          strings_line += "\\";
          strings_line += next;
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
          strings_line += '\'';
        } else {
          code_line += ' ';
          strings_line += c;
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    flush_comment();
  }
  if (!code_line.empty() || !strings_line.empty()) flush_line();
  return out;
}

// ---------------------------------------------------------------------
// Suppressions.

namespace {

struct Suppression {
  std::string rule;
  std::string justification;  // validated non-empty
  int comment_line = 0;       // where the allow() text sits
  int target_line = 0;        // code line it covers
};

bool LineHasCode(const std::string& code_line) {
  return code_line.find_first_not_of(" \t") != std::string::npos;
}

/// Validates the lexer's pre-parsed suppression markers and resolves
/// each valid one to its target code line: the comment's own line when
/// that line has code, otherwise the next line that has code. Malformed
/// markers (missing ')', missing/empty justification, or an unknown
/// rule) are reported via `findings`. The comment text is never
/// re-scanned here — the lexer already did the string work once.
std::vector<Suppression> CollectSuppressions(const LexedFile& lexed,
                                             const std::string& path,
                                             std::vector<Finding>* findings) {
  std::vector<Suppression> sups;
  for (const RawSuppression& raw : lexed.suppressions) {
    auto fail = [&](std::string message) {
      Finding f;
      f.rule = "suppression-justification";
      f.severity = Severity::kError;
      f.file = path;
      f.line = raw.comment_line;
      f.message = std::move(message);
      findings->push_back(std::move(f));
    };
    if (raw.malformed) {
      fail("malformed suppression: missing ')' after allow(");
      continue;
    }
    if (!IsKnownRule(raw.rule)) {
      fail("suppression names unknown rule '" + raw.rule + "'");
      continue;
    }
    if (raw.justification.empty()) {
      fail("suppression for '" + raw.rule +
           "' lacks a justification (use `// e2gcl-lint: allow(" + raw.rule +
           "): <why this is safe>`)");
      continue;
    }
    Suppression s;
    s.rule = raw.rule;
    s.justification = raw.justification;
    s.comment_line = raw.comment_line;
    sups.push_back(std::move(s));
  }
  // Resolve target lines. A comment on a line with code covers that
  // line; a comment-only line covers the next line that has code
  // (skipping further comment-only lines so suppressions can stack).
  const int num_lines = static_cast<int>(lexed.code.size());
  for (Suppression& s : sups) {
    int target = s.comment_line;
    const int idx = s.comment_line - 1;
    if (idx >= 0 && idx < num_lines && !LineHasCode(lexed.code[idx])) {
      target = 0;
      for (int j = s.comment_line; j < num_lines; ++j) {
        if (LineHasCode(lexed.code[j])) {
          target = j + 1;  // 1-based
          break;
        }
      }
      if (target == 0) target = s.comment_line;  // dangling; covers itself
    }
    s.target_line = target;
  }
  return sups;
}

}  // namespace

// ---------------------------------------------------------------------
// Orchestration.

std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content) {
  LexedFile lexed = Lex(content);
  std::vector<Finding> findings;
  RunAllRules(path, lexed, &findings);
  std::vector<Suppression> sups = CollectSuppressions(lexed, path, &findings);
  // Indexed matching: one (rule, target line) lookup per finding rather
  // than a scan over every suppression for every finding.
  std::map<std::pair<std::string, int>, const Suppression*> by_target;
  for (const Suppression& s : sups) {
    by_target.emplace(std::make_pair(s.rule, s.target_line), &s);
  }
  for (Finding& f : findings) {
    if (f.rule == "suppression-justification") continue;  // meta findings
    const auto it = by_target.find(std::make_pair(f.rule, f.line));
    if (it != by_target.end()) {
      f.suppressed = true;
      f.justification = it->second->justification;
    }
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return findings;
}

bool LintFile(const std::string& root, const std::string& rel_path,
              std::vector<Finding>* out, std::string* error) {
  const std::string full = root.empty() ? rel_path : root + "/" + rel_path;
  std::ifstream in(full, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + full;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::vector<Finding> f = LintContent(rel_path, ss.str());
  out->insert(out->end(), f.begin(), f.end());
  return true;
}

namespace {

bool HasLintableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool IsSkippedDir(const std::string& name) {
  return name.rfind("build", 0) == 0 || name == ".git";
}

}  // namespace

bool LintTree(const std::string& root, const std::vector<std::string>& paths,
              std::vector<Finding>* out, std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    if (error != nullptr) *error = "no such directory: " + root;
    return false;
  }
  std::vector<std::string> roots = paths;
  const bool defaulted = roots.empty();
  if (defaulted) roots = {"src", "tools", "tests"};
  std::vector<std::string> files;
  for (const std::string& rel : roots) {
    const fs::path base = fs::path(root) / rel;
    if (fs::is_regular_file(base, ec)) {
      files.push_back(rel);
      continue;
    }
    if (!fs::is_directory(base, ec)) {
      // A tree may legitimately lack one of the default subtrees; an
      // explicitly requested path must exist.
      if (defaulted) continue;
      if (error != nullptr) {
        *error = "no such file or directory: " + base.string();
      }
      return false;
    }
    fs::recursive_directory_iterator it(base, ec), end;
    if (ec) {
      if (error != nullptr) *error = "cannot walk " + base.string();
      return false;
    }
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && IsSkippedDir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && HasLintableExtension(it->path())) {
        files.push_back(
            fs::relative(it->path(), fs::path(root)).generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (const std::string& f : files) {
    if (!LintFile(root, f, out, error)) return false;
  }
  return true;
}

int CountUnsuppressed(const std::vector<Finding>& findings) {
  int n = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++n;
  }
  return n;
}

int ExitCode(const std::vector<Finding>& findings) {
  return CountUnsuppressed(findings) == 0 ? 0 : 1;
}

JsonValue FindingsToJson(const std::vector<Finding>& findings) {
  JsonValue root = JsonValue::Object();
  root.Set("version", JsonValue::Int(1));
  std::int64_t errors = 0, warnings = 0, suppressed = 0;
  JsonValue active = JsonValue::Array();
  JsonValue silenced = JsonValue::Array();
  for (const Finding& f : findings) {
    JsonValue j = JsonValue::Object();
    j.Set("rule", JsonValue::Str(f.rule));
    j.Set("severity", JsonValue::Str(SeverityName(f.severity)));
    j.Set("file", JsonValue::Str(f.file));
    j.Set("line", JsonValue::Int(f.line));
    j.Set("message", JsonValue::Str(f.message));
    if (f.suppressed) {
      ++suppressed;
      j.Set("justification", JsonValue::Str(f.justification));
      silenced.Append(std::move(j));
    } else {
      if (f.severity == Severity::kError) ++errors;
      else ++warnings;
      active.Append(std::move(j));
    }
  }
  JsonValue counts = JsonValue::Object();
  counts.Set("error", JsonValue::Int(errors));
  counts.Set("warning", JsonValue::Int(warnings));
  counts.Set("suppressed", JsonValue::Int(suppressed));
  root.Set("counts", std::move(counts));
  root.Set("findings", std::move(active));
  root.Set("suppressed", std::move(silenced));
  return root;
}

std::string FindingsToText(const std::vector<Finding>& findings) {
  std::ostringstream ss;
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    ss << f.file << ':' << f.line << ": " << SeverityName(f.severity)
       << ": [" << f.rule << "] " << f.message << '\n';
  }
  const int n = CountUnsuppressed(findings);
  const int s = static_cast<int>(findings.size()) - n;
  ss << n << " finding(s), " << s << " suppressed\n";
  return ss.str();
}

}  // namespace lint
}  // namespace e2gcl
