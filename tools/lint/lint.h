#ifndef E2GCL_TOOLS_LINT_LINT_H_
#define E2GCL_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

#include "io/json.h"

namespace e2gcl {
namespace lint {

/// e2gcl_lint — project-invariant static analysis.
///
/// The linter enforces the determinism and safety contracts the library
/// documents in DESIGN.md ("Threading model", "Static analysis &
/// invariants") as named, per-line rules over `src/`, `tools/` and
/// `tests/`. It is heuristic and line-oriented by design: rules match a
/// lexed "code view" of each file (comments and, for most rules, string
/// literals blanked out), so it cannot be fooled by commented-out code,
/// and genuine false positives are silenced in place with a justified
/// suppression comment — the `e2gcl-lint:` tag followed by an
/// `allow(rule-name)` clause, a colon, and a non-empty justification,
/// for example:
///
///   // e2gcl-lint: allow(unordered-iteration): drained then sorted
///
/// A suppression-only line applies to the next code line; a trailing
/// comment applies to its own line. Suppressions are rule-scoped — they
/// never silence any other rule on the same line — and a suppression
/// whose justification is empty (or that names an unknown rule) is
/// itself a finding, so the suppression ledger stays auditable.

enum class Severity { kWarning, kError };

const char* SeverityName(Severity s);

struct Finding {
  std::string rule;      // stable kebab-case rule name
  Severity severity = Severity::kError;
  std::string file;      // repo-relative path as passed to the linter
  int line = 0;          // 1-based
  std::string message;
  bool suppressed = false;        // matched by a justified allow()
  std::string justification;      // non-empty iff suppressed
};

/// One rule's identity, as reported by --list-rules and used to
/// validate allow() targets.
struct RuleInfo {
  std::string name;
  Severity severity;
  std::string summary;
};

/// All rules the engine knows about, in reporting order.
const std::vector<RuleInfo>& Rules();

/// True when `name` names a known rule (suppression targets must).
bool IsKnownRule(const std::string& name);

/// Lints one file's contents. `path` is the repo-relative path
/// ("src/graph/ppr.cc"); rules use it to decide applicability (library
/// rules fire only under src/, the rng exemption keys on
/// src/tensor/rng, ...). Returns every finding, suppressed ones
/// included (marked).
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content);

/// Reads and lints one file from disk. Returns false (and fills
/// `error`) when the file cannot be read.
bool LintFile(const std::string& root, const std::string& rel_path,
              std::vector<Finding>* out, std::string* error);

/// Walks `root`/{src,tools,tests} (or the given relative paths; a path
/// may also name a single file) and lints every .h/.cc file found,
/// skipping build*/ directories. Paths in findings are repo-relative
/// with forward slashes, sorted for stable output. Returns false (and
/// fills `error`) on an unreadable root or path.
bool LintTree(const std::string& root, const std::vector<std::string>& paths,
              std::vector<Finding>* out, std::string* error);

/// Number of findings that are not suppressed.
int CountUnsuppressed(const std::vector<Finding>& findings);

/// JSON report: {"version":1, "counts":{...}, "findings":[...],
/// "suppressed":[...]}. Reuses the strict io/json layer so reports are
/// stable and diffable.
JsonValue FindingsToJson(const std::vector<Finding>& findings);

/// Human-readable "file:line: severity: [rule] message" lines.
std::string FindingsToText(const std::vector<Finding>& findings);

/// 0 = no unsuppressed findings, 1 = at least one (2 is reserved for
/// usage/IO errors, reported by the callers themselves) — the same
/// contract as bench_compare.
int ExitCode(const std::vector<Finding>& findings);

/// --- exposed for tests ---------------------------------------------

/// One allow-marker — the e2gcl-lint tag, an allow() clause naming a
/// rule, a colon, a justification — as parsed by the lexer. The lexer
/// records syntax only — rule-name validation, empty-
/// justification findings, and target-line resolution happen once per
/// file in LintContent, so the per-rule matching loop never re-scans
/// comment text.
struct RawSuppression {
  std::string rule;           // trimmed allow() argument; may be unknown
  std::string justification;  // may be empty (then invalid)
  int comment_line = 0;       // 1-based line the marker starts on
  bool malformed = false;     // allow( was never closed with ')'
};

/// Lexed view of a file: `code` has comments and string/char literals
/// blanked (spaces, newlines kept), `code_with_strings` keeps literal
/// contents (for rules that inspect e.g. fopen modes), `comments`
/// holds each comment's text keyed by its starting line, and
/// `suppressions` holds every `e2gcl-lint:` marker found in them —
/// parsed during the lexer's single pass rather than re-scanned per
/// rule.
struct LexedFile {
  std::vector<std::string> code;               // per line, literals blanked
  std::vector<std::string> code_with_strings;  // per line, comments blanked
  std::vector<std::pair<int, std::string>> comments;  // (1-based line, text)
  std::vector<RawSuppression> suppressions;    // in file order
};

LexedFile Lex(const std::string& content);

}  // namespace lint
}  // namespace e2gcl

#endif  // E2GCL_TOOLS_LINT_LINT_H_
