#ifndef E2GCL_TOOLS_LINT_RULES_H_
#define E2GCL_TOOLS_LINT_RULES_H_

#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace e2gcl {
namespace lint {

/// Runs every registered rule over one lexed file, appending raw
/// (pre-suppression) findings to `out`. `path` is repo-relative and
/// drives per-rule scoping.
void RunAllRules(const std::string& path, const LexedFile& lexed,
                 std::vector<Finding>* out);

}  // namespace lint
}  // namespace e2gcl

#endif  // E2GCL_TOOLS_LINT_RULES_H_
