#ifndef E2GCL_TOOLS_LINT_RULES_H_
#define E2GCL_TOOLS_LINT_RULES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace e2gcl {
namespace lint {

/// One registered rule implementation: stable name + the pass function.
/// RunAllRules iterates this table, so the `--stats` timing and the
/// Rules() reporting list cannot drift from what actually executes.
struct RuleEntry {
  const char* name;
  void (*fn)(const std::string& path, const LexedFile& lexed,
             std::vector<Finding>* out);
};

/// Every rule pass in execution order (the meta rule
/// suppression-justification runs in the engine, not here).
const std::vector<RuleEntry>& RuleTable();

/// Runs every registered rule over one lexed file, appending raw
/// (pre-suppression) findings to `out`. `path` is repo-relative and
/// drives per-rule scoping. When stats collection is enabled, each
/// rule's wall time and finding count are accumulated process-wide.
void RunAllRules(const std::string& path, const LexedFile& lexed,
                 std::vector<Finding>* out);

/// --- per-rule timing (the --stats flag) ------------------------------

/// Accumulated cost of one rule across every file linted so far.
struct RuleStat {
  std::string name;
  std::int64_t nanos = 0;     // summed wall time of the rule pass
  std::int64_t findings = 0;  // raw findings emitted (pre-suppression)
};

/// Turns accumulation on/off (off by default: the common path pays no
/// clock reads). Linting is single-threaded, so the accumulator is a
/// plain file-local — no lock.
void SetRuleStatsEnabled(bool enabled);

/// Snapshot in RuleTable() order. Empty unless enabled before linting.
std::vector<RuleStat> RuleStats();

/// Zeroes the accumulator (tests).
void ResetRuleStats();

}  // namespace lint
}  // namespace e2gcl

#endif  // E2GCL_TOOLS_LINT_RULES_H_
