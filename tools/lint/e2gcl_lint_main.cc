// e2gcl_lint — project-invariant static analysis over src/, tools/ and
// tests/. See tools/lint/lint.h and DESIGN.md "Static analysis &
// invariants" for the rule table and suppression syntax.
//
//   e2gcl_lint [--root DIR] [--json] [--stats] [--list-rules] [paths...]
//
// Paths are repo-relative files or directories (default: src tools
// tests). Exit codes: 0 = no unsuppressed findings, 1 = findings,
// 2 = usage or I/O error — the same contract as bench_compare.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/lint.h"
#include "tools/lint/rules.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json] [--stats] [--list-rules] "
               "[paths...]\n"
               "  --root DIR    repository root to scan (default: .)\n"
               "  --json        emit a machine-readable JSON report\n"
               "  --stats       print per-rule wall time and finding counts\n"
               "  --list-rules  print every rule with its severity\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  bool stats = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--list-rules") {
      for (const e2gcl::lint::RuleInfo& r : e2gcl::lint::Rules()) {
        std::printf("%-26s %-8s %s\n", r.name.c_str(),
                    e2gcl::lint::SeverityName(r.severity), r.summary.c_str());
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<e2gcl::lint::Finding> findings;
  std::string error;
  e2gcl::lint::SetRuleStatsEnabled(stats);
  if (!e2gcl::lint::LintTree(root, paths, &findings, &error)) {
    std::fprintf(stderr, "e2gcl_lint: %s\n", error.c_str());
    return 2;
  }
  if (stats) {
    // Report goes to stderr so stdout stays the findings stream.
    std::fprintf(stderr, "%-28s %10s %9s\n", "rule", "time(ms)", "findings");
    for (const e2gcl::lint::RuleStat& s : e2gcl::lint::RuleStats()) {
      std::fprintf(stderr, "%-28s %10.2f %9lld\n", s.name.c_str(),
                   static_cast<double>(s.nanos) / 1e6,
                   static_cast<long long>(s.findings));
    }
  }
  if (json) {
    std::printf("%s\n",
                e2gcl::DumpJson(e2gcl::lint::FindingsToJson(findings)).c_str());
  } else {
    std::printf("%s", e2gcl::lint::FindingsToText(findings).c_str());
  }
  return e2gcl::lint::ExitCode(findings);
}
