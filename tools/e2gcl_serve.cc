// Embedding-serving driver: load (or freshly pre-train) a checkpoint,
// stand up an EmbeddingServer, and answer ad-hoc queries from the
// command line.
//
// Usage:
//   e2gcl_serve --checkpoint ckpt.e2gcl [--dataset cora] --embed 12
//   e2gcl_serve --train --epochs 20 --topk 12,5 --score 3,77 --stats
//
// The server path is the same one the tests and bench_serve exercise:
// queries flow through the micro-batching queue and (in lazy mode) the
// sharded LRU row cache, and answers are bit-identical to the offline
// Encode() rows.

#include <csignal>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "graph/datasets.h"
#include "io/checkpoint.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/embedding_server.h"

namespace {

void Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "model source (exactly one):\n"
      "  --checkpoint <path>      serve this trainer checkpoint "
      "(validated: magic/version/CRC)\n"
      "  --train                  pre-train a fresh E2GCL encoder first\n"
      "graph:\n"
      "  --dataset <name>         cora|citeseer|photo|computers|cs|arxiv|"
      "products (default cora)\n"
      "  --scale <float>          dataset size multiplier (default 1.0)\n"
      "  --seed <uint64>          RNG seed (default 1)\n"
      "  --epochs <int>           pre-training epochs with --train "
      "(default 20)\n"
      "serving:\n"
      "  --precompute             materialize all embeddings at load time\n"
      "  --cache-capacity <int>   lazy-mode row cache budget (default "
      "4096)\n"
      "  --cache-shards <int>     cache shard count (default 8)\n"
      "  --max-batch <int>        micro-batch size bound (default 32)\n"
      "  --deadline-us <int>      micro-batch flush deadline (default "
      "200)\n"
      "  --batch-gap-us <int>     linger this long for batch-mates; 0 = "
      "greedy flush (default 0)\n"
      "  --quantize-int8          serve TopKSimilar from a 4x-smaller "
      "int8 table\n"
      "  --rescore-factor <int>   exact-rescore pool = k * this "
      "(>= 1; default 4)\n"
      "  --fingerprint <uint64>   refuse checkpoints with a different "
      "config fingerprint\n"
      "robustness:\n"
      "  --max-queue-depth <int>  admission watermark; requests beyond it "
      "fail fast as overloaded (default 4096)\n"
      "  --degrade-watermark <int> answer TopK approximately (flagged "
      "degraded) at this queue depth; 0 = off, needs --quantize-int8\n"
      "  --request-deadline-us <int> per-query deadline; expired queries "
      "fail fast as deadline_exceeded (0 = wait; default 0)\n"
      "  --no-degraded            never accept degraded TopK answers\n"
      "network (see DESIGN.md \"Network protocol\"):\n"
      "  --listen <port>          serve the binary protocol + HTTP "
      "/healthz,/metrics over TCP until SIGINT/SIGTERM (port 0 = "
      "ephemeral; the bound port is printed on stdout). Incompatible "
      "with one-shot query flags\n"
      "  --bind <addr>            listen address (default 127.0.0.1)\n"
      "  --max-conns <int>        simultaneous-connection cap (default "
      "1024; needs --listen)\n"
      "  --rate-limit-qps <float> per-connection sustained request rate; "
      "0 = unlimited (default 0; needs --listen)\n"
      "  --net-workers <int>      network worker threads (default 4; "
      "needs --listen)\n"
      "queries (repeatable, answered in order):\n"
      "  --embed <node>           print the node's embedding row\n"
      "  --score <u,v>            print the dot-product link score\n"
      "  --topk <node,k>          print the k most similar nodes\n"
      "  --reload-checkpoint <path> hot-reload this checkpoint (zero "
      "downtime), then keep answering\n"
      "  --stats                  print serve.* metrics before exit\n",
      prog);
}

/// Strict whole-token integer parse; "", "12x", and out-of-range fail.
bool ParseInt(const char* s, long long lo, long long hi, long long* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  if (v < lo || v > hi) return false;
  *out = v;
  return true;
}

bool ParseU64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0' || *s == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseDouble(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Parses "a,b" into two non-negative integers.
bool ParsePair(const char* s, long long* a, long long* b) {
  if (s == nullptr) return false;
  const char* comma = std::strchr(s, ',');
  if (comma == nullptr) return false;
  const std::string first(s, comma);
  return ParseInt(first.c_str(), 0, (1ll << 62), a) &&
         ParseInt(comma + 1, 0, (1ll << 62), b);
}

struct Query {
  enum class Kind { kEmbed, kScore, kTopK, kReload } kind;
  long long a = 0;
  long long b = 0;
  std::string path;  // kReload only.
};

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using e2gcl::EmbeddingServer;
  std::string checkpoint_path;
  bool train = false;
  std::string dataset = "cora";
  double scale = 1.0;
  std::uint64_t seed = 1;
  long long epochs = 20;
  bool stats = false;
  long long deadline_us = 0;
  bool allow_degraded = true;
  e2gcl::ServeOptions options;
  std::vector<Query> queries;
  long long listen_port = -1;  // -1 = no --listen
  e2gcl::net::NetServerOptions net_options;
  bool net_flags_used = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    long long v = 0, w = 0;
    if (arg == "--checkpoint" && (checkpoint_path = next() ? argv[i] : "",
                                  !checkpoint_path.empty())) {
    } else if (arg == "--train") {
      train = true;
    } else if (arg == "--dataset" &&
               (dataset = next() ? argv[i] : "", !dataset.empty())) {
    } else if (arg == "--scale" && ParseDouble(next(), &scale) &&
               scale > 0) {
    } else if (arg == "--seed" && ParseU64(next(), &seed)) {
    } else if (arg == "--epochs" && ParseInt(next(), 1, 100000, &epochs)) {
    } else if (arg == "--precompute") {
      options.precompute = true;
    } else if (arg == "--cache-capacity" &&
               ParseInt(next(), 1, (1ll << 40), &v)) {
      options.cache_capacity = v;
    } else if (arg == "--cache-shards" && ParseInt(next(), 1, 4096, &v)) {
      options.cache_shards = static_cast<int>(v);
    } else if (arg == "--max-batch" && ParseInt(next(), 1, 100000, &v)) {
      options.max_batch = v;
    } else if (arg == "--deadline-us" &&
               ParseInt(next(), 0, (1ll << 40), &v)) {
      options.batch_deadline_us = v;
    } else if (arg == "--batch-gap-us") {
      if (!ParseInt(next(), -(1ll << 40), (1ll << 40), &v) || v < 0) {
        std::fprintf(stderr,
                     "--batch-gap-us must be a non-negative integer "
                     "(0 = greedy flush)\n");
        Usage(argv[0]);
        return 2;
      }
      options.batch_gap_us = v;
    } else if (arg == "--quantize-int8") {
      options.quantize_int8 = true;
    } else if (arg == "--rescore-factor") {
      if (!ParseInt(next(), -100000, 100000, &v) || v < 1) {
        std::fprintf(stderr, "--rescore-factor must be an integer >= 1\n");
        Usage(argv[0]);
        return 2;
      }
      options.rescore_factor = v;
    } else if (arg == "--max-queue-depth" &&
               ParseInt(next(), 1, (1ll << 40), &v)) {
      options.max_queue_depth = v;
    } else if (arg == "--degrade-watermark" &&
               ParseInt(next(), 0, (1ll << 40), &v)) {
      options.degrade_watermark = v;
    } else if (arg == "--request-deadline-us" &&
               ParseInt(next(), 0, (1ll << 40), &v)) {
      deadline_us = v;
    } else if (arg == "--no-degraded") {
      allow_degraded = false;
    } else if (arg == "--reload-checkpoint") {
      const char* path = next();
      if (path == nullptr || *path == '\0') {
        std::fprintf(stderr, "--reload-checkpoint needs a file path\n");
        Usage(argv[0]);
        return 2;
      }
      queries.push_back({Query::Kind::kReload, 0, 0, path});
    } else if (arg == "--fingerprint" &&
               ParseU64(next(), &options.expected_fingerprint)) {
    } else if (arg == "--embed" && ParseInt(next(), 0, (1ll << 62), &v)) {
      queries.push_back({Query::Kind::kEmbed, v, 0});
    } else if (arg == "--score" && ParsePair(next(), &v, &w)) {
      queries.push_back({Query::Kind::kScore, v, w});
    } else if (arg == "--topk" && ParsePair(next(), &v, &w)) {
      queries.push_back({Query::Kind::kTopK, v, w});
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--listen") {
      if (!ParseInt(next(), 0, 65535, &listen_port)) {
        std::fprintf(stderr, "--listen needs a port in [0, 65535]\n");
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--bind") {
      const char* addr = next();
      if (addr == nullptr || *addr == '\0') {
        std::fprintf(stderr, "--bind needs an IPv4 address\n");
        Usage(argv[0]);
        return 2;
      }
      net_options.bind_address = addr;
      net_flags_used = true;
    } else if (arg == "--max-conns") {
      if (!ParseInt(next(), 1, (1ll << 30), &v)) {
        std::fprintf(stderr, "--max-conns must be an integer >= 1\n");
        Usage(argv[0]);
        return 2;
      }
      net_options.max_conns = v;
      net_flags_used = true;
    } else if (arg == "--rate-limit-qps") {
      double qps = 0.0;
      if (!ParseDouble(next(), &qps) || qps < 0.0) {
        std::fprintf(stderr,
                     "--rate-limit-qps must be a non-negative number "
                     "(0 = unlimited)\n");
        Usage(argv[0]);
        return 2;
      }
      net_options.rate_limit_qps = qps;
      net_flags_used = true;
    } else if (arg == "--net-workers") {
      if (!ParseInt(next(), 1, 1024, &v)) {
        std::fprintf(stderr, "--net-workers must be in [1, 1024]\n");
        Usage(argv[0]);
        return 2;
      }
      net_options.num_workers = static_cast<int>(v);
      net_flags_used = true;
    } else {
      std::fprintf(stderr, "bad or incomplete flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (train == !checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "exactly one of --train / --checkpoint is required\n");
    Usage(argv[0]);
    return 2;
  }
  if (listen_port < 0 && net_flags_used) {
    std::fprintf(stderr,
                 "--bind/--max-conns/--rate-limit-qps/--net-workers "
                 "require --listen\n");
    Usage(argv[0]);
    return 2;
  }
  if (listen_port >= 0 && (!queries.empty() || stats)) {
    std::fprintf(stderr,
                 "--listen runs as a network server; one-shot query flags "
                 "(--embed/--score/--topk/--reload-checkpoint/--stats) "
                 "cannot be combined with it\n");
    Usage(argv[0]);
    return 2;
  }
  if (options.degrade_watermark > 0 && !options.quantize_int8) {
    std::fprintf(stderr,
                 "--degrade-watermark requires --quantize-int8 (degraded "
                 "answers come from the int8 table)\n");
    Usage(argv[0]);
    return 2;
  }

  const e2gcl::Graph graph =
      e2gcl::LoadDatasetScaled(dataset, scale, seed);
  std::fprintf(stderr, "loaded %s: %lld nodes, %lld features\n",
               dataset.c_str(), static_cast<long long>(graph.num_nodes),
               static_cast<long long>(graph.feature_dim()));

  std::string error;
  std::unique_ptr<EmbeddingServer> server;
  if (train) {
    e2gcl::E2gclConfig config;
    config.epochs = static_cast<int>(epochs);
    config.seed = seed;
    e2gcl::E2gclTrainer trainer(graph, config);
    const e2gcl::TrainResult result = trainer.Train();
    if (!result.ok()) {
      std::fprintf(stderr, "pre-training failed: %s\n",
                   result.message.c_str());
      return 1;
    }
    e2gcl::TrainerCheckpoint ckpt;
    ckpt.epoch = config.epochs - 1;
    ckpt.config_fingerprint = trainer.ConfigFingerprint();
    ckpt.encoder_params = trainer.encoder().params().CloneValues();
    server = EmbeddingServer::FromCheckpoint(graph, ckpt, options, &error);
  } else {
    server = EmbeddingServer::Load(graph, checkpoint_path, options, &error);
  }
  if (server == nullptr) {
    std::fprintf(stderr, "failed to start server: %s\n", error.c_str());
    return 1;
  }
  std::printf("serving %lld nodes, embed_dim=%lld, mode=%s\n",
              static_cast<long long>(server->num_nodes()),
              static_cast<long long>(server->embed_dim()),
              options.precompute ? "precompute" : "lazy");

  if (listen_port >= 0) {
    net_options.port = static_cast<int>(listen_port);
    std::unique_ptr<e2gcl::net::NetServer> net =
        e2gcl::net::NetServer::Start(server.get(), net_options, &error);
    if (net == nullptr) {
      std::fprintf(stderr, "failed to listen: %s\n", error.c_str());
      return 1;
    }
    std::signal(SIGINT, HandleStop);
    std::signal(SIGTERM, HandleStop);
    // The port line is the machine-readable startup handshake
    // (check_net.sh and the tests parse it), hence stdout + flush.
    std::printf("listening on port %d\n", net->port());
    std::fflush(stdout);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::fprintf(stderr, "shutting down\n");
    net->BeginShutdown();
    net.reset();           // drains connections, joins net threads
    server->BeginShutdown();
    return 0;
  }

  e2gcl::ServeRequestOptions request;
  request.deadline_us = deadline_us;
  request.allow_degraded = allow_degraded;
  for (const Query& q : queries) {
    if (q.kind != Query::Kind::kReload &&
        (q.a >= server->num_nodes() ||
         (q.kind == Query::Kind::kScore && q.b >= server->num_nodes()))) {
      std::fprintf(stderr, "query node out of range (have %lld nodes)\n",
                   static_cast<long long>(server->num_nodes()));
      return 1;
    }
    switch (q.kind) {
      case Query::Kind::kEmbed: {
        const e2gcl::EmbeddingResponse r = server->GetEmbedding(q.a, request);
        if (!r.served()) {
          std::printf("embed %lld: !%s\n", q.a, ServeStatusName(r.status));
          break;
        }
        std::printf("embed %lld:", q.a);
        for (float x : r.row) std::printf(" %.6g", static_cast<double>(x));
        std::printf("\n");
        break;
      }
      case Query::Kind::kScore: {
        const e2gcl::ScoreResponse r = server->ScoreLink(q.a, q.b, request);
        if (!r.served()) {
          std::printf("score %lld,%lld: !%s\n", q.a, q.b,
                      ServeStatusName(r.status));
          break;
        }
        std::printf("score %lld,%lld: %.6g\n", q.a, q.b,
                    static_cast<double>(r.score));
        break;
      }
      case Query::Kind::kTopK: {
        const e2gcl::TopKResponse r = server->TopKSimilar(q.a, q.b, request);
        if (!r.served()) {
          std::printf("topk %lld (k=%lld): !%s\n", q.a, q.b,
                      ServeStatusName(r.status));
          break;
        }
        std::printf("topk %lld (k=%lld)%s:", q.a, q.b,
                    r.status == e2gcl::ServeStatus::kDegraded ? " [degraded]"
                                                              : "");
        for (std::size_t i = 0; i < r.result.nodes.size(); ++i) {
          std::printf(" %lld=%.6g",
                      static_cast<long long>(r.result.nodes[i]),
                      static_cast<double>(r.result.scores[i]));
        }
        std::printf("\n");
        break;
      }
      case Query::Kind::kReload: {
        const e2gcl::ServeStatus status =
            server->ReloadFromFile(q.path, &error);
        if (status != e2gcl::ServeStatus::kOk) {
          std::fprintf(stderr, "reload %s failed (%s): %s\n", q.path.c_str(),
                       ServeStatusName(status), error.c_str());
          return 1;
        }
        std::printf("reloaded %s: generation=%llu\n", q.path.c_str(),
                    static_cast<unsigned long long>(server->generation()));
        break;
      }
    }
  }

  if (stats) {
    const e2gcl::MetricsSnapshot snap =
        e2gcl::MetricsRegistry::Get().Snapshot();
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind("serve.", 0) == 0) {
        std::printf("%s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
  }
  return 0;
}
