#!/usr/bin/env bash
# Builds the library with ThreadSanitizer (or AddressSanitizer) and runs
# the test binaries that exercise the parallel kernels: parallel, tensor,
# cluster, and core suites plus the autograd losses the contrastive path
# uses. Usage:
#
#   tools/check_tsan.sh            # ThreadSanitizer (default)
#   tools/check_tsan.sh address    # AddressSanitizer
#
# The sanitized tree lives in build-<sanitizer>/ next to the regular
# build/ so the two configurations never share object files.
set -euo pipefail

SANITIZER="${1:-thread}"
case "$SANITIZER" in
  thread|address) ;;
  *) echo "usage: $0 [thread|address]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SANITIZER"

# The race-prone code paths live in these binaries; running the full
# suite under TSAN takes far longer without covering more parallel code.
TARGETS=(
  parallel_test
  tensor_matrix_test
  tensor_csr_test
  kmeans_test
  core_selector_test
  core_trainer_test
  core_view_test
  autograd_ops_test
  autograd_loss_test
)

cmake -B "$BUILD" -S "$ROOT" -DE2GCL_SANITIZE="$SANITIZER" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)" --target "${TARGETS[@]}"

# Exercise a real pool even on small CI machines, and fail on any report.
export E2GCL_NUM_THREADS="${E2GCL_NUM_THREADS:-4}"
if [ "$SANITIZER" = thread ]; then
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
fi

# Run each gtest binary directly (ctest registers per-case names, which
# makes selecting whole binaries awkward); any sanitizer report fails it.
status=0
for t in "${TARGETS[@]}"; do
  echo "=== $t ($SANITIZER) ==="
  if ! "$BUILD/tests/$t"; then
    status=1
  fi
done
exit $status
