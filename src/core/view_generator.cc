#include "core/view_generator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "core/raw_aggregation.h"
#include "nn/gcn.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

// View-generation telemetry. All of these sit on serial, RNG-driven
// paths, so the counts are identical at any thread count.
const Counter& ViewsCounter() {
  static const Counter c = Counter::Get("viewgen.views");
  return c;
}
const Counter& EdgesSampledCounter() {
  static const Counter c = Counter::Get("viewgen.edges_sampled");
  return c;
}
const Counter& CandidatesCounter() {
  static const Counter c = Counter::Get("viewgen.edge_candidates");
  return c;
}
const Counter& FeaturesPerturbedCounter() {
  static const Counter c = Counter::Get("viewgen.features_perturbed");
  return c;
}

}  // namespace

ViewGenerator::ViewGenerator(const Graph& graph, float beta)
    : graph_(&graph), scores_(graph, beta) {}

std::vector<std::int64_t> ViewGenerator::SampleNeighbors(
    std::int64_t u, const ViewConfig& config, Rng& rng) const {
  const Graph& g = *graph_;
  const auto nb = g.Neighbors(u);
  const std::int64_t deg = static_cast<std::int64_t>(nb.size());
  if (deg == 0) return {};

  // Candidate set V_u^N = N_u^1 (always, all of it) plus a subsample of
  // N_u^2 (capped for dense graphs). A shared scratch bitmap (reset via
  // the touched list) keeps the dense-graph 2-hop scan allocation- and
  // hash-free; this loop dominates view-generation cost.
  std::vector<std::int64_t> candidates(nb.begin(), nb.end());
  std::vector<char> is_neighbor(candidates.size(), 1);
  if (config.allow_edge_addition && config.max_two_hop_candidates > 0) {
    if (static_cast<std::int64_t>(seen_scratch_.size()) < g.num_nodes) {
      seen_scratch_.assign(g.num_nodes, 0);
    }
    touched_scratch_.clear();
    auto mark = [&](std::int64_t x) {
      seen_scratch_[x] = 1;
      touched_scratch_.push_back(x);
    };
    mark(u);
    for (std::int32_t w : nb) mark(w);
    // Reservoir-sample 2-hop candidates without materializing the full
    // 2-hop set on dense graphs.
    std::vector<std::int64_t> two_hop;
    std::int64_t count = 0;
    for (std::int32_t w : nb) {
      for (std::int32_t x : g.Neighbors(w)) {
        if (seen_scratch_[x]) continue;
        ++count;
        if (static_cast<std::int64_t>(two_hop.size()) <
            config.max_two_hop_candidates) {
          two_hop.push_back(x);
          mark(x);
        } else {
          const std::int64_t j = rng.UniformInt(count);
          if (j < config.max_two_hop_candidates) {
            // Replacement without unmarking keeps the pass O(1);
            // duplicates are impossible because marks only grow and
            // marked nodes are skipped.
            mark(x);
            two_hop[j] = x;
          }
        }
      }
    }
    for (std::int64_t x : two_hop) {
      candidates.push_back(x);
      is_neighbor.push_back(0);
    }
    for (std::int64_t x : touched_scratch_) seen_scratch_[x] = 0;
  }

  CandidatesCounter().Add(candidates.size());

  // Number of neighbors to draw: round(tau * |N_u|), at least 1 so no
  // node is isolated unless tau == 0, capped by the candidate count.
  std::int64_t want = static_cast<std::int64_t>(
      std::llround(static_cast<double>(config.tau) * deg));
  if (config.tau > 0.0f) want = std::max<std::int64_t>(want, 1);
  want = std::min<std::int64_t>(want,
                                static_cast<std::int64_t>(candidates.size()));
  if (want <= 0) return {};

  if (!config.allow_edge_deletion) {
    // Keep all existing neighbors; only top up with additions.
    std::vector<std::int64_t> result(nb.begin(), nb.end());
    const std::int64_t extra = want > deg ? want - deg : 0;
    if (extra > 0 && candidates.size() > static_cast<std::size_t>(deg)) {
      std::vector<float> w(candidates.size() - deg);
      for (std::size_t i = deg; i < candidates.size(); ++i) {
        w[i - deg] = config.importance_edges
                         ? scores_.EdgeScore(u, candidates[i], false)
                         : 1.0f;
      }
      for (std::int64_t idx : rng.WeightedSampleWithoutReplacement(w, extra)) {
        result.push_back(candidates[deg + idx]);
      }
    }
    EdgesSampledCounter().Add(result.size());
    return result;
  }

  std::vector<float> weights(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    weights[i] = config.importance_edges
                     ? scores_.EdgeScore(u, candidates[i],
                                         is_neighbor[i] != 0)
                     : 1.0f;
  }
  std::vector<std::int64_t> picked_idx =
      rng.WeightedSampleWithoutReplacement(weights, want);
  std::vector<std::int64_t> result;
  result.reserve(picked_idx.size());
  for (std::int64_t idx : picked_idx) result.push_back(candidates[idx]);
  EdgesSampledCounter().Add(result.size());
  return result;
}

void ViewGenerator::PerturbRow(float* row, std::int64_t node,
                               const ViewConfig& config, Rng& rng) const {
  if (!config.allow_feature_perturbation || config.eta <= 0.0f) return;
  const std::int64_t d = graph_->feature_dim();
  std::uint64_t perturbed = 0;
  for (std::int64_t i = 0; i < d; ++i) {
    const float p =
        config.importance_features
            ? scores_.PerturbProbability(node, i, config.eta)
            : std::min(config.eta, ImportanceScores::kProbabilityCap);
    if (rng.Bernoulli(p)) {
      // Eq. (16): x += U(-1, 1) * x.
      row[i] += (2.0f * rng.Uniform() - 1.0f) * row[i];
      ++perturbed;
    }
  }
  if (perturbed > 0) FeaturesPerturbedCounter().Add(perturbed);
}

Graph ViewGenerator::GenerateGlobalView(const ViewConfig& config,
                                        Rng& rng) const {
  TraceSpan view_span("generate_view");
  ViewsCounter().Increment();
  const Graph& g = *graph_;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(g.col.size() / 2 + g.num_nodes);
  for (std::int64_t u = 0; u < g.num_nodes; ++u) {
    for (std::int64_t v : SampleNeighbors(u, config, rng)) {
      edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  Matrix x = g.features;
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    PerturbRow(x.RowPtr(v), v, config, rng);
  }
  return BuildGraph(g.num_nodes, edges, std::move(x), g.labels,
                    g.num_classes);
}

Graph ViewGenerator::GeneratePerNodeView(
    std::int64_t root, int hops, const ViewConfig& config, Rng& rng,
    std::int64_t* root_index,
    std::vector<std::int64_t>* subgraph_nodes) const {
  TraceSpan view_span("generate_view");
  ViewsCounter().Increment();
  const Graph& g = *graph_;
  E2GCL_CHECK(root >= 0 && root < g.num_nodes);
  E2GCL_CHECK(hops >= 1);

  // Alg. 3 lines 3-12: expand frontier by frontier, sampling each
  // frontier node's neighbors once. `in_view`/`expanded` are
  // membership checks only; discovered nodes are collected into
  // `nodes` in insertion order so the (sorted) subgraph never depends
  // on hash iteration order.
  std::unordered_set<std::int64_t> in_view{root};
  std::vector<std::int64_t> nodes{root};
  std::vector<std::int64_t> frontier{root};
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  std::unordered_set<std::int64_t> expanded;
  for (int l = 0; l < hops; ++l) {
    std::vector<std::int64_t> next;
    for (std::int64_t u : frontier) {
      if (!expanded.insert(u).second) continue;
      for (std::int64_t v : SampleNeighbors(u, config, rng)) {
        edges.emplace_back(u, v);
        if (in_view.insert(v).second) {
          nodes.push_back(v);
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }

  // Remap to a compact subgraph.
  std::sort(nodes.begin(), nodes.end());
  std::unordered_map<std::int64_t, std::int64_t> remap;
  for (std::size_t i = 0; i < nodes.size(); ++i) remap[nodes[i]] = i;
  std::vector<std::pair<std::int64_t, std::int64_t>> local_edges;
  local_edges.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    local_edges.emplace_back(remap[a], remap[b]);
  }
  Matrix x = GatherRows(g.features, nodes);
  // Lines 13-16: perturb features of every node in the view.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    PerturbRow(x.RowPtr(i), nodes[i], config, rng);
  }
  std::vector<std::int64_t> labels;
  if (!g.labels.empty()) {
    for (std::int64_t v : nodes) labels.push_back(g.labels[v]);
  }
  if (root_index != nullptr) *root_index = remap[root];
  if (subgraph_nodes != nullptr) *subgraph_nodes = nodes;
  return BuildGraph(static_cast<std::int64_t>(nodes.size()), local_edges,
                    std::move(x), std::move(labels), g.num_classes);
}

ViewQuality EvaluateViewQuality(const GcnEncoder& encoder, const Graph& g,
                                const Graph& view_hat,
                                const Graph& view_tilde,
                                const std::vector<std::int64_t>& nodes) {
  E2GCL_CHECK(!nodes.empty());
  E2GCL_CHECK(view_hat.num_nodes == g.num_nodes &&
              view_tilde.num_nodes == g.num_nodes);
  const Matrix h = encoder.Encode(g);
  const Matrix h_hat = encoder.Encode(view_hat);
  const Matrix h_tilde = encoder.Encode(view_tilde);
  const int layers = encoder.num_layers();
  const Matrix r_hat = RawAggregation(view_hat, layers);
  const Matrix r_tilde = RawAggregation(view_tilde, layers);

  ViewQuality q;
  for (std::int64_t v : nodes) {
    q.locality_hat += RowDistance(h_hat, v, h, v);
    q.locality_tilde += RowDistance(h_tilde, v, h, v);
    q.diversity += RowDistance(r_hat, v, r_tilde, v);
  }
  const double inv = 1.0 / static_cast<double>(nodes.size());
  q.locality_hat *= inv;
  q.locality_tilde *= inv;
  q.diversity *= inv;
  return q;
}

}  // namespace e2gcl
