#include "core/scores.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace e2gcl {

ImportanceScores::ImportanceScores(const Graph& g, float beta)
    : graph_(&g), beta_(beta) {
  E2GCL_CHECK(beta > 0.0f && beta < 1.0f);
  E2GCL_CHECK(!g.features.empty());
  centrality_ = DegreeCentrality(g);
  for (float c : centrality_) max_centrality_ = std::max(max_centrality_, c);

  // sim_constant_ = max over existing edges of ||x_v - x_u||.
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    for (std::int32_t u : g.Neighbors(v)) {
      if (u <= v) continue;
      sim_constant_ = std::max(
          sim_constant_, RowDistance(g.features, v, g.features, u));
    }
  }

  // Global feature importance w^f_i = sum_v phi_c(v) |x_v[i]|.
  const std::int64_t d = g.feature_dim();
  feature_importance_.assign(d, 0.0f);
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    const float phi = centrality_[v];
    const float* row = g.features.RowPtr(v);
    for (std::int64_t i = 0; i < d; ++i) {
      feature_importance_[i] += phi * std::fabs(row[i]);
    }
  }
  // Log-scale like GCA: raw frequency counts are heavy-tailed.
  for (float& w : feature_importance_) w = std::log1p(w);

  // dim_term(i) = (w_max - w_i) / (w_max - w_mean): mean 1 over dims,
  // smaller for globally important (frequent-in-influential-nodes) dims.
  {
    float mx = 0.0f;
    double sum = 0.0;
    for (float w : feature_importance_) {
      mx = std::max(mx, w);
      sum += w;
    }
    const float mean = static_cast<float>(sum / d);
    const float denom = std::max(mx - mean, 1e-9f);
    dim_term_.resize(d);
    for (std::int64_t i = 0; i < d; ++i) {
      dim_term_[i] = (mx - feature_importance_[i]) / denom;
    }
  }
  // node_term(v) = (phi_max - phi_v) / (phi_max - phi_mean): mean 1 over
  // nodes, smaller for high-centrality nodes.
  {
    float mx = 0.0f;
    double sum = 0.0;
    for (float c : centrality_) {
      mx = std::max(mx, c);
      sum += c;
    }
    const float mean = static_cast<float>(sum / g.num_nodes);
    const float denom = std::max(mx - mean, 1e-9f);
    node_term_.resize(g.num_nodes);
    for (std::int64_t v = 0; v < g.num_nodes; ++v) {
      node_term_[v] = (mx - centrality_[v]) / denom;
    }
  }
}

float ImportanceScores::Similarity(std::int64_t v, std::int64_t u) const {
  return sim_constant_ -
         RowDistance(graph_->features, v, graph_->features, u);
}

float ImportanceScores::EdgeScore(std::int64_t v, std::int64_t u,
                                  bool is_neighbor) const {
  // Exponents are normalized to [0, 1] ranges before exp(): the raw
  // phi + Sim form spans several orders of magnitude, which makes the
  // weighted sampling effectively deterministic and collapses the two
  // positive views onto each other. Tempering keeps a clear preference
  // for important edges while preserving sampling diversity.
  const float sim = Similarity(v, u) / std::max(sim_constant_, 1e-6f);
  const float phi = centrality_[u] / std::max(max_centrality_, 1e-6f);
  if (is_neighbor) {
    return beta_ * std::exp(phi + sim);
  }
  return (1.0f - beta_) * std::exp(-phi + sim);
}

float ImportanceScores::PerturbProbability(std::int64_t v, std::int64_t dim,
                                           float eta) const {
  if (eta <= 0.0f) return 0.0f;
  return std::min(eta * dim_term_[dim] * node_term_[v], kProbabilityCap);
}

}  // namespace e2gcl
