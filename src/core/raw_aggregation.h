#ifndef E2GCL_CORE_RAW_AGGREGATION_H_
#define E2GCL_CORE_RAW_AGGREGATION_H_

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace e2gcl {

/// Raw aggregated node information R = A_n^L X (Sec. III-A, Theorem 1).
///
/// This parameter-free quantity is the backbone of the whole framework:
/// Theorem 1 bounds per-node contrastive gradient differences by
/// distances between rows of R, so the node selector clusters and
/// selects on R, and the view-generation objective measures diversity
/// on the views' R. Computed with L sparse SpMM passes, O(L * nnz * d).
Matrix RawAggregation(const Graph& g, int num_layers);

/// Same but over an externally supplied propagation matrix (used to
/// compute the r-hat of a generated view).
Matrix RawAggregation(const CsrMatrix& normalized_adj, const Matrix& x,
                      int num_layers);

}  // namespace e2gcl

#endif  // E2GCL_CORE_RAW_AGGREGATION_H_
