#ifndef E2GCL_CORE_THREAD_ANNOTATIONS_H_
#define E2GCL_CORE_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis wiring for the concurrent subsystems
/// (parallel/, serve/, obs/, net/). Build with
///
///   cmake -B build-threadsafety -S . -DE2GCL_THREAD_SAFETY=ON
///
/// under clang to turn every annotation below into a compile-time
/// check (-Wthread-safety -Werror=thread-safety); under any other
/// compiler the macros expand to nothing and the shim classes are
/// plain zero-cost wrappers over the std primitives. The annotations
/// are additionally consumed *textually* by `e2gcl_lint`'s
/// concurrency rules (`unannotated-mutex`, `lock-order`,
/// `hold-lock-across-callback`, `blocking-in-event-loop`), which run
/// on every compiler, so the discipline is enforced even on a
/// gcc-only host.
///
/// Conventions (see DESIGN.md "Concurrency discipline"):
///  - every mutex-protected member carries E2GCL_GUARDED_BY(mu);
///  - condition variables are declared E2GCL_GUARDED_BY(their mutex)
///    and notified while holding it (wait-morphing makes this cheap,
///    and it lets the analysis prove notify/wait pairing);
///  - helpers that expect a lock held are annotated E2GCL_REQUIRES;
///  - multi-mutex files declare the acquisition order with
///    E2GCL_ACQUIRED_BEFORE/AFTER plus a `// e2gcl-lock-order:`
///    manifest comment that the lint rule cross-checks against
///    observed nestings.

#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__) && !defined(SWIG)
#define E2GCL_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define E2GCL_THREAD_ANNOTATION__(x)
#endif

/// Class attribute: the type is a lockable capability.
#define E2GCL_CAPABILITY(x) E2GCL_THREAD_ANNOTATION__(capability(x))

/// Class attribute: RAII type that acquires in its constructor and
/// releases in its destructor.
#define E2GCL_SCOPED_CAPABILITY E2GCL_THREAD_ANNOTATION__(scoped_lockable)

/// Data member is protected by the given capability.
#define E2GCL_GUARDED_BY(x) E2GCL_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define E2GCL_PT_GUARDED_BY(x) E2GCL_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability to be held by the caller.
#define E2GCL_REQUIRES(...) \
  E2GCL_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the capability (and returns with it held).
#define E2GCL_ACQUIRE(...) \
  E2GCL_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define E2GCL_RELEASE(...) \
  E2GCL_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function attempts the capability; first argument is the success
/// return value.
#define E2GCL_TRY_ACQUIRE(...) \
  E2GCL_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for
/// self-locking public entry points).
#define E2GCL_EXCLUDES(...) E2GCL_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declared lock order: this mutex is acquired after the listed ones.
#define E2GCL_ACQUIRED_AFTER(...) \
  E2GCL_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Declared lock order: this mutex is acquired before the listed ones.
#define E2GCL_ACQUIRED_BEFORE(...) \
  E2GCL_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/// Escape hatch: the function's locking is intentionally invisible to
/// the analysis. Every use needs a comment explaining why.
#define E2GCL_NO_THREAD_SAFETY_ANALYSIS \
  E2GCL_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Marker (expands to nothing on every compiler) naming a function as
/// an event-loop body. `e2gcl_lint`'s `blocking-in-event-loop` rule
/// roots its reachability walk at definitions carrying this marker:
/// nothing reachable from one may block (condition-variable waits,
/// sleeps, blocking socket syscalls) except via a justified
/// suppression. Place it between the parameter list and the `{` of
/// the definition as well as on the declaration, since the lint is
/// per-translation-unit.
#define E2GCL_LOOP_BODY

namespace e2gcl {

class CondVar;

/// std::mutex wrapper carrying the capability annotation. Use with
/// MutexLock; Lock()/Unlock() exist for the rare manual protocol and
/// for the analysis to see hand-over-hand code.
class E2GCL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() E2GCL_ACQUIRE() { mu_.lock(); }
  void Unlock() E2GCL_RELEASE() { mu_.unlock(); }
  bool TryLock() E2GCL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  // e2gcl-lint: allow(unannotated-mutex): the shim's own primitive; the
  // capability lives on the enclosing e2gcl::Mutex wrapper itself.
  std::mutex mu_;
};

/// RAII lock over e2gcl::Mutex (scoped capability). Backed by
/// std::unique_lock so flusher-style code can temporarily drop the
/// lock around a long computation (Unlock()/Lock()) and so CondVar
/// can wait on it; the destructor releases only if currently held.
class E2GCL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) E2GCL_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() E2GCL_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily release the capability mid-scope.
  void Unlock() E2GCL_RELEASE() { lock_.unlock(); }
  /// Re-acquire after Unlock().
  void Lock() E2GCL_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable wrapper that waits through a MutexLock.
/// Declare members of this type E2GCL_GUARDED_BY(their mutex): the
/// project convention is to notify while holding the lock, which the
/// guard annotation then enforces under clang. Predicate overloads
/// are deliberately absent — clang's analysis cannot see capabilities
/// inside lambda predicates, so waiters spell the standard
/// `while (!cond) cv.Wait(lock);` loop with the condition read
/// directly in the annotated function body.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.lock_, tp);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // e2gcl-lint: allow(unannotated-mutex): the shim's own primitive; the
  // guard annotation lives on CondVar members at their declaration site.
  std::condition_variable cv_;
};

}  // namespace e2gcl

#endif  // E2GCL_CORE_THREAD_ANNOTATIONS_H_
