#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "core/raw_aggregation.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

E2gclTrainer::E2gclTrainer(const Graph& graph, const E2gclConfig& config)
    : graph_(&graph), config_(config), rng_(config.seed) {
  E2GCL_CHECK(graph.num_nodes > 1);
  E2GCL_CHECK(!graph.features.empty());
  GcnConfig enc;
  enc.dims.assign(config.num_layers + 1, config.hidden_dim);
  enc.dims.front() = graph.feature_dim();
  enc.dims.back() = config.embed_dim;
  enc.dropout = config.dropout;
  encoder_ = std::make_unique<GcnEncoder>(enc, rng_);
  if (config.projection_head) {
    MlpConfig proj;
    proj.dims = {config.embed_dim, config.embed_dim, config.embed_dim};
    projector_ = std::make_unique<Mlp>(proj, rng_);
  }
  generator_ = std::make_unique<ViewGenerator>(graph, config.view_hat.beta);
}

void E2gclTrainer::Train(const EpochCallback& callback) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t n = graph_->num_nodes;

  // --- Node selection (Sec. III). ----------------------------------------
  std::vector<std::int64_t> train_nodes;
  std::vector<float> node_weights;
  if (config_.use_selector) {
    const std::int64_t k = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::llround(config_.node_ratio * n)));
    SelectorConfig sel = config_.selector;
    sel.budget = std::min<std::int64_t>(k, n);
    Matrix r = RawAggregation(*graph_, config_.num_layers);
    selection_ = config_.external_selector
                     ? config_.external_selector(r, *graph_, sel, rng_)
                     : SelectCoreset(r, sel, rng_);
    train_nodes = selection_.nodes;
    node_weights = selection_.weights;
    stats_.selection_seconds = selection_.seconds;
  } else {
    train_nodes.resize(n);
    std::iota(train_nodes.begin(), train_nodes.end(), 0);
    node_weights.assign(n, 1.0f);
  }

  // --- Contrastive pre-training (Alg. 1 lines 1-5). ------------------------
  std::vector<Var> params;
  for (const Var& p : encoder_->params().params()) params.push_back(p);
  if (projector_ != nullptr) {
    for (const Var& p : projector_->params().params()) params.push_back(p);
  }
  Adam::Options opts;
  opts.lr = config_.lr;
  opts.weight_decay = config_.weight_decay;
  Adam adam(params, opts);

  const std::int64_t pool = static_cast<std::int64_t>(train_nodes.size());
  const std::int64_t batch =
      std::min<std::int64_t>(config_.batch_size, pool);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Line 3: generate the two positive views.
    const auto tv = std::chrono::steady_clock::now();
    Graph view_hat = generator_->GenerateGlobalView(config_.view_hat, rng_);
    Graph view_tilde =
        generator_->GenerateGlobalView(config_.view_tilde, rng_);
    auto adj_hat =
        std::make_shared<const CsrMatrix>(NormalizedAdjacency(view_hat));
    auto adj_tilde =
        std::make_shared<const CsrMatrix>(NormalizedAdjacency(view_tilde));
    stats_.view_seconds += SecondsSince(tv);

    // Sample a training batch from the (selected) node pool.
    std::vector<std::int64_t> batch_nodes;
    std::vector<float> batch_weights;
    if (batch == pool) {
      batch_nodes = train_nodes;
      batch_weights = node_weights;
    } else {
      for (std::int64_t idx : rng_.SampleWithoutReplacement(pool, batch)) {
        batch_nodes.push_back(train_nodes[idx]);
        batch_weights.push_back(node_weights[idx]);
      }
    }
    if (!config_.use_coreset_weights) {
      batch_weights.assign(batch_nodes.size(), 1.0f);
    }

    // Line 4-5: encode both views, contrast the batch rows.
    Var x_hat = Var::Constant(view_hat.features);
    Var x_tilde = Var::Constant(view_tilde.features);
    Var h_hat = encoder_->Forward(adj_hat, x_hat, rng_, /*training=*/true);
    Var h_tilde =
        encoder_->Forward(adj_tilde, x_tilde, rng_, /*training=*/true);
    Var z_hat = ag::GatherRows(h_hat, batch_nodes);
    Var z_tilde = ag::GatherRows(h_tilde, batch_nodes);
    if (projector_ != nullptr) {
      z_hat = projector_->Forward(z_hat, rng_, /*training=*/true);
      z_tilde = projector_->Forward(z_tilde, rng_, /*training=*/true);
    }
    Var loss = ComputeContrastiveLoss(config_.loss, z_hat, z_tilde,
                                      config_.temperature, rng_,
                                      batch_weights);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    stats_.epochs_run = epoch + 1;

    if (callback) callback(epoch, SecondsSince(t0), *encoder_);
  }
  stats_.total_seconds = SecondsSince(t0);
}

}  // namespace e2gcl
