#include "core/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "core/raw_aggregation.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// FNV-1a over a byte buffer; stable across platforms/compilers.
std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

bool ShapesMatch(const std::vector<Var>& params,
                 const std::vector<Matrix>& values) {
  if (params.size() != values.size()) return false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].value().rows() != values[i].rows() ||
        params[i].value().cols() != values[i].cols()) {
      return false;
    }
  }
  return true;
}

/// The trainer's status as a stable report string.
const char* StatusName(TrainStatus status) {
  switch (status) {
    case TrainStatus::kOk:
      return "ok";
    case TrainStatus::kDiverged:
      return "diverged";
    case TrainStatus::kKilled:
      return "killed";
  }
  return "unknown";
}

}  // namespace

const char* TrainEventKindName(TrainEvent::Kind kind) {
  switch (kind) {
    case TrainEvent::Kind::kResume:
      return "resume";
    case TrainEvent::Kind::kRetry:
      return "retry";
    case TrainEvent::Kind::kDiverged:
      return "diverged";
    case TrainEvent::Kind::kKilled:
      return "killed";
    case TrainEvent::Kind::kCheckpointWrite:
      return "checkpoint_write";
    case TrainEvent::Kind::kCheckpointWriteFailure:
      return "checkpoint_write_failure";
  }
  return "unknown";
}

int TrainResult::CountEvents(TrainEvent::Kind kind) const {
  int count = 0;
  for (const TrainEvent& e : events) {
    if (e.kind == kind) ++count;
  }
  return count;
}

E2gclTrainer::E2gclTrainer(const Graph& graph, const E2gclConfig& config)
    : graph_(&graph), config_(config), rng_(config.seed) {
  E2GCL_CHECK(graph.num_nodes > 1);
  E2GCL_CHECK(!graph.features.empty());
  GcnConfig enc;
  enc.dims.assign(config.num_layers + 1, config.hidden_dim);
  enc.dims.front() = graph.feature_dim();
  enc.dims.back() = config.embed_dim;
  enc.dropout = config.dropout;
  encoder_ = std::make_unique<GcnEncoder>(enc, rng_);
  if (config.projection_head) {
    MlpConfig proj;
    proj.dims = {config.embed_dim, config.embed_dim, config.embed_dim};
    projector_ = std::make_unique<Mlp>(proj, rng_);
  }
  generator_ = std::make_unique<ViewGenerator>(graph, config.view_hat.beta);
}

std::uint64_t E2gclTrainer::ConfigFingerprint() const {
  // Everything that shapes parameter tensors or the training trajectory
  // belongs here; total epoch count does NOT (so a run can be resumed
  // with a larger --epochs to train longer).
  ByteWriter w;
  w.WriteU64(config_.seed);
  w.WriteI64(config_.hidden_dim);
  w.WriteI64(config_.embed_dim);
  w.WriteI64(config_.num_layers);
  w.WriteF32(config_.dropout);
  w.WriteF32(config_.lr);
  w.WriteF32(config_.weight_decay);
  w.WriteI64(config_.batch_size);
  w.WriteF32(config_.temperature);
  w.WriteU32(static_cast<std::uint32_t>(config_.loss));
  w.WriteU32(config_.projection_head ? 1 : 0);
  w.WriteU32(config_.use_selector ? 1 : 0);
  w.WriteF32(static_cast<float>(config_.node_ratio));
  w.WriteU32(config_.use_coreset_weights ? 1 : 0);
  w.WriteF32(config_.grad_clip_norm);
  w.WriteI64(graph_->num_nodes);
  w.WriteI64(graph_->feature_dim());
  w.WriteI64(graph_->num_edges());
  return Fnv1a(w.bytes());
}

TrainerCheckpoint E2gclTrainer::CaptureState(std::int64_t epoch,
                                             const Adam& adam,
                                             std::int64_t retries,
                                             float lr_scale) const {
  TrainerCheckpoint c;
  c.epoch = epoch;
  c.config_fingerprint = ConfigFingerprint();
  c.retries_used = retries;
  c.lr_scale = lr_scale;
  c.rng_state = rng_.SerializeState();
  c.encoder_params = encoder_->params().CloneValues();
  if (projector_ != nullptr) {
    c.projector_params = projector_->params().CloneValues();
  }
  AdamState state = adam.CloneState();
  c.adam_m = std::move(state.m);
  c.adam_v = std::move(state.v);
  c.adam_t = state.t;
  return c;
}

bool E2gclTrainer::RestoreState(const TrainerCheckpoint& ckpt, Adam& adam) {
  // Validate everything up front so a mismatched checkpoint is rejected
  // atomically instead of aborting mid-restore.
  if (!ShapesMatch(encoder_->params().params(), ckpt.encoder_params)) {
    return false;
  }
  if (projector_ != nullptr) {
    if (!ShapesMatch(projector_->params().params(), ckpt.projector_params)) {
      return false;
    }
  } else if (!ckpt.projector_params.empty()) {
    return false;
  }
  AdamState state;
  state.m = ckpt.adam_m;
  state.v = ckpt.adam_v;
  state.t = ckpt.adam_t;
  if (!rng_.RestoreState(ckpt.rng_state)) return false;
  if (!adam.LoadState(state)) return false;
  encoder_->params().LoadValues(ckpt.encoder_params);
  if (projector_ != nullptr) {
    projector_->params().LoadValues(ckpt.projector_params);
  }
  return true;
}

TrainResult E2gclTrainer::Train(const EpochCallback& callback) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t n = graph_->num_nodes;

  static const Counter epochs_counter = Counter::Get("trainer.epochs");
  static const Counter retries_counter = Counter::Get("trainer.retries");
  static const Counter resumes_counter = Counter::Get("trainer.resumes");

  // Per-epoch counter snapshots in the run report are deltas from this
  // baseline, so they are independent of whatever ran earlier in the
  // process (the registry is process-global).
  const MetricsSnapshot metrics_baseline = MetricsRegistry::Get().Snapshot();
  std::vector<RunReport::Epoch> epoch_records;

  // Routes every exit through run-report emission. The report lands at
  // config_.report_path, or next to the checkpoints when only
  // checkpoint_dir is set; with neither, no report is written.
  auto finish = [&](TrainResult result) {
    stats_.total_seconds = SecondsSince(t0);
    // Sample the process high-water mark into the (determinism-exempt)
    // gauge so every run report carries its peak RSS.
    RecordPeakRssGauge();
    std::string report_path = config_.report_path;
    if (report_path.empty() && !config_.checkpoint_dir.empty()) {
      report_path = config_.checkpoint_dir + "/run_report.json";
    }
    if (!report_path.empty()) {
      RunReport report;
      char fp[24];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(ConfigFingerprint()));
      report.config_fingerprint = fp;
      report.seed = config_.seed;
      report.threads = GetNumThreads();
      report.status = StatusName(result.status);
      report.resumed = result.resumed;
      report.start_epoch = result.start_epoch;
      report.retries_used = result.retries_used;
      report.selection_seconds = stats_.selection_seconds;
      report.total_seconds = stats_.total_seconds;
      report.epochs = epoch_records;
      for (const TrainEvent& e : result.events) {
        report.events.push_back(
            {TrainEventKindName(e.kind), e.epoch, e.detail});
      }
      report.metrics = MetricsRegistry::Get().Snapshot().DeltaFrom(
          metrics_baseline);
      report.spans = TraceRegistry::Get().Snapshot();
      if (!SaveRunReport(report_path, report)) {
        std::fprintf(stderr,
                     "[e2gcl] warning: failed to write run report %s\n",
                     report_path.c_str());
      }
    }
    return result;
  };

  // --- Node selection (Sec. III). ----------------------------------------
  std::vector<std::int64_t> train_nodes;
  std::vector<float> node_weights;
  if (config_.use_selector) {
    const std::int64_t k = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::llround(config_.node_ratio * n)));
    SelectorConfig sel = config_.selector;
    sel.budget = std::min<std::int64_t>(k, n);
    Matrix r = RawAggregation(*graph_, config_.num_layers);
    selection_ = config_.external_selector
                     ? config_.external_selector(r, *graph_, sel, rng_)
                     : SelectCoreset(r, sel, rng_);
    train_nodes = selection_.nodes;
    node_weights = selection_.weights;
    stats_.selection_seconds = selection_.seconds;
  } else {
    train_nodes.resize(n);
    std::iota(train_nodes.begin(), train_nodes.end(), 0);
    node_weights.assign(n, 1.0f);
  }

  // --- Contrastive pre-training (Alg. 1 lines 1-5). ------------------------
  std::vector<Var> params;
  for (const Var& p : encoder_->params().params()) params.push_back(p);
  if (projector_ != nullptr) {
    for (const Var& p : projector_->params().params()) params.push_back(p);
  }
  Adam::Options opts;
  opts.lr = config_.lr;
  opts.weight_decay = config_.weight_decay;
  Adam adam(params, opts);

  const std::int64_t pool = static_cast<std::int64_t>(train_nodes.size());
  const std::int64_t batch =
      std::min<std::int64_t>(config_.batch_size, pool);

  TrainResult result;
  const float base_lr = config_.lr;
  std::int64_t retries = 0;
  float lr_scale = 1.0f;

  // Rollback anchor for divergence recovery: the initial (epoch -1)
  // state until the first checkpoint replaces it.
  TrainerCheckpoint rollback = CaptureState(-1, adam, 0, 1.0f);

  const bool checkpointing = !config_.checkpoint_dir.empty();
  if (checkpointing) {
    E2GCL_CHECK(config_.checkpoint_every >= 1);
    E2GCL_CHECK(config_.checkpoint_keep >= 1);
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
    if (config_.resume) {
      TrainerCheckpoint ckpt;
      std::string from;
      if (FindNewestValidCheckpoint(config_.checkpoint_dir,
                                    ConfigFingerprint(), &ckpt, &from)) {
        if (RestoreState(ckpt, adam)) {
          retries = ckpt.retries_used;
          lr_scale = ckpt.lr_scale;
          adam.set_lr(base_lr * lr_scale);
          result.resumed = true;
          result.start_epoch = static_cast<int>(ckpt.epoch) + 1;
          resumes_counter.Increment();
          result.events.push_back({TrainEvent::Kind::kResume,
                                   static_cast<int>(ckpt.epoch),
                                   "resumed from " + from});
          rollback = std::move(ckpt);
        } else {
          std::fprintf(stderr,
                       "[e2gcl] warning: checkpoint %s does not match the "
                       "current model; starting fresh\n",
                       from.c_str());
        }
      }
    }
  }

  for (int epoch = result.start_epoch; epoch < config_.epochs; ++epoch) {
    TraceSpan epoch_span("epoch");
    RunReport::Epoch record;
    record.epoch = epoch;

    // Line 3: generate the two positive views.
    const auto tv = std::chrono::steady_clock::now();
    Graph view_hat = generator_->GenerateGlobalView(config_.view_hat, rng_);
    Graph view_tilde =
        generator_->GenerateGlobalView(config_.view_tilde, rng_);
    auto adj_hat =
        std::make_shared<const CsrMatrix>(NormalizedAdjacency(view_hat));
    auto adj_tilde =
        std::make_shared<const CsrMatrix>(NormalizedAdjacency(view_tilde));
    record.view_seconds = SecondsSince(tv);
    stats_.view_seconds += record.view_seconds;

    const auto tl = std::chrono::steady_clock::now();
    // Sample a training batch from the (selected) node pool.
    std::vector<std::int64_t> batch_nodes;
    std::vector<float> batch_weights;
    if (batch == pool) {
      batch_nodes = train_nodes;
      batch_weights = node_weights;
    } else {
      for (std::int64_t idx : rng_.SampleWithoutReplacement(pool, batch)) {
        batch_nodes.push_back(train_nodes[idx]);
        batch_weights.push_back(node_weights[idx]);
      }
    }
    if (!config_.use_coreset_weights) {
      batch_weights.assign(batch_nodes.size(), 1.0f);
    }

    // Line 4-5: encode both views, contrast the batch rows.
    Var x_hat = Var::Constant(view_hat.features);
    Var x_tilde = Var::Constant(view_tilde.features);
    Var h_hat = encoder_->Forward(adj_hat, x_hat, rng_, /*training=*/true);
    Var h_tilde =
        encoder_->Forward(adj_tilde, x_tilde, rng_, /*training=*/true);
    Var z_hat = ag::GatherRows(h_hat, batch_nodes);
    Var z_tilde = ag::GatherRows(h_tilde, batch_nodes);
    if (projector_ != nullptr) {
      z_hat = projector_->Forward(z_hat, rng_, /*training=*/true);
      z_tilde = projector_->Forward(z_tilde, rng_, /*training=*/true);
    }
    Var loss = ComputeContrastiveLoss(config_.loss, z_hat, z_tilde,
                                      config_.temperature, rng_,
                                      batch_weights);
    adam.ZeroGrad();
    loss.Backward();
    record.loss_seconds = SecondsSince(tl);

    // --- Training health guard. ------------------------------------------
    float loss_value = loss.value()(0, 0);
    if (config_.fault_injector.corrupt_loss) {
      loss_value = config_.fault_injector.corrupt_loss(epoch, loss_value);
    }
    double grad_sq = 0.0;
    for (const Var& p : params) {
      const Matrix& g = p.grad();
      for (std::int64_t j = 0; j < g.size(); ++j) {
        const double gj = g.data()[j];
        grad_sq += gj * gj;
      }
    }
    const double grad_norm = std::sqrt(grad_sq);
    // The loss/gradient scalars alone can miss corruption: the zero-skip
    // fast path in MatMul/MatMulTransposedA evaluates 0 * NaN as 0, so a
    // non-finite weight multiplied only by zero activations produces a
    // finite loss AND a zero gradient. Check the parameters directly.
    bool params_finite = true;
    for (const Var& p : params) {
      if (!AllFinite(p.value())) {
        params_finite = false;
        break;
      }
    }
    if (!std::isfinite(loss_value) || !std::isfinite(grad_norm) ||
        !params_finite) {
      if (retries >= config_.max_retries) {
        // Leave the encoder at the last finite state, not garbage.
        RestoreState(rollback, adam);
        result.status = TrainStatus::kDiverged;
        result.retries_used = static_cast<int>(retries);
        char msg[160];
        std::snprintf(msg, sizeof(msg),
                      "non-finite loss/gradient/parameters at epoch %d after "
                      "%lld retries (lr scale %.4g)",
                      epoch, static_cast<long long>(retries), lr_scale);
        result.message = msg;
        result.events.push_back(
            {TrainEvent::Kind::kDiverged, epoch, result.message});
        return finish(std::move(result));
      }
      ++retries;
      retries_counter.Increment();
      lr_scale *= 0.5f;
      if (!RestoreState(rollback, adam)) {
        // The in-memory anchor always matches; this cannot fail, but
        // never continue on a half-restored state.
        result.status = TrainStatus::kDiverged;
        result.message = "rollback failed";
        result.events.push_back(
            {TrainEvent::Kind::kDiverged, epoch, result.message});
        return finish(std::move(result));
      }
      adam.set_lr(base_lr * lr_scale);
      // Reseed the view-generator/batch RNG stream so the retry explores
      // a different augmentation trajectory instead of replaying the one
      // that diverged. Deterministic given (seed, retries).
      rng_ = Rng(config_.seed ^
                 (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(retries)));
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "non-finite loss/gradient/parameters; rolled back to "
                    "epoch %lld, lr scale %.4g (retry %lld/%d)",
                    static_cast<long long>(rollback.epoch), lr_scale,
                    static_cast<long long>(retries), config_.max_retries);
      result.events.push_back({TrainEvent::Kind::kRetry, epoch, detail});
      std::fprintf(stderr,
                   "[e2gcl] warning: non-finite loss/gradient/parameters at "
                   "epoch %d; rolled back to epoch %lld, lr scale %.4g "
                   "(retry %lld/%d)\n",
                   epoch, static_cast<long long>(rollback.epoch), lr_scale,
                   static_cast<long long>(retries), config_.max_retries);
      // Drop per-epoch records from the abandoned trajectory.
      while (!epoch_records.empty() &&
             epoch_records.back().epoch >
                 static_cast<int>(rollback.epoch)) {
        epoch_records.pop_back();
      }
      epoch = static_cast<int>(rollback.epoch);  // ++ resumes at epoch + 1
      continue;
    }

    // Global gradient-norm clipping (0 = off).
    const auto ts = std::chrono::steady_clock::now();
    if (config_.grad_clip_norm > 0.0f &&
        grad_norm > static_cast<double>(config_.grad_clip_norm)) {
      const float scale =
          config_.grad_clip_norm / static_cast<float>(grad_norm);
      for (Var& p : params) {
        if (p.grad().empty()) continue;
        Matrix& g = p.mutable_grad();
        for (std::int64_t j = 0; j < g.size(); ++j) g.data()[j] *= scale;
      }
    }
    adam.Step();
    if (config_.fault_injector.corrupt_params) {
      config_.fault_injector.corrupt_params(epoch, params);
    }
    record.step_seconds = SecondsSince(ts);
    stats_.epochs_run = epoch + 1;
    epochs_counter.Increment();

    // --- Checkpointing (atomic write, keep-last-K). -----------------------
    if (checkpointing && ((epoch + 1) % config_.checkpoint_every == 0 ||
                          epoch + 1 == config_.epochs)) {
      const auto tc = std::chrono::steady_clock::now();
      TrainerCheckpoint ckpt = CaptureState(epoch, adam, retries, lr_scale);
      const std::string path =
          CheckpointPath(config_.checkpoint_dir, epoch);
      if (SaveTrainerCheckpoint(path, ckpt)) {
        PruneCheckpoints(config_.checkpoint_dir, config_.checkpoint_keep);
        rollback = std::move(ckpt);
        result.events.push_back(
            {TrainEvent::Kind::kCheckpointWrite, epoch, path});
      } else {
        result.events.push_back(
            {TrainEvent::Kind::kCheckpointWriteFailure, epoch, path});
        std::fprintf(stderr,
                     "[e2gcl] warning: failed to write checkpoint %s\n",
                     path.c_str());
      }
      record.checkpoint_seconds = SecondsSince(tc);
    }

    record.loss = static_cast<double>(loss_value);
    record.counters =
        MetricsRegistry::Get().Snapshot().DeltaFrom(metrics_baseline).counters;
    epoch_records.push_back(std::move(record));

    if (callback) callback(epoch, SecondsSince(t0), *encoder_);

    if (config_.fault_injector.kill_after_epoch &&
        config_.fault_injector.kill_after_epoch(epoch)) {
      result.status = TrainStatus::kKilled;
      result.retries_used = static_cast<int>(retries);
      char msg[96];
      std::snprintf(msg, sizeof(msg),
                    "killed by fault injector after epoch %d", epoch);
      result.message = msg;
      result.events.push_back(
          {TrainEvent::Kind::kKilled, epoch, result.message});
      return finish(std::move(result));
    }
  }
  result.retries_used = static_cast<int>(retries);
  return finish(std::move(result));
}

}  // namespace e2gcl
