#ifndef E2GCL_CORE_SCORES_H_
#define E2GCL_CORE_SCORES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace e2gcl {

/// Edge and feature importance scores of Sec. IV-C1/2. All quantities
/// are derived from raw graph data only (degrees and features), never
/// from GNN parameters — the property the paper's Remark calls out.
class ImportanceScores {
 public:
  /// `beta` is the existing-edge preference of the edge score
  /// (w^e = beta * exp(phi + sim) for neighbors,
  ///  (1-beta) * exp(-phi + sim) for 2-hop candidates).
  ImportanceScores(const Graph& g, float beta);

  /// phi_c(v) = log(D_v + 1).
  float Centrality(std::int64_t v) const { return centrality_[v]; }
  const std::vector<float>& centrality() const { return centrality_; }

  /// Sim(v, u) = c - ||x_v - x_u||, c = max over existing edges.
  float Similarity(std::int64_t v, std::int64_t u) const;

  /// Edge score w^e_{v,u}. `is_neighbor` selects the existing-edge or
  /// candidate-edge branch.
  float EdgeScore(std::int64_t v, std::int64_t u, bool is_neighbor) const;

  /// Global importance of feature dimension i:
  /// w^f_i = sum_v phi_c(v) * |x_v[i]|.
  float FeatureImportance(std::int64_t dim) const {
    return feature_importance_[dim];
  }

  /// Probability of perturbing x_v[i] given strength eta (Eq. 16):
  /// eta * dim_term(i) * node_term(v) clipped to [0, cap], where
  /// dim_term(i) = (w_max - w^f_i)/(w_max - w_mean) over dimensions and
  /// node_term(v) = (phi_max - phi_c(v))/(phi_max - phi_mean) over
  /// nodes. Both terms have mean 1, so the expected perturbation budget
  /// matches the uniform baseline at equal eta. (The paper's literal
  /// per-dimension normalization of w^f_i * phi_c(v) cancels the
  /// dimension dependence entirely; this product form keeps both the
  /// "important dimensions are kept" and "influential nodes are kept"
  /// behaviours the text describes.)
  float PerturbProbability(std::int64_t v, std::int64_t dim,
                           float eta) const;

  /// Maximum perturbation probability before eta scaling, mirroring
  /// GCA's cap that prevents certain perturbation of any feature.
  static constexpr float kProbabilityCap = 0.95f;

  float sim_constant() const { return sim_constant_; }
  float beta() const { return beta_; }

 private:
  const Graph* graph_;
  float beta_;
  std::vector<float> centrality_;
  float max_centrality_ = 0.0f;
  float sim_constant_ = 0.0f;
  std::vector<float> feature_importance_;
  /// Precomputed dim_term(i) and node_term(v) of PerturbProbability.
  std::vector<float> dim_term_;
  std::vector<float> node_term_;
};

}  // namespace e2gcl

#endif  // E2GCL_CORE_SCORES_H_
