#ifndef E2GCL_CORE_TRAINER_H_
#define E2GCL_CORE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/contrastive.h"
#include "core/node_selector.h"
#include "core/view_generator.h"
#include "io/checkpoint.h"
#include "nn/gcn.h"
#include "nn/mlp.h"
#include "nn/optim.h"

namespace e2gcl {

/// Deterministic fault-injection hooks for robustness tests (see
/// tests/fault_tolerance_test.cc). All hooks are optional; production
/// runs leave them unset and pay nothing.
struct FaultInjector {
  /// Maps the observed per-epoch loss to the value fed into the health
  /// guard — return NaN/Inf at a chosen epoch to fake divergence.
  std::function<float(int epoch, float loss)> corrupt_loss;
  /// Called after an epoch completes (post-step, post-checkpoint).
  /// Return true to abandon training immediately, simulating a crash;
  /// Train() then returns TrainStatus::kKilled.
  std::function<bool(int epoch)> kill_after_epoch;
  /// Called right after the optimizer step with the full parameter list
  /// (encoder then projector); may mutate values in place to plant
  /// non-finite entries. Exercises the guard that checks parameter
  /// finiteness directly — the MatMul zero-skip can mask 0 * NaN into a
  /// finite loss, so a corrupted weight never shows up in the loss scalar.
  std::function<void(int epoch, std::vector<Var>& params)> corrupt_params;
};

/// Full configuration of the E2GCL pre-training pipeline (Alg. 1 lines
/// 1-5, with the node selector of Sec. III and the view generator of
/// Sec. IV). The ablation variants of Tables VI and VIII are expressed
/// through the flags below:
///   E2GCL_{A,*}: use_selector = false.
///   E2GCL_{*,U}: importance_edges = importance_features = false in
///                both view configs.
///   E2GCL\S: importance_edges = false; E2GCL\F: importance_features =
///   false.
struct E2gclConfig {
  // --- Node selector (Sec. III). -----------------------------------------
  bool use_selector = true;
  /// Node budget as a fraction r of |V| (paper default r = 0.4).
  double node_ratio = 0.4;
  SelectorConfig selector;
  /// Weight batch loss terms by the coreset weights lambda.
  bool use_coreset_weights = true;
  /// Replaces Alg. 2 with an arbitrary selection strategy (same budget
  /// and weights contract). Used by the Table VII selector ablation to
  /// plug Random/Degree/KMeans/KCG/Grain into the identical pipeline.
  std::function<SelectionResult(const Matrix& raw_aggregation,
                                const Graph& graph, const SelectorConfig&,
                                Rng&)>
      external_selector;

  // --- View generator (Sec. IV). ------------------------------------------
  /// The two positive-view channels (tau-hat/eta-hat, tau-tilde/eta-tilde).
  ViewConfig view_hat{.tau = 0.8f, .eta = 0.5f};
  ViewConfig view_tilde{.tau = 0.6f, .eta = 0.7f};

  // --- Encoder / optimization. ---------------------------------------------
  std::int64_t hidden_dim = 64;
  std::int64_t embed_dim = 64;
  int num_layers = 2;
  float dropout = 0.1f;
  float lr = 5e-3f;
  float weight_decay = 1e-5f;
  int epochs = 60;
  /// Contrastive batch size (paper: 500 for all approaches).
  std::int64_t batch_size = 500;
  float temperature = 0.5f;
  ContrastiveLossKind loss = ContrastiveLossKind::kInfoNce;
  /// Use a 2-layer projection head before the loss (GRACE-style).
  bool projection_head = true;
  std::uint64_t seed = 1;

  // --- Fault tolerance (checkpoint/restore + health guards). ---------------
  /// Directory for epoch-stamped checkpoints (created if missing).
  /// Empty disables checkpointing entirely.
  std::string checkpoint_dir;
  /// Write a checkpoint every this many completed epochs (the final
  /// epoch is always checkpointed). Must be >= 1 when checkpointing.
  int checkpoint_every = 10;
  /// Keep only the newest K checkpoint files; older ones are pruned.
  int checkpoint_keep = 3;
  /// On Train(), resume from the newest *valid* checkpoint found in
  /// checkpoint_dir; corrupted or mismatched files are skipped with a
  /// logged warning. Resumed runs are bit-identical to uninterrupted
  /// runs at the same thread count.
  bool resume = true;
  /// Divergence recovery budget: on a non-finite loss or gradient the
  /// trainer rolls back to the last checkpoint (or the initial state),
  /// halves the learning rate, reseeds the RNG stream, and retries — up
  /// to this many times before Train() fails with kDiverged.
  int max_retries = 2;
  /// Global gradient-norm clip applied before each Adam step
  /// (0 disables clipping).
  float grad_clip_norm = 0.0f;
  /// Test-only fault hooks; unset in production runs.
  FaultInjector fault_injector;

  // --- Observability. ------------------------------------------------------
  /// Where Train() writes its versioned run_report.json (schema in
  /// obs/run_report.h). Empty: defaults to
  /// `<checkpoint_dir>/run_report.json` when checkpointing, else no
  /// report is written.
  std::string report_path;
};

/// Timing breakdown of one pre-training run (Table V's ST/TT columns).
struct E2gclStats {
  double selection_seconds = 0.0;   // ST
  double view_seconds = 0.0;        // view generation share of TT
  double total_seconds = 0.0;       // TT (selection + views + optimization)
  int epochs_run = 0;
};

/// Per-epoch observation hook for time-accuracy curves (Fig. 3):
/// (epoch index, seconds elapsed since training start including
/// selection, current encoder).
using EpochCallback =
    std::function<void(int, double, const GcnEncoder&)>;

/// Why Train() returned.
enum class TrainStatus {
  kOk = 0,
  /// Loss or gradients went non-finite and the retry budget was
  /// exhausted; the encoder holds the last rolled-back (finite) state,
  /// not garbage.
  kDiverged,
  /// A FaultInjector kill hook stopped the run mid-training (tests
  /// only); state up to the last checkpoint is on disk.
  kKilled,
};

/// One structured lifecycle event of a Train() call. Replaces the old
/// stderr-only warnings so tests (and the run report) can assert on
/// exact occurrence counts instead of scraping logs.
struct TrainEvent {
  enum class Kind {
    kResume,                  ///< Resumed from an on-disk checkpoint.
    kRetry,                   ///< Non-finite loss/grad -> rollback + retry.
    kDiverged,                ///< Retry budget exhausted.
    kKilled,                  ///< FaultInjector kill hook fired.
    kCheckpointWrite,         ///< Checkpoint written successfully.
    kCheckpointWriteFailure,  ///< Checkpoint write failed (run continues).
  };
  Kind kind;
  /// Epoch the event happened at (-1 for pre-training-loop events).
  int epoch = 0;
  std::string detail;
};

/// Stable lowercase name for a TrainEvent kind (used in run reports).
const char* TrainEventKindName(TrainEvent::Kind kind);

/// Structured outcome of one Train() call.
struct TrainResult {
  TrainStatus status = TrainStatus::kOk;
  /// First epoch this call actually ran (> 0 after a resume).
  int start_epoch = 0;
  /// True when training continued from an on-disk checkpoint.
  bool resumed = false;
  /// Divergence retries consumed (across resumes).
  int retries_used = 0;
  /// Human-readable detail for kDiverged/kKilled.
  std::string message;
  /// Every lifecycle event, in occurrence order.
  std::vector<TrainEvent> events;

  bool ok() const { return status == TrainStatus::kOk; }
  /// Number of recorded events of `kind`.
  int CountEvents(TrainEvent::Kind kind) const;
};

/// The E2GCL pre-trainer. Owns the encoder; Train() runs the full
/// pipeline and leaves the encoder ready for linear-probe evaluation.
class E2gclTrainer {
 public:
  E2gclTrainer(const Graph& graph, const E2gclConfig& config);

  /// Runs selection + contrastive pre-training. Safe to call once.
  /// When config.checkpoint_dir is set, resumes from the newest valid
  /// checkpoint (if config.resume) and writes epoch-stamped checkpoints
  /// every config.checkpoint_every epochs.
  TrainResult Train(const EpochCallback& callback = nullptr);

  const GcnEncoder& encoder() const { return *encoder_; }
  GcnEncoder& encoder() { return *encoder_; }
  const E2gclStats& stats() const { return stats_; }
  /// Selection result (empty nodes when use_selector is false).
  const SelectionResult& selection() const { return selection_; }
  const E2gclConfig& config() const { return config_; }

  /// Hash of the config knobs + graph shape that determine training
  /// state layout and trajectory; stamped into checkpoints so a resume
  /// under a different setup is refused.
  std::uint64_t ConfigFingerprint() const;

 private:
  /// Snapshots all mutable training state as of completed epoch `epoch`.
  TrainerCheckpoint CaptureState(std::int64_t epoch, const Adam& adam,
                                 std::int64_t retries, float lr_scale) const;
  /// Restores a snapshot; returns false on shape/count mismatch.
  bool RestoreState(const TrainerCheckpoint& ckpt, Adam& adam);

  const Graph* graph_;
  E2gclConfig config_;
  std::unique_ptr<GcnEncoder> encoder_;
  std::unique_ptr<Mlp> projector_;
  std::unique_ptr<ViewGenerator> generator_;
  SelectionResult selection_;
  E2gclStats stats_;
  Rng rng_;
};

}  // namespace e2gcl

#endif  // E2GCL_CORE_TRAINER_H_
