#ifndef E2GCL_CORE_TRAINER_H_
#define E2GCL_CORE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/contrastive.h"
#include "core/node_selector.h"
#include "core/view_generator.h"
#include "nn/gcn.h"
#include "nn/mlp.h"
#include "nn/optim.h"

namespace e2gcl {

/// Full configuration of the E2GCL pre-training pipeline (Alg. 1 lines
/// 1-5, with the node selector of Sec. III and the view generator of
/// Sec. IV). The ablation variants of Tables VI and VIII are expressed
/// through the flags below:
///   E2GCL_{A,*}: use_selector = false.
///   E2GCL_{*,U}: importance_edges = importance_features = false in
///                both view configs.
///   E2GCL\S: importance_edges = false; E2GCL\F: importance_features =
///   false.
struct E2gclConfig {
  // --- Node selector (Sec. III). -----------------------------------------
  bool use_selector = true;
  /// Node budget as a fraction r of |V| (paper default r = 0.4).
  double node_ratio = 0.4;
  SelectorConfig selector;
  /// Weight batch loss terms by the coreset weights lambda.
  bool use_coreset_weights = true;
  /// Replaces Alg. 2 with an arbitrary selection strategy (same budget
  /// and weights contract). Used by the Table VII selector ablation to
  /// plug Random/Degree/KMeans/KCG/Grain into the identical pipeline.
  std::function<SelectionResult(const Matrix& raw_aggregation,
                                const Graph& graph, const SelectorConfig&,
                                Rng&)>
      external_selector;

  // --- View generator (Sec. IV). ------------------------------------------
  /// The two positive-view channels (tau-hat/eta-hat, tau-tilde/eta-tilde).
  ViewConfig view_hat{.tau = 0.8f, .eta = 0.5f};
  ViewConfig view_tilde{.tau = 0.6f, .eta = 0.7f};

  // --- Encoder / optimization. ---------------------------------------------
  std::int64_t hidden_dim = 64;
  std::int64_t embed_dim = 64;
  int num_layers = 2;
  float dropout = 0.1f;
  float lr = 5e-3f;
  float weight_decay = 1e-5f;
  int epochs = 60;
  /// Contrastive batch size (paper: 500 for all approaches).
  std::int64_t batch_size = 500;
  float temperature = 0.5f;
  ContrastiveLossKind loss = ContrastiveLossKind::kInfoNce;
  /// Use a 2-layer projection head before the loss (GRACE-style).
  bool projection_head = true;
  std::uint64_t seed = 1;
};

/// Timing breakdown of one pre-training run (Table V's ST/TT columns).
struct E2gclStats {
  double selection_seconds = 0.0;   // ST
  double view_seconds = 0.0;        // view generation share of TT
  double total_seconds = 0.0;       // TT (selection + views + optimization)
  int epochs_run = 0;
};

/// Per-epoch observation hook for time-accuracy curves (Fig. 3):
/// (epoch index, seconds elapsed since training start including
/// selection, current encoder).
using EpochCallback =
    std::function<void(int, double, const GcnEncoder&)>;

/// The E2GCL pre-trainer. Owns the encoder; Train() runs the full
/// pipeline and leaves the encoder ready for linear-probe evaluation.
class E2gclTrainer {
 public:
  E2gclTrainer(const Graph& graph, const E2gclConfig& config);

  /// Runs selection + contrastive pre-training. Safe to call once.
  void Train(const EpochCallback& callback = nullptr);

  const GcnEncoder& encoder() const { return *encoder_; }
  GcnEncoder& encoder() { return *encoder_; }
  const E2gclStats& stats() const { return stats_; }
  /// Selection result (empty nodes when use_selector is false).
  const SelectionResult& selection() const { return selection_; }
  const E2gclConfig& config() const { return config_; }

 private:
  const Graph* graph_;
  E2gclConfig config_;
  std::unique_ptr<GcnEncoder> encoder_;
  std::unique_ptr<Mlp> projector_;
  std::unique_ptr<ViewGenerator> generator_;
  SelectionResult selection_;
  E2gclStats stats_;
  Rng rng_;
};

}  // namespace e2gcl

#endif  // E2GCL_CORE_TRAINER_H_
