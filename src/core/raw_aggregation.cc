#include "core/raw_aggregation.h"

#include "tensor/check.h"

namespace e2gcl {

Matrix RawAggregation(const Graph& g, int num_layers) {
  CsrMatrix an = NormalizedAdjacency(g);
  return RawAggregation(an, g.features, num_layers);
}

Matrix RawAggregation(const CsrMatrix& normalized_adj, const Matrix& x,
                      int num_layers) {
  E2GCL_CHECK(num_layers >= 0);
  E2GCL_CHECK(normalized_adj.cols() == x.rows());
  Matrix r = x;
  for (int l = 0; l < num_layers; ++l) r = Spmm(normalized_adj, r);
  return r;
}

}  // namespace e2gcl
