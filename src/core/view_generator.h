#ifndef E2GCL_CORE_VIEW_GENERATOR_H_
#define E2GCL_CORE_VIEW_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scores.h"
#include "graph/graph.h"
#include "tensor/rng.h"

namespace e2gcl {

/// Configuration of a single positive-view channel (hat or tilde).
struct ViewConfig {
  /// Neighbor sampling ratio tau: each node u re-draws round(tau*|N_u|)
  /// neighbors from its 1-/2-hop candidates (Alg. 3 lines 5-12). tau < 1
  /// net-deletes edges, tau > 1 net-adds them.
  float tau = 0.8f;
  /// Feature perturbation strength eta of Eq. (16).
  float eta = 0.4f;
  /// Existing-edge preference beta of the edge score.
  float beta = 0.7f;
  /// Edge sampling follows edge scores (true) or is uniform (false) —
  /// the \S ablation of Table VIII.
  bool importance_edges = true;
  /// Feature perturbation follows feature scores (true) or uses the
  /// matched-budget uniform probability eta (false) — the \F ablation.
  bool importance_features = true;
  /// Cap on the per-node candidate set: all 1-hop neighbors are always
  /// candidates; 2-hop candidates are subsampled to this budget so dense
  /// graphs (Photo/Computers) stay tractable.
  std::int64_t max_two_hop_candidates = 24;
  /// Disable edge addition (2-hop candidates) entirely — used by the
  /// Fig. 2 operation-set study ({ED} vs {ED, EA}).
  bool allow_edge_addition = true;
  /// Disable edge deletion: every existing neighbor is kept and
  /// sampling only tops up with added edges.
  bool allow_edge_deletion = true;
  /// Disable feature perturbation ({ED, EA} only).
  bool allow_feature_perturbation = true;
};

/// Locality-preserved positive-view generator (Sec. IV, Alg. 3).
///
/// Two modes:
///  * GenerateGlobalView(): one whole-graph view per call. Every node's
///    neighborhood is re-sampled once; the L-hop subgraph of any root in
///    the result coincides with the per-root construction of Alg. 3 (a
///    GCN only sees the root's L-hop ego-net), so this is the batched
///    equivalent used for training.
///  * GeneratePerNodeView(): the literal per-root L-hop construction of
///    Alg. 3, used by tests and view-quality analysis.
class ViewGenerator {
 public:
  /// Precomputes importance scores (O(E d + V d)); `graph` must outlive
  /// the generator.
  ViewGenerator(const Graph& graph, float beta = 0.7f);

  /// Samples one whole-graph positive view.
  Graph GenerateGlobalView(const ViewConfig& config, Rng& rng) const;

  /// The literal Alg. 3: builds the root's L-hop positive view as a
  /// standalone subgraph. Returns the subgraph; `root_index` receives
  /// the root's index inside it, and `subgraph_nodes` (optional) the
  /// original node ids.
  Graph GeneratePerNodeView(std::int64_t root, int hops,
                            const ViewConfig& config, Rng& rng,
                            std::int64_t* root_index,
                            std::vector<std::int64_t>* subgraph_nodes =
                                nullptr) const;

  const ImportanceScores& scores() const { return scores_; }
  const Graph& graph() const { return *graph_; }

 private:
  /// Samples the new neighbor set of node u under `config`.
  std::vector<std::int64_t> SampleNeighbors(std::int64_t u,
                                            const ViewConfig& config,
                                            Rng& rng) const;

  /// Applies Eq. (16) to one feature row (in place).
  void PerturbRow(float* row, std::int64_t node, const ViewConfig& config,
                  Rng& rng) const;

  const Graph* graph_;
  ImportanceScores scores_;
  /// Scratch for the 2-hop candidate scan (bitmap + touched list);
  /// mutable because view sampling is logically const.
  mutable std::vector<char> seen_scratch_;
  mutable std::vector<std::int64_t> touched_scratch_;
};

/// Quality of a generated view pair under Def. 2 / Eq. (15), measured
/// with a fixed encoder: locality = ||h_hat_v - h_v||, diversity =
/// ||r_hat_v - r_tilde_v||, averaged over `nodes`. Used by tests and the
/// Table VIII analysis to verify that importance-aware sampling
/// preserves locality better than uniform sampling.
struct ViewQuality {
  double locality_hat = 0.0;    // mean ||h-hat - h||
  double locality_tilde = 0.0;  // mean ||h-tilde - h||
  double diversity = 0.0;       // mean ||r-hat - r-tilde||
  /// The Eq. (15) objective: locality_hat + locality_tilde - diversity.
  double objective() const {
    return locality_hat + locality_tilde - diversity;
  }
};

class GcnEncoder;  // from nn/gcn.h

ViewQuality EvaluateViewQuality(const GcnEncoder& encoder, const Graph& g,
                                const Graph& view_hat,
                                const Graph& view_tilde,
                                const std::vector<std::int64_t>& nodes);

}  // namespace e2gcl

#endif  // E2GCL_CORE_VIEW_GENERATOR_H_
