#ifndef E2GCL_CORE_NODE_SELECTOR_H_
#define E2GCL_CORE_NODE_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace e2gcl {

/// Configuration of the sampling-based greedy coreset selector (Alg. 2).
struct SelectorConfig {
  /// Node budget k (absolute count of selected nodes).
  std::int64_t budget = 0;
  /// Cluster count n_c for the clustered objective (Eq. 13/14).
  std::int64_t num_clusters = 120;
  /// Sample size n_s per greedy round. When `auto_sample_size` is set,
  /// the effective n_s is max(min_sample_size,
  /// ceil((n/k) * ln(1/approx_eps))) capped at `sample_size`, matching
  /// the n_s = (n/k) log(1/eps) of Theorem 3 while letting experiments
  /// sweep an explicit value.
  std::int64_t sample_size = 300;
  bool auto_sample_size = true;
  std::int64_t min_sample_size = 4;
  double approx_eps = 0.05;
  int kmeans_iters = 25;
};

/// Output of coreset selection.
struct SelectionResult {
  /// Selected node ids V_s, in selection order.
  std::vector<std::int64_t> nodes;
  /// Coreset weights lambda_v: how many graph nodes each selected node
  /// represents (Alg. 2 line 10). Sums to |V|.
  std::vector<float> weights;
  /// Final value of the clustered objective Eq. (14) (lower is better).
  double representativity = 0.0;
  /// Wall-clock seconds spent, including KMeans.
  double seconds = 0.0;
};

/// Selects a coreset of `config.budget` rows of the raw-aggregation
/// matrix `r` (one row per node) with Alg. 2: KMeans clustering on R,
/// then greedy selection of the node with the largest marginal drop of
/// the clustered representativity objective among n_s sampled
/// candidates per round.
SelectionResult SelectCoreset(const Matrix& r, const SelectorConfig& config,
                              Rng& rng);

/// Evaluates the Eq. (14) objective of an arbitrary node set against a
/// clustering (test oracle; O(|V| * |Vs|) — small inputs only).
double RepresentativityObjective(const Matrix& r, const KMeansResult& km,
                                 const std::vector<std::int64_t>& selected);

/// Splits a total selection budget across shards proportionally to
/// their core sizes by the largest-remainder method (ties broken toward
/// the lower shard id). The parts sum exactly to min(total,
/// sum(shard_sizes)) and never exceed any shard's size; a pure function
/// of the inputs, so every thread/shard configuration apportions
/// identically.
std::vector<std::int64_t> ApportionBudget(
    std::int64_t total, const std::vector<std::int64_t>& shard_sizes);

/// Merges per-shard selections into one global SelectionResult under
/// the documented policy: shards concatenate in ascending shard id,
/// each shard's nodes stay in their selection order, and local ids map
/// through `shard_core_nodes[s]` back to global ids. Weights pass
/// through unchanged (each shard's weights sum to its core size, so
/// the merge sums to the partitioned node count); representativity is
/// the core-size-weighted mean and seconds the sum.
SelectionResult MergeShardSelections(
    const std::vector<SelectionResult>& per_shard,
    const std::vector<std::vector<std::int64_t>>& shard_core_nodes);

}  // namespace e2gcl

#endif  // E2GCL_CORE_NODE_SELECTOR_H_
