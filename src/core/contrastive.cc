#include "core/contrastive.h"

#include <numeric>

#include "autograd/ops.h"
#include "tensor/check.h"

namespace e2gcl {

std::vector<std::int64_t> SampleNegativePermutation(std::int64_t n,
                                                    Rng& rng) {
  E2GCL_CHECK(n >= 2);
  std::vector<std::int64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  // Remove fixed points by rotating any colliding entry with its
  // successor (cyclically); the result has no i with perm[i] == i.
  for (std::int64_t i = 0; i < n; ++i) {
    if (perm[i] == i) {
      const std::int64_t j = (i + 1) % n;
      std::swap(perm[i], perm[j]);
    }
  }
  return perm;
}

Var ComputeContrastiveLoss(ContrastiveLossKind kind, const Var& z1,
                           const Var& z2, float temperature, Rng& rng,
                           const std::vector<float>& row_weights) {
  switch (kind) {
    case ContrastiveLossKind::kInfoNce: {
      Var n1 = ag::NormalizeRowsL2(z1);
      Var n2 = ag::NormalizeRowsL2(z2);
      return ag::InfoNce(n1, n2, temperature, row_weights);
    }
    case ContrastiveLossKind::kEuclidean: {
      auto perm = SampleNegativePermutation(z1.rows(), rng);
      return ag::EuclideanContrastive(z1, z2, perm, row_weights);
    }
  }
  E2GCL_CHECK(false);
  return Var();
}

}  // namespace e2gcl
