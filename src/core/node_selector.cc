#include "core/node_selector.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

// Row floor for chunked double-sum reductions: below this many nodes a
// single chunk keeps the exact serial summation order.
constexpr std::int64_t kSumRowFloor = 512;

/// Clustered distance of Eq. (13): exact within u's cluster, relaxed
/// (center distance + cluster radius) across clusters.
float ClusteredDistance(const Matrix& r, const KMeansResult& km,
                        std::int64_t v, std::int64_t u) {
  const std::int64_t cv = km.assignment[v];
  const std::int64_t cu = km.assignment[u];
  if (cv == cu) return RowDistance(r, v, r, u);
  return RowDistance(km.centers, cv, r, u) + km.max_radius[cv];
}

}  // namespace

double RepresentativityObjective(const Matrix& r, const KMeansResult& km,
                                 const std::vector<std::int64_t>& selected) {
  E2GCL_CHECK(!selected.empty());
  const std::int64_t n = r.rows();
  const std::int64_t grain = std::max(
      kSumRowFloor,
      GrainForCost(static_cast<std::int64_t>(selected.size()) * r.cols()));
  const std::int64_t chunks = NumChunks(n, grain);
  std::vector<double> partial(std::max<std::int64_t>(1, chunks), 0.0);
  ParallelForChunks(0, n, grain,
                    [&](std::int64_t chunk, std::int64_t vb, std::int64_t ve) {
                      double total = 0.0;
                      for (std::int64_t v = vb; v < ve; ++v) {
                        float best = std::numeric_limits<float>::max();
                        for (std::int64_t u : selected) {
                          best = std::min(best, ClusteredDistance(r, km, v, u));
                        }
                        total += best;
                      }
                      partial[chunk] = total;
                    });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

SelectionResult SelectCoreset(const Matrix& r, const SelectorConfig& config,
                              Rng& rng) {
  TraceSpan select_span("select_coreset");
  static const Counter rounds_counter = Counter::Get("selector.rounds");
  static const Counter candidates_counter =
      Counter::Get("selector.candidates_evaluated");
  static const Counter selected_counter =
      Counter::Get("selector.nodes_selected");
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t n = r.rows();
  E2GCL_CHECK(config.budget > 0 && config.budget <= n);
  const std::int64_t k = config.budget;

  // --- Line 2: cluster on the raw aggregation. ---------------------------
  KMeansOptions km_opts;
  km_opts.num_clusters = std::min<std::int64_t>(config.num_clusters, n);
  km_opts.max_iters = config.kmeans_iters;
  KMeansResult km = KMeans(r, km_opts, rng);
  const std::int64_t nc = km.centers.rows();

  // Initial "unrepresented" distance: an upper bound on any achievable
  // clustered distance so first-pick gains are well defined.
  float center_spread = 0.0f;
  for (std::int64_t i = 0; i < nc; ++i) {
    for (std::int64_t j = i + 1; j < nc; ++j) {
      center_spread =
          std::max(center_spread, RowDistance(km.centers, i, km.centers, j));
    }
  }
  float max_radius = 0.0f;
  for (float rad : km.max_radius) max_radius = std::max(max_radius, rad);
  const float d_init = center_spread + 2.0f * max_radius + 1.0f;

  std::vector<float> best_dist(n, d_init);
  std::vector<char> selected_mask(n, 0);

  // Effective per-round sample size (Theorem 3).
  std::int64_t ns = config.sample_size;
  if (config.auto_sample_size) {
    const double theory =
        std::ceil(static_cast<double>(n) / static_cast<double>(k) *
                  std::log(1.0 / std::max(config.approx_eps, 1e-6)));
    ns = std::min<std::int64_t>(
        config.sample_size,
        std::max<std::int64_t>(config.min_sample_size,
                               static_cast<std::int64_t>(theory)));
  }
  ns = std::max<std::int64_t>(1, std::min(ns, n));

  SelectionResult result;
  result.nodes.reserve(k);

  // Scratch: gain of adding candidate u =
  //   sum_v max(0, best_dist[v] - d_new(v, u)).
  std::vector<float> center_dist(nc);
  while (static_cast<std::int64_t>(result.nodes.size()) < k) {
    // --- Line 4: sample candidates from the unselected pool. -------------
    std::vector<std::int64_t> pool;
    pool.reserve(ns);
    std::int64_t guard = 0;
    while (static_cast<std::int64_t>(pool.size()) < ns && guard++ < ns * 30) {
      const std::int64_t c = rng.UniformInt(n);
      if (!selected_mask[c]) pool.push_back(c);
    }
    if (pool.empty()) {
      for (std::int64_t v = 0; v < n && static_cast<std::int64_t>(pool.size()) < ns;
           ++v) {
        if (!selected_mask[v]) pool.push_back(v);
      }
    }
    if (pool.empty()) break;  // Everything selected.
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    rounds_counter.Increment();
    candidates_counter.Add(pool.size());

    // --- Lines 5-8: pick the candidate with maximal marginal gain. -------
    // Candidate gains are independent (each reads best_dist, none writes
    // it), so they are computed in parallel — these are the Thm. 1
    // pairwise raw-aggregated-distance loops, the selector's hot path.
    // Each candidate's own summation order is unchanged, and the argmax
    // runs serially in pool order, so the pick matches the serial code
    // exactly at any thread count.
    const std::int64_t pool_size = static_cast<std::int64_t>(pool.size());
    std::vector<double> gains(pool_size, 0.0);
    ParallelFor(0, pool_size, 1, [&](std::int64_t pb, std::int64_t pe) {
      std::vector<float> cdist(nc);
      for (std::int64_t pi = pb; pi < pe; ++pi) {
        const std::int64_t u = pool[pi];
        const std::int64_t cu = km.assignment[u];
        for (std::int64_t j = 0; j < nc; ++j) {
          cdist[j] = RowDistance(km.centers, j, r, u);
        }
        double gain = 0.0;
        // Exact distances within u's cluster.
        for (std::int64_t v : km.clusters[cu]) {
          const float d = RowDistance(r, v, r, u);
          if (d < best_dist[v]) gain += best_dist[v] - d;
        }
        // Relaxed distances for all other clusters: threshold per cluster.
        for (std::int64_t j = 0; j < nc; ++j) {
          if (j == cu) continue;
          const float t = cdist[j] + km.max_radius[j];
          for (std::int64_t v : km.clusters[j]) {
            if (best_dist[v] > t) gain += best_dist[v] - t;
          }
        }
        gains[pi] = gain;
      }
    });
    double best_gain = -1.0;
    std::int64_t best_u = pool.front();
    for (std::int64_t pi = 0; pi < pool_size; ++pi) {
      if (gains[pi] > best_gain) {
        best_gain = gains[pi];
        best_u = pool[pi];
      }
    }

    // --- Line 9: commit and update best distances. ------------------------
    selected_mask[best_u] = 1;
    result.nodes.push_back(best_u);
    selected_counter.Increment();
    const std::int64_t cu = km.assignment[best_u];
    for (std::int64_t j = 0; j < nc; ++j) {
      center_dist[j] = RowDistance(km.centers, j, r, best_u);
    }
    // Exact element-wise min updates: each v is owned by one chunk.
    const auto& cu_members = km.clusters[cu];
    const std::int64_t n_members = static_cast<std::int64_t>(cu_members.size());
    ParallelFor(0, n_members, GrainForCost(r.cols()),
                [&](std::int64_t mb, std::int64_t me) {
                  for (std::int64_t mi = mb; mi < me; ++mi) {
                    const std::int64_t v = cu_members[mi];
                    best_dist[v] =
                        std::min(best_dist[v], RowDistance(r, v, r, best_u));
                  }
                });
    for (std::int64_t j = 0; j < nc; ++j) {
      if (j == cu) continue;
      const float t = center_dist[j] + km.max_radius[j];
      for (std::int64_t v : km.clusters[j]) {
        best_dist[v] = std::min(best_dist[v], t);
      }
    }
  }

  // --- Line 10: representation weights lambda. ----------------------------
  // Each node is assigned to its nearest selected node under the
  // clustered metric. To keep this O(n * (|Vs ∩ cluster| + nc)) instead
  // of O(n * |Vs|), precompute per cluster the best relaxed
  // representative.
  const std::int64_t ks = static_cast<std::int64_t>(result.nodes.size());
  result.weights.assign(ks, 0.0f);
  std::vector<std::int64_t> sel_index(n, -1);
  for (std::int64_t i = 0; i < ks; ++i) sel_index[result.nodes[i]] = i;

  // Group selected nodes by cluster.
  std::vector<std::vector<std::int64_t>> sel_by_cluster(nc);
  for (std::int64_t i = 0; i < ks; ++i) {
    sel_by_cluster[km.assignment[result.nodes[i]]].push_back(result.nodes[i]);
  }
  // Best relaxed representative per *target* cluster j: the selected u
  // minimizing ||c_j - R[u]|| (the +d_j^max offset is common).
  std::vector<std::int64_t> best_cross(nc, -1);
  std::vector<float> best_cross_dist(nc, std::numeric_limits<float>::max());
  // Each target cluster j scans the selected set independently.
  ParallelFor(0, nc, 1, [&](std::int64_t jb, std::int64_t je) {
    for (std::int64_t j = jb; j < je; ++j) {
      for (std::int64_t u : result.nodes) {
        if (km.assignment[u] == j) continue;  // Eq. 13: u2 outside C_i.
        const float d = RowDistance(km.centers, j, r, u);
        if (d < best_cross_dist[j]) {
          best_cross_dist[j] = d;
          best_cross[j] = u;
        }
      }
    }
  });
  // Per-chunk weight/objective partials, reduced in chunk order. Weight
  // increments are +1.0f adds, which are exact under any regrouping, so
  // the weights themselves are bit-identical to the serial pass.
  const std::int64_t w_grain = std::max(kSumRowFloor, GrainForCost(r.cols()));
  const std::int64_t w_chunks = NumChunks(n, w_grain);
  std::vector<std::vector<float>> weight_parts(
      std::max<std::int64_t>(1, w_chunks));
  std::vector<double> objective_parts(std::max<std::int64_t>(1, w_chunks),
                                      0.0);
  ParallelForChunks(
      0, n, w_grain, [&](std::int64_t chunk, std::int64_t vb, std::int64_t ve) {
        std::vector<float> wpart(ks, 0.0f);
        double objective = 0.0;
        for (std::int64_t v = vb; v < ve; ++v) {
          const std::int64_t cv = km.assignment[v];
          float best = std::numeric_limits<float>::max();
          std::int64_t rep = -1;
          for (std::int64_t u : sel_by_cluster[cv]) {
            const float d = RowDistance(r, v, r, u);
            if (d < best) {
              best = d;
              rep = u;
            }
          }
          if (best_cross[cv] >= 0) {
            const float d = best_cross_dist[cv] + km.max_radius[cv];
            if (d < best) {
              best = d;
              rep = best_cross[cv];
            }
          }
          if (rep < 0) rep = result.nodes.front();
          wpart[sel_index[rep]] += 1.0f;
          objective += best == std::numeric_limits<float>::max() ? 0.0 : best;
        }
        weight_parts[chunk] = std::move(wpart);
        objective_parts[chunk] = objective;
      });
  double objective = 0.0;
  for (std::int64_t chunk = 0; chunk < w_chunks; ++chunk) {
    for (std::int64_t i = 0; i < ks; ++i) {
      result.weights[i] += weight_parts[chunk][i];
    }
    objective += objective_parts[chunk];
  }
  result.representativity = objective;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

std::vector<std::int64_t> ApportionBudget(
    std::int64_t total, const std::vector<std::int64_t>& shard_sizes) {
  const std::int64_t s = static_cast<std::int64_t>(shard_sizes.size());
  std::vector<std::int64_t> parts(s, 0);
  std::int64_t n = 0;
  for (std::int64_t size : shard_sizes) {
    E2GCL_CHECK(size >= 0);
    n += size;
  }
  std::int64_t k = std::min(total, n);
  if (k <= 0 || n == 0) return parts;

  // Floors first, then distribute the leftover seats by descending
  // fractional remainder, ties toward the lower shard id. Floors are
  // capped by shard size, so leftover seats always fit somewhere.
  std::vector<double> remainder(s, 0.0);
  std::int64_t assigned = 0;
  for (std::int64_t i = 0; i < s; ++i) {
    const double exact = static_cast<double>(k) *
                         static_cast<double>(shard_sizes[i]) /
                         static_cast<double>(n);
    parts[i] = std::min(static_cast<std::int64_t>(exact), shard_sizes[i]);
    remainder[i] = exact - static_cast<double>(parts[i]);
    assigned += parts[i];
  }
  std::vector<std::int64_t> order(s);
  for (std::int64_t i = 0; i < s; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return remainder[a] > remainder[b];
                   });
  std::int64_t at = 0;
  while (assigned < k) {
    const std::int64_t i = order[at % s];
    at += 1;
    if (parts[i] < shard_sizes[i]) {
      parts[i] += 1;
      assigned += 1;
    }
  }
  return parts;
}

SelectionResult MergeShardSelections(
    const std::vector<SelectionResult>& per_shard,
    const std::vector<std::vector<std::int64_t>>& shard_core_nodes) {
  E2GCL_CHECK(per_shard.size() == shard_core_nodes.size());
  SelectionResult merged;
  double weighted_obj = 0.0;
  std::int64_t total_core = 0;
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const SelectionResult& r = per_shard[s];
    const std::vector<std::int64_t>& core = shard_core_nodes[s];
    E2GCL_CHECK(r.nodes.size() == r.weights.size());
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
      const std::int64_t local = r.nodes[i];
      E2GCL_CHECK(local >= 0 &&
                  local < static_cast<std::int64_t>(core.size()));
      merged.nodes.push_back(core[local]);
      merged.weights.push_back(r.weights[i]);
    }
    weighted_obj +=
        r.representativity * static_cast<double>(core.size());
    total_core += static_cast<std::int64_t>(core.size());
    merged.seconds += r.seconds;
  }
  merged.representativity =
      total_core > 0 ? weighted_obj / static_cast<double>(total_core) : 0.0;
  return merged;
}

}  // namespace e2gcl
