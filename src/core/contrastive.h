#ifndef E2GCL_CORE_CONTRASTIVE_H_
#define E2GCL_CORE_CONTRASTIVE_H_

#include <vector>

#include "autograd/loss.h"
#include "autograd/variable.h"
#include "tensor/rng.h"

namespace e2gcl {

/// Which contrastive objective the trainer optimizes.
enum class ContrastiveLossKind {
  /// InfoNCE / NT-Xent on L2-normalized projections (GRACE-family; the
  /// practical default).
  kInfoNce,
  /// The paper's Eq. (5) Euclidean margin loss with sampled negatives
  /// (used by the theory; available for replication studies).
  kEuclidean,
};

/// Computes the selected loss between two aligned embedding batches.
/// For kEuclidean a random negative permutation (derangement-ish) is
/// sampled from `rng`. `row_weights` carries the coreset weights
/// lambda (may be empty for unweighted training).
Var ComputeContrastiveLoss(ContrastiveLossKind kind, const Var& z1,
                           const Var& z2, float temperature, Rng& rng,
                           const std::vector<float>& row_weights = {});

/// Samples a negative-assignment permutation with no fixed points (each
/// anchor gets some other row as its negative).
std::vector<std::int64_t> SampleNegativePermutation(std::int64_t n, Rng& rng);

}  // namespace e2gcl

#endif  // E2GCL_CORE_CONTRASTIVE_H_
