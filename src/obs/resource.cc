#include "obs/resource.h"

#include <sys/resource.h>

#include <cstring>
#include <fstream>
#include <string>

#include "obs/metrics.h"

namespace e2gcl {

namespace {

/// Reads one "Vm...:  <kB> kB" line from /proc/self/status. Returns -1
/// when the file or the field is missing (non-Linux hosts).
std::int64_t ProcStatusKb(const char* field) {
  std::ifstream in("/proc/self/status");
  if (!in.is_open()) return -1;
  const std::size_t field_len = std::strlen(field);
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, field_len, field) != 0) continue;
    std::int64_t kb = 0;
    bool any = false;
    for (std::size_t i = field_len; i < line.size(); ++i) {
      const char c = line[i];
      if (c >= '0' && c <= '9') {
        kb = kb * 10 + (c - '0');
        any = true;
      } else if (any) {
        break;
      }
    }
    return any ? kb : -1;
  }
  return -1;
}

}  // namespace

std::int64_t PeakRssBytes() {
  const std::int64_t kb = ProcStatusKb("VmHWM:");
  if (kb >= 0) return kb * 1024;
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;
  }
  return 0;
}

std::int64_t CurrentRssBytes() {
  const std::int64_t kb = ProcStatusKb("VmRSS:");
  return kb >= 0 ? kb * 1024 : 0;
}

void RecordPeakRssGauge() {
  static const Gauge peak = Gauge::Get("process.peak_rss_bytes");
  peak.Max(PeakRssBytes());
}

}  // namespace e2gcl
