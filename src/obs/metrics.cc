#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <map>

#include "core/thread_annotations.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

// Fixed per-shard capacities: definitions registered after a shard was
// created still have a slot, so shards never reallocate (reallocation
// would race with concurrent snapshot reads).
constexpr std::int32_t kMaxCounters = 256;
constexpr std::int32_t kMaxGauges = 256;
constexpr std::int32_t kMaxHistograms = 64;
constexpr std::int32_t kMaxHistSlots = 2048;

bool EnvEnabled() {
  const char* v = std::getenv("E2GCL_OBS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "OFF") == 0);
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnvEnabled()};
  return flag;
}

/// One thread's slot arrays. Slots are relaxed atomics so snapshot reads
/// from other threads are race-free; increments stay uncontended and
/// cache-local because each thread only writes its own shard.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxHistSlots> hist{};
};

struct HistogramDef {
  std::string name;
  std::vector<std::int64_t> bounds;
  std::int32_t slot_offset = 0;  // into the per-shard hist array
};

}  // namespace

struct MetricsRegistry::Impl {
  mutable Mutex mu;

  std::vector<std::string> counter_names E2GCL_GUARDED_BY(mu);
  std::map<std::string, std::int32_t> counter_ids E2GCL_GUARDED_BY(mu);
  /// Totals merged back from exited threads.
  std::vector<std::uint64_t> counter_retired E2GCL_GUARDED_BY(mu);

  std::vector<std::string> gauge_names E2GCL_GUARDED_BY(mu);
  std::map<std::string, std::int32_t> gauge_ids E2GCL_GUARDED_BY(mu);
  /// Gauge cells are relaxed atomics written lock-free by Gauge::Set/
  /// Add/Max; the array itself is fixed-size, so only the name tables
  /// above need the lock.
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};

  std::vector<HistogramDef> histogram_defs E2GCL_GUARDED_BY(mu);
  std::map<std::string, std::int32_t> histogram_ids E2GCL_GUARDED_BY(mu);
  std::vector<std::uint64_t> hist_retired E2GCL_GUARDED_BY(mu);
  std::int32_t next_hist_slot E2GCL_GUARDED_BY(mu) = 0;

  /// Live shards in registration order. The pointed-to slot arrays are
  /// relaxed atomics (written lock-free by their owning thread); only
  /// the vector of pointers needs the lock.
  std::vector<Shard*> shards E2GCL_GUARDED_BY(mu);

  Impl() {
    counter_retired.assign(kMaxCounters, 0);
    hist_retired.assign(kMaxHistSlots, 0);
  }

  Shard* AdoptShard() {
    // e2gcl-lint: allow(naked-new-delete): shard ownership transfers to the registry; RetireShard deletes it
    Shard* s = new Shard();
    MutexLock lock(mu);
    shards.push_back(s);
    return s;
  }

  void RetireShard(Shard* s) {
    MutexLock lock(mu);
    for (std::int32_t i = 0; i < kMaxCounters; ++i) {
      counter_retired[i] += s->counters[i].load(std::memory_order_relaxed);
    }
    for (std::int32_t i = 0; i < kMaxHistSlots; ++i) {
      hist_retired[i] += s->hist[i].load(std::memory_order_relaxed);
    }
    shards.erase(std::remove(shards.begin(), shards.end(), s), shards.end());
    // e2gcl-lint: allow(naked-new-delete): matching delete for AdoptShard's transfer of ownership
    delete s;
  }
};

namespace {

/// Thread-local shard holder; merges the shard back into the registry's
/// retired totals when the thread exits (e.g. on SetNumThreads pool
/// teardown) so no count is ever lost.
struct ShardHolder {
  Shard* shard = nullptr;
  MetricsRegistry::Impl* owner = nullptr;
  ~ShardHolder() {
    if (shard != nullptr) owner->RetireShard(shard);
  }
};

thread_local ShardHolder t_shard_holder;

MetricsRegistry::Impl* RegistryImpl();

Shard* LocalShard() {
  if (t_shard_holder.shard == nullptr) {
    MetricsRegistry::Impl* impl = RegistryImpl();
    t_shard_holder.shard = impl->AdoptShard();
    t_shard_holder.owner = impl;
  }
  return t_shard_holder.shard;
}

MetricsRegistry::Impl* RegistryImpl() {
  // Leaked singleton: thread-exit retirement may run during static
  // destruction, so the registry must never be destroyed.
  // e2gcl-lint: allow(naked-new-delete): intentionally leaked process-lifetime singleton (safe during static destruction)
  static MetricsRegistry::Impl* impl = new MetricsRegistry::Impl();
  return impl;
}

}  // namespace

bool ObsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetObsEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry() : impl_(RegistryImpl()) {}

MetricsRegistry& MetricsRegistry::Get() {
  // e2gcl-lint: allow(naked-new-delete): intentionally leaked process-lifetime singleton (safe during static destruction)
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

// --- Handle registration. --------------------------------------------------

Counter Counter::Get(const std::string& name) {
  MetricsRegistry::Impl* impl = RegistryImpl();
  MutexLock lock(impl->mu);
  auto it = impl->counter_ids.find(name);
  if (it != impl->counter_ids.end()) return Counter(it->second);
  const std::int32_t id =
      static_cast<std::int32_t>(impl->counter_names.size());
  E2GCL_CHECK_MSG(id < kMaxCounters, "too many counters (cap %d)",
                  kMaxCounters);
  impl->counter_names.push_back(name);
  impl->counter_ids.emplace(name, id);
  return Counter(id);
}

Gauge Gauge::Get(const std::string& name) {
  MetricsRegistry::Impl* impl = RegistryImpl();
  MutexLock lock(impl->mu);
  auto it = impl->gauge_ids.find(name);
  if (it != impl->gauge_ids.end()) return Gauge(it->second);
  const std::int32_t id = static_cast<std::int32_t>(impl->gauge_names.size());
  E2GCL_CHECK_MSG(id < kMaxGauges, "too many gauges (cap %d)", kMaxGauges);
  impl->gauge_names.push_back(name);
  impl->gauge_ids.emplace(name, id);
  return Gauge(id);
}

Histogram Histogram::Get(const std::string& name,
                         const std::vector<std::int64_t>& bounds) {
  MetricsRegistry::Impl* impl = RegistryImpl();
  MutexLock lock(impl->mu);
  auto it = impl->histogram_ids.find(name);
  if (it != impl->histogram_ids.end()) return Histogram(it->second);
  E2GCL_CHECK_MSG(!bounds.empty(), "histogram '%s' needs bounds",
                  name.c_str());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    E2GCL_CHECK_MSG(bounds[i] > bounds[i - 1],
                    "histogram '%s' bounds must be strictly increasing",
                    name.c_str());
  }
  const std::int32_t id =
      static_cast<std::int32_t>(impl->histogram_defs.size());
  const std::int32_t slots = static_cast<std::int32_t>(bounds.size()) + 1;
  E2GCL_CHECK_MSG(id < kMaxHistograms, "too many histograms (cap %d)",
                  kMaxHistograms);
  E2GCL_CHECK_MSG(impl->next_hist_slot + slots <= kMaxHistSlots,
                  "histogram bucket capacity exhausted (cap %d)",
                  kMaxHistSlots);
  HistogramDef def;
  def.name = name;
  def.bounds = bounds;
  def.slot_offset = impl->next_hist_slot;
  impl->next_hist_slot += slots;
  impl->histogram_defs.push_back(std::move(def));
  impl->histogram_ids.emplace(name, id);
  return Histogram(id);
}

// --- Recording. ------------------------------------------------------------

void Counter::Add(std::uint64_t delta) const {
  if (!ObsEnabled()) return;
  LocalShard()->counters[id_].fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::Set(std::int64_t value) const {
  if (!ObsEnabled()) return;
  RegistryImpl()->gauges[id_].store(value, std::memory_order_relaxed);
}

void Gauge::Add(std::int64_t delta) const {
  if (!ObsEnabled()) return;
  RegistryImpl()->gauges[id_].fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::Max(std::int64_t value) const {
  if (!ObsEnabled()) return;
  std::atomic<std::int64_t>& cell = RegistryImpl()->gauges[id_];
  std::int64_t cur = cell.load(std::memory_order_relaxed);
  while (value > cur &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Record(std::int64_t value) const {
  if (!ObsEnabled()) return;
  MetricsRegistry::Impl* impl = RegistryImpl();
  std::int32_t offset;
  std::int32_t bucket;
  {
    MutexLock lock(impl->mu);
    const HistogramDef& def = impl->histogram_defs[id_];
    const auto it =
        std::lower_bound(def.bounds.begin(), def.bounds.end(), value);
    bucket = static_cast<std::int32_t>(it - def.bounds.begin());
    offset = def.slot_offset;
  }
  LocalShard()->hist[offset + bucket].fetch_add(1, std::memory_order_relaxed);
}

// --- Snapshot / reset. -----------------------------------------------------

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(impl_->mu);

  const std::size_t ncounters = impl_->counter_names.size();
  std::vector<std::uint64_t> counter_totals(impl_->counter_retired.begin(),
                                            impl_->counter_retired.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    ncounters));
  // Merge live shards in registration order. Integer sums are exact
  // under any order; the fixed order is kept for uniformity with the
  // kernel reduction rule.
  for (const Shard* s : impl_->shards) {
    for (std::size_t i = 0; i < ncounters; ++i) {
      counter_totals[i] += s->counters[i].load(std::memory_order_relaxed);
    }
  }
  snap.counters.reserve(ncounters);
  for (std::size_t i = 0; i < ncounters; ++i) {
    snap.counters.emplace_back(impl_->counter_names[i], counter_totals[i]);
  }
  std::sort(snap.counters.begin(), snap.counters.end());

  snap.gauges.reserve(impl_->gauge_names.size());
  for (std::size_t i = 0; i < impl_->gauge_names.size(); ++i) {
    snap.gauges.emplace_back(impl_->gauge_names[i],
                             impl_->gauges[i].load(std::memory_order_relaxed));
  }
  std::sort(snap.gauges.begin(), snap.gauges.end());

  for (const HistogramDef& def : impl_->histogram_defs) {
    HistogramSnapshot h;
    h.name = def.name;
    h.bounds = def.bounds;
    const std::size_t slots = def.bounds.size() + 1;
    h.counts.assign(slots, 0);
    for (std::size_t b = 0; b < slots; ++b) {
      h.counts[b] = impl_->hist_retired[def.slot_offset + b];
      for (const Shard* s : impl_->shards) {
        h.counts[b] +=
            s->hist[def.slot_offset + b].load(std::memory_order_relaxed);
      }
      h.total += h.counts[b];
    }
    snap.histograms.push_back(std::move(h));
  }
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::ResetValuesForTest() {
  MutexLock lock(impl_->mu);
  std::fill(impl_->counter_retired.begin(), impl_->counter_retired.end(), 0);
  std::fill(impl_->hist_retired.begin(), impl_->hist_retired.end(), 0);
  for (auto& g : impl_->gauges) g.store(0, std::memory_order_relaxed);
  for (Shard* s : impl_->shards) {
    for (auto& c : s->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : s->hist) h.store(0, std::memory_order_relaxed);
  }
}

std::int64_t MetricsRegistry::NumShardsForTest() const {
  MutexLock lock(impl_->mu);
  return static_cast<std::int64_t>(impl_->shards.size());
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

MetricsSnapshot MetricsSnapshot::DeltaFrom(
    const MetricsSnapshot& baseline) const {
  MetricsSnapshot out = *this;
  for (auto& [name, value] : out.counters) {
    const std::uint64_t base = baseline.counter(name);
    value = value >= base ? value - base : 0;
  }
  return out;
}

}  // namespace e2gcl
