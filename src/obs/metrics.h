#ifndef E2GCL_OBS_METRICS_H_
#define E2GCL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace e2gcl {

/// Process-wide runtime metrics: monotonic counters, gauges, and
/// fixed-bucket histograms.
///
/// Design rules (see DESIGN.md "Observability"):
///  * Counters and histograms are written through per-thread *shards*
///    (one cache-local slot array per thread) and summed at snapshot
///    time in ascending shard-registration order. All shard slots are
///    integers, so the merged totals are exact under any regrouping —
///    the same no-float-atomics reasoning the threading model uses for
///    kernel reductions. Counters recorded by deterministic code paths
///    are therefore bit-identical at any `E2GCL_NUM_THREADS`.
///  * Gauges are single atomic cells (last-write-wins) meant for
///    scheduling-dependent quantities (queue depth, worker utilization);
///    they are *excluded* from determinism comparisons.
///  * The whole subsystem is disabled by `E2GCL_OBS=off` (or `0`) in the
///    environment, or SetObsEnabled(false). Disabled, every record call
///    returns after one relaxed atomic load — no locks, no allocation,
///    and no thread shard is ever created.
///
/// Metric definitions are permanent for the process lifetime (ids are
/// never recycled); values can be zeroed with ResetValuesForTest().
///
/// Locking: the registry's single internal mutex (an annotated
/// e2gcl::Mutex; see core/thread_annotations.h) guards only the name/
/// definition tables and the shard list. The hot record paths touch
/// nothing but relaxed atomics, so they never contend with snapshots
/// or with each other.

/// True when metric/span recording is active.
bool ObsEnabled();

/// Overrides the E2GCL_OBS environment default (CLI --obs-off, tests).
void SetObsEnabled(bool enabled);

class MetricsRegistry;

/// Monotonic counter handle. Cheap to copy; obtain via Counter::Get
/// (typically cached in a function-local static).
class Counter {
 public:
  /// Registers (or finds) the counter named `name`.
  static Counter Get(const std::string& name);

  /// Adds `delta` to this thread's shard slot.
  void Add(std::uint64_t delta) const;
  void Increment() const { Add(1); }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::int32_t id) : id_(id) {}
  std::int32_t id_;
};

/// Gauge handle: a settable signed value (last write wins).
class Gauge {
 public:
  static Gauge Get(const std::string& name);

  void Set(std::int64_t value) const;
  void Add(std::int64_t delta) const;
  /// Raises the gauge to `value` if it is below it (atomic max).
  void Max(std::int64_t value) const;

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::int32_t id) : id_(id) {}
  std::int32_t id_;
};

/// Fixed-bucket histogram handle. A histogram with upper bounds
/// {b_0 < b_1 < ... < b_{k-1}} has k+1 buckets: value v lands in the
/// first bucket with v <= b_i, or the overflow bucket when v > b_{k-1}.
class Histogram {
 public:
  /// Registers (or finds) the histogram. Bounds must be strictly
  /// increasing and are fixed by the first registration; later calls
  /// with the same name ignore `bounds`.
  static Histogram Get(const std::string& name,
                       const std::vector<std::int64_t>& bounds);

  void Record(std::int64_t value) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::int32_t id) : id_(id) {}
  std::int32_t id_;
};

/// One histogram's merged state.
struct HistogramSnapshot {
  std::string name;
  std::vector<std::int64_t> bounds;   // upper bounds, size k
  std::vector<std::uint64_t> counts;  // size k + 1 (last = overflow)
  std::uint64_t total = 0;
};

/// Point-in-time view of every metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a named counter (0 when absent).
  std::uint64_t counter(const std::string& name) const;
  /// Counters as `current - baseline` (names from `*this`; a counter
  /// missing from `baseline` keeps its full value). Gauges/histograms
  /// are copied as-is — they are not meaningfully subtractable.
  MetricsSnapshot DeltaFrom(const MetricsSnapshot& baseline) const;
};

/// The process-wide registry behind the handle types.
class MetricsRegistry {
 public:
  /// Opaque state; defined in metrics.cc (public so that file's helper
  /// functions — shard adoption/retirement — can name it).
  struct Impl;

  static MetricsRegistry& Get();

  /// Merges all shards (ascending shard order) plus retired totals.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every counter/gauge/histogram value in every live shard and
  /// the retired totals. Definitions (names, ids, bounds) survive.
  /// Test-only: must not race with concurrent recording.
  void ResetValuesForTest();

  /// Number of live per-thread shards (test introspection: disabled-mode
  /// recording must never create one).
  std::int64_t NumShardsForTest() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  MetricsRegistry();
  Impl* impl_;
};

}  // namespace e2gcl

#endif  // E2GCL_OBS_METRICS_H_
