#include "obs/trace.h"

#include <atomic>
#include <chrono>

#include "core/thread_annotations.h"

namespace e2gcl {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct TraceRegistry::Impl {
  struct Node {
    std::string name;
    Node* parent = nullptr;
    std::vector<Node*> children;  // creation order
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::int64_t> total_ns{0};
  };

  mutable Mutex mu;
  /// Unnamed sentinel; top-level spans are its children. The tree
  /// *shape* (children vectors) is guarded by mu — Resolve locks to
  /// mutate, Flatten/Reset require the lock — while per-node counters
  /// are relaxed atomics bumped lock-free by ~TraceSpan. TraceSpan's
  /// constructor only takes the root's address, never reads the tree.
  Node root;

  Impl() { root.name = ""; }

  /// Finds or creates the child of `parent` named `name`.
  Node* Resolve(Node* parent, const char* name) E2GCL_EXCLUDES(mu) {
    MutexLock lock(mu);
    for (Node* c : parent->children) {
      if (c->name == name) return c;
    }
    // e2gcl-lint: allow(naked-new-delete): trace nodes intentionally live for the process lifetime (leaked arena)
    Node* node = new Node();
    node->name = name;
    node->parent = parent;
    parent->children.push_back(node);
    return node;
  }

  void Flatten(const Node* node, const std::string& prefix,
               std::vector<SpanSnapshot>* out) const E2GCL_REQUIRES(mu) {
    for (const Node* c : node->children) {
      const std::string path = prefix.empty() ? c->name : prefix + "/" + c->name;
      SpanSnapshot snap;
      snap.path = path;
      snap.count = c->count.load(std::memory_order_relaxed);
      snap.seconds =
          static_cast<double>(c->total_ns.load(std::memory_order_relaxed)) *
          1e-9;
      out->push_back(std::move(snap));
      Flatten(c, path, out);
    }
  }

  void Reset(Node* node) E2GCL_REQUIRES(mu) {
    for (Node* c : node->children) {
      c->count.store(0, std::memory_order_relaxed);
      c->total_ns.store(0, std::memory_order_relaxed);
      Reset(c);
    }
  }
};

namespace {

TraceRegistry::Impl* TraceImpl() {
  // Leaked singleton: spans may complete during static destruction.
  // e2gcl-lint: allow(naked-new-delete): intentionally leaked process-lifetime singleton (safe during static destruction)
  static TraceRegistry::Impl* impl = new TraceRegistry::Impl();
  return impl;
}

thread_local TraceRegistry::Impl::Node* t_current_span = nullptr;

}  // namespace

TraceRegistry::TraceRegistry() : impl_(TraceImpl()) {}

TraceRegistry& TraceRegistry::Get() {
  // e2gcl-lint: allow(naked-new-delete): intentionally leaked process-lifetime singleton (safe during static destruction)
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

std::vector<SpanSnapshot> TraceRegistry::Snapshot() const {
  MutexLock lock(impl_->mu);
  std::vector<SpanSnapshot> out;
  impl_->Flatten(&impl_->root, "", &out);
  return out;
}

void TraceRegistry::ResetValuesForTest() {
  MutexLock lock(impl_->mu);
  impl_->Reset(&impl_->root);
}

TraceSpan::TraceSpan(const char* name) {
  if (!ObsEnabled()) return;
  TraceRegistry::Impl* impl = TraceImpl();
  TraceRegistry::Impl::Node* parent =
      t_current_span != nullptr ? t_current_span : &impl->root;
  TraceRegistry::Impl::Node* node = impl->Resolve(parent, name);
  parent_ = t_current_span;
  t_current_span = node;
  node_ = node;
  start_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (node_ == nullptr) return;
  auto* node = static_cast<TraceRegistry::Impl::Node*>(node_);
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->total_ns.fetch_add(NowNs() - start_ns_, std::memory_order_relaxed);
  t_current_span = static_cast<TraceRegistry::Impl::Node*>(parent_);
}

}  // namespace e2gcl
