#include "obs/run_report.h"

#include "io/json.h"

namespace e2gcl {

namespace {

JsonValue CountersToJson(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  JsonValue obj = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    obj.Set(name, JsonValue::Int(static_cast<std::int64_t>(value)));
  }
  return obj;
}

std::vector<std::pair<std::string, std::uint64_t>> CountersFromJson(
    const JsonValue& obj, bool* ok) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  if (!obj.is_object()) {
    *ok = false;
    return out;
  }
  for (const auto& [name, value] : obj.members()) {
    if (!value.is_number()) {
      *ok = false;
      return out;
    }
    out.emplace_back(name, static_cast<std::uint64_t>(value.AsInt()));
  }
  return out;
}

bool GetString(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_string()) return false;
  *out = v->AsString();
  return true;
}

bool GetInt(const JsonValue& obj, const char* key, std::int64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->AsInt();
  return true;
}

bool GetDouble(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->AsDouble();
  return true;
}

bool GetBool(const JsonValue& obj, const char* key, bool* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_bool()) return false;
  *out = v->AsBool();
  return true;
}

bool Err(std::string* error, const std::string& msg) {
  if (error != nullptr && error->empty()) *error = msg;
  return false;
}

}  // namespace

bool SaveRunReport(const std::string& path, const RunReport& report) {
  JsonValue root = JsonValue::Object();
  root.Set("schema", JsonValue::Str("e2gcl.run_report"));
  root.Set("version", JsonValue::Int(RunReport::kVersion));
  root.Set("config_fingerprint", JsonValue::Str(report.config_fingerprint));
  root.Set("seed", JsonValue::Int(static_cast<std::int64_t>(report.seed)));
  root.Set("threads", JsonValue::Int(report.threads));
  root.Set("status", JsonValue::Str(report.status));
  root.Set("resumed", JsonValue::Bool(report.resumed));
  root.Set("start_epoch", JsonValue::Int(report.start_epoch));
  root.Set("retries_used", JsonValue::Int(report.retries_used));
  root.Set("selection_seconds", JsonValue::Double(report.selection_seconds));
  root.Set("total_seconds", JsonValue::Double(report.total_seconds));

  JsonValue epochs = JsonValue::Array();
  for (const RunReport::Epoch& e : report.epochs) {
    JsonValue obj = JsonValue::Object();
    obj.Set("epoch", JsonValue::Int(e.epoch));
    obj.Set("loss", JsonValue::Double(e.loss));
    obj.Set("view_seconds", JsonValue::Double(e.view_seconds));
    obj.Set("loss_seconds", JsonValue::Double(e.loss_seconds));
    obj.Set("step_seconds", JsonValue::Double(e.step_seconds));
    obj.Set("checkpoint_seconds", JsonValue::Double(e.checkpoint_seconds));
    obj.Set("counters", CountersToJson(e.counters));
    epochs.Append(std::move(obj));
  }
  root.Set("epochs", std::move(epochs));

  JsonValue events = JsonValue::Array();
  for (const RunReport::Event& e : report.events) {
    JsonValue obj = JsonValue::Object();
    obj.Set("kind", JsonValue::Str(e.kind));
    obj.Set("epoch", JsonValue::Int(e.epoch));
    obj.Set("detail", JsonValue::Str(e.detail));
    events.Append(std::move(obj));
  }
  root.Set("events", std::move(events));

  root.Set("counters", CountersToJson(report.metrics.counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : report.metrics.gauges) {
    gauges.Set(name, JsonValue::Int(value));
  }
  root.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::Object();
  for (const HistogramSnapshot& h : report.metrics.histograms) {
    JsonValue obj = JsonValue::Object();
    JsonValue bounds = JsonValue::Array();
    for (const std::int64_t b : h.bounds) bounds.Append(JsonValue::Int(b));
    JsonValue counts = JsonValue::Array();
    for (const std::uint64_t c : h.counts) {
      counts.Append(JsonValue::Int(static_cast<std::int64_t>(c)));
    }
    obj.Set("bounds", std::move(bounds));
    obj.Set("counts", std::move(counts));
    histograms.Set(h.name, std::move(obj));
  }
  root.Set("histograms", std::move(histograms));

  JsonValue spans = JsonValue::Array();
  for (const SpanSnapshot& s : report.spans) {
    JsonValue obj = JsonValue::Object();
    obj.Set("path", JsonValue::Str(s.path));
    obj.Set("count", JsonValue::Int(static_cast<std::int64_t>(s.count)));
    obj.Set("seconds", JsonValue::Double(s.seconds));
    spans.Append(std::move(obj));
  }
  root.Set("spans", std::move(spans));

  return WriteJsonFile(path, root);
}

bool LoadRunReport(const std::string& path, RunReport* out,
                   std::string* error) {
  if (error != nullptr) error->clear();
  JsonValue root;
  if (!LoadJsonFile(path, &root, error)) return false;
  if (!root.is_object()) return Err(error, path + ": not a JSON object");

  std::string schema;
  if (!GetString(root, "schema", &schema) || schema != "e2gcl.run_report") {
    return Err(error, path + ": missing or wrong schema tag");
  }
  std::int64_t version = 0;
  if (!GetInt(root, "version", &version)) {
    return Err(error, path + ": missing version");
  }
  if (version < 1 || version > RunReport::kVersion) {
    return Err(error, path + ": unsupported run_report version " +
                          std::to_string(version));
  }

  RunReport report;
  std::int64_t seed = 0;
  std::int64_t threads = 0;
  std::int64_t start_epoch = 0;
  std::int64_t retries = 0;
  if (!GetString(root, "config_fingerprint", &report.config_fingerprint) ||
      !GetInt(root, "seed", &seed) || !GetInt(root, "threads", &threads) ||
      !GetString(root, "status", &report.status) ||
      !GetBool(root, "resumed", &report.resumed) ||
      !GetInt(root, "start_epoch", &start_epoch) ||
      !GetInt(root, "retries_used", &retries) ||
      !GetDouble(root, "selection_seconds", &report.selection_seconds) ||
      !GetDouble(root, "total_seconds", &report.total_seconds)) {
    return Err(error, path + ": missing or mistyped header field");
  }
  report.seed = static_cast<std::uint64_t>(seed);
  report.threads = static_cast<int>(threads);
  report.start_epoch = static_cast<int>(start_epoch);
  report.retries_used = static_cast<int>(retries);

  const JsonValue* epochs = root.Find("epochs");
  if (epochs == nullptr || !epochs->is_array()) {
    return Err(error, path + ": missing epochs array");
  }
  for (const JsonValue& e : epochs->items()) {
    RunReport::Epoch epoch;
    std::int64_t num = 0;
    if (!e.is_object() || !GetInt(e, "epoch", &num) ||
        !GetDouble(e, "loss", &epoch.loss) ||
        !GetDouble(e, "view_seconds", &epoch.view_seconds) ||
        !GetDouble(e, "loss_seconds", &epoch.loss_seconds) ||
        !GetDouble(e, "step_seconds", &epoch.step_seconds) ||
        !GetDouble(e, "checkpoint_seconds", &epoch.checkpoint_seconds)) {
      return Err(error, path + ": malformed epoch record");
    }
    epoch.epoch = static_cast<int>(num);
    const JsonValue* counters = e.Find("counters");
    if (counters == nullptr) return Err(error, path + ": epoch lacks counters");
    bool ok = true;
    epoch.counters = CountersFromJson(*counters, &ok);
    if (!ok) return Err(error, path + ": malformed epoch counters");
    report.epochs.push_back(std::move(epoch));
  }

  const JsonValue* events = root.Find("events");
  if (events == nullptr || !events->is_array()) {
    return Err(error, path + ": missing events array");
  }
  for (const JsonValue& e : events->items()) {
    RunReport::Event event;
    std::int64_t num = 0;
    if (!e.is_object() || !GetString(e, "kind", &event.kind) ||
        !GetInt(e, "epoch", &num) || !GetString(e, "detail", &event.detail)) {
      return Err(error, path + ": malformed event record");
    }
    event.epoch = static_cast<int>(num);
    report.events.push_back(std::move(event));
  }

  const JsonValue* counters = root.Find("counters");
  if (counters == nullptr) return Err(error, path + ": missing counters");
  bool ok = true;
  report.metrics.counters = CountersFromJson(*counters, &ok);
  if (!ok) return Err(error, path + ": malformed counters");

  const JsonValue* gauges = root.Find("gauges");
  if (gauges == nullptr || !gauges->is_object()) {
    return Err(error, path + ": missing gauges");
  }
  for (const auto& [name, value] : gauges->members()) {
    if (!value.is_number()) return Err(error, path + ": malformed gauge");
    report.metrics.gauges.emplace_back(name, value.AsInt());
  }

  const JsonValue* histograms = root.Find("histograms");
  if (histograms == nullptr || !histograms->is_object()) {
    return Err(error, path + ": missing histograms");
  }
  for (const auto& [name, value] : histograms->members()) {
    const JsonValue* bounds = value.Find("bounds");
    const JsonValue* counts = value.Find("counts");
    if (bounds == nullptr || !bounds->is_array() || counts == nullptr ||
        !counts->is_array() ||
        counts->items().size() != bounds->items().size() + 1) {
      return Err(error, path + ": malformed histogram '" + name + "'");
    }
    HistogramSnapshot h;
    h.name = name;
    for (const JsonValue& b : bounds->items()) {
      if (!b.is_number()) return Err(error, path + ": malformed histogram");
      h.bounds.push_back(b.AsInt());
    }
    for (const JsonValue& c : counts->items()) {
      if (!c.is_number()) return Err(error, path + ": malformed histogram");
      h.counts.push_back(static_cast<std::uint64_t>(c.AsInt()));
      h.total += h.counts.back();
    }
    report.metrics.histograms.push_back(std::move(h));
  }

  const JsonValue* spans = root.Find("spans");
  if (spans == nullptr || !spans->is_array()) {
    return Err(error, path + ": missing spans");
  }
  for (const JsonValue& s : spans->items()) {
    SpanSnapshot span;
    std::int64_t count = 0;
    if (!s.is_object() || !GetString(s, "path", &span.path) ||
        !GetInt(s, "count", &count) ||
        !GetDouble(s, "seconds", &span.seconds)) {
      return Err(error, path + ": malformed span record");
    }
    span.count = static_cast<std::uint64_t>(count);
    report.spans.push_back(std::move(span));
  }

  *out = std::move(report);
  return true;
}

}  // namespace e2gcl
