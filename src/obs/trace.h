#ifndef E2GCL_OBS_TRACE_H_
#define E2GCL_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"  // ObsEnabled / SetObsEnabled

namespace e2gcl {

/// One aggregated node of the span tree, flattened to a '/'-joined path
/// (e.g. "train/epoch/views"). `count` is the number of completed spans
/// at this position; `seconds` their summed wall time (steady clock).
struct SpanSnapshot {
  std::string path;
  std::uint64_t count = 0;
  double seconds = 0.0;
};

/// Process-wide span-tree registry. Nodes are keyed (parent, name) and
/// permanent for the process lifetime; totals can be zeroed with
/// ResetValuesForTest(). Aggregation is per-node integer nanosecond
/// sums, so merged totals do not depend on completion order.
///
/// Locking: one annotated internal mutex (core/thread_annotations.h)
/// guards the tree *shape*; per-node totals are relaxed atomics, so
/// completing a span never takes a lock.
class TraceRegistry {
 public:
  /// Opaque state; defined in trace.cc (public so that file's helper
  /// functions can name it).
  struct Impl;

  static TraceRegistry& Get();

  /// Pre-order flattening of the tree (children in creation order).
  std::vector<SpanSnapshot> Snapshot() const;

  /// Zeroes all counts/durations; the tree structure survives.
  /// Test-only: must not race with concurrent span completion.
  void ResetValuesForTest();

 private:
  friend class TraceSpan;
  TraceRegistry();
  Impl* impl_;
};

/// RAII scoped timer. Nesting is tracked per thread: a span constructed
/// while another span on the same thread is open becomes its child in
/// the tree. When observability is disabled the constructor returns
/// after one relaxed load — no clock read, no lock, no allocation.
///
///   {
///     TraceSpan span("epoch");
///     ...
///   }  // duration recorded here
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void* node_ = nullptr;    // TraceRegistry::Impl::Node*; null when disabled
  void* parent_ = nullptr;  // previous thread-local current span node
  std::int64_t start_ns_ = 0;
};

}  // namespace e2gcl

#endif  // E2GCL_OBS_TRACE_H_
