#ifndef E2GCL_OBS_REPORT_COMPARE_H_
#define E2GCL_OBS_REPORT_COMPARE_H_

#include <string>
#include <vector>

namespace e2gcl {

/// Options for comparing two telemetry files (run reports or
/// BENCH_*.json micro-benchmark dumps).
struct CompareOptions {
  /// A timing in the candidate file counts as a regression when it
  /// exceeds `baseline * threshold` (default: 25% slower).
  double threshold = 1.25;
  /// For run reports: also require the run-level counter maps to be
  /// identical (the determinism contract). Counter mismatches are
  /// reported as regressions.
  bool require_equal_counters = false;
};

/// Outcome of a comparison. `error` is non-empty for usage-level
/// failures (missing/corrupt/mismatched files); `regressions` lists
/// threshold violations; `notes` carries informational diffs (records
/// present in only one file, improvements).
struct CompareResult {
  bool ok = false;  // true iff no error and no regressions
  std::vector<std::string> regressions;
  std::vector<std::string> notes;
  std::string error;
};

/// Compares `baseline_path` against `candidate_path`. The file format —
/// run_report.json object vs. BENCH array — is auto-detected; both
/// files must be the same format.
CompareResult CompareReportFiles(const std::string& baseline_path,
                                 const std::string& candidate_path,
                                 const CompareOptions& options);

/// Process exit code for a result: 0 ok, 1 regression(s), 2 error.
int CompareExitCode(const CompareResult& result);

}  // namespace e2gcl

#endif  // E2GCL_OBS_REPORT_COMPARE_H_
