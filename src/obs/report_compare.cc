#include "obs/report_compare.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "io/json.h"
#include "obs/run_report.h"

namespace e2gcl {

namespace {

/// Timings below this are clock noise; never flag them as regressions.
constexpr double kMinComparableSeconds = 1e-6;
constexpr double kMinComparableNs = 1.0;

std::string FormatRatio(double baseline, double candidate) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g -> %.6g (%.2fx)", baseline, candidate,
                candidate / baseline);
  return buf;
}

void CompareTiming(const std::string& label, double baseline, double candidate,
                   double min_comparable, const CompareOptions& options,
                   CompareResult* result) {
  if (baseline < min_comparable) return;
  if (candidate > baseline * options.threshold) {
    result->regressions.push_back(label + ": " +
                                  FormatRatio(baseline, candidate));
  } else if (baseline > candidate * options.threshold) {
    result->notes.push_back(label + " improved: " +
                            FormatRatio(baseline, candidate));
  }
}

double SumStage(const RunReport& report, double RunReport::Epoch::* field) {
  double total = 0.0;
  for (const RunReport::Epoch& e : report.epochs) total += e.*field;
  return total;
}

void CompareRunReports(const RunReport& a, const RunReport& b,
                       const CompareOptions& options, CompareResult* result) {
  if (a.config_fingerprint != b.config_fingerprint) {
    result->notes.push_back("config fingerprints differ (" +
                            a.config_fingerprint + " vs " +
                            b.config_fingerprint + ")");
  }
  CompareTiming("total_seconds", a.total_seconds, b.total_seconds,
                kMinComparableSeconds, options, result);
  CompareTiming("selection_seconds", a.selection_seconds, b.selection_seconds,
                kMinComparableSeconds, options, result);
  CompareTiming("epoch view_seconds",
                SumStage(a, &RunReport::Epoch::view_seconds),
                SumStage(b, &RunReport::Epoch::view_seconds),
                kMinComparableSeconds, options, result);
  CompareTiming("epoch loss_seconds",
                SumStage(a, &RunReport::Epoch::loss_seconds),
                SumStage(b, &RunReport::Epoch::loss_seconds),
                kMinComparableSeconds, options, result);
  CompareTiming("epoch step_seconds",
                SumStage(a, &RunReport::Epoch::step_seconds),
                SumStage(b, &RunReport::Epoch::step_seconds),
                kMinComparableSeconds, options, result);
  CompareTiming("epoch checkpoint_seconds",
                SumStage(a, &RunReport::Epoch::checkpoint_seconds),
                SumStage(b, &RunReport::Epoch::checkpoint_seconds),
                kMinComparableSeconds, options, result);

  if (options.require_equal_counters) {
    std::map<std::string, std::uint64_t> counters_a(
        a.metrics.counters.begin(), a.metrics.counters.end());
    std::map<std::string, std::uint64_t> counters_b(
        b.metrics.counters.begin(), b.metrics.counters.end());
    for (const auto& [name, value] : counters_a) {
      const auto it = counters_b.find(name);
      if (it == counters_b.end()) {
        result->regressions.push_back("counter '" + name +
                                      "' missing from candidate");
      } else if (it->second != value) {
        result->regressions.push_back(
            "counter '" + name + "' differs: " + std::to_string(value) +
            " vs " + std::to_string(it->second));
      }
    }
    for (const auto& [name, value] : counters_b) {
      if (counters_a.find(name) == counters_a.end()) {
        result->regressions.push_back("counter '" + name +
                                      "' missing from baseline");
      }
    }
  }
}

/// One record of a BENCH_*.json array.
struct BenchRecord {
  std::string name;
  std::int64_t threads = 0;
  double ns_per_iter = 0.0;
};

bool ParseBenchArray(const JsonValue& root, const std::string& path,
                     std::map<std::string, BenchRecord>* out,
                     std::string* error) {
  for (const JsonValue& item : root.items()) {
    const JsonValue* name = item.Find("name");
    const JsonValue* threads = item.Find("threads");
    const JsonValue* ns = item.Find("ns_per_iter");
    if (name == nullptr || !name->is_string() || threads == nullptr ||
        !threads->is_number() || ns == nullptr || !ns->is_number()) {
      *error = path + ": malformed bench record";
      return false;
    }
    BenchRecord rec;
    rec.name = name->AsString();
    rec.threads = threads->AsInt();
    rec.ns_per_iter = ns->AsDouble();
    // `name` already encodes the size sweep; threads disambiguates the
    // thread sweep runs that share a name.
    const std::string key = rec.name + "#t" + std::to_string(rec.threads);
    (*out)[key] = std::move(rec);
  }
  return true;
}

void CompareBenchFiles(const std::map<std::string, BenchRecord>& a,
                       const std::map<std::string, BenchRecord>& b,
                       const CompareOptions& options, CompareResult* result) {
  for (const auto& [key, rec_a] : a) {
    const auto it = b.find(key);
    if (it == b.end()) {
      result->notes.push_back("bench '" + key + "' missing from candidate");
      continue;
    }
    CompareTiming("bench " + key, rec_a.ns_per_iter, it->second.ns_per_iter,
                  kMinComparableNs, options, result);
  }
  for (const auto& [key, rec_b] : b) {
    if (a.find(key) == a.end()) {
      result->notes.push_back("bench '" + key + "' missing from baseline");
    }
  }
}

bool IsRunReportJson(const JsonValue& v) {
  if (!v.is_object()) return false;
  const JsonValue* schema = v.Find("schema");
  return schema != nullptr && schema->is_string() &&
         schema->AsString() == "e2gcl.run_report";
}

}  // namespace

CompareResult CompareReportFiles(const std::string& baseline_path,
                                 const std::string& candidate_path,
                                 const CompareOptions& options) {
  CompareResult result;
  if (!(options.threshold > 0.0)) {
    result.error = "threshold must be positive";
    return result;
  }

  JsonValue a;
  JsonValue b;
  if (!LoadJsonFile(baseline_path, &a, &result.error)) return result;
  if (!LoadJsonFile(candidate_path, &b, &result.error)) return result;

  const bool a_report = IsRunReportJson(a);
  const bool b_report = IsRunReportJson(b);
  if (a_report != b_report || a.is_array() != b.is_array()) {
    result.error = "file formats differ ('" + baseline_path + "' vs '" +
                   candidate_path + "')";
    return result;
  }

  if (a_report) {
    RunReport report_a;
    RunReport report_b;
    if (!LoadRunReport(baseline_path, &report_a, &result.error)) return result;
    if (!LoadRunReport(candidate_path, &report_b, &result.error)) return result;
    CompareRunReports(report_a, report_b, options, &result);
  } else if (a.is_array()) {
    std::map<std::string, BenchRecord> recs_a;
    std::map<std::string, BenchRecord> recs_b;
    if (!ParseBenchArray(a, baseline_path, &recs_a, &result.error)) {
      return result;
    }
    if (!ParseBenchArray(b, candidate_path, &recs_b, &result.error)) {
      return result;
    }
    CompareBenchFiles(recs_a, recs_b, options, &result);
  } else {
    result.error = "'" + baseline_path +
                   "' is neither a run report nor a BENCH array";
    return result;
  }

  result.ok = result.error.empty() && result.regressions.empty();
  return result;
}

int CompareExitCode(const CompareResult& result) {
  if (!result.error.empty()) return 2;
  return result.regressions.empty() ? 0 : 1;
}

}  // namespace e2gcl
