#ifndef E2GCL_OBS_RUN_REPORT_H_
#define E2GCL_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace e2gcl {

/// Versioned, machine-readable record of one Train() call.
///
/// Schema v1 (JSON object):
///   schema              "e2gcl.run_report"
///   version             1
///   config_fingerprint  hex string (u64 fingerprints exceed the exact
///                       double range, so they travel as strings)
///   seed, threads       integers
///   status              "ok" | "diverged" | "killed"
///   resumed, start_epoch, retries_used
///   selection_seconds, total_seconds
///   epochs[]            {epoch, loss, view_seconds, loss_seconds,
///                        step_seconds, checkpoint_seconds,
///                        counters{name: delta-from-train-start}}
///   events[]            {kind, epoch, detail}
///   counters{}, gauges{}                whole-run metric values
///   histograms{name: {bounds[], counts[]}}
///   spans[]             {path, count, seconds}
///
/// Determinism contract: every `counters` map (run-level and per-epoch)
/// is bit-identical across runs with the same config/seed at any thread
/// count. Timings, gauges, and span seconds are wall-clock and excluded.

struct RunReport {
  struct Epoch {
    int epoch = 0;
    double loss = 0.0;
    double view_seconds = 0.0;
    double loss_seconds = 0.0;
    double step_seconds = 0.0;
    double checkpoint_seconds = 0.0;
    /// Counter deltas from the Train() entry snapshot, sorted by name.
    std::vector<std::pair<std::string, std::uint64_t>> counters;
  };

  struct Event {
    std::string kind;  // "retry" | "diverged" | "killed" | ...
    int epoch = 0;
    std::string detail;
  };

  static constexpr int kVersion = 1;

  std::string config_fingerprint;  // 16 hex digits
  std::uint64_t seed = 0;
  int threads = 0;
  std::string status;  // "ok" | "diverged" | "killed"
  bool resumed = false;
  int start_epoch = 0;
  int retries_used = 0;
  double selection_seconds = 0.0;
  double total_seconds = 0.0;
  std::vector<Epoch> epochs;
  std::vector<Event> events;
  MetricsSnapshot metrics;  // whole-run counters/gauges/histograms
  std::vector<SpanSnapshot> spans;
};

/// Serializes `report` as schema-v1 JSON and writes it atomically.
/// Returns false on any I/O failure.
bool SaveRunReport(const std::string& path, const RunReport& report);

/// Loads and validates a run report. Returns false — with a message in
/// `error` when non-null — on missing/corrupt files, a wrong `schema`
/// tag, or a `version` above kVersion.
bool LoadRunReport(const std::string& path, RunReport* out,
                   std::string* error = nullptr);

}  // namespace e2gcl

#endif  // E2GCL_OBS_RUN_REPORT_H_
