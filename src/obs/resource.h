#ifndef E2GCL_OBS_RESOURCE_H_
#define E2GCL_OBS_RESOURCE_H_

#include <cstdint>

namespace e2gcl {

/// Process resource sampling for the scale-out memory story.
///
/// PeakRssBytes() is the process-LIFETIME high-water mark (VmHWM): it
/// never decreases, so a phase that wants a clean peak measurement must
/// run in its own process (tools/check_scale.sh generates the graph
/// store and trains in two separate processes for exactly this reason).

/// Peak resident-set size of the calling process in bytes, from
/// /proc/self/status VmHWM, falling back to getrusage(ru_maxrss).
/// Returns 0 when neither source is available.
std::int64_t PeakRssBytes();

/// Current resident-set size in bytes (/proc/self/status VmRSS;
/// 0 when unavailable).
std::int64_t CurrentRssBytes();

/// Samples PeakRssBytes() into the `process.peak_rss_bytes` gauge
/// (atomic max, so repeated samples only ever raise it). Gauges are
/// excluded from determinism comparisons, which is exactly right for a
/// scheduling- and allocator-dependent quantity.
void RecordPeakRssGauge();

}  // namespace e2gcl

#endif  // E2GCL_OBS_RESOURCE_H_
