#ifndef E2GCL_NET_PROTOCOL_H_
#define E2GCL_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/serve_status.h"

namespace e2gcl {
namespace net {

/// Length-prefixed binary framing for the serving protocol.
///
/// Every message — request or response — is one frame:
///
///   u32 magic   0x4532474E ("E2GN")
///   u8  version kProtocolVersion (readers reject anything newer)
///   u8  type    FrameType
///   u16 flags   reserved, must be zero
///   u64 request_id  echoed verbatim in the matching response
///   u32 payload_len <= kMaxPayload
///   u32 payload_crc CRC32 (io/serialize.h) of the payload bytes
///   payload_len payload bytes
///
/// All integers are little-endian (same convention as the checkpoint
/// state files). The fixed header is kFrameHeaderSize bytes; a reader
/// can always consume exactly the header, validate it, then consume
/// exactly payload_len more. Framing errors (bad magic, unsupported
/// version, oversized declared length, CRC mismatch) poison the byte
/// stream, so the server answers them with one kError frame and closes
/// the connection; payload-level errors (unknown type, truncated
/// fields, out-of-range node ids) keep the stream intact and are
/// answered in-band without closing. See DESIGN.md "Network protocol".

inline constexpr std::uint32_t kProtocolMagic = 0x4532474E;  // "E2GN"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 24;
/// Upper bound on a declared payload. Far above any legitimate message
/// (the largest is a TopK response, 12 bytes per hit) but small enough
/// that a hostile length can never balloon a connection buffer.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class FrameType : std::uint8_t {
  // Requests.
  kGetEmbedding = 1,
  kScoreLink = 2,
  kTopKSimilar = 3,
  kStats = 4,
  // Responses (request type | 0x80).
  kEmbeddingResponse = 0x81,
  kScoreResponse = 0x82,
  kTopKResponse = 0x83,
  kStatsResponse = 0x84,
  /// Typed protocol-level error (see WireError); the only frame a
  /// server may send for a request it could not decode.
  kError = 0x7F,
};

/// Protocol-level error codes carried by a kError frame. Serving-level
/// rejections (overloaded, deadline, shutdown, invalid node) are NOT
/// errors at this layer — they travel as regular typed responses whose
/// ServeStatus says what happened.
enum class WireError : std::uint8_t {
  kBadMagic = 1,
  kBadVersion = 2,
  kFrameTooLarge = 3,
  kBadCrc = 4,
  kBadFlags = 5,
  /// Valid framing, undecodable payload (unknown type, short fields,
  /// trailing bytes). Recoverable: the connection stays open.
  kBadRequest = 6,
  /// The server refused the connection itself (connection cap).
  kConnectionLimit = 7,
  /// HTTP request was malformed or oversized.
  kBadHttp = 8,
};

const char* WireErrorName(WireError e);

/// One decoded frame header (validated except for the CRC, which needs
/// the payload bytes).
struct FrameHeader {
  std::uint8_t version = 0;
  FrameType type = FrameType::kError;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// Decoded request payloads. node/k are validated by the server against
/// the model (the wire cannot know num_nodes).
struct GetEmbeddingRequest {
  std::int64_t node = 0;
  ServeRequestOptions options;
};

struct ScoreLinkRequest {
  std::int64_t u = 0;
  std::int64_t v = 0;
  ServeRequestOptions options;
};

struct TopKSimilarRequest {
  std::int64_t node = 0;
  std::int64_t k = 0;
  ServeRequestOptions options;
};

/// A request in decoded form: exactly one of the bodies is meaningful,
/// selected by `type`.
struct Request {
  FrameType type = FrameType::kGetEmbedding;
  std::uint64_t request_id = 0;
  GetEmbeddingRequest embed;
  ScoreLinkRequest score;
  TopKSimilarRequest topk;
};

/// Stats response payload: a JSON document string (schema documented in
/// DESIGN.md "Network protocol").
struct StatsResponse {
  ServeStatus status = ServeStatus::kOk;
  std::string json;
};

/// Decoded kError payload.
struct ErrorFrame {
  WireError code = WireError::kBadRequest;
  std::string message;
};

// --- Encoding (writer side). -------------------------------------------

/// Appends one whole frame (header + payload) to `out`.
void EncodeFrame(FrameType type, std::uint64_t request_id,
                 const std::string& payload, std::string* out);

std::string EncodeGetEmbedding(std::uint64_t request_id,
                               const GetEmbeddingRequest& req);
std::string EncodeScoreLink(std::uint64_t request_id,
                            const ScoreLinkRequest& req);
std::string EncodeTopKSimilar(std::uint64_t request_id,
                              const TopKSimilarRequest& req);
std::string EncodeStatsRequest(std::uint64_t request_id);

std::string EncodeEmbeddingResponse(std::uint64_t request_id,
                                    const EmbeddingResponse& r);
std::string EncodeScoreResponse(std::uint64_t request_id,
                                const ScoreResponse& r);
std::string EncodeTopKResponse(std::uint64_t request_id,
                               const TopKResponse& r);
std::string EncodeStatsResponse(std::uint64_t request_id,
                                const StatsResponse& r);
std::string EncodeError(std::uint64_t request_id, WireError code,
                        const std::string& message);

// --- Decoding (reader side). -------------------------------------------

/// Outcome of TryDecodeHeader: the stream either needs more bytes, has
/// a valid header, or is poisoned by a framing error.
enum class HeaderStatus : std::uint8_t {
  kNeedMore = 0,
  kOk = 1,
  kError = 2,
};

/// Inspects the first bytes of `buf`. kNeedMore when fewer than
/// kFrameHeaderSize bytes are available; kError (with `*error` set)
/// on bad magic / unsupported version / nonzero flags / oversized
/// declared length; kOk with `*header` filled otherwise. Does not
/// consume bytes.
HeaderStatus TryDecodeHeader(const std::string& buf, FrameHeader* header,
                             WireError* error);

/// CRC-checks `payload` against the header. False = kBadCrc.
bool VerifyPayload(const FrameHeader& header, const std::string& payload);

/// Decodes a request frame's payload (header.type must be a request
/// type). False on unknown type, short payload, trailing bytes, or
/// invalid field values (negative deadline, flag bytes other than
/// 0/1).
bool DecodeRequest(const FrameHeader& header, const std::string& payload,
                   Request* out);

/// Response decoding (client side). Each returns false on a malformed
/// payload or a status byte that is not a valid ServeStatus.
bool DecodeEmbeddingResponse(const std::string& payload, EmbeddingResponse* r);
bool DecodeScoreResponse(const std::string& payload, ScoreResponse* r);
bool DecodeTopKResponse(const std::string& payload, TopKResponse* r);
bool DecodeStatsResponse(const std::string& payload, StatsResponse* r);
bool DecodeError(const std::string& payload, ErrorFrame* out);

}  // namespace net
}  // namespace e2gcl

#endif  // E2GCL_NET_PROTOCOL_H_
