#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "io/json.h"
#include "obs/metrics.h"
#include "tensor/check.h"

namespace e2gcl {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

/// Largest k a TopK request may ask for: the response must fit one
/// frame (12 bytes per hit plus the status prefix).
constexpr std::int64_t kMaxTopK =
    static_cast<std::int64_t>((kMaxPayload - 64) / 12);

/// Event bits reported by the Poller.
constexpr unsigned kReadable = 1;
constexpr unsigned kWritable = 2;
constexpr unsigned kBroken = 4;

/// Bounded pending work across all connections; beyond it requests are
/// shed kOverloaded before they are even queued for a worker, so a
/// wedged serving queue cannot grow an unbounded deque in the net
/// layer.
constexpr std::size_t kWorkQueueCap = 4096;

/// True when the '&'-separated query string contains `key=value`.
bool HasQueryParam(const std::string& query, const std::string& key,
                   const std::string& value) {
  const std::string want = key + "=" + value;
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    if (query.compare(pos, amp - pos, want) == 0) return true;
    pos = amp + 1;
  }
  return false;
}

/// Registry metric name -> Prometheus metric name: [a-zA-Z0-9_:] only
/// (dots become underscores), `e2gcl_` namespace prefix.
std::string PromName(const std::string& name) {
  std::string out = "e2gcl_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

struct NetCounters {
  Counter accepted = Counter::Get("net.accepted");
  Counter conn_rejected = Counter::Get("net.conn.rejected");
  Counter closed = Counter::Get("net.closed");
  Counter frames_ok = Counter::Get("net.frames.ok");
  Counter frames_bad = Counter::Get("net.frames.bad");
  Counter rate_limited = Counter::Get("net.rate_limited");
  Counter rejected_shutdown = Counter::Get("net.rejected.shutdown");
  Counter rejected_invalid = Counter::Get("net.rejected.invalid");
  Counter rejected_pending = Counter::Get("net.rejected.pending");
  Counter requests = Counter::Get("net.requests");
  Counter responses = Counter::Get("net.responses");
  Counter http_requests = Counter::Get("net.http.requests");
  Counter idle_closed = Counter::Get("net.idle_closed");
  Gauge connections = Gauge::Get("net.connections");
};

NetCounters& CountersOf() {
  static NetCounters counters;
  return counters;
}

}  // namespace

// ---------------------------------------------------------------------
// Poller: epoll where available, poll(2) otherwise (or when forced).

class NetServer::Poller {
 public:
  explicit Poller(bool force_poll) : use_poll_(force_poll) {
#if !defined(__linux__)
    use_poll_ = true;
#endif
  }

  ~Poller() {
#if defined(__linux__)
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
  }

  bool Init(std::string* error) {
    if (use_poll_) return true;
#if defined(__linux__)
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
      *error = std::string("epoll_create1: ") + std::strerror(errno);
      return false;
    }
    return true;
#else
    *error = "epoll unavailable";
    return false;
#endif
  }

  void Add(int fd, bool want_write) {
    if (use_poll_) {
      interest_[fd] = want_write;
      return;
    }
#if defined(__linux__)
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
#endif
  }

  void Update(int fd, bool want_write) {
    if (use_poll_) {
      interest_[fd] = want_write;
      return;
    }
#if defined(__linux__)
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
#endif
  }

  void Remove(int fd) {
    if (use_poll_) {
      interest_.erase(fd);
      return;
    }
#if defined(__linux__)
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  }

  /// Fills `out` with (fd, event bits) pairs; returns the pair count
  /// (0 on timeout/EINTR, -1 on an unrecoverable poller error).
  int Wait(int timeout_ms, std::vector<std::pair<int, unsigned>>* out) {
    out->clear();
    if (use_poll_) {
      std::vector<struct pollfd> fds;
      fds.reserve(interest_.size());
      for (const auto& [fd, want_write] : interest_) {
        struct pollfd p;
        p.fd = fd;
        p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
        p.revents = 0;
        fds.push_back(p);
      }
      const int n = ::poll(fds.data(), fds.size(), timeout_ms);
      if (n < 0) return errno == EINTR ? 0 : -1;
      for (const struct pollfd& p : fds) {
        unsigned bits = 0;
        if ((p.revents & POLLIN) != 0) bits |= kReadable;
        if ((p.revents & POLLOUT) != 0) bits |= kWritable;
        if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
          bits |= kBroken;
        }
        if (bits != 0) out->push_back({p.fd, bits});
      }
      return static_cast<int>(out->size());
    }
#if defined(__linux__)
    std::vector<struct epoll_event> events(64);
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    for (int i = 0; i < n; ++i) {
      unsigned bits = 0;
      if ((events[i].events & EPOLLIN) != 0) bits |= kReadable;
      if ((events[i].events & EPOLLOUT) != 0) bits |= kWritable;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) bits |= kBroken;
      const int fd = events[i].data.fd;
      out->push_back({fd, bits});
    }
    return n;
#else
    return -1;
#endif
  }

 private:
  bool use_poll_;
#if defined(__linux__)
  int epoll_fd_ = -1;
#endif
  /// poll backend: fd -> want_write (ordered so the pollfd array, and
  /// therefore event delivery order, is deterministic).
  std::map<int, bool> interest_;
};

// ---------------------------------------------------------------------
// Connection state (event-loop-owned).

struct NetServer::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  bool http = false;
  bool probed = false;  // protocol decided from the first bytes
  std::string inbuf;
  std::string outbuf;
  std::size_t out_off = 0;
  bool close_after_flush = false;
  bool want_write = false;
  std::int64_t in_flight = 0;
  double tokens = 0.0;
  Clock::time_point last_refill;
  Clock::time_point last_activity;
};

struct NetServer::WorkItem {
  std::uint64_t conn_id = 0;
  Request request;
};

// ---------------------------------------------------------------------
// Lifecycle.

NetServer::NetServer(EmbeddingServer* server, const NetServerOptions& options)
    : server_(server), options_(options) {}

std::unique_ptr<NetServer> NetServer::Start(EmbeddingServer* server,
                                            const NetServerOptions& options,
                                            std::string* error) {
  E2GCL_CHECK(server != nullptr);
  // e2gcl-lint: allow(naked-new-delete): private ctor; owned by the
  // unique_ptr on this line
  std::unique_ptr<NetServer> net(new NetServer(server, options));
  if (!net->Init(error)) return nullptr;
  return net;
}

bool NetServer::Init(std::string* error) {
  if (options_.max_conns < 1 || options_.num_workers < 1 ||
      options_.rate_limit_qps < 0.0 || options_.rate_limit_burst < 0.0 ||
      options_.drain_grace_ms < 0 || options_.idle_timeout_ms < 0 ||
      options_.port < 0 || options_.port > 65535) {
    *error = "invalid NetServerOptions";
    return false;
  }
  poller_ = std::make_unique<Poller>(options_.force_poll);
  if (!poller_->Init(error)) return false;

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    *error = "bad bind address '" + options_.bind_address + "'";
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    return false;
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  if (::listen(listen_fd_, 128) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  SetNonBlocking(listen_fd_);

  poller_->Add(listen_fd_, /*want_write=*/false);
  poller_->Add(wake_read_fd_, /*want_write=*/false);

  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  loop_ = std::thread([this] { EventLoop(); });
  return true;
}

NetServer::~NetServer() {
  BeginShutdown();
  if (loop_.joinable()) loop_.join();
  {
    MutexLock lock(mu_);
    workers_stop_ = true;
    // Notified under the lock (project convention; see
    // thread_annotations.h) so the guarded stop flag and the wakeup
    // stay paired under the analysis.
    work_cv_.NotifyAll();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void NetServer::BeginShutdown() {
  shutdown_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    (void)::write(wake_write_fd_, &byte, 1);
  }
}

std::int64_t NetServer::num_connections() const {
  return live_conns_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------
// Event loop.

void NetServer::EventLoop() E2GCL_LOOP_BODY {
  NetCounters& counters = CountersOf();
  std::vector<std::pair<int, unsigned>> events;
  bool listener_open = true;
  bool drain_deadline_set = false;
  Clock::time_point drain_deadline;
  for (;;) {
    const bool shutting_down = shutdown_.load(std::memory_order_acquire);
    if (shutting_down && listener_open) {
      poller_->Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
      drain_deadline =
          Clock::now() + std::chrono::milliseconds(options_.drain_grace_ms);
      drain_deadline_set = true;
    }
    if (shutting_down && conns_.empty()) break;

    // e2gcl-lint: allow(blocking-in-event-loop): the poller is the
    // loop's single sanctioned block, bounded at 50 ms so shutdown and
    // housekeeping always make progress.
    const int n = poller_->Wait(/*timeout_ms=*/50, &events);
    if (n < 0) break;  // poller broke; nothing recoverable

    for (const auto& [fd, bits] : events) {
      if (fd == listen_fd_ && listener_open) {
        AcceptNew();
        continue;
      }
      if (fd == wake_read_fd_) {
        char buf[256];
        // e2gcl-lint: allow(blocking-in-event-loop): self-pipe read end
        // is O_NONBLOCK; the drain loop ends at EAGAIN, never blocks.
        while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      // Find the connection owning this fd. conns_ stays small
      // relative to event counts; an fd->id index would be premature.
      Conn* conn = nullptr;
      for (auto& [id, c] : conns_) {
        if (c->fd == fd) {
          conn = c.get();
          break;
        }
      }
      if (conn == nullptr) continue;
      if ((bits & kBroken) != 0 && (bits & kReadable) == 0) {
        CloseConn(conn->id);
        continue;
      }
      bool alive = true;
      if ((bits & kReadable) != 0) alive = ReadConn(conn);
      if (alive && (bits & kWritable) != 0) FlushConn(conn);
    }

    // Route worker completions to their connections.
    std::vector<std::pair<std::uint64_t, std::string>> done;
    {
      MutexLock lock(mu_);
      done.swap(completions_);
    }
    for (auto& [conn_id, bytes] : done) {
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;  // client left; drop the answer
      it->second->in_flight -= 1;
      counters.responses.Increment();
      QueueOutput(it->second.get(), bytes);
    }

    // Housekeeping: idle timeouts and shutdown draining.
    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> to_close;
    for (auto& [id, conn] : conns_) {
      if (options_.idle_timeout_ms > 0 && conn->in_flight == 0 &&
          conn->outbuf.empty() &&
          now - conn->last_activity >
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        counters.idle_closed.Increment();
        to_close.push_back(id);
        continue;
      }
      if (shutting_down) {
        const bool drained = conn->in_flight == 0 && conn->outbuf.empty();
        if (drained || (drain_deadline_set && now > drain_deadline)) {
          to_close.push_back(id);
        }
      }
    }
    for (std::uint64_t id : to_close) CloseConn(id);
  }
  // Force-close whatever is left (poller error path).
  while (!conns_.empty()) CloseConn(conns_.begin()->first);
}

void NetServer::AcceptNew() {
  NetCounters& counters = CountersOf();
  for (;;) {
    // e2gcl-lint: allow(blocking-in-event-loop): the listener is
    // O_NONBLOCK (SetNonBlocking in Init); accept returns EAGAIN
    // instead of blocking when the backlog is empty.
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: retry on the next
               // readiness notification
    }
    if (static_cast<std::int64_t>(conns_.size()) >= options_.max_conns ||
        shutdown_.load(std::memory_order_acquire)) {
      // Over the cap (or racing shutdown): one best-effort typed error
      // frame, then close. The socket was just accepted, so the small
      // write almost always fits the kernel buffer; if not, the close
      // alone is still a clean, protocol-visible rejection.
      const std::string frame =
          EncodeError(0, WireError::kConnectionLimit,
                      shutdown_.load(std::memory_order_acquire)
                          ? "server is shutting down"
                          : "connection limit reached");
      // e2gcl-lint: allow(blocking-in-event-loop): best-effort one-shot
      // write on a freshly accepted socket whose send buffer is empty;
      // a short write is acceptable (the close is the real rejection).
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      counters.conn_rejected.Increment();
      continue;
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->tokens = options_.rate_limit_burst > 0.0
                       ? options_.rate_limit_burst
                       : std::max(1.0, options_.rate_limit_qps);
    conn->last_refill = Clock::now();
    conn->last_activity = conn->last_refill;
    poller_->Add(fd, /*want_write=*/false);
    counters.accepted.Increment();
    const std::uint64_t id = conn->id;
    conns_.emplace(id, std::move(conn));
    live_conns_.store(static_cast<std::int64_t>(conns_.size()),
                      std::memory_order_release);
    counters.connections.Set(static_cast<std::int64_t>(conns_.size()));
  }
}

bool NetServer::ReadConn(Conn* conn) {
  const std::uint64_t conn_id = conn->id;
  char buf[4096];
  for (;;) {
    // e2gcl-lint: allow(blocking-in-event-loop): conn fds are O_NONBLOCK
    // (SetNonBlocking at accept); the read loop ends at EAGAIN, so recv
    // is bounded by what the kernel already buffered.
    const ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r > 0) {
      conn->inbuf.append(buf, static_cast<std::size_t>(r));
      conn->last_activity = Clock::now();
      // A hostile peer could stream garbage forever; cap the buffered
      // unparsed bytes at one max frame plus header slack.
      if (conn->inbuf.size() > kMaxPayload + 4096) {
        CountersOf().frames_bad.Increment();
        CloseConn(conn_id);
        return false;
      }
      continue;
    }
    if (r == 0) {  // peer closed; drop the connection (mid-request
                   // disconnects included — pending answers are dropped
                   // when the completion finds no connection)
      CloseConn(conn_id);
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn_id);
    return false;
  }
  ProcessInbuf(conn);
  return conns_.count(conn_id) != 0;
}

void NetServer::ProcessInbuf(Conn* conn) {
  if (!conn->probed) {
    if (conn->inbuf.size() < 4) return;
    conn->probed = true;
    const std::string head = conn->inbuf.substr(0, 4);
    conn->http = head == "GET " || head == "HEAD" || head == "POST";
  }
  if (conn->http) {
    ProcessHttp(conn);
  } else {
    ProcessBinary(conn);
  }
}

void NetServer::ProcessBinary(Conn* conn) {
  NetCounters& counters = CountersOf();
  const std::uint64_t conn_id = conn->id;
  for (;;) {
    FrameHeader header;
    WireError wire_error = WireError::kBadRequest;
    const HeaderStatus hs = TryDecodeHeader(conn->inbuf, &header, &wire_error);
    if (hs == HeaderStatus::kNeedMore) return;
    if (hs == HeaderStatus::kError) {
      // Framing is poisoned: typed error, then close. The request id
      // is only echoed when the header parsed far enough to carry one.
      counters.frames_bad.Increment();
      const std::uint64_t echo_id =
          wire_error == WireError::kBadMagic ? 0 : header.request_id;
      conn->inbuf.clear();
      conn->close_after_flush = true;
      QueueOutput(conn, EncodeError(echo_id, wire_error,
                                    WireErrorName(wire_error)));
      return;  // conn may be gone (flushed + closed) — do not touch it
    }
    if (conn->inbuf.size() < kFrameHeaderSize + header.payload_len) {
      return;  // wait for the rest of the payload
    }
    const std::string payload =
        conn->inbuf.substr(kFrameHeaderSize, header.payload_len);
    conn->inbuf.erase(0, kFrameHeaderSize + header.payload_len);
    if (!VerifyPayload(header, payload)) {
      counters.frames_bad.Increment();
      conn->inbuf.clear();
      conn->close_after_flush = true;
      QueueOutput(conn, EncodeError(header.request_id, WireError::kBadCrc,
                                    "payload crc mismatch"));
      return;
    }
    Request request;
    if (!DecodeRequest(header, payload, &request)) {
      // Framing held, the payload did not: answer in-band and keep the
      // connection — the stream is still aligned on frame boundaries.
      counters.frames_bad.Increment();
      QueueOutput(conn,
                  EncodeError(header.request_id, WireError::kBadRequest,
                              "undecodable request payload"));
      if (conns_.count(conn_id) == 0) return;
      continue;
    }
    counters.frames_ok.Increment();
    DispatchRequest(conn, request);
    if (conns_.count(conn_id) == 0) return;  // closed while dispatching
  }
}

void NetServer::DispatchRequest(Conn* conn, const Request& request) {
  NetCounters& counters = CountersOf();
  counters.requests.Increment();
  if (shutdown_.load(std::memory_order_acquire)) {
    counters.rejected_shutdown.Increment();
    QueueOutput(conn, EncodeRejection(request, ServeStatus::kShutdown));
    return;
  }
  if (!TakeToken(conn)) {
    counters.rate_limited.Increment();
    QueueOutput(conn, EncodeRejection(request, ServeStatus::kOverloaded));
    return;
  }
  // Argument validation happens here, against the live model: the
  // typed EmbeddingServer API CHECK-aborts on out-of-range ids, which
  // a remote byte stream must never be able to trigger.
  const std::int64_t num_nodes = server_->num_nodes();
  bool valid = true;
  switch (request.type) {
    case FrameType::kGetEmbedding:
      valid = request.embed.node >= 0 && request.embed.node < num_nodes;
      break;
    case FrameType::kScoreLink:
      valid = request.score.u >= 0 && request.score.u < num_nodes &&
              request.score.v >= 0 && request.score.v < num_nodes;
      break;
    case FrameType::kTopKSimilar:
      valid = request.topk.node >= 0 && request.topk.node < num_nodes &&
              request.topk.k >= 0 && request.topk.k <= kMaxTopK;
      break;
    case FrameType::kStats:
      break;
    default:
      valid = false;
      break;
  }
  if (!valid) {
    counters.rejected_invalid.Increment();
    QueueOutput(conn, EncodeRejection(request, ServeStatus::kInvalidArgument));
    return;
  }
  if (request.type == FrameType::kStats) {
    // Cheap and queue-free on the serving side: answered inline.
    StatsResponse stats;
    stats.status = ServeStatus::kOk;
    stats.json = StatsJson();
    QueueOutput(conn, EncodeStatsResponse(request.request_id, stats));
    return;
  }
  {
    MutexLock lock(mu_);
    if (work_queue_.size() >= kWorkQueueCap) {
      counters.rejected_pending.Increment();
      // Drop the lock before writing to the socket.
    } else {
      WorkItem item;
      item.conn_id = conn->id;
      item.request = request;
      work_queue_.push_back(std::move(item));
      conn->in_flight += 1;
      work_cv_.NotifyOne();
      return;
    }
  }
  QueueOutput(conn, EncodeRejection(request, ServeStatus::kOverloaded));
}

void NetServer::ProcessHttp(Conn* conn) {
  NetCounters& counters = CountersOf();
  const std::size_t end = conn->inbuf.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (static_cast<std::int64_t>(conn->inbuf.size()) >
        options_.max_http_header_bytes) {
      conn->inbuf.clear();
      conn->close_after_flush = true;
      QueueOutput(conn,
                  "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n"
                  "Connection: close\r\n\r\n");
    }
    return;
  }
  counters.http_requests.Increment();
  const std::string request_line =
      conn->inbuf.substr(0, conn->inbuf.find("\r\n"));
  conn->inbuf.clear();  // one request per connection
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : request_line.find(' ', sp1 + 1);
  std::string method;
  std::string path;
  if (sp1 != std::string::npos && sp2 != std::string::npos) {
    method = request_line.substr(0, sp1);
    path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  // Split the query string off the path so /metrics?format=prom routes
  // to the /metrics handler with the format as a parameter.
  std::string query;
  const std::size_t qmark = path.find('?');
  if (qmark != std::string::npos) {
    query = path.substr(qmark + 1);
    path.resize(qmark);
  }
  std::string status = "404 Not Found";
  std::string content_type = "text/plain";
  std::string body = "not found\n";
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "only GET is supported\n";
  } else if (path == "/healthz") {
    status = "200 OK";
    body = shutdown_.load(std::memory_order_acquire) ? "shutting down\n"
                                                     : "ok\n";
  } else if (path == "/metrics") {
    status = "200 OK";
    if (HasQueryParam(query, "format", "prom")) {
      content_type = "text/plain; version=0.0.4";
      body = MetricsProm();
    } else {
      content_type = "application/json";
      body = MetricsJson();
    }
  }
  std::string response = "HTTP/1.1 " + status + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  conn->close_after_flush = true;
  QueueOutput(conn, response);
}

void NetServer::QueueOutput(Conn* conn, const std::string& bytes) {
  conn->outbuf.append(bytes);
  FlushConn(conn);
}

bool NetServer::FlushConn(Conn* conn) {
  while (conn->out_off < conn->outbuf.size()) {
    // e2gcl-lint: allow(blocking-in-event-loop): conn fds are O_NONBLOCK;
    // a full send buffer returns EAGAIN and the loop re-arms EPOLLOUT
    // instead of waiting.
    const ssize_t w = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                             conn->outbuf.size() - conn->out_off,
                             MSG_NOSIGNAL);
    if (w > 0) {
      conn->out_off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        poller_->Update(conn->fd, /*want_write=*/true);
      }
      return true;
    }
    CloseConn(conn->id);  // EPIPE/ECONNRESET: peer is gone
    return false;
  }
  conn->outbuf.clear();
  conn->out_off = 0;
  if (conn->want_write) {
    conn->want_write = false;
    poller_->Update(conn->fd, /*want_write=*/false);
  }
  if (conn->close_after_flush && conn->in_flight == 0) {
    CloseConn(conn->id);
    return false;
  }
  return true;
}

void NetServer::CloseConn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  poller_->Remove(it->second->fd);
  ::close(it->second->fd);
  conns_.erase(it);
  live_conns_.store(static_cast<std::int64_t>(conns_.size()),
                    std::memory_order_release);
  CountersOf().closed.Increment();
  CountersOf().connections.Set(static_cast<std::int64_t>(conns_.size()));
}

bool NetServer::TakeToken(Conn* conn) {
  if (options_.rate_limit_qps <= 0.0) return true;
  const Clock::time_point now = Clock::now();
  const double dt =
      std::chrono::duration<double>(now - conn->last_refill).count();
  conn->last_refill = now;
  const double burst = options_.rate_limit_burst > 0.0
                           ? options_.rate_limit_burst
                           : std::max(1.0, options_.rate_limit_qps);
  conn->tokens = std::min(burst, conn->tokens + dt * options_.rate_limit_qps);
  if (conn->tokens < 1.0) return false;
  conn->tokens -= 1.0;
  return true;
}

std::string NetServer::EncodeRejection(const Request& request,
                                       ServeStatus status) {
  switch (request.type) {
    case FrameType::kScoreLink: {
      ScoreResponse r;
      r.status = status;
      return EncodeScoreResponse(request.request_id, r);
    }
    case FrameType::kTopKSimilar: {
      TopKResponse r;
      r.status = status;
      return EncodeTopKResponse(request.request_id, r);
    }
    case FrameType::kStats: {
      StatsResponse r;
      r.status = status;
      return EncodeStatsResponse(request.request_id, r);
    }
    case FrameType::kGetEmbedding:
    default: {
      EmbeddingResponse r;
      r.status = status;
      return EncodeEmbeddingResponse(request.request_id, r);
    }
  }
}

std::string NetServer::StatsJson() {
  JsonValue root = JsonValue::Object();
  root.Set("num_nodes", JsonValue::Int(server_->num_nodes()));
  root.Set("embed_dim", JsonValue::Int(server_->embed_dim()));
  const std::uint64_t gen = server_->generation();
  root.Set("generation", JsonValue::Int(static_cast<std::int64_t>(gen)));
  JsonValue counters = JsonValue::Object();
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("serve.", 0) == 0 || name.rfind("net.", 0) == 0) {
      counters.Set(name, JsonValue::Int(static_cast<std::int64_t>(value)));
    }
  }
  root.Set("counters", std::move(counters));
  return DumpJson(root, /*indent=*/false);
}

std::string NetServer::MetricsJson() {
  JsonValue root = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  JsonValue gauges = JsonValue::Object();
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  for (const auto& [name, value] : snap.counters) {
    counters.Set(name, JsonValue::Int(static_cast<std::int64_t>(value)));
  }
  for (const auto& [name, value] : snap.gauges) {
    gauges.Set(name, JsonValue::Int(value));
  }
  root.Set("counters", std::move(counters));
  root.Set("gauges", std::move(gauges));
  return DumpJson(root, /*indent=*/false);
}

std::string NetServer::MetricsProm() {
  // Prometheus text exposition format 0.0.4. Histograms emit the
  // cumulative `_bucket{le="..."}` series plus `_count`; the registry
  // tracks bucket counts only, so no `_sum` series is emitted.
  const MetricsSnapshot snap = MetricsRegistry::Get().Snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string prom = PromName(h.name);
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le =
          b < h.bounds.size() ? std::to_string(h.bounds[b]) : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_count " + std::to_string(h.total) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------
// Workers: the only threads that make blocking serving calls.

void NetServer::WorkerLoop() {
  for (;;) {
    WorkItem item;
    {
      MutexLock lock(mu_);
      while (!workers_stop_ && work_queue_.empty()) work_cv_.Wait(lock);
      if (work_queue_.empty()) return;  // stop requested, queue drained
      item = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    std::string encoded;
    switch (item.request.type) {
      case FrameType::kGetEmbedding: {
        const EmbeddingResponse r = server_->GetEmbedding(
            item.request.embed.node, item.request.embed.options);
        encoded = EncodeEmbeddingResponse(item.request.request_id, r);
        break;
      }
      case FrameType::kScoreLink: {
        const ScoreResponse r =
            server_->ScoreLink(item.request.score.u, item.request.score.v,
                               item.request.score.options);
        encoded = EncodeScoreResponse(item.request.request_id, r);
        break;
      }
      case FrameType::kTopKSimilar: {
        const TopKResponse r =
            server_->TopKSimilar(item.request.topk.node, item.request.topk.k,
                                 item.request.topk.options);
        encoded = EncodeTopKResponse(item.request.request_id, r);
        break;
      }
      default: {
        EmbeddingResponse r;
        r.status = ServeStatus::kInvalidArgument;
        encoded = EncodeEmbeddingResponse(item.request.request_id, r);
        break;
      }
    }
    {
      MutexLock lock(mu_);
      completions_.push_back({item.conn_id, std::move(encoded)});
    }
    const char byte = 1;
    (void)::write(wake_write_fd_, &byte, 1);
  }
}

}  // namespace net
}  // namespace e2gcl
