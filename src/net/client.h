#ifndef E2GCL_NET_CLIENT_H_
#define E2GCL_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/protocol.h"

namespace e2gcl {
namespace net {

struct NetClientOptions {
  /// Receive timeout per response (SO_RCVTIMEO). 0 = block forever.
  std::int64_t timeout_ms = 5000;
};

/// Blocking client for the binary serving protocol. Not thread-safe:
/// one NetClient per thread (the request pipeline is strictly
/// send-then-receive on one socket).
///
/// Transport failures — connect/send/recv errors, receive timeout,
/// malformed frames, a response whose request id does not match — are
/// reported as ServeStatus::kTransportError with the detail in
/// last_error(); a server-sent kError frame also maps to
/// kTransportError and carries its WireError in last_wire_error().
/// After any transport error the connection is considered broken and
/// every later call fails fast until the client is reconnected.
class NetClient {
 public:
  /// Connects to host:port (IPv4 dotted quad or "localhost"). Returns
  /// nullptr with `*error` set on failure.
  static std::unique_ptr<NetClient> Connect(const std::string& host, int port,
                                            const NetClientOptions& options,
                                            std::string* error);

  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  EmbeddingResponse GetEmbedding(std::int64_t node,
                                 const ServeRequestOptions& options = {});
  ScoreResponse ScoreLink(std::int64_t u, std::int64_t v,
                          const ServeRequestOptions& options = {});
  TopKResponse TopKSimilar(std::int64_t node, std::int64_t k,
                           const ServeRequestOptions& options = {});
  /// Fills `*out` and returns true, or returns false with last_error()
  /// set (out->status is kTransportError).
  bool Stats(StatsResponse* out);

  /// False once a transport error has broken the connection.
  bool ok() const { return fd_ >= 0 && !broken_; }
  const std::string& last_error() const { return last_error_; }
  /// Meaningful only right after a call that failed on a server kError
  /// frame; kBadRequest otherwise.
  WireError last_wire_error() const { return last_wire_error_; }

 private:
  NetClient() = default;

  /// Sends `frame`, then reads frames until one matches `request_id`
  /// with `expect` type (an error frame for the id also terminates).
  /// On success fills *payload and returns true.
  bool RoundTrip(const std::string& frame, std::uint64_t request_id,
                 FrameType expect, std::string* payload);
  bool SendAll(const std::string& bytes);
  /// Reads exactly `n` bytes into *out (appending); false on timeout,
  /// EOF, or error.
  bool RecvExact(std::size_t n, std::string* out);
  void MarkBroken(const std::string& why);

  int fd_ = -1;
  bool broken_ = false;
  std::uint64_t next_request_id_ = 1;
  std::string last_error_;
  WireError last_wire_error_ = WireError::kBadRequest;
};

}  // namespace net
}  // namespace e2gcl

#endif  // E2GCL_NET_CLIENT_H_
