#ifndef E2GCL_NET_SERVER_H_
#define E2GCL_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"
#include "net/protocol.h"
#include "serve/embedding_server.h"

namespace e2gcl {
namespace net {

/// Configuration of a NetServer instance.
struct NetServerOptions {
  /// Interface to bind. The default keeps the server loopback-only;
  /// bind 0.0.0.0 explicitly to serve remote clients.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back
  /// with port()).
  int port = 0;
  /// Accept at most this many simultaneous connections. A connection
  /// beyond the cap is answered with one kConnectionLimit error frame
  /// (best effort) and closed before it can submit anything.
  std::int64_t max_conns = 1024;
  /// Per-connection token bucket: sustained requests/second (0 = no
  /// limit). A request arriving with an empty bucket is answered
  /// kOverloaded at the socket layer — it never reaches the serving
  /// queue, so the PR-7 admission control stays the *second* line of
  /// defense.
  double rate_limit_qps = 0.0;
  /// Bucket depth (burst allowance). 0 = max(1, rate_limit_qps).
  double rate_limit_burst = 0.0;
  /// Worker threads that execute (blocking) EmbeddingServer calls so
  /// the event loop never blocks on the serving queue.
  int num_workers = 4;
  /// Close a connection that has been completely silent (no readable
  /// bytes, no in-flight work) for this long. 0 = never. This is the
  /// slow-loris backstop: a half-sent frame cannot hold a connection
  /// slot forever.
  std::int64_t idle_timeout_ms = 0;
  /// During shutdown, wait at most this long for admitted responses to
  /// flush before force-closing laggard connections.
  std::int64_t drain_grace_ms = 2000;
  /// Cap on HTTP request-header bytes before the connection is
  /// answered 400 and closed.
  std::int64_t max_http_header_bytes = 8192;
  /// Use the poll(2) backend even where epoll is available (the
  /// fallback stays tested at runtime; non-Linux hosts always poll).
  bool force_poll = false;
};

/// Dependency-free TCP front-end for an EmbeddingServer.
///
/// One event-loop thread multiplexes every connection through epoll
/// (level-triggered; poll(2) fallback) and never blocks on the serving
/// queue: decoded requests are handed to a small worker pool whose
/// threads make the blocking status-typed EmbeddingServer calls and
/// queue the encoded responses back for the loop to flush. Two
/// protocols share the port, distinguished by the first bytes of each
/// connection:
///
///  * the length-prefixed binary protocol (net/protocol.h) mapping
///    GetEmbedding / ScoreLink / TopKSimilar / Stats onto the typed
///    ServeStatus API, deadlines and allow_degraded propagated from
///    the wire into ServeRequestOptions;
///  * minimal HTTP/1.1 for GET /healthz and GET /metrics (the full
///    MetricsRegistry snapshot as JSON), one request per connection.
///
/// Load shedding happens in layers, cheapest first: the connection cap
/// at accept(2), the per-connection token bucket at frame decode
/// (kOverloaded before the request touches the queue), then the
/// serving queue's own max_queue_depth admission control. Shutdown is
/// deterministic: BeginShutdown() closes the listener, new requests on
/// live connections fail fast with kShutdown, admitted requests
/// complete and their responses flush (bounded by drain_grace_ms), and
/// the destructor joins every thread. Destroy the NetServer before the
/// EmbeddingServer it fronts.
///
/// Emits net.* counters (accepted, rejected, frames, rate-limited,
/// http) and a net.connections gauge; see DESIGN.md "Network
/// protocol".
class NetServer {
 public:
  /// Binds, listens, and starts the event loop + workers. Returns
  /// nullptr with `*error` set when the socket setup fails.
  static std::unique_ptr<NetServer> Start(EmbeddingServer* server,
                                          const NetServerOptions& options,
                                          std::string* error);

  /// BeginShutdown() + join all threads.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The port actually bound (resolves port 0).
  int port() const { return port_; }

  /// Stops accepting connections and drains: in-flight requests finish
  /// and flush, fresh requests are answered kShutdown, then
  /// connections close. Idempotent; the destructor calls it.
  void BeginShutdown();

  /// Live connection count (tests).
  std::int64_t num_connections() const;

 private:
  class Poller;
  struct Conn;
  struct WorkItem;

  NetServer(EmbeddingServer* server, const NetServerOptions& options);
  bool Init(std::string* error);

  /// Event-loop body (blocking-in-event-loop lint root): everything
  /// reachable from here runs on the loop thread and must never block
  /// beyond the poller's bounded wait.
  void EventLoop() E2GCL_LOOP_BODY;
  void WorkerLoop();

  void AcceptNew();
  /// Reads whatever is available; false = connection is gone.
  bool ReadConn(Conn* conn);
  /// Consumes complete frames/HTTP requests from conn->inbuf.
  void ProcessInbuf(Conn* conn);
  void ProcessBinary(Conn* conn);
  void ProcessHttp(Conn* conn);
  /// Decoded-request dispatch: shed (rate limit/shutdown), validate,
  /// answer inline (Stats) or enqueue for a worker.
  void DispatchRequest(Conn* conn, const Request& request);
  /// Appends bytes to conn's output (loop thread only) and flushes.
  void QueueOutput(Conn* conn, const std::string& bytes);
  /// Flushes pending output; false = connection is gone.
  bool FlushConn(Conn* conn);
  void CloseConn(std::uint64_t conn_id);
  /// Token bucket refill + take. True when the request may proceed.
  bool TakeToken(Conn* conn);
  /// A typed response with `status` and no result, matching the
  /// request's type — how socket-layer rejections stay in-band.
  std::string EncodeRejection(const Request& request, ServeStatus status);
  /// {"num_nodes","embed_dim","generation","counters":{serve.*,net.*}}.
  std::string StatsJson();
  /// Full MetricsRegistry snapshot for GET /metrics.
  std::string MetricsJson();
  /// The same snapshot in Prometheus text exposition format (0.0.4)
  /// for GET /metrics?format=prom.
  std::string MetricsProm();

  EmbeddingServer* server_;
  NetServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::unique_ptr<Poller> poller_;

  /// Loop-owned: connections keyed by id (ordered map: housekeeping
  /// iterates it and must be deterministic). Only the event loop
  /// creates/destroys entries; workers reach a Conn's completion queue
  /// through completions_ below, never through this map.
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::atomic<std::int64_t> live_conns_{0};

  /// Worker queue + completions, shared between loop and workers.
  mutable Mutex mu_;
  CondVar work_cv_ E2GCL_GUARDED_BY(mu_);
  std::deque<WorkItem> work_queue_ E2GCL_GUARDED_BY(mu_);
  /// Encoded responses finished by workers: (conn id, bytes). The loop
  /// drains this after every wakeup and routes bytes to live conns.
  std::vector<std::pair<std::uint64_t, std::string>> completions_
      E2GCL_GUARDED_BY(mu_);
  bool workers_stop_ E2GCL_GUARDED_BY(mu_) = false;

  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> workers_;
  std::thread loop_;
};

}  // namespace net
}  // namespace e2gcl

#endif  // E2GCL_NET_SERVER_H_
