#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace e2gcl {
namespace net {

std::unique_ptr<NetClient> NetClient::Connect(const std::string& host,
                                              int port,
                                              const NetClientOptions& options,
                                              std::string* error) {
  if (port <= 0 || port > 65535) {
    *error = "bad port " + std::to_string(port);
    return nullptr;
  }
  const std::string address = host == "localhost" ? "127.0.0.1" : host;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    *error = "bad address '" + host + "' (IPv4 dotted quad or localhost)";
    return nullptr;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(options.timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((options.timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  // e2gcl-lint: allow(naked-new-delete): private ctor; owned by the
  // unique_ptr on this line
  std::unique_ptr<NetClient> client(new NetClient());
  client->fd_ = fd;
  return client;
}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

void NetClient::MarkBroken(const std::string& why) {
  broken_ = true;
  last_error_ = why;
}

bool NetClient::SendAll(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    MarkBroken(std::string("send: ") + std::strerror(errno));
    return false;
  }
  return true;
}

bool NetClient::RecvExact(std::size_t n, std::string* out) {
  char buf[4096];
  while (n > 0) {
    const ssize_t r = ::recv(fd_, buf, std::min(n, sizeof(buf)), 0);
    if (r > 0) {
      out->append(buf, static_cast<std::size_t>(r));
      n -= static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      MarkBroken("connection closed by server");
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      MarkBroken("receive timeout");
      return false;
    }
    MarkBroken(std::string("recv: ") + std::strerror(errno));
    return false;
  }
  return true;
}

bool NetClient::RoundTrip(const std::string& frame, std::uint64_t request_id,
                          FrameType expect, std::string* payload) {
  last_wire_error_ = WireError::kBadRequest;
  if (!ok()) {
    if (last_error_.empty()) last_error_ = "client not connected";
    return false;
  }
  if (!SendAll(frame)) return false;
  // Responses come back in request order on one connection; anything
  // unexpected means the stream is broken beyond recovery.
  std::string header_bytes;
  if (!RecvExact(kFrameHeaderSize, &header_bytes)) return false;
  FrameHeader header;
  WireError wire_error = WireError::kBadRequest;
  if (TryDecodeHeader(header_bytes, &header, &wire_error) !=
      HeaderStatus::kOk) {
    MarkBroken(std::string("bad response header: ") +
               WireErrorName(wire_error));
    return false;
  }
  std::string body;
  if (!RecvExact(header.payload_len, &body)) return false;
  if (!VerifyPayload(header, body)) {
    MarkBroken("response crc mismatch");
    return false;
  }
  if (header.type == FrameType::kError) {
    ErrorFrame error_frame;
    if (DecodeError(body, &error_frame)) {
      last_wire_error_ = error_frame.code;
      MarkBroken("server error: " + error_frame.message);
    } else {
      MarkBroken("undecodable server error frame");
    }
    return false;
  }
  if (header.request_id != request_id) {
    MarkBroken("response id mismatch");
    return false;
  }
  if (header.type != expect) {
    MarkBroken("unexpected response type");
    return false;
  }
  *payload = std::move(body);
  return true;
}

EmbeddingResponse NetClient::GetEmbedding(std::int64_t node,
                                          const ServeRequestOptions& options) {
  EmbeddingResponse r;
  r.status = ServeStatus::kTransportError;
  GetEmbeddingRequest req;
  req.node = node;
  req.options = options;
  const std::uint64_t id = next_request_id_++;
  std::string payload;
  if (!RoundTrip(EncodeGetEmbedding(id, req), id,
                 FrameType::kEmbeddingResponse, &payload)) {
    return r;
  }
  if (!DecodeEmbeddingResponse(payload, &r)) {
    r = EmbeddingResponse();
    r.status = ServeStatus::kTransportError;
    MarkBroken("undecodable embedding response");
  }
  return r;
}

ScoreResponse NetClient::ScoreLink(std::int64_t u, std::int64_t v,
                                   const ServeRequestOptions& options) {
  ScoreResponse r;
  r.status = ServeStatus::kTransportError;
  ScoreLinkRequest req;
  req.u = u;
  req.v = v;
  req.options = options;
  const std::uint64_t id = next_request_id_++;
  std::string payload;
  if (!RoundTrip(EncodeScoreLink(id, req), id, FrameType::kScoreResponse,
                 &payload)) {
    return r;
  }
  if (!DecodeScoreResponse(payload, &r)) {
    r = ScoreResponse();
    r.status = ServeStatus::kTransportError;
    MarkBroken("undecodable score response");
  }
  return r;
}

TopKResponse NetClient::TopKSimilar(std::int64_t node, std::int64_t k,
                                    const ServeRequestOptions& options) {
  TopKResponse r;
  r.status = ServeStatus::kTransportError;
  TopKSimilarRequest req;
  req.node = node;
  req.k = k;
  req.options = options;
  const std::uint64_t id = next_request_id_++;
  std::string payload;
  if (!RoundTrip(EncodeTopKSimilar(id, req), id, FrameType::kTopKResponse,
                 &payload)) {
    return r;
  }
  if (!DecodeTopKResponse(payload, &r)) {
    r = TopKResponse();
    r.status = ServeStatus::kTransportError;
    MarkBroken("undecodable topk response");
  }
  return r;
}

bool NetClient::Stats(StatsResponse* out) {
  out->status = ServeStatus::kTransportError;
  out->json.clear();
  const std::uint64_t id = next_request_id_++;
  std::string payload;
  if (!RoundTrip(EncodeStatsRequest(id), id, FrameType::kStatsResponse,
                 &payload)) {
    return false;
  }
  if (!DecodeStatsResponse(payload, out)) {
    out->status = ServeStatus::kTransportError;
    MarkBroken("undecodable stats response");
    return false;
  }
  return true;
}

}  // namespace net
}  // namespace e2gcl
