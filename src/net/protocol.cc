#include "net/protocol.h"

#include <cstring>

#include "io/serialize.h"

namespace e2gcl {
namespace net {

namespace {

bool IsRequestType(FrameType t) {
  return t == FrameType::kGetEmbedding || t == FrameType::kScoreLink ||
         t == FrameType::kTopKSimilar || t == FrameType::kStats;
}

bool IsKnownType(FrameType t) {
  return IsRequestType(t) || t == FrameType::kEmbeddingResponse ||
         t == FrameType::kScoreResponse || t == FrameType::kTopKResponse ||
         t == FrameType::kStatsResponse || t == FrameType::kError;
}

/// Reads the per-request options trailer {i64 deadline_us, u8
/// allow_degraded}; deadline must be non-negative and the flag byte
/// strictly 0/1 so a garbled stream cannot smuggle through as "valid".
bool ReadOptions(ByteReader* r, ServeRequestOptions* options) {
  const std::int64_t deadline_us = r->ReadI64();
  const std::uint32_t allow = r->ReadU32();
  if (!r->ok() || deadline_us < 0 || allow > 1) return false;
  options->deadline_us = deadline_us;
  options->allow_degraded = allow == 1;
  return true;
}

void WriteOptions(ByteWriter* w, const ServeRequestOptions& options) {
  w->WriteI64(options.deadline_us);
  w->WriteU32(options.allow_degraded ? 1 : 0);
}

/// Shared response prefix {u8 status (validated), u64 generation}.
bool ReadStatusPrefix(ByteReader* r, ServeStatus* status,
                      std::uint64_t* generation) {
  const std::uint32_t status_byte = r->ReadU32();
  *generation = r->ReadU64();
  return r->ok() && status_byte <= 0xFF &&
         ServeStatusFromByte(static_cast<std::uint8_t>(status_byte), status);
}

void WriteStatusPrefix(ByteWriter* w, ServeStatus status,
                       std::uint64_t generation) {
  w->WriteU32(static_cast<std::uint32_t>(status));
  w->WriteU64(generation);
}

}  // namespace

const char* WireErrorName(WireError e) {
  switch (e) {
    case WireError::kBadMagic: return "bad_magic";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kFrameTooLarge: return "frame_too_large";
    case WireError::kBadCrc: return "bad_crc";
    case WireError::kBadFlags: return "bad_flags";
    case WireError::kBadRequest: return "bad_request";
    case WireError::kConnectionLimit: return "connection_limit";
    case WireError::kBadHttp: return "bad_http";
  }
  return "unknown";
}

void EncodeFrame(FrameType type, std::uint64_t request_id,
                 const std::string& payload, std::string* out) {
  ByteWriter header;
  header.WriteU32(kProtocolMagic);
  const std::uint32_t version_type_flags =
      static_cast<std::uint32_t>(kProtocolVersion) |
      (static_cast<std::uint32_t>(type) << 8) |
      (std::uint32_t{0} << 16);  // flags, reserved
  header.WriteU32(version_type_flags);
  header.WriteU64(request_id);
  header.WriteU32(static_cast<std::uint32_t>(payload.size()));
  header.WriteU32(Crc32(payload.data(), payload.size()));
  out->append(header.bytes());
  out->append(payload);
}

std::string EncodeGetEmbedding(std::uint64_t request_id,
                               const GetEmbeddingRequest& req) {
  ByteWriter w;
  w.WriteI64(req.node);
  WriteOptions(&w, req.options);
  std::string out;
  EncodeFrame(FrameType::kGetEmbedding, request_id, w.bytes(), &out);
  return out;
}

std::string EncodeScoreLink(std::uint64_t request_id,
                            const ScoreLinkRequest& req) {
  ByteWriter w;
  w.WriteI64(req.u);
  w.WriteI64(req.v);
  WriteOptions(&w, req.options);
  std::string out;
  EncodeFrame(FrameType::kScoreLink, request_id, w.bytes(), &out);
  return out;
}

std::string EncodeTopKSimilar(std::uint64_t request_id,
                              const TopKSimilarRequest& req) {
  ByteWriter w;
  w.WriteI64(req.node);
  w.WriteI64(req.k);
  WriteOptions(&w, req.options);
  std::string out;
  EncodeFrame(FrameType::kTopKSimilar, request_id, w.bytes(), &out);
  return out;
}

std::string EncodeStatsRequest(std::uint64_t request_id) {
  std::string out;
  EncodeFrame(FrameType::kStats, request_id, std::string(), &out);
  return out;
}

std::string EncodeEmbeddingResponse(std::uint64_t request_id,
                                    const EmbeddingResponse& r) {
  ByteWriter w;
  WriteStatusPrefix(&w, r.status, r.generation);
  w.WriteU64(r.row.size());
  for (float x : r.row) w.WriteF32(x);
  std::string out;
  EncodeFrame(FrameType::kEmbeddingResponse, request_id, w.bytes(), &out);
  return out;
}

std::string EncodeScoreResponse(std::uint64_t request_id,
                                const ScoreResponse& r) {
  ByteWriter w;
  WriteStatusPrefix(&w, r.status, r.generation);
  w.WriteF32(r.score);
  std::string out;
  EncodeFrame(FrameType::kScoreResponse, request_id, w.bytes(), &out);
  return out;
}

std::string EncodeTopKResponse(std::uint64_t request_id,
                               const TopKResponse& r) {
  ByteWriter w;
  WriteStatusPrefix(&w, r.status, r.generation);
  w.WriteU64(r.result.nodes.size());
  for (std::size_t i = 0; i < r.result.nodes.size(); ++i) {
    w.WriteI64(r.result.nodes[i]);
    w.WriteF32(r.result.scores[i]);
  }
  std::string out;
  EncodeFrame(FrameType::kTopKResponse, request_id, w.bytes(), &out);
  return out;
}

std::string EncodeStatsResponse(std::uint64_t request_id,
                                const StatsResponse& r) {
  ByteWriter w;
  WriteStatusPrefix(&w, r.status, 0);
  w.WriteString(r.json);
  std::string out;
  EncodeFrame(FrameType::kStatsResponse, request_id, w.bytes(), &out);
  return out;
}

std::string EncodeError(std::uint64_t request_id, WireError code,
                        const std::string& message) {
  ByteWriter w;
  w.WriteU32(static_cast<std::uint32_t>(code));
  w.WriteString(message);
  std::string out;
  EncodeFrame(FrameType::kError, request_id, w.bytes(), &out);
  return out;
}

HeaderStatus TryDecodeHeader(const std::string& buf, FrameHeader* header,
                             WireError* error) {
  if (buf.size() < kFrameHeaderSize) return HeaderStatus::kNeedMore;
  ByteReader r(buf.data(), kFrameHeaderSize);
  const std::uint32_t magic = r.ReadU32();
  const std::uint32_t version_type_flags = r.ReadU32();
  header->request_id = r.ReadU64();
  header->payload_len = r.ReadU32();
  header->payload_crc = r.ReadU32();
  header->version = static_cast<std::uint8_t>(version_type_flags & 0xFF);
  const std::uint8_t type_byte =
      static_cast<std::uint8_t>((version_type_flags >> 8) & 0xFF);
  header->flags = static_cast<std::uint16_t>(version_type_flags >> 16);
  header->type = static_cast<FrameType>(type_byte);
  if (magic != kProtocolMagic) {
    *error = WireError::kBadMagic;
    return HeaderStatus::kError;
  }
  if (header->version == 0 || header->version > kProtocolVersion) {
    *error = WireError::kBadVersion;
    return HeaderStatus::kError;
  }
  if (header->flags != 0) {
    *error = WireError::kBadFlags;
    return HeaderStatus::kError;
  }
  if (header->payload_len > kMaxPayload) {
    *error = WireError::kFrameTooLarge;
    return HeaderStatus::kError;
  }
  return HeaderStatus::kOk;
}

bool VerifyPayload(const FrameHeader& header, const std::string& payload) {
  return payload.size() == header.payload_len &&
         Crc32(payload.data(), payload.size()) == header.payload_crc;
}

bool DecodeRequest(const FrameHeader& header, const std::string& payload,
                   Request* out) {
  if (!IsKnownType(header.type) || !IsRequestType(header.type)) return false;
  out->type = header.type;
  out->request_id = header.request_id;
  ByteReader r(payload);
  switch (header.type) {
    case FrameType::kGetEmbedding:
      out->embed.node = r.ReadI64();
      if (!ReadOptions(&r, &out->embed.options)) return false;
      break;
    case FrameType::kScoreLink:
      out->score.u = r.ReadI64();
      out->score.v = r.ReadI64();
      if (!ReadOptions(&r, &out->score.options)) return false;
      break;
    case FrameType::kTopKSimilar:
      out->topk.node = r.ReadI64();
      out->topk.k = r.ReadI64();
      if (!ReadOptions(&r, &out->topk.options)) return false;
      break;
    case FrameType::kStats:
      break;
    default:
      return false;
  }
  return r.AtEnd();
}

bool DecodeEmbeddingResponse(const std::string& payload,
                             EmbeddingResponse* r) {
  ByteReader reader(payload);
  if (!ReadStatusPrefix(&reader, &r->status, &r->generation)) return false;
  const std::uint64_t n = reader.ReadU64();
  if (!reader.ok() || n > kMaxPayload / sizeof(float)) return false;
  r->row.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) r->row[i] = reader.ReadF32();
  return reader.AtEnd();
}

bool DecodeScoreResponse(const std::string& payload, ScoreResponse* r) {
  ByteReader reader(payload);
  if (!ReadStatusPrefix(&reader, &r->status, &r->generation)) return false;
  r->score = reader.ReadF32();
  return reader.AtEnd();
}

bool DecodeTopKResponse(const std::string& payload, TopKResponse* r) {
  ByteReader reader(payload);
  if (!ReadStatusPrefix(&reader, &r->status, &r->generation)) return false;
  const std::uint64_t n = reader.ReadU64();
  if (!reader.ok() || n > kMaxPayload / 12) return false;
  r->result.nodes.resize(n);
  r->result.scores.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    r->result.nodes[i] = reader.ReadI64();
    r->result.scores[i] = reader.ReadF32();
  }
  return reader.AtEnd();
}

bool DecodeStatsResponse(const std::string& payload, StatsResponse* r) {
  ByteReader reader(payload);
  std::uint64_t generation = 0;
  if (!ReadStatusPrefix(&reader, &r->status, &generation)) return false;
  r->json = reader.ReadString();
  return reader.AtEnd();
}

bool DecodeError(const std::string& payload, ErrorFrame* out) {
  ByteReader reader(payload);
  const std::uint32_t code = reader.ReadU32();
  out->message = reader.ReadString();
  if (!reader.AtEnd() || code == 0 ||
      code > static_cast<std::uint32_t>(WireError::kBadHttp)) {
    return false;
  }
  out->code = static_cast<WireError>(code);
  return true;
}

}  // namespace net
}  // namespace e2gcl
