#ifndef E2GCL_SHARD_GRAPH_STORE_H_
#define E2GCL_SHARD_GRAPH_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace e2gcl {

/// Streaming adjacency access shared by the resident Graph and the
/// on-disk GraphStore. Only the row-pointer array (8(n+1) bytes — ~10 MB
/// at 1.2M nodes) is required resident; adjacency columns are fetched in
/// caller-chosen row ranges. Every algorithm in src/shard/ (partitioner,
/// halo extraction, streamed SpMM) is written against this interface, so
/// it runs identically whether the graph is in memory or on disk.
class AdjacencySource {
 public:
  virtual ~AdjacencySource() = default;

  virtual std::int64_t num_nodes() const = 0;
  /// Resident row-pointer array, size num_nodes() + 1.
  virtual const std::vector<std::int64_t>& row_ptr() const = 0;
  /// Appends the concatenated adjacency lists of rows [rb, re) to
  /// `out` (cleared first). Returns false on I/O failure.
  virtual bool ReadCols(std::int64_t rb, std::int64_t re,
                        std::vector<std::int32_t>* out) const = 0;

  std::int64_t Degree(std::int64_t v) const {
    return row_ptr()[v + 1] - row_ptr()[v];
  }
  std::int64_t nnz() const { return row_ptr().back(); }

  /// Gathers the adjacency lists of ascending (not necessarily
  /// consecutive) `rows`. `out_offsets` has rows.size() + 1 entries;
  /// rows[i]'s list spans out_cols[out_offsets[i] .. out_offsets[i+1]).
  /// The default coalesces consecutive-row runs into ReadCols calls.
  virtual bool GatherAdjacency(const std::vector<std::int64_t>& rows,
                               std::vector<std::int32_t>* out_cols,
                               std::vector<std::int64_t>* out_offsets) const;
};

/// Zero-copy adapter presenting a resident Graph as an AdjacencySource.
class GraphAdjacency : public AdjacencySource {
 public:
  explicit GraphAdjacency(const Graph& g) : g_(&g) {}

  std::int64_t num_nodes() const override { return g_->num_nodes; }
  const std::vector<std::int64_t>& row_ptr() const override {
    return g_->row_ptr;
  }
  bool ReadCols(std::int64_t rb, std::int64_t re,
                std::vector<std::int32_t>* out) const override;

 private:
  const Graph* g_;
};

/// Out-of-core column store for one attributed graph:
///
///   <dir>/meta.e2gcl   versioned + CRC32-checked counts (state file)
///   <dir>/rowptr.bin   (n+1) raw little-endian int64
///   <dir>/col.bin      nnz raw int32 adjacency columns
///   <dir>/feat.bin     n x d raw float32 feature rows
///   <dir>/labels.bin   n raw int64 (present only when the graph has
///                      labels)
///
/// Open() loads meta + rowptr resident and validates every bin file's
/// size against the declared counts; the big arrays stay on disk and are
/// served through the AdjacencySource row-range API plus the feature/
/// label gathers below. All reads are stateless (each call opens its own
/// stream), so concurrent readers never race.
class GraphStore : public AdjacencySource {
 public:
  /// Writes `g` to `dir` (created if missing). Each file is written
  /// atomically; returns false on any I/O failure.
  static bool Write(const std::string& dir, const Graph& g);

  /// Opens a store written by Write(). Returns false (leaving the store
  /// unusable) on missing/corrupt meta or bin-size mismatches.
  bool Open(const std::string& dir);

  std::int64_t num_nodes() const override { return num_nodes_; }
  std::int64_t feature_dim() const { return feature_dim_; }
  std::int64_t num_classes() const { return num_classes_; }
  bool has_labels() const { return has_labels_; }
  const std::vector<std::int64_t>& row_ptr() const override {
    return row_ptr_;
  }

  bool ReadCols(std::int64_t rb, std::int64_t re,
                std::vector<std::int32_t>* out) const override;
  bool GatherAdjacency(const std::vector<std::int64_t>& rows,
                       std::vector<std::int32_t>* out_cols,
                       std::vector<std::int64_t>* out_offsets) const override;

  /// Gathers feature rows of ascending `nodes` into a
  /// |nodes| x feature_dim matrix.
  bool ReadFeatureRows(const std::vector<std::int64_t>& nodes,
                       Matrix* out) const;

  /// Gathers labels of ascending `nodes` (empty result when the store
  /// has no labels).
  bool ReadLabels(const std::vector<std::int64_t>& nodes,
                  std::vector<std::int64_t>* out) const;

  /// Materializes the induced subgraph over sorted-unique global
  /// `nodes` — structure, features, and labels — reading only those
  /// rows. Adjacency is bit-identical to
  /// InducedSubgraph(resident_graph, nodes).
  bool LoadInducedSubgraph(const std::vector<std::int64_t>& nodes,
                           Graph* out) const;

 private:
  std::string dir_;
  std::int64_t num_nodes_ = 0;
  std::int64_t feature_dim_ = 0;
  std::int64_t num_classes_ = 0;
  bool has_labels_ = false;
  std::vector<std::int64_t> row_ptr_;
};

/// C = D^-1/2 (A + I) D^-1/2 * B with the adjacency streamed in
/// `rows_per_chunk` row ranges — the full column array is never
/// resident. Degrees come from the resident row pointers; per-row
/// accumulation (ascending column order, diagonal in its sorted slot,
/// same SIMD row kernel) matches Spmm(NormalizedAdjacency(g), B)
/// bit-for-bit at any thread count.
Matrix StreamedNormalizedSpmm(const AdjacencySource& adj, const Matrix& b,
                              std::int64_t rows_per_chunk = 1 << 16);

}  // namespace e2gcl

#endif  // E2GCL_SHARD_GRAPH_STORE_H_
