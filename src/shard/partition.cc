#include "shard/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "io/serialize.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

constexpr std::uint32_t kPartitionMagic = 0x45505254;  // "EPRT"
constexpr std::uint32_t kPartitionVersion = 1;
constexpr std::int64_t kSweepRows = std::int64_t{1} << 16;

std::int64_t CeilCap(std::int64_t total, int shards, double slack) {
  const double avg = static_cast<double>(total) / static_cast<double>(shards);
  return static_cast<std::int64_t>(std::floor(avg * (1.0 + slack))) + 1;
}

void BuildShardNodes(Partition* p) {
  p->shard_nodes.assign(p->num_shards, {});
  for (std::int64_t v = 0;
       v < static_cast<std::int64_t>(p->shard_of.size()); ++v) {
    p->shard_nodes[p->shard_of[v]].push_back(v);
  }
}

}  // namespace

Partition PartitionGraph(const AdjacencySource& adj,
                         const PartitionOptions& options) {
  const std::int64_t n = adj.num_nodes();
  const int s = options.num_shards;
  E2GCL_CHECK(s >= 1);
  const std::vector<std::int64_t>& rp = adj.row_ptr();

  Partition p;
  p.num_shards = s;
  p.shard_of.assign(n, 0);
  p.total_edges = adj.nnz() / 2;
  if (s == 1) {
    BuildShardNodes(&p);
    return p;
  }

  const std::int64_t count_cap = CeilCap(n, s, options.balance_slack);
  const std::int64_t load_cap = CeilCap(adj.nnz(), s, options.balance_slack);
  std::vector<std::int64_t> count(s, 0);
  std::vector<std::int64_t> load(s, 0);

  // --- Size-capped label-propagation clustering. -------------------------
  // Seeding assigns whole communities, not individual nodes. Per-node
  // greedy rules (hash scatter, streaming LDG) fragment each community
  // across several shards, and the strict-improvement refiner below
  // cannot merge fragments — every node inside a fragment already sits
  // with the plurality of its neighbors, so the partition is locally
  // stable at a cut far above what the graph admits. Instead: recover
  // clusters first with asynchronous label propagation (each node
  // adopts the plurality label of its neighbors, ties toward the
  // smaller label), unconstrained by shard geometry except for a
  // cluster-size cap of n/s that stops runaway label merging, so every
  // cluster later fits inside one shard without being split.
  std::vector<std::int64_t> label(n);
  {
    std::iota(label.begin(), label.end(), std::int64_t{0});
    std::vector<std::int64_t> lsize(n, 1);
    const std::int64_t cluster_cap = std::max<std::int64_t>(1, n / s);
    std::vector<std::int32_t> cols;
    std::vector<std::pair<std::int64_t, std::int32_t>> cnt;
    for (int pass = 0; pass < options.cluster_passes; ++pass) {
      std::int64_t changed = 0;
      for (std::int64_t rb = 0; rb < n; rb += kSweepRows) {
        const std::int64_t re = std::min(n, rb + kSweepRows);
        const bool ok = adj.ReadCols(rb, re, &cols);
        E2GCL_CHECK_MSG(ok, "adjacency sweep read failed");
        for (std::int64_t v = rb; v < re; ++v) {
          const std::int64_t eb = rp[v] - rp[rb];
          const std::int64_t ee = rp[v + 1] - rp[rb];
          if (ee == eb) continue;
          cnt.clear();
          for (std::int64_t e = eb; e < ee; ++e) {
            const std::int64_t lu = label[cols[e]];
            bool found = false;
            for (auto& kv : cnt) {
              if (kv.first == lu) {
                kv.second += 1;
                found = true;
                break;
              }
            }
            if (!found) cnt.push_back({lu, 1});
          }
          std::int64_t best = label[v];
          std::int32_t best_c = 0;
          for (const auto& kv : cnt) {
            if (kv.first != label[v] && lsize[kv.first] >= cluster_cap) {
              continue;
            }
            if (kv.second > best_c ||
                (kv.second == best_c && kv.first < best)) {
              best = kv.first;
              best_c = kv.second;
            }
          }
          if (best != label[v]) {
            lsize[label[v]] -= 1;
            lsize[best] += 1;
            label[v] = best;
            ++changed;
          }
        }
      }
      if (changed == 0) break;
    }
  }

  // --- Cluster packing. --------------------------------------------------
  // Whole clusters go to shards: largest first (ties toward the smaller
  // label) onto the currently emptiest shard (ties toward the smaller
  // shard id). Because clustering capped every cluster at n/s, no
  // cluster has to straddle shards by construction; the per-node spill
  // below only fires when packing overshoots the slack cap.
  {
    std::vector<std::int64_t> csize(n, 0);
    for (std::int64_t v = 0; v < n; ++v) csize[label[v]] += 1;
    std::vector<std::int64_t> clusters;
    for (std::int64_t l = 0; l < n; ++l) {
      if (csize[l] > 0) clusters.push_back(l);
    }
    std::sort(clusters.begin(), clusters.end(),
              [&](std::int64_t a, std::int64_t b) {
                return csize[a] != csize[b] ? csize[a] > csize[b] : a < b;
              });
    std::vector<std::int64_t> packed(s, 0);
    std::vector<std::int32_t> shard_of_label(n, 0);
    for (std::int64_t l : clusters) {
      std::int32_t best = 0;
      for (std::int32_t t = 1; t < s; ++t) {
        if (packed[t] < packed[best]) best = t;
      }
      shard_of_label[l] = best;
      packed[best] += csize[l];
    }
    for (std::int64_t v = 0; v < n; ++v) {
      std::int32_t t = shard_of_label[label[v]];
      while (count[t] >= count_cap) t = (t + 1) % s;
      p.shard_of[v] = t;
      count[t] += 1;
      load[t] += rp[v + 1] - rp[v];
    }
  }

  // --- Degree-aware balance pass. ----------------------------------------
  // Descending degree (ties: ascending id) so the heavy nodes settle
  // first; a node on an over-cap shard moves to the least-loaded shard
  // (ties: fewest nodes, then lowest id) that has node headroom.
  std::vector<std::int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return adj.Degree(a) > adj.Degree(b);
                   });
  for (std::int64_t v : order) {
    const std::int32_t cur = p.shard_of[v];
    if (count[cur] <= count_cap && load[cur] <= load_cap) continue;
    std::int32_t best = cur;
    for (std::int32_t t = 0; t < s; ++t) {
      if (t == cur || count[t] >= count_cap) continue;
      if (best == cur || load[t] < load[best] ||
          (load[t] == load[best] && count[t] < count[best])) {
        best = t;
      }
    }
    if (best == cur) continue;
    const std::int64_t deg = adj.Degree(v);
    count[cur] -= 1;
    load[cur] -= deg;
    count[best] += 1;
    load[best] += deg;
    p.shard_of[v] = best;
  }

  // --- Greedy edge-cut refinement. ---------------------------------------
  // Sequential label propagation in ascending node order, adjacency
  // streamed in fixed row ranges. A move happens only when the target
  // shard holds strictly more neighbors (strict cut reduction, so the
  // passes cannot oscillate) and the caps stay respected.
  std::vector<std::int32_t> cols;
  std::vector<std::int64_t> nbr_count(s, 0);
  for (int pass = 0; pass < options.refine_passes; ++pass) {
    for (std::int64_t rb = 0; rb < n; rb += kSweepRows) {
      const std::int64_t re = std::min(n, rb + kSweepRows);
      const bool ok = adj.ReadCols(rb, re, &cols);
      E2GCL_CHECK_MSG(ok, "adjacency sweep read failed");
      for (std::int64_t v = rb; v < re; ++v) {
        const std::int64_t eb = rp[v] - rp[rb];
        const std::int64_t ee = rp[v + 1] - rp[rb];
        if (ee == eb) continue;
        std::fill(nbr_count.begin(), nbr_count.end(), 0);
        for (std::int64_t e = eb; e < ee; ++e) {
          nbr_count[p.shard_of[cols[e]]] += 1;
        }
        const std::int32_t cur = p.shard_of[v];
        std::int32_t best = cur;
        for (std::int32_t t = 0; t < s; ++t) {
          if (nbr_count[t] > nbr_count[best]) best = t;
        }
        if (best == cur || nbr_count[best] <= nbr_count[cur]) continue;
        if (count[best] >= count_cap || count[cur] <= 1) continue;
        const std::int64_t deg = ee - eb;
        if (load[best] + deg > load_cap) continue;
        count[cur] -= 1;
        load[cur] -= deg;
        count[best] += 1;
        load[best] += deg;
        p.shard_of[v] = best;
      }
    }
  }

  // --- Cut accounting. ---------------------------------------------------
  std::int64_t cut = 0;
  for (std::int64_t rb = 0; rb < n; rb += kSweepRows) {
    const std::int64_t re = std::min(n, rb + kSweepRows);
    const bool ok = adj.ReadCols(rb, re, &cols);
    E2GCL_CHECK_MSG(ok, "adjacency sweep read failed");
    for (std::int64_t v = rb; v < re; ++v) {
      for (std::int64_t e = rp[v] - rp[rb]; e < rp[v + 1] - rp[rb]; ++e) {
        const std::int32_t u = cols[e];
        if (u > v && p.shard_of[u] != p.shard_of[v]) ++cut;
      }
    }
  }
  p.cut_edges = cut;
  BuildShardNodes(&p);
  return p;
}

bool SavePartition(const std::string& path, const Partition& p) {
  ByteWriter w;
  w.WriteI64(p.num_shards);
  w.WriteI64(static_cast<std::int64_t>(p.shard_of.size()));
  w.WriteI64(p.cut_edges);
  w.WriteI64(p.total_edges);
  w.WriteBytes(p.shard_of.data(),
               p.shard_of.size() * sizeof(std::int32_t));
  return WriteStateFile(path, kPartitionMagic, kPartitionVersion,
                        {{"partition", w.bytes()}});
}

bool LoadPartition(const std::string& path, Partition* p) {
  std::vector<StateSection> sections;
  if (!ReadStateFile(path, kPartitionMagic, kPartitionVersion, &sections)) {
    return false;
  }
  const StateSection* sec = FindSection(sections, "partition");
  if (sec == nullptr) return false;
  ByteReader r(sec->payload);
  const std::int64_t s = r.ReadI64();
  const std::int64_t n = r.ReadI64();
  const std::int64_t cut = r.ReadI64();
  const std::int64_t total = r.ReadI64();
  if (!r.ok() || s < 1 || n < 0) return false;
  const std::string raw = r.ReadRaw(n * sizeof(std::int32_t));
  if (!r.AtEnd()) return false;
  p->num_shards = static_cast<int>(s);
  p->cut_edges = cut;
  p->total_edges = total;
  p->shard_of.resize(n);
  std::copy_n(reinterpret_cast<const std::int32_t*>(raw.data()), n,
              p->shard_of.begin());
  for (std::int64_t v = 0; v < n; ++v) {
    if (p->shard_of[v] < 0 || p->shard_of[v] >= p->num_shards) return false;
  }
  BuildShardNodes(p);
  return true;
}

}  // namespace e2gcl
