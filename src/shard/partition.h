#ifndef E2GCL_SHARD_PARTITION_H_
#define E2GCL_SHARD_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "shard/graph_store.h"

namespace e2gcl {

/// Cluster-then-pack streaming partitioning with greedy edge-cut
/// refinement: size-capped label-propagation clustering, whole-cluster
/// packing onto shards, a descending-degree balance pass, then
/// shard-level label-propagation refinement.
///
/// The pipeline is deliberately serial and streaming: every pass is an
/// ascending sweep over row ranges of an AdjacencySource, so it needs
/// only the row pointers plus O(n) labels resident and produces the
/// same partition for the resident and out-of-core graph paths.
struct PartitionOptions {
  int num_shards = 1;
  /// Label-propagation sweeps used to recover clusters before packing.
  /// Cluster growth is capped at n / num_shards so every cluster fits
  /// inside one shard whole; sweeps stop early once no label changes.
  int cluster_passes = 8;
  /// Greedy label-propagation passes after the balance pass. Each pass
  /// moves a node to the shard holding the plurality of its neighbors
  /// when that strictly reduces the cut and respects the balance caps.
  int refine_passes = 3;
  /// Per-shard node-count and degree-load caps are
  /// ceil(avg * (1 + balance_slack)).
  double balance_slack = 0.10;
  /// Reserved for tie-breaking policies; the current pipeline is fully
  /// deterministic from (adjacency, options) and does not consume it.
  std::uint64_t seed = 0;
};

struct Partition {
  int num_shards = 0;
  /// Shard id per node.
  std::vector<std::int32_t> shard_of;
  /// Undirected edges whose endpoints land in different shards.
  std::int64_t cut_edges = 0;
  /// Total undirected edges (for CutFraction).
  std::int64_t total_edges = 0;
  /// Per-shard node lists, each ascending — the canonical "core" order
  /// every downstream merge policy keys on.
  std::vector<std::vector<std::int64_t>> shard_nodes;

  double CutFraction() const {
    return total_edges > 0
               ? static_cast<double>(cut_edges) /
                     static_cast<double>(total_edges)
               : 0.0;
  }
};

/// Deterministic function of (adjacency, options): size-capped label
/// propagation recovers clusters, whole clusters pack largest-first
/// onto the emptiest shard, then a descending-degree balance pass and
/// `refine_passes` ascending-order greedy passes polish the boundary.
/// Thread count never enters the computation.
Partition PartitionGraph(const AdjacencySource& adj,
                         const PartitionOptions& options);

/// Persists the per-node labels (+ cut stats) as a CRC-checked state
/// file; LoadPartition rebuilds shard_nodes from them. Round-trips
/// bit-identically.
bool SavePartition(const std::string& path, const Partition& p);
bool LoadPartition(const std::string& path, Partition* p);

}  // namespace e2gcl

#endif  // E2GCL_SHARD_PARTITION_H_
