#ifndef E2GCL_SHARD_HALO_H_
#define E2GCL_SHARD_HALO_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "shard/graph_store.h"
#include "shard/partition.h"

namespace e2gcl {

/// All nodes within `hops` BFS steps of the sorted-unique `seeds` (the
/// seeds themselves are hop 0), ascending. Streamed frontier expansion:
/// only the row pointers, the visited bitmap, and the current
/// frontier's adjacency are resident.
std::vector<std::int64_t> BfsBall(const AdjacencySource& adj,
                                  const std::vector<std::int64_t>& seeds,
                                  int hops);

/// BfsBall seeded with shard `shard`'s core.
std::vector<std::int64_t> HaloBallNodes(const AdjacencySource& adj,
                                        const Partition& partition, int shard,
                                        int hops);

/// One shard's training universe: the core plus its `hops`-ring halo,
/// materialized as an induced subgraph. Core nodes are the only rows
/// that contribute to selection and loss; halo rows exist to feed
/// message passing (see DESIGN.md for the approximation contract —
/// edges leaving the ball are dropped, not recursively expanded).
struct ShardBall {
  /// Sorted global ids of every ball node (core + halo).
  std::vector<std::int64_t> nodes;
  /// Local (ball-graph) indices of the core nodes, ascending; pairs with
  /// Partition::shard_nodes[shard] element-for-element.
  std::vector<std::int64_t> core_local;
  std::int64_t num_core = 0;
  /// Induced subgraph over `nodes` (local ids, features, labels).
  Graph graph;
};

/// Resident-graph path: BFS over `g` then InducedSubgraph.
ShardBall BuildShardBall(const Graph& g, const Partition& partition, int shard,
                         int hops);

/// Out-of-core path: BFS + induced-subgraph reads against the store.
/// Produces a ball bit-identical to BuildShardBall on the same graph.
/// Returns false on I/O failure.
bool LoadShardBall(const GraphStore& store, const Partition& partition,
                   int shard, int hops, ShardBall* out);

}  // namespace e2gcl

#endif  // E2GCL_SHARD_HALO_H_
