#ifndef E2GCL_SHARD_SHARDED_TRAINER_H_
#define E2GCL_SHARD_SHARDED_TRAINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/trainer.h"
#include "shard/graph_store.h"
#include "shard/halo.h"
#include "shard/partition.h"

namespace e2gcl {

/// Partition-parallel, out-of-core-capable E2GCL pre-training.
struct ShardedConfig {
  /// The underlying pipeline configuration. Honored fields: selector,
  /// view, encoder/optimizer, epochs/batch_size/seed, checkpointing
  /// (checkpoint_dir/every/keep/resume, report_path). The resident
  /// trainer's retry/fault-injection machinery is not replicated here —
  /// a non-finite epoch fails fast with kDiverged after restoring the
  /// last finite state.
  E2gclConfig base;
  int num_shards = 2;
  /// Halo rings around each shard core (see DESIGN.md "Sharded &
  /// out-of-core training" for the approximation contract).
  int halo_hops = 1;
  /// Partitioner knobs (seeded from base.seed).
  int refine_passes = 3;
  double balance_slack = 0.10;
};

/// Pre-trains one global encoder over a sharded graph.
///
/// Semantics (all deterministic in (config, graph) at any thread
/// count — see DESIGN.md):
///  * The graph is partitioned once; each shard trains and selects on
///    its core + halo ball, built fresh per use so only ONE ball is
///    ever resident in the out-of-core path.
///  * Selection runs per shard on the ball's raw aggregation restricted
///    to core rows, with budgets apportioned by largest remainder;
///    shard results merge in ascending shard order (selection order
///    preserved within a shard).
///  * Each epoch walks the shards serially: a per-(epoch, shard) RNG
///    stream derived from the seed drives batch sampling, view
///    generation, and dropout; the forward runs on the batch's
///    (L+1)-hop ball inside the shard ball; per-shard losses are
///    weighted by their batch share and gradients accumulate in shard
///    order into a single Adam step per epoch.
///  * Because all randomness is derived per (epoch, shard), a resume
///    needs only parameters + Adam state + the epoch index; it rides
///    TrainerCheckpoint unchanged and is bit-identical to an
///    uninterrupted run.
class ShardedTrainer {
 public:
  /// Resident-graph path (graph must outlive the trainer).
  ShardedTrainer(const Graph& graph, const ShardedConfig& config);
  /// Out-of-core path: all graph data is served from `store` (must
  /// outlive the trainer); peak memory is bounded by one shard ball
  /// plus model state, never the full feature matrix.
  ShardedTrainer(const GraphStore& store, const ShardedConfig& config);

  /// Partition + per-shard selection + epoch loop. Safe to call once.
  TrainResult Train();

  const GcnEncoder& encoder() const { return *encoder_; }
  GcnEncoder& encoder() { return *encoder_; }
  const Partition& partition() const { return partition_; }
  /// Merged global selection (empty nodes when use_selector is false).
  const SelectionResult& selection() const { return selection_; }
  /// Per-shard selections (local core indices), ascending shard order.
  const std::vector<SelectionResult>& shard_selections() const {
    return shard_selections_;
  }
  const E2gclStats& stats() const { return stats_; }
  const ShardedConfig& config() const { return config_; }

  /// Extends the resident trainer's fingerprint with the shard layout
  /// knobs, so sharded checkpoints never resume under a different
  /// partitioning.
  std::uint64_t ConfigFingerprint() const;

 private:
  const AdjacencySource& adj() const;
  bool MakeBall(int shard, ShardBall* ball) const;
  TrainerCheckpoint CaptureState(std::int64_t epoch, const Adam& adam) const;
  bool RestoreState(const TrainerCheckpoint& ckpt, Adam& adam);

  const Graph* graph_ = nullptr;
  const GraphStore* store_ = nullptr;
  std::unique_ptr<GraphAdjacency> resident_adj_;
  ShardedConfig config_;
  std::unique_ptr<GcnEncoder> encoder_;
  std::unique_ptr<Mlp> projector_;
  Partition partition_;
  std::vector<SelectionResult> shard_selections_;
  SelectionResult selection_;
  E2gclStats stats_;
  Rng rng_;
};

}  // namespace e2gcl

#endif  // E2GCL_SHARD_SHARDED_TRAINER_H_
