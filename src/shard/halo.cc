#include "shard/halo.h"

#include <algorithm>

#include "tensor/check.h"

namespace e2gcl {

namespace {

/// Fills the ball-node list and the core→local index map shared by both
/// materialization paths.
void FinishBall(const Partition& partition, int shard,
                std::vector<std::int64_t> nodes, ShardBall* out) {
  const std::vector<std::int64_t>& core = partition.shard_nodes[shard];
  out->nodes = std::move(nodes);
  out->num_core = static_cast<std::int64_t>(core.size());
  out->core_local.clear();
  out->core_local.reserve(core.size());
  std::size_t i = 0;
  for (std::int64_t v : core) {
    while (i < out->nodes.size() && out->nodes[i] < v) ++i;
    E2GCL_CHECK(i < out->nodes.size() && out->nodes[i] == v);
    out->core_local.push_back(static_cast<std::int64_t>(i));
  }
}

}  // namespace

std::vector<std::int64_t> BfsBall(const AdjacencySource& adj,
                                  const std::vector<std::int64_t>& seeds,
                                  int hops) {
  E2GCL_CHECK(hops >= 0);
  const std::int64_t n = adj.num_nodes();
  std::vector<char> visited(n, 0);
  std::vector<std::int64_t> ball = seeds;
  for (std::int64_t v : ball) {
    E2GCL_CHECK(v >= 0 && v < n);
    visited[v] = 1;
  }

  std::vector<std::int64_t> frontier = ball;
  std::vector<std::int32_t> cols;
  std::vector<std::int64_t> offsets;
  for (int h = 0; h < hops && !frontier.empty(); ++h) {
    const bool ok = adj.GatherAdjacency(frontier, &cols, &offsets);
    E2GCL_CHECK_MSG(ok, "halo frontier read failed");
    std::vector<std::int64_t> next;
    for (std::int32_t u : cols) {
      if (!visited[u]) {
        visited[u] = 1;
        next.push_back(u);
      }
    }
    std::sort(next.begin(), next.end());
    ball.insert(ball.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  std::sort(ball.begin(), ball.end());
  return ball;
}

std::vector<std::int64_t> HaloBallNodes(const AdjacencySource& adj,
                                        const Partition& partition, int shard,
                                        int hops) {
  E2GCL_CHECK(shard >= 0 && shard < partition.num_shards);
  return BfsBall(adj, partition.shard_nodes[shard], hops);
}

ShardBall BuildShardBall(const Graph& g, const Partition& partition, int shard,
                         int hops) {
  const GraphAdjacency adj(g);
  std::vector<std::int64_t> nodes =
      HaloBallNodes(adj, partition, shard, hops);
  ShardBall ball;
  ball.graph = InducedSubgraph(g, nodes);
  FinishBall(partition, shard, std::move(nodes), &ball);
  return ball;
}

bool LoadShardBall(const GraphStore& store, const Partition& partition,
                   int shard, int hops, ShardBall* out) {
  std::vector<std::int64_t> nodes =
      HaloBallNodes(store, partition, shard, hops);
  if (!store.LoadInducedSubgraph(nodes, &out->graph)) return false;
  FinishBall(partition, shard, std::move(nodes), out);
  return true;
}

}  // namespace e2gcl
