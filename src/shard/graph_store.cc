#include "shard/graph_store.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "io/serialize.h"
#include "parallel/parallel_for.h"
#include "tensor/check.h"
#include "tensor/simd/simd.h"

namespace e2gcl {

namespace {

constexpr std::uint32_t kGraphStoreMagic = 0x47535452;  // "GSTR"
constexpr std::uint32_t kGraphStoreVersion = 1;

std::string JoinPath(const std::string& dir, const char* file) {
  if (dir.empty() || dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

/// Size of `path` in bytes, or -1 when it does not exist / is unreadable.
std::int64_t FileSizeBytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return -1;
  return static_cast<std::int64_t>(size);
}

/// Reads `bytes` bytes starting at `offset` from `path` into `out`.
bool ReadAt(const std::string& path, std::int64_t offset, std::int64_t bytes,
            void* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  in.seekg(offset);
  in.read(static_cast<char*>(out), bytes);
  return in.good() || (bytes == 0);
}

}  // namespace

bool AdjacencySource::GatherAdjacency(
    const std::vector<std::int64_t>& rows, std::vector<std::int32_t>* out_cols,
    std::vector<std::int64_t>* out_offsets) const {
  const std::int64_t m = static_cast<std::int64_t>(rows.size());
  const std::vector<std::int64_t>& rp = row_ptr();
  out_offsets->assign(1, 0);
  out_offsets->reserve(m + 1);
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    total += rp[rows[i] + 1] - rp[rows[i]];
    out_offsets->push_back(total);
  }
  out_cols->clear();
  out_cols->reserve(total);
  std::vector<std::int32_t> run;
  std::int64_t i = 0;
  while (i < m) {
    std::int64_t j = i + 1;
    while (j < m && rows[j] == rows[j - 1] + 1) ++j;
    if (!ReadCols(rows[i], rows[j - 1] + 1, &run)) return false;
    out_cols->insert(out_cols->end(), run.begin(), run.end());
    i = j;
  }
  return true;
}

bool GraphAdjacency::ReadCols(std::int64_t rb, std::int64_t re,
                              std::vector<std::int32_t>* out) const {
  out->assign(g_->col.begin() + g_->row_ptr[rb],
              g_->col.begin() + g_->row_ptr[re]);
  return true;
}

bool GraphStore::Write(const std::string& dir, const Graph& g) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  const std::int64_t n = g.num_nodes;
  const std::int64_t nnz = static_cast<std::int64_t>(g.col.size());
  const std::int64_t d = g.features.empty() ? 0 : g.features.cols();

  // Bin files first, meta last: a store whose meta is present is complete.
  const std::string rowptr(
      reinterpret_cast<const char*>(g.row_ptr.data()),
      static_cast<std::size_t>(n + 1) * sizeof(std::int64_t));
  if (!WriteFileAtomic(JoinPath(dir, "rowptr.bin"), rowptr)) return false;
  const std::string col(reinterpret_cast<const char*>(g.col.data()),
                        static_cast<std::size_t>(nnz) * sizeof(std::int32_t));
  if (!WriteFileAtomic(JoinPath(dir, "col.bin"), col)) return false;
  if (d > 0) {
    const std::string feat(
        reinterpret_cast<const char*>(g.features.data()),
        static_cast<std::size_t>(n) * static_cast<std::size_t>(d) *
            sizeof(float));
    if (!WriteFileAtomic(JoinPath(dir, "feat.bin"), feat)) return false;
  }
  const bool has_labels = !g.labels.empty();
  if (has_labels) {
    const std::string labels(
        reinterpret_cast<const char*>(g.labels.data()),
        static_cast<std::size_t>(n) * sizeof(std::int64_t));
    if (!WriteFileAtomic(JoinPath(dir, "labels.bin"), labels)) return false;
  }

  ByteWriter meta;
  meta.WriteI64(n);
  meta.WriteI64(d);
  meta.WriteI64(g.num_classes);
  meta.WriteI64(nnz);
  meta.WriteU32(has_labels ? 1 : 0);
  return WriteStateFile(JoinPath(dir, "meta.e2gcl"), kGraphStoreMagic,
                        kGraphStoreVersion, {{"meta", meta.bytes()}});
}

bool GraphStore::Open(const std::string& dir) {
  dir_ = dir;
  num_nodes_ = 0;
  row_ptr_.clear();

  std::vector<StateSection> sections;
  if (!ReadStateFile(JoinPath(dir, "meta.e2gcl"), kGraphStoreMagic,
                     kGraphStoreVersion, &sections)) {
    return false;
  }
  const StateSection* meta = FindSection(sections, "meta");
  if (meta == nullptr) return false;
  ByteReader r(meta->payload);
  const std::int64_t n = r.ReadI64();
  const std::int64_t d = r.ReadI64();
  const std::int64_t num_classes = r.ReadI64();
  const std::int64_t nnz = r.ReadI64();
  const bool has_labels = r.ReadU32() != 0;
  if (!r.AtEnd() || n < 0 || d < 0 || nnz < 0) return false;

  // Validate every bin file's size against the declared counts before
  // trusting any offset computed from them.
  if (FileSizeBytes(JoinPath(dir, "rowptr.bin")) !=
      (n + 1) * static_cast<std::int64_t>(sizeof(std::int64_t))) {
    return false;
  }
  if (FileSizeBytes(JoinPath(dir, "col.bin")) !=
      nnz * static_cast<std::int64_t>(sizeof(std::int32_t))) {
    return false;
  }
  if (d > 0 && FileSizeBytes(JoinPath(dir, "feat.bin")) !=
                   n * d * static_cast<std::int64_t>(sizeof(float))) {
    return false;
  }
  if (has_labels &&
      FileSizeBytes(JoinPath(dir, "labels.bin")) !=
          n * static_cast<std::int64_t>(sizeof(std::int64_t))) {
    return false;
  }

  row_ptr_.resize(n + 1);
  if (!ReadAt(JoinPath(dir, "rowptr.bin"), 0,
              (n + 1) * static_cast<std::int64_t>(sizeof(std::int64_t)),
              row_ptr_.data())) {
    row_ptr_.clear();
    return false;
  }
  if (row_ptr_[0] != 0 || row_ptr_[n] != nnz) return false;
  for (std::int64_t v = 0; v < n; ++v) {
    if (row_ptr_[v + 1] < row_ptr_[v]) return false;
  }

  num_nodes_ = n;
  feature_dim_ = d;
  num_classes_ = num_classes;
  has_labels_ = has_labels;
  return true;
}

bool GraphStore::ReadCols(std::int64_t rb, std::int64_t re,
                          std::vector<std::int32_t>* out) const {
  E2GCL_CHECK(rb >= 0 && rb <= re && re <= num_nodes_);
  const std::int64_t begin = row_ptr_[rb];
  const std::int64_t count = row_ptr_[re] - begin;
  out->resize(count);
  return ReadAt(JoinPath(dir_, "col.bin"),
                begin * static_cast<std::int64_t>(sizeof(std::int32_t)),
                count * static_cast<std::int64_t>(sizeof(std::int32_t)),
                out->data());
}

bool GraphStore::GatherAdjacency(const std::vector<std::int64_t>& rows,
                                 std::vector<std::int32_t>* out_cols,
                                 std::vector<std::int64_t>* out_offsets) const {
  const std::int64_t m = static_cast<std::int64_t>(rows.size());
  out_offsets->assign(1, 0);
  out_offsets->reserve(m + 1);
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    E2GCL_CHECK(rows[i] >= 0 && rows[i] < num_nodes_);
    total += row_ptr_[rows[i] + 1] - row_ptr_[rows[i]];
    out_offsets->push_back(total);
  }
  out_cols->resize(total);
  // One stream for the whole gather; consecutive-row runs coalesce into
  // single reads, so a shard's (mostly contiguous) rows cost few seeks.
  std::ifstream in(JoinPath(dir_, "col.bin"), std::ios::binary);
  if (!in.is_open()) return m == 0;
  std::int64_t write_at = 0;
  std::int64_t i = 0;
  while (i < m) {
    std::int64_t j = i + 1;
    while (j < m && rows[j] == rows[j - 1] + 1) ++j;
    const std::int64_t begin = row_ptr_[rows[i]];
    const std::int64_t count = row_ptr_[rows[j - 1] + 1] - begin;
    if (count > 0) {
      in.seekg(begin * static_cast<std::int64_t>(sizeof(std::int32_t)));
      in.read(reinterpret_cast<char*>(out_cols->data() + write_at),
              count * static_cast<std::int64_t>(sizeof(std::int32_t)));
      if (!in.good()) return false;
      write_at += count;
    }
    i = j;
  }
  return true;
}

bool GraphStore::ReadFeatureRows(const std::vector<std::int64_t>& nodes,
                                 Matrix* out) const {
  const std::int64_t m = static_cast<std::int64_t>(nodes.size());
  if (feature_dim_ == 0) {
    *out = Matrix();
    return true;
  }
  *out = Matrix(m, feature_dim_);
  const std::int64_t row_bytes =
      feature_dim_ * static_cast<std::int64_t>(sizeof(float));
  std::ifstream in(JoinPath(dir_, "feat.bin"), std::ios::binary);
  if (!in.is_open()) return m == 0;
  std::int64_t i = 0;
  while (i < m) {
    E2GCL_CHECK(nodes[i] >= 0 && nodes[i] < num_nodes_);
    std::int64_t j = i + 1;
    while (j < m && nodes[j] == nodes[j - 1] + 1) ++j;
    in.seekg(nodes[i] * row_bytes);
    in.read(reinterpret_cast<char*>(out->RowPtr(i)), (j - i) * row_bytes);
    if (!in.good()) return false;
    i = j;
  }
  return true;
}

bool GraphStore::ReadLabels(const std::vector<std::int64_t>& nodes,
                            std::vector<std::int64_t>* out) const {
  out->clear();
  if (!has_labels_) return true;
  const std::int64_t m = static_cast<std::int64_t>(nodes.size());
  out->resize(m);
  std::ifstream in(JoinPath(dir_, "labels.bin"), std::ios::binary);
  if (!in.is_open()) return m == 0;
  std::int64_t i = 0;
  while (i < m) {
    E2GCL_CHECK(nodes[i] >= 0 && nodes[i] < num_nodes_);
    std::int64_t j = i + 1;
    while (j < m && nodes[j] == nodes[j - 1] + 1) ++j;
    in.seekg(nodes[i] * static_cast<std::int64_t>(sizeof(std::int64_t)));
    in.read(reinterpret_cast<char*>(out->data() + i),
            (j - i) * static_cast<std::int64_t>(sizeof(std::int64_t)));
    if (!in.good()) return false;
    i = j;
  }
  return true;
}

bool GraphStore::LoadInducedSubgraph(const std::vector<std::int64_t>& nodes,
                                     Graph* out) const {
  const std::int64_t m = static_cast<std::int64_t>(nodes.size());
  for (std::int64_t i = 1; i < m; ++i) {
    E2GCL_CHECK_MSG(nodes[i] > nodes[i - 1], "nodes must be sorted unique");
  }
  std::vector<std::int32_t> cols;
  std::vector<std::int64_t> offsets;
  if (!GatherAdjacency(nodes, &cols, &offsets)) return false;

  // Keep edges whose endpoints are both in `nodes`; binary search gives
  // the local id directly (same membership rule as InducedSubgraph, so
  // the resulting CSR is bit-identical to the resident-path one).
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      const std::int64_t u = cols[e];
      const auto it = std::lower_bound(nodes.begin(), nodes.end(), u);
      if (it == nodes.end() || *it != u) continue;
      const std::int64_t j = it - nodes.begin();
      if (j > i) edges.emplace_back(i, j);
    }
  }
  Matrix feats;
  if (!ReadFeatureRows(nodes, &feats)) return false;
  std::vector<std::int64_t> labels;
  if (!ReadLabels(nodes, &labels)) return false;
  *out = BuildGraph(m, edges, std::move(feats), std::move(labels),
                    num_classes_);
  return true;
}

Matrix StreamedNormalizedSpmm(const AdjacencySource& adj, const Matrix& b,
                              std::int64_t rows_per_chunk) {
  const std::int64_t n = adj.num_nodes();
  E2GCL_CHECK(b.rows() == n);
  E2GCL_CHECK(rows_per_chunk > 0);
  const std::int64_t d = b.cols();
  const std::vector<std::int64_t>& rp = adj.row_ptr();
  Matrix out(n, d);

  // Per-row entries replicate NormalizedAdjacency(g) exactly: with self
  // loops, deg is 1 + degree as a double, the diagonal 1/deg sits at its
  // ascending-column slot, and off-diagonals are 1/sqrt(deg_v * deg_u).
  // Row results depend only on the row's own entries, so the chunking
  // below cannot change them.
  std::vector<std::int32_t> chunk_cols;
  std::vector<std::int64_t> lrp;
  std::vector<std::int32_t> lcol;
  std::vector<float> lval;
  for (std::int64_t rb = 0; rb < n; rb += rows_per_chunk) {
    const std::int64_t re = std::min(n, rb + rows_per_chunk);
    const std::int64_t rows = re - rb;
    const bool ok = adj.ReadCols(rb, re, &chunk_cols);
    E2GCL_CHECK_MSG(ok, "adjacency chunk read failed");
    lrp.assign(1, 0);
    lrp.reserve(rows + 1);
    lcol.clear();
    lval.clear();
    lcol.reserve(chunk_cols.size() + rows);
    lval.reserve(chunk_cols.size() + rows);
    for (std::int64_t v = rb; v < re; ++v) {
      const double dv = 1.0 + static_cast<double>(rp[v + 1] - rp[v]);
      bool self_placed = false;
      for (std::int64_t e = rp[v] - rp[rb]; e < rp[v + 1] - rp[rb]; ++e) {
        const std::int32_t u = chunk_cols[e];
        if (!self_placed && u > v) {
          lcol.push_back(static_cast<std::int32_t>(v));
          lval.push_back(static_cast<float>(1.0 / dv));
          self_placed = true;
        }
        const double du = 1.0 + static_cast<double>(rp[u + 1] - rp[u]);
        lcol.push_back(u);
        lval.push_back(static_cast<float>(1.0 / std::sqrt(dv * du)));
      }
      if (!self_placed) {
        lcol.push_back(static_cast<std::int32_t>(v));
        lval.push_back(static_cast<float>(1.0 / dv));
      }
      lrp.push_back(static_cast<std::int64_t>(lcol.size()));
    }
    const std::int64_t avg_nnz =
        rows > 0 ? (lrp.back() + rows - 1) / rows : 1;
    ParallelFor(0, rows, GrainForCost(avg_nnz * d),
                [&](std::int64_t lb, std::int64_t le) {
                  simd::SpmmRows(lrp.data(), lcol.data(), lval.data(),
                                 b.data(), out.RowPtr(rb), lb, le, d);
                });
  }
  return out;
}

}  // namespace e2gcl
