#include "shard/sharded_trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "core/raw_aggregation.h"
#include "io/serialize.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kSelectStream = 0x53454c45435421ull;
constexpr std::uint64_t kEpochStream = 0x45504f434821ull;

/// Independent RNG stream for (stream kind, epoch, shard), derived from
/// the run seed alone. This is what makes sharded training resumable
/// from nothing but the epoch index: no RNG state threads across
/// epochs or shards.
Rng DerivedRng(std::uint64_t seed, std::uint64_t stream, std::uint64_t a,
               std::uint64_t b) {
  return Rng(SplitMix64(seed ^ SplitMix64(stream ^ SplitMix64(a) ^
                                          (b * 0x9e3779b97f4a7c15ULL))));
}

const char* StatusName(TrainStatus status) {
  switch (status) {
    case TrainStatus::kOk:
      return "ok";
    case TrainStatus::kDiverged:
      return "diverged";
    case TrainStatus::kKilled:
      return "killed";
  }
  return "unknown";
}

bool ShapesMatch(const std::vector<Var>& params,
                 const std::vector<Matrix>& values) {
  if (params.size() != values.size()) return false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].value().rows() != values[i].rows() ||
        params[i].value().cols() != values[i].cols()) {
      return false;
    }
  }
  return true;
}

}  // namespace

ShardedTrainer::ShardedTrainer(const Graph& graph,
                               const ShardedConfig& config)
    : graph_(&graph), config_(config), rng_(config.base.seed) {
  E2GCL_CHECK(graph.num_nodes > 1);
  E2GCL_CHECK(!graph.features.empty());
  E2GCL_CHECK(config.num_shards >= 1);
  resident_adj_ = std::make_unique<GraphAdjacency>(graph);
  GcnConfig enc;
  enc.dims.assign(config_.base.num_layers + 1, config_.base.hidden_dim);
  enc.dims.front() = graph.feature_dim();
  enc.dims.back() = config_.base.embed_dim;
  enc.dropout = config_.base.dropout;
  encoder_ = std::make_unique<GcnEncoder>(enc, rng_);
  if (config_.base.projection_head) {
    MlpConfig proj;
    proj.dims = {config_.base.embed_dim, config_.base.embed_dim,
                 config_.base.embed_dim};
    projector_ = std::make_unique<Mlp>(proj, rng_);
  }
}

ShardedTrainer::ShardedTrainer(const GraphStore& store,
                               const ShardedConfig& config)
    : store_(&store), config_(config), rng_(config.base.seed) {
  E2GCL_CHECK(store.num_nodes() > 1);
  E2GCL_CHECK(store.feature_dim() > 0);
  E2GCL_CHECK(config.num_shards >= 1);
  GcnConfig enc;
  enc.dims.assign(config_.base.num_layers + 1, config_.base.hidden_dim);
  enc.dims.front() = store.feature_dim();
  enc.dims.back() = config_.base.embed_dim;
  enc.dropout = config_.base.dropout;
  encoder_ = std::make_unique<GcnEncoder>(enc, rng_);
  if (config_.base.projection_head) {
    MlpConfig proj;
    proj.dims = {config_.base.embed_dim, config_.base.embed_dim,
                 config_.base.embed_dim};
    projector_ = std::make_unique<Mlp>(proj, rng_);
  }
}

const AdjacencySource& ShardedTrainer::adj() const {
  if (store_ != nullptr) return *store_;
  return *resident_adj_;
}

bool ShardedTrainer::MakeBall(int shard, ShardBall* ball) const {
  if (store_ != nullptr) {
    return LoadShardBall(*store_, partition_, shard, config_.halo_hops,
                         ball);
  }
  *ball = BuildShardBall(*graph_, partition_, shard, config_.halo_hops);
  return true;
}

std::uint64_t ShardedTrainer::ConfigFingerprint() const {
  const E2gclConfig& b = config_.base;
  ByteWriter w;
  w.WriteU64(b.seed);
  w.WriteI64(b.hidden_dim);
  w.WriteI64(b.embed_dim);
  w.WriteI64(b.num_layers);
  w.WriteF32(b.dropout);
  w.WriteF32(b.lr);
  w.WriteF32(b.weight_decay);
  w.WriteI64(b.batch_size);
  w.WriteF32(b.temperature);
  w.WriteU32(static_cast<std::uint32_t>(b.loss));
  w.WriteU32(b.projection_head ? 1 : 0);
  w.WriteU32(b.use_selector ? 1 : 0);
  w.WriteF32(static_cast<float>(b.node_ratio));
  w.WriteU32(b.use_coreset_weights ? 1 : 0);
  // Shard layout: a checkpoint from a different partitioning must be
  // refused even though parameter shapes would match.
  w.WriteI64(config_.num_shards);
  w.WriteI64(config_.halo_hops);
  w.WriteI64(config_.refine_passes);
  w.WriteF32(static_cast<float>(config_.balance_slack));
  w.WriteI64(adj().num_nodes());
  w.WriteI64(graph_ != nullptr ? graph_->feature_dim()
                               : store_->feature_dim());
  w.WriteI64(adj().nnz() / 2);
  return Fnv1a(w.bytes());
}

TrainerCheckpoint ShardedTrainer::CaptureState(std::int64_t epoch,
                                               const Adam& adam) const {
  TrainerCheckpoint c;
  c.epoch = epoch;
  c.config_fingerprint = ConfigFingerprint();
  c.retries_used = 0;
  c.lr_scale = 1.0f;
  c.rng_state = rng_.SerializeState();
  c.encoder_params = encoder_->params().CloneValues();
  if (projector_ != nullptr) {
    c.projector_params = projector_->params().CloneValues();
  }
  AdamState state = adam.CloneState();
  c.adam_m = std::move(state.m);
  c.adam_v = std::move(state.v);
  c.adam_t = state.t;
  return c;
}

bool ShardedTrainer::RestoreState(const TrainerCheckpoint& ckpt, Adam& adam) {
  if (!ShapesMatch(encoder_->params().params(), ckpt.encoder_params)) {
    return false;
  }
  if (projector_ != nullptr) {
    if (!ShapesMatch(projector_->params().params(), ckpt.projector_params)) {
      return false;
    }
  } else if (!ckpt.projector_params.empty()) {
    return false;
  }
  AdamState state;
  state.m = ckpt.adam_m;
  state.v = ckpt.adam_v;
  state.t = ckpt.adam_t;
  if (!rng_.RestoreState(ckpt.rng_state)) return false;
  if (!adam.LoadState(state)) return false;
  encoder_->params().LoadValues(ckpt.encoder_params);
  if (projector_ != nullptr) {
    projector_->params().LoadValues(ckpt.projector_params);
  }
  return true;
}

TrainResult ShardedTrainer::Train() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t n = adj().num_nodes();
  const E2gclConfig& base = config_.base;
  const int s = config_.num_shards;

  static const Counter shard_epochs_counter =
      Counter::Get("shard.train.shard_epochs");
  static const Counter balls_counter = Counter::Get("shard.balls_built");
  static const Counter halo_counter = Counter::Get("shard.halo_nodes");
  static const Counter select_counter = Counter::Get("shard.select.runs");
  static const Counter epochs_counter = Counter::Get("shard.train.epochs");
  static const Counter resumes_counter = Counter::Get("shard.resumes");

  const MetricsSnapshot metrics_baseline = MetricsRegistry::Get().Snapshot();
  std::vector<RunReport::Epoch> epoch_records;

  auto finish = [&](TrainResult result) {
    stats_.total_seconds = SecondsSince(t0);
    RecordPeakRssGauge();
    std::string report_path = base.report_path;
    if (report_path.empty() && !base.checkpoint_dir.empty()) {
      report_path = base.checkpoint_dir + "/run_report.json";
    }
    if (!report_path.empty()) {
      RunReport report;
      char fp[24];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(ConfigFingerprint()));
      report.config_fingerprint = fp;
      report.seed = base.seed;
      report.threads = GetNumThreads();
      report.status = StatusName(result.status);
      report.resumed = result.resumed;
      report.start_epoch = result.start_epoch;
      report.retries_used = result.retries_used;
      report.selection_seconds = stats_.selection_seconds;
      report.total_seconds = stats_.total_seconds;
      report.epochs = epoch_records;
      for (const TrainEvent& e : result.events) {
        report.events.push_back(
            {TrainEventKindName(e.kind), e.epoch, e.detail});
      }
      report.metrics =
          MetricsRegistry::Get().Snapshot().DeltaFrom(metrics_baseline);
      report.spans = TraceRegistry::Get().Snapshot();
      if (!SaveRunReport(report_path, report)) {
        std::fprintf(stderr,
                     "[e2gcl] warning: failed to write run report %s\n",
                     report_path.c_str());
      }
    }
    return result;
  };

  TrainResult result;

  // --- Partition. --------------------------------------------------------
  {
    TraceSpan span("shard.partition");
    PartitionOptions popts;
    popts.num_shards = s;
    popts.refine_passes = config_.refine_passes;
    popts.balance_slack = config_.balance_slack;
    popts.seed = base.seed;
    partition_ = PartitionGraph(adj(), popts);
    Gauge::Get("shard.partition.cut_edges").Set(partition_.cut_edges);
  }

  // --- Per-shard selection + deterministic merge (shard-ascending). ------
  std::vector<std::int64_t> core_sizes(s);
  for (int i = 0; i < s; ++i) {
    core_sizes[i] =
        static_cast<std::int64_t>(partition_.shard_nodes[i].size());
  }
  // Per-shard training pools in ball-core-local indices + their weights.
  std::vector<std::vector<std::int64_t>> pool_core(s);
  std::vector<std::vector<float>> pool_weights(s);
  shard_selections_.assign(s, {});
  if (base.use_selector) {
    const std::int64_t k_total = std::min<std::int64_t>(
        std::max<std::int64_t>(
            2, static_cast<std::int64_t>(std::llround(base.node_ratio *
                                                      static_cast<double>(n)))),
        n);
    const std::vector<std::int64_t> budgets =
        ApportionBudget(k_total, core_sizes);
    for (int shard = 0; shard < s; ++shard) {
      if (budgets[shard] <= 0) continue;
      TraceSpan span("shard.select");
      Matrix r_core;
      {
        // Scoped so the ball and the full-ball aggregation are gone
        // before the selector's clustering allocates.
        ShardBall ball;
        const bool ok = MakeBall(shard, &ball);
        E2GCL_CHECK_MSG(ok, "shard ball load failed");
        balls_counter.Increment();
        halo_counter.Add(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(ball.nodes.size()) - ball.num_core));
        Matrix r_ball = RawAggregation(ball.graph, base.num_layers);
        // Free the ball before gathering core rows: the ball graph is
        // the largest selection-phase allocation and the gather only
        // needs r_ball plus the core index list.
        const std::vector<std::int64_t> core_local =
            std::move(ball.core_local);
        ball = ShardBall();
        r_core = GatherRows(r_ball, core_local);
      }
      SelectorConfig sel = base.selector;
      sel.budget = budgets[shard];
      Rng sel_rng = DerivedRng(base.seed, kSelectStream, 0,
                               static_cast<std::uint64_t>(shard));
      shard_selections_[shard] = SelectCoreset(r_core, sel, sel_rng);
      select_counter.Increment();
      pool_core[shard] = shard_selections_[shard].nodes;
      pool_weights[shard] = shard_selections_[shard].weights;
    }
    selection_ =
        MergeShardSelections(shard_selections_, partition_.shard_nodes);
    stats_.selection_seconds = selection_.seconds;
  } else {
    for (int shard = 0; shard < s; ++shard) {
      pool_core[shard].resize(core_sizes[shard]);
      std::iota(pool_core[shard].begin(), pool_core[shard].end(), 0);
      pool_weights[shard].assign(core_sizes[shard], 1.0f);
    }
  }

  // --- Optimizer over the global model. ----------------------------------
  std::vector<Var> params;
  for (const Var& p : encoder_->params().params()) params.push_back(p);
  if (projector_ != nullptr) {
    for (const Var& p : projector_->params().params()) params.push_back(p);
  }
  Adam::Options opts;
  opts.lr = base.lr;
  opts.weight_decay = base.weight_decay;
  Adam adam(params, opts);

  // Per-epoch batch apportioning over the shard pools: fixed for the
  // whole run, so every epoch contrasts the same per-shard batch sizes.
  std::vector<std::int64_t> pool_sizes(s);
  std::int64_t total_pool = 0;
  for (int i = 0; i < s; ++i) {
    pool_sizes[i] = static_cast<std::int64_t>(pool_core[i].size());
    total_pool += pool_sizes[i];
  }
  std::vector<std::int64_t> batch_parts = ApportionBudget(
      std::min<std::int64_t>(base.batch_size, total_pool), pool_sizes);
  // InfoNCE needs at least two rows to contrast; a shard apportioned
  // fewer sits the run out and the weights renormalize over the rest.
  std::int64_t batch_total = 0;
  for (int i = 0; i < s; ++i) {
    if (batch_parts[i] < 2) batch_parts[i] = 0;
    batch_total += batch_parts[i];
  }
  if (batch_total == 0) {
    result.status = TrainStatus::kDiverged;
    result.message = "no shard has a trainable batch (pool too small)";
    return finish(std::move(result));
  }

  TrainerCheckpoint rollback = CaptureState(-1, adam);
  const bool checkpointing = !base.checkpoint_dir.empty();
  if (checkpointing) {
    E2GCL_CHECK(base.checkpoint_every >= 1);
    E2GCL_CHECK(base.checkpoint_keep >= 1);
    std::error_code ec;
    std::filesystem::create_directories(base.checkpoint_dir, ec);
    if (base.resume) {
      TrainerCheckpoint ckpt;
      std::string from;
      if (FindNewestValidCheckpoint(base.checkpoint_dir, ConfigFingerprint(),
                                    &ckpt, &from)) {
        if (RestoreState(ckpt, adam)) {
          result.resumed = true;
          result.start_epoch = static_cast<int>(ckpt.epoch) + 1;
          resumes_counter.Increment();
          result.events.push_back({TrainEvent::Kind::kResume,
                                   static_cast<int>(ckpt.epoch),
                                   "resumed from " + from});
          rollback = std::move(ckpt);
        } else {
          std::fprintf(stderr,
                       "[e2gcl] warning: checkpoint %s does not match the "
                       "current sharded model; starting fresh\n",
                       from.c_str());
        }
      }
    }
  }

  // --- Epoch loop: serial shard sweep, one Adam step per epoch. ----------
  for (int epoch = result.start_epoch; epoch < base.epochs; ++epoch) {
    TraceSpan epoch_span("shard.epoch");
    RunReport::Epoch record;
    record.epoch = epoch;
    // Gradients are zeroed once per epoch; each shard's Backward()
    // accumulates into the shared leaf gradients in shard-ascending
    // order (the serial loop IS the deterministic reduction).
    adam.ZeroGrad();
    double loss_sum = 0.0;

    for (int shard = 0; shard < s; ++shard) {
      if (batch_parts[shard] == 0) continue;
      Rng erng = DerivedRng(base.seed, kEpochStream,
                            static_cast<std::uint64_t>(epoch),
                            static_cast<std::uint64_t>(shard));
      ShardBall ball;
      const bool ok = MakeBall(shard, &ball);
      E2GCL_CHECK_MSG(ok, "shard ball load failed");
      balls_counter.Increment();

      // Sample this shard's batch from its pool (ball-local core ids).
      const std::int64_t pool = pool_sizes[shard];
      const std::int64_t k = batch_parts[shard];
      std::vector<std::int64_t> batch_local;
      std::vector<float> batch_weights;
      batch_local.reserve(k);
      batch_weights.reserve(k);
      if (k == pool) {
        for (std::int64_t i = 0; i < pool; ++i) {
          batch_local.push_back(ball.core_local[pool_core[shard][i]]);
          batch_weights.push_back(pool_weights[shard][i]);
        }
      } else {
        for (std::int64_t i : erng.SampleWithoutReplacement(pool, k)) {
          batch_local.push_back(ball.core_local[pool_core[shard][i]]);
          batch_weights.push_back(pool_weights[shard][i]);
        }
      }
      if (!base.use_coreset_weights) {
        batch_weights.assign(batch_local.size(), 1.0f);
      }

      // The forward only ever sees the batch's (L+1)-hop ball inside
      // the shard ball: L hops for the GCN receptive field, one extra
      // ring so view generation's 2-hop edge-addition candidates at the
      // rim have support. Activation memory scales with the batch ball,
      // not the shard.
      const auto tv = std::chrono::steady_clock::now();
      std::vector<std::int64_t> seeds = batch_local;
      std::sort(seeds.begin(), seeds.end());
      const GraphAdjacency ball_adj(ball.graph);
      const std::vector<std::int64_t> sub_nodes =
          BfsBall(ball_adj, seeds, base.num_layers + 1);
      const Graph sub = InducedSubgraph(ball.graph, sub_nodes);
      std::vector<std::int64_t> batch_sub;
      batch_sub.reserve(batch_local.size());
      for (std::int64_t v : batch_local) {
        batch_sub.push_back(std::lower_bound(sub_nodes.begin(),
                                             sub_nodes.end(), v) -
                            sub_nodes.begin());
      }
      // Everything below runs on the batch ball alone; release the
      // shard ball so forward/backward never coexist with it.
      ball = ShardBall();

      ViewGenerator generator(sub, base.view_hat.beta);
      Graph view_hat = generator.GenerateGlobalView(base.view_hat, erng);
      Graph view_tilde = generator.GenerateGlobalView(base.view_tilde, erng);
      auto adj_hat =
          std::make_shared<const CsrMatrix>(NormalizedAdjacency(view_hat));
      auto adj_tilde =
          std::make_shared<const CsrMatrix>(NormalizedAdjacency(view_tilde));
      record.view_seconds += SecondsSince(tv);
      stats_.view_seconds += SecondsSince(tv);

      const auto tl = std::chrono::steady_clock::now();
      Var x_hat = Var::Constant(view_hat.features);
      Var x_tilde = Var::Constant(view_tilde.features);
      Var h_hat = encoder_->Forward(adj_hat, x_hat, erng, /*training=*/true);
      Var h_tilde =
          encoder_->Forward(adj_tilde, x_tilde, erng, /*training=*/true);
      Var z_hat = ag::GatherRows(h_hat, batch_sub);
      Var z_tilde = ag::GatherRows(h_tilde, batch_sub);
      if (projector_ != nullptr) {
        z_hat = projector_->Forward(z_hat, erng, /*training=*/true);
        z_tilde = projector_->Forward(z_tilde, erng, /*training=*/true);
      }
      Var loss = ComputeContrastiveLoss(base.loss, z_hat, z_tilde,
                                        base.temperature, erng,
                                        batch_weights);
      // Data-parallel semantics: the epoch loss is the batch-share
      // weighted sum of shard losses, so gradients accumulate with the
      // same weights (shard-ascending; fixed order at any thread count).
      const float shard_weight =
          static_cast<float>(k) / static_cast<float>(batch_total);
      Var scaled = ag::Scale(loss, shard_weight);
      scaled.Backward();
      loss_sum += static_cast<double>(scaled.value()(0, 0));
      record.loss_seconds += SecondsSince(tl);
      shard_epochs_counter.Increment();
    }

    // Single optimizer step per epoch over the accumulated gradients.
    const auto ts = std::chrono::steady_clock::now();
    adam.Step();
    record.step_seconds = SecondsSince(ts);

    bool params_finite = true;
    for (const Var& p : params) {
      if (!AllFinite(p.value())) {
        params_finite = false;
        break;
      }
    }
    if (!std::isfinite(loss_sum) || !params_finite) {
      RestoreState(rollback, adam);
      result.status = TrainStatus::kDiverged;
      char msg[128];
      std::snprintf(msg, sizeof(msg),
                    "non-finite loss/parameters at epoch %d", epoch);
      result.message = msg;
      result.events.push_back(
          {TrainEvent::Kind::kDiverged, epoch, result.message});
      return finish(std::move(result));
    }

    stats_.epochs_run = epoch + 1;
    epochs_counter.Increment();
    RecordPeakRssGauge();

    if (checkpointing && ((epoch + 1) % base.checkpoint_every == 0 ||
                          epoch + 1 == base.epochs)) {
      const auto tc = std::chrono::steady_clock::now();
      TrainerCheckpoint ckpt = CaptureState(epoch, adam);
      const std::string path = CheckpointPath(base.checkpoint_dir, epoch);
      if (SaveTrainerCheckpoint(path, ckpt)) {
        PruneCheckpoints(base.checkpoint_dir, base.checkpoint_keep);
        rollback = std::move(ckpt);
        result.events.push_back(
            {TrainEvent::Kind::kCheckpointWrite, epoch, path});
      } else {
        result.events.push_back(
            {TrainEvent::Kind::kCheckpointWriteFailure, epoch, path});
        std::fprintf(stderr,
                     "[e2gcl] warning: failed to write checkpoint %s\n",
                     path.c_str());
      }
      record.checkpoint_seconds = SecondsSince(tc);
    }

    record.loss = loss_sum;
    record.counters =
        MetricsRegistry::Get().Snapshot().DeltaFrom(metrics_baseline).counters;
    epoch_records.push_back(std::move(record));
  }
  return finish(std::move(result));
}

}  // namespace e2gcl
