#include "io/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/serialize.h"
#include "tensor/check.h"

namespace e2gcl {

// --- JsonValue construction / access. --------------------------------------

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.int_ = true;
  v.i_ = i;
  v.d_ = static_cast<double>(i);
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.int_ = false;
  v.d_ = d;
  v.i_ = static_cast<std::int64_t>(d);
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.s_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  E2GCL_CHECK(kind_ == Kind::kBool);
  return bool_;
}

std::int64_t JsonValue::AsInt() const {
  E2GCL_CHECK(kind_ == Kind::kNumber);
  return int_ ? i_ : static_cast<std::int64_t>(d_);
}

double JsonValue::AsDouble() const {
  E2GCL_CHECK(kind_ == Kind::kNumber);
  return int_ ? static_cast<double>(i_) : d_;
}

const std::string& JsonValue::AsString() const {
  E2GCL_CHECK(kind_ == Kind::kString);
  return s_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  E2GCL_CHECK(kind_ == Kind::kArray);
  return arr_;
}

std::vector<JsonValue>& JsonValue::items() {
  E2GCL_CHECK(kind_ == Kind::kArray);
  return arr_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  E2GCL_CHECK(kind_ == Kind::kObject);
  return obj_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Append(JsonValue v) {
  E2GCL_CHECK(kind_ == Kind::kArray);
  arr_.push_back(std::move(v));
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  E2GCL_CHECK(kind_ == Kind::kObject);
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

// --- Parser. ----------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing garbage after document");
    return true;
  }

 private:
  bool Fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty()) {
      std::ostringstream os;
      os << "json error at byte " << pos_ << ": " << msg;
      *error_ = os.str();
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::Str(std::move(s));
        return true;
      }
      case 't':
        if (!Literal("true")) return Fail("invalid literal");
        *out = JsonValue::Bool(true);
        return true;
      case 'f':
        if (!Literal("false")) return Fail("invalid literal");
        *out = JsonValue::Bool(false);
        return true;
      case 'n':
        if (!Literal("null")) return Fail("invalid literal");
        *out = JsonValue::Null();
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      if (out->Find(key) != nullptr) return Fail("duplicate key '" + key + "'");
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v, depth + 1)) return false;
      out->Set(key, std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v, depth + 1)) return false;
      out->Append(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Fail("truncated escape");
      const char e = text_[pos_ + 1];
      pos_ += 2;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned int cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed for report content; lone surrogates pass through as
          // their 3-byte encoding).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Fail("invalid escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("invalid number");
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::Int(static_cast<std::int64_t>(v));
        return true;
      }
      // Out-of-range integer literal: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) {
      return Fail("invalid number '" + tok + "'");
    }
    *out = JsonValue::Double(d);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned int>(
                            static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Dump(const JsonValue& v, bool indent, int depth, std::string* out) {
  const std::string pad = indent ? std::string(
                                       static_cast<std::size_t>(depth) * 2, ' ')
                                 : std::string();
  const std::string child_pad =
      indent ? std::string(static_cast<std::size_t>(depth + 1) * 2, ' ')
             : std::string();
  const char* nl = indent ? "\n" : "";
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.AsBool() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      char buf[40];
      if (v.is_int()) {
        std::snprintf(buf, sizeof(buf), "%" PRId64, v.AsInt());
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      }
      *out += buf;
      break;
    }
    case JsonValue::Kind::kString:
      EscapeString(v.AsString(), out);
      break;
    case JsonValue::Kind::kArray: {
      const auto& items = v.items();
      if (items.empty()) {
        *out += "[]";
        break;
      }
      *out += "[";
      *out += nl;
      for (std::size_t i = 0; i < items.size(); ++i) {
        *out += child_pad;
        Dump(items[i], indent, depth + 1, out);
        if (i + 1 < items.size()) *out += ",";
        *out += nl;
      }
      *out += pad;
      *out += "]";
      break;
    }
    case JsonValue::Kind::kObject: {
      const auto& members = v.members();
      if (members.empty()) {
        *out += "{}";
        break;
      }
      *out += "{";
      *out += nl;
      for (std::size_t i = 0; i < members.size(); ++i) {
        *out += child_pad;
        EscapeString(members[i].first, out);
        *out += indent ? ": " : ":";
        Dump(members[i].second, indent, depth + 1, out);
        if (i + 1 < members.size()) *out += ",";
        *out += nl;
      }
      *out += pad;
      *out += "}";
      break;
    }
  }
}

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  if (error != nullptr) error->clear();
  Parser p(text, error);
  return p.Parse(out);
}

std::string DumpJson(const JsonValue& v, bool indent) {
  std::string out;
  Dump(v, indent, 0, &out);
  if (indent) out += "\n";
  return out;
}

bool LoadJsonFile(const std::string& path, JsonValue* out,
                  std::string* error) {
  if (error != nullptr) error->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    if (error != nullptr) *error = "read failure on '" + path + "'";
    return false;
  }
  if (!ParseJson(buf.str(), out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool WriteJsonFile(const std::string& path, const JsonValue& v) {
  return WriteFileAtomic(path, DumpJson(v, /*indent=*/true));
}

}  // namespace e2gcl
