#ifndef E2GCL_IO_SERIALIZE_H_
#define E2GCL_IO_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace e2gcl {

/// Versioned binary state serialization used by the checkpoint system.
///
/// A state file is a sequence of named sections, each independently
/// protected by a CRC32 checksum, inside a small magic/version envelope:
///
///   u32 magic | u32 version | u32 section_count
///   repeated: u32 name_len | name bytes | u64 payload_len | u32 crc32 |
///             payload bytes
///
/// All integers are little-endian (the library targets little-endian
/// hosts; float payloads are raw IEEE-754 words). Readers are strictly
/// bounds-checked: a truncated, oversized, or checksum-failing file
/// makes the load return false — it never aborts and never returns
/// partially-filled state. Writes are atomic: the file is staged at
/// `path.tmp`, fsync'd, and renamed over `path`, so a crash mid-write
/// leaves either the old file or the new one, never a torn mix.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
std::uint32_t Crc32(const void* data, std::size_t size);

/// Append-only byte buffer for building section payloads.
class ByteWriter {
 public:
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v);
  void WriteF32(float v);
  void WriteBytes(const void* data, std::size_t size);
  /// Length-prefixed (u64) byte string.
  void WriteString(const std::string& s);
  /// rows (i64), cols (i64), then rows*cols raw float32 words.
  void WriteMatrix(const Matrix& m);

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a payload. Any out-of-range or malformed
/// read latches ok() to false and yields a zero value; callers perform a
/// read sequence and check ok() once at the end.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size);
  explicit ByteReader(const std::string& bytes);

  std::uint32_t ReadU32();
  std::uint64_t ReadU64();
  std::int64_t ReadI64();
  float ReadF32();
  std::string ReadString();
  Matrix ReadMatrix();
  /// Reads exactly `n` raw bytes into a string ("" + ok()=false when
  /// fewer remain).
  std::string ReadRaw(std::size_t n);

  bool ok() const { return ok_; }
  /// True once every byte has been consumed (and no read failed).
  bool AtEnd() const { return ok_ && pos_ == size_; }

 private:
  bool Take(void* out, std::size_t n);

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// One named section of a state file.
struct StateSection {
  std::string name;
  std::string payload;
};

/// Writes `bytes` to `path` durably and atomically: stage at path.tmp,
/// flush + fsync, rename over path, then fsync the parent directory.
/// Returns false on any I/O failure; no partial file is left at `path`.
bool WriteFileAtomic(const std::string& path, const std::string& bytes);

/// Atomically writes `sections` to `path` (stage at path.tmp, fsync,
/// rename). Returns false on any I/O failure; no partial file is left at
/// `path`.
bool WriteStateFile(const std::string& path, std::uint32_t magic,
                    std::uint32_t version,
                    const std::vector<StateSection>& sections);

/// Reads a state file written by WriteStateFile. Returns false — leaving
/// `sections` empty — on bad magic, a version above `max_version`,
/// truncation, trailing garbage, or any per-section CRC mismatch.
/// `version`, if non-null, receives the file's version on success.
bool ReadStateFile(const std::string& path, std::uint32_t magic,
                   std::uint32_t max_version,
                   std::vector<StateSection>* sections,
                   std::uint32_t* version = nullptr);

/// Finds a section by name; returns nullptr when absent.
const StateSection* FindSection(const std::vector<StateSection>& sections,
                                const std::string& name);

}  // namespace e2gcl

#endif  // E2GCL_IO_SERIALIZE_H_
