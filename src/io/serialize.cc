#include "io/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace e2gcl {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// Hard cap on any single length field (1 GiB): a corrupted length that
// slips past the bounds checks must not trigger a giant allocation.
constexpr std::uint64_t kMaxChunkBytes = 1ull << 30;

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::WriteU32(std::uint32_t v) { WriteBytes(&v, sizeof(v)); }
void ByteWriter::WriteU64(std::uint64_t v) { WriteBytes(&v, sizeof(v)); }
void ByteWriter::WriteI64(std::int64_t v) { WriteBytes(&v, sizeof(v)); }
void ByteWriter::WriteF32(float v) { WriteBytes(&v, sizeof(v)); }

void ByteWriter::WriteBytes(const void* data, std::size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

void ByteWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  WriteBytes(s.data(), s.size());
}

void ByteWriter::WriteMatrix(const Matrix& m) {
  WriteI64(m.rows());
  WriteI64(m.cols());
  WriteBytes(m.data(), sizeof(float) * static_cast<std::size_t>(m.size()));
}

ByteReader::ByteReader(const void* data, std::size_t size)
    : data_(static_cast<const unsigned char*>(data)), size_(size) {}

ByteReader::ByteReader(const std::string& bytes)
    : ByteReader(bytes.data(), bytes.size()) {}

bool ByteReader::Take(void* out, std::size_t n) {
  if (!ok_ || n > size_ - pos_) {
    ok_ = false;
    std::memset(out, 0, n);
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

std::uint32_t ByteReader::ReadU32() {
  std::uint32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

std::uint64_t ByteReader::ReadU64() {
  std::uint64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

std::int64_t ByteReader::ReadI64() {
  std::int64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

float ByteReader::ReadF32() {
  float v = 0.0f;
  Take(&v, sizeof(v));
  return v;
}

std::string ByteReader::ReadRaw(std::size_t n) {
  if (!ok_ || n > size_ - pos_ || n > kMaxChunkBytes) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::string ByteReader::ReadString() {
  const std::uint64_t len = ReadU64();
  if (!ok_ || len > kMaxChunkBytes) {
    ok_ = false;
    return {};
  }
  return ReadRaw(static_cast<std::size_t>(len));
}

Matrix ByteReader::ReadMatrix() {
  const std::int64_t rows = ReadI64();
  const std::int64_t cols = ReadI64();
  if (!ok_ || rows < 0 || cols < 0) {
    ok_ = false;
    return {};
  }
  // Validate the element count against the remaining bytes before
  // allocating, so a corrupted shape cannot demand terabytes.
  const std::uint64_t elems =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
  if (cols != 0 && elems / static_cast<std::uint64_t>(cols) !=
                       static_cast<std::uint64_t>(rows)) {
    ok_ = false;
    return {};
  }
  const std::uint64_t need = elems * sizeof(float);
  if (need > size_ - pos_ || need > kMaxChunkBytes) {
    ok_ = false;
    return {};
  }
  Matrix m(rows, cols);
  if (need != 0) {  // empty matrices have no buffer; memcpy is nonnull
    std::memcpy(m.data(), data_ + pos_, static_cast<std::size_t>(need));
    pos_ += static_cast<std::size_t>(need);
  }
  return m;
}

bool WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  // e2gcl-lint: allow(raw-file-write): this IS WriteFileAtomic -- the one sanctioned raw write, staged at .tmp then renamed
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(fileno(f)) == 0;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // Best-effort durability of the rename itself.
    ::close(dfd);
  }
  return true;
}

bool WriteStateFile(const std::string& path, std::uint32_t magic,
                    std::uint32_t version,
                    const std::vector<StateSection>& sections) {
  ByteWriter w;
  w.WriteU32(magic);
  w.WriteU32(version);
  w.WriteU32(static_cast<std::uint32_t>(sections.size()));
  for (const StateSection& s : sections) {
    w.WriteU32(static_cast<std::uint32_t>(s.name.size()));
    w.WriteBytes(s.name.data(), s.name.size());
    w.WriteU64(s.payload.size());
    w.WriteU32(Crc32(s.payload.data(), s.payload.size()));
    w.WriteBytes(s.payload.data(), s.payload.size());
  }
  return WriteFileAtomic(path, w.bytes());
}

bool ReadStateFile(const std::string& path, std::uint32_t magic,
                   std::uint32_t max_version,
                   std::vector<StateSection>* sections,
                   std::uint32_t* version) {
  if (sections == nullptr) return false;
  sections->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  ByteReader r(bytes);
  const std::uint32_t file_magic = r.ReadU32();
  const std::uint32_t file_version = r.ReadU32();
  const std::uint32_t count = r.ReadU32();
  if (!r.ok() || file_magic != magic || file_version == 0 ||
      file_version > max_version || count > 65536) {
    return false;
  }
  std::vector<StateSection> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = r.ReadU32();
    if (!r.ok() || name_len > 4096) return false;
    StateSection s;
    s.name = r.ReadRaw(name_len);
    const std::uint64_t payload_len = r.ReadU64();
    const std::uint32_t crc = r.ReadU32();
    if (!r.ok() || payload_len > kMaxChunkBytes) return false;
    s.payload = r.ReadRaw(static_cast<std::size_t>(payload_len));
    if (!r.ok()) return false;
    if (Crc32(s.payload.data(), s.payload.size()) != crc) return false;
    out.push_back(std::move(s));
  }
  if (!r.AtEnd()) return false;  // Trailing garbage == malformed file.
  *sections = std::move(out);
  if (version != nullptr) *version = file_version;
  return true;
}

const StateSection* FindSection(const std::vector<StateSection>& sections,
                                const std::string& name) {
  for (const StateSection& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace e2gcl
