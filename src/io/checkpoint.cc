#include "io/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "io/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace e2gcl {

namespace {

// "E2GC" in little-endian byte order.
constexpr std::uint32_t kCheckpointMagic = 0x43473245u;
constexpr std::uint32_t kCheckpointVersion = 1;

constexpr const char* kMetaSection = "meta";
constexpr const char* kRngSection = "rng";
constexpr const char* kEncoderSection = "encoder";
constexpr const char* kProjectorSection = "projector";
constexpr const char* kAdamSection = "adam";

// A checkpoint never carries more parameter tensors than a sane model;
// bounds the loop on corrupted-but-CRC-valid counts.
constexpr std::uint64_t kMaxTensors = 1u << 20;

std::string PackMatrixList(const std::vector<Matrix>& ms) {
  ByteWriter w;
  w.WriteU64(ms.size());
  for (const Matrix& m : ms) w.WriteMatrix(m);
  return w.bytes();
}

bool UnpackMatrixList(const std::string& payload, std::vector<Matrix>* out) {
  ByteReader r(payload);
  const std::uint64_t count = r.ReadU64();
  if (!r.ok() || count > kMaxTensors) return false;
  std::vector<Matrix> ms;
  ms.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ms.push_back(r.ReadMatrix());
    if (!r.ok()) return false;
  }
  if (!r.AtEnd()) return false;
  *out = std::move(ms);
  return true;
}

/// Parses "ckpt-NNNNNN.e2gcl"; returns -1 when `name` is not a
/// canonical checkpoint file name.
std::int64_t EpochFromFileName(const std::string& name) {
  constexpr const char* kPrefix = "ckpt-";
  constexpr const char* kSuffix = ".e2gcl";
  if (name.size() < 12 || name.rfind(kPrefix, 0) != 0) return -1;
  const std::size_t suffix_at = name.size() - 6;
  if (name.compare(suffix_at, 6, kSuffix) != 0) return -1;
  const std::string digits = name.substr(5, suffix_at - 5);
  if (digits.empty()) return -1;
  for (char c : digits) {
    if (c < '0' || c > '9') return -1;
  }
  char* end = nullptr;
  const long long epoch = std::strtoll(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return -1;
  return static_cast<std::int64_t>(epoch);
}

bool LoadTrainerCheckpointImpl(const std::string& path,
                               TrainerCheckpoint* out);

}  // namespace

bool SaveTrainerCheckpoint(const std::string& path,
                           const TrainerCheckpoint& ckpt) {
  TraceSpan span("checkpoint_save");
  ByteWriter meta;
  meta.WriteI64(ckpt.epoch);
  meta.WriteU64(ckpt.config_fingerprint);
  meta.WriteI64(ckpt.retries_used);
  meta.WriteF32(ckpt.lr_scale);

  ByteWriter adam;
  adam.WriteI64(ckpt.adam_t);
  adam.WriteU64(ckpt.adam_m.size());
  for (const Matrix& m : ckpt.adam_m) adam.WriteMatrix(m);
  adam.WriteU64(ckpt.adam_v.size());
  for (const Matrix& m : ckpt.adam_v) adam.WriteMatrix(m);

  std::vector<StateSection> sections;
  sections.push_back({kMetaSection, meta.bytes()});
  sections.push_back({kRngSection, ckpt.rng_state});
  sections.push_back({kEncoderSection, PackMatrixList(ckpt.encoder_params)});
  sections.push_back(
      {kProjectorSection, PackMatrixList(ckpt.projector_params)});
  sections.push_back({kAdamSection, adam.bytes()});

  std::uint64_t payload_bytes = 0;
  for (const StateSection& s : sections) payload_bytes += s.payload.size();
  const bool ok =
      WriteStateFile(path, kCheckpointMagic, kCheckpointVersion, sections);
  if (ObsEnabled()) {
    static const Counter writes = Counter::Get("checkpoint.writes");
    static const Counter failures = Counter::Get("checkpoint.write_failures");
    static const Counter bytes = Counter::Get("checkpoint.bytes_written");
    if (ok) {
      writes.Increment();
      bytes.Add(payload_bytes);
    } else {
      failures.Increment();
    }
  }
  return ok;
}

bool LoadTrainerCheckpoint(const std::string& path, TrainerCheckpoint* out) {
  TraceSpan span("checkpoint_load");
  const bool ok = LoadTrainerCheckpointImpl(path, out);
  if (ObsEnabled()) {
    static const Counter loads = Counter::Get("checkpoint.loads");
    static const Counter failures = Counter::Get("checkpoint.load_failures");
    (ok ? loads : failures).Increment();
  }
  return ok;
}

bool LoadTrainerCheckpoint(const std::string& path, TrainerCheckpoint* out,
                           std::string* error) {
  if (LoadTrainerCheckpoint(path, out)) return true;
  if (error != nullptr) {
    *error =
        "failed validation (missing file, bad magic/version, truncation, "
        "CRC mismatch, or malformed payload)";
  }
  return false;
}

namespace {

bool LoadTrainerCheckpointImpl(const std::string& path,
                               TrainerCheckpoint* out) {
  if (out == nullptr) return false;
  std::vector<StateSection> sections;
  if (!ReadStateFile(path, kCheckpointMagic, kCheckpointVersion, &sections)) {
    return false;
  }
  const StateSection* meta = FindSection(sections, kMetaSection);
  const StateSection* rng = FindSection(sections, kRngSection);
  const StateSection* encoder = FindSection(sections, kEncoderSection);
  const StateSection* projector = FindSection(sections, kProjectorSection);
  const StateSection* adam = FindSection(sections, kAdamSection);
  if (meta == nullptr || rng == nullptr || encoder == nullptr ||
      projector == nullptr || adam == nullptr) {
    return false;
  }

  TrainerCheckpoint c;
  {
    ByteReader r(meta->payload);
    c.epoch = r.ReadI64();
    c.config_fingerprint = r.ReadU64();
    c.retries_used = r.ReadI64();
    c.lr_scale = r.ReadF32();
    if (!r.AtEnd() || c.epoch < 0 || c.retries_used < 0) return false;
  }
  c.rng_state = rng->payload;
  if (!UnpackMatrixList(encoder->payload, &c.encoder_params)) return false;
  if (!UnpackMatrixList(projector->payload, &c.projector_params)) return false;
  {
    ByteReader r(adam->payload);
    c.adam_t = r.ReadI64();
    const std::uint64_t m_count = r.ReadU64();
    if (!r.ok() || m_count > kMaxTensors || c.adam_t < 0) return false;
    c.adam_m.reserve(m_count);
    for (std::uint64_t i = 0; i < m_count; ++i) {
      c.adam_m.push_back(r.ReadMatrix());
      if (!r.ok()) return false;
    }
    const std::uint64_t v_count = r.ReadU64();
    if (!r.ok() || v_count > kMaxTensors) return false;
    c.adam_v.reserve(v_count);
    for (std::uint64_t i = 0; i < v_count; ++i) {
      c.adam_v.push_back(r.ReadMatrix());
      if (!r.ok()) return false;
    }
    if (!r.AtEnd()) return false;
  }
  *out = std::move(c);
  return true;
}

}  // namespace

std::string CheckpointPath(const std::string& dir, std::int64_t epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06lld.e2gcl",
                static_cast<long long>(epoch));
  return dir + "/" + name;
}

std::vector<std::string> ListCheckpointFiles(const std::string& dir) {
  std::vector<std::pair<std::int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const std::int64_t epoch = EpochFromFileName(name);
    if (epoch >= 0) found.emplace_back(epoch, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [epoch, path] : found) paths.push_back(std::move(path));
  return paths;
}

bool FindNewestValidCheckpoint(const std::string& dir,
                               std::uint64_t config_fingerprint,
                               TrainerCheckpoint* out,
                               std::string* path_out) {
  const std::vector<std::string> files = ListCheckpointFiles(dir);
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    TrainerCheckpoint c;
    if (!LoadTrainerCheckpoint(*it, &c)) {
      std::fprintf(stderr,
                   "[e2gcl] warning: skipping corrupted/truncated "
                   "checkpoint %s\n",
                   it->c_str());
      continue;
    }
    if (c.config_fingerprint != config_fingerprint) {
      std::fprintf(stderr,
                   "[e2gcl] warning: skipping checkpoint %s (written by a "
                   "different config/graph)\n",
                   it->c_str());
      continue;
    }
    if (out != nullptr) *out = std::move(c);
    if (path_out != nullptr) *path_out = *it;
    return true;
  }
  return false;
}

void PruneCheckpoints(const std::string& dir, int keep) {
  if (keep < 0) keep = 0;
  const std::vector<std::string> files = ListCheckpointFiles(dir);
  if (static_cast<int>(files.size()) <= keep) return;
  const std::size_t drop = files.size() - static_cast<std::size_t>(keep);
  std::error_code ec;
  for (std::size_t i = 0; i < drop; ++i) {
    std::filesystem::remove(files[i], ec);
  }
}

namespace {

/// Tries to parse `p` as an encoder parameter chain with or without
/// per-layer biases; fills `dims` on success.
bool TryEncoderLayout(const std::vector<Matrix>& p, bool bias,
                      std::vector<std::int64_t>* dims) {
  const std::size_t stride = bias ? 2 : 1;
  if (p.empty() || p.size() % stride != 0) return false;
  std::vector<std::int64_t> d;
  d.push_back(p[0].rows());
  for (std::size_t i = 0; i < p.size(); i += stride) {
    const Matrix& w = p[i];
    if (w.rows() <= 0 || w.cols() <= 0 || w.rows() != d.back()) return false;
    if (bias) {
      const Matrix& b = p[i + 1];
      if (b.rows() != 1 || b.cols() != w.cols()) return false;
    }
    d.push_back(w.cols());
  }
  *dims = std::move(d);
  return true;
}

}  // namespace

bool InferEncoderLayout(const std::vector<Matrix>& encoder_params,
                        std::vector<std::int64_t>* dims, bool* bias) {
  std::vector<std::int64_t> d;
  if (TryEncoderLayout(encoder_params, /*bias=*/true, &d)) {
    *dims = std::move(d);
    *bias = true;
    return true;
  }
  if (TryEncoderLayout(encoder_params, /*bias=*/false, &d)) {
    *dims = std::move(d);
    *bias = false;
    return true;
  }
  return false;
}

}  // namespace e2gcl
