#ifndef E2GCL_IO_CHECKPOINT_H_
#define E2GCL_IO_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace e2gcl {

/// One full pre-training checkpoint: everything the trainer needs to
/// resume Alg. 1 bit-identically from an epoch boundary. Kept free of
/// nn/core types so the io layer depends only on tensor (the trainer
/// converts to/from its own encoder/optimizer state).
struct TrainerCheckpoint {
  /// Last completed epoch (epoch -1 is the pre-training initial state;
  /// it only ever exists in memory, never on disk).
  std::int64_t epoch = -1;
  /// Hash of the config + graph shape that produced this run; resuming
  /// under a different configuration is refused.
  std::uint64_t config_fingerprint = 0;
  /// Divergence retries consumed so far and the lr backoff they applied.
  std::int64_t retries_used = 0;
  float lr_scale = 1.0f;
  /// Serialized Rng engine state (Rng::SerializeState()).
  std::string rng_state;
  /// Encoder parameter values in ParamSet order.
  std::vector<Matrix> encoder_params;
  /// Projection-head parameter values (empty when no projector).
  std::vector<Matrix> projector_params;
  /// Adam first/second moment buffers (aligned with encoder params
  /// followed by projector params) and step counter.
  std::vector<Matrix> adam_m;
  std::vector<Matrix> adam_v;
  std::int64_t adam_t = 0;
};

/// Writes `ckpt` atomically (tmp + fsync + rename) with per-section
/// CRC32 checksums. Returns false on I/O failure.
bool SaveTrainerCheckpoint(const std::string& path,
                           const TrainerCheckpoint& ckpt);

/// Loads and validates a checkpoint. Returns false on any corruption
/// (bad magic/version, truncation, CRC mismatch, malformed payload)
/// without touching `out` partially.
bool LoadTrainerCheckpoint(const std::string& path, TrainerCheckpoint* out);

/// Same, with a human-readable failure reason in `*error` (serving's
/// load/reload paths surface it to operators).
bool LoadTrainerCheckpoint(const std::string& path, TrainerCheckpoint* out,
                           std::string* error);

/// Canonical file name for epoch `epoch` inside `dir`
/// ("<dir>/ckpt-000042.e2gcl").
std::string CheckpointPath(const std::string& dir, std::int64_t epoch);

/// Checkpoint files in `dir` matching the canonical name, sorted by
/// epoch ascending. Non-checkpoint files are ignored.
std::vector<std::string> ListCheckpointFiles(const std::string& dir);

/// Scans `dir` newest-first and loads the first checkpoint that parses,
/// passes all checksums, and matches `config_fingerprint`. Invalid files
/// are skipped with a warning on stderr (never a crash). Returns false
/// when no usable checkpoint exists. `path_out`, if non-null, receives
/// the winning file path.
bool FindNewestValidCheckpoint(const std::string& dir,
                               std::uint64_t config_fingerprint,
                               TrainerCheckpoint* out,
                               std::string* path_out = nullptr);

/// Deletes all but the `keep` newest checkpoint files in `dir`.
void PruneCheckpoints(const std::string& dir, int keep);

/// Infers the encoder layer widths and bias flag from checkpointed
/// parameter shapes (ParamSet order: W_0 [, b_0], W_1 [, b_1], ... with
/// W_l of shape dims[l] x dims[l+1] and b_l of shape 1 x dims[l+1]).
/// When both layouts parse, the bias layout wins (the trainer default).
/// Returns false when the shapes form no consistent layer chain;
/// `dims`/`bias` are untouched on failure.
bool InferEncoderLayout(const std::vector<Matrix>& encoder_params,
                        std::vector<std::int64_t>* dims, bool* bias);

}  // namespace e2gcl

#endif  // E2GCL_IO_CHECKPOINT_H_
