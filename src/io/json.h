#ifndef E2GCL_IO_JSON_H_
#define E2GCL_IO_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace e2gcl {

/// Minimal strict JSON value for run reports and bench files.
///
/// Objects preserve insertion order (vector of pairs) so serialized
/// reports are stable and diffable. Numbers track whether they were
/// written as integers so 64-bit counters round-trip exactly (doubles
/// would lose precision past 2^53).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(std::int64_t v);
  static JsonValue Double(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_int() const { return kind_ == Kind::kNumber && int_; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Accessors assume the matching kind (checked with E2GCL_CHECK).
  bool AsBool() const;
  std::int64_t AsInt() const;  // valid for any number; truncates doubles
  double AsDouble() const;
  const std::string& AsString() const;

  const std::vector<JsonValue>& items() const;
  std::vector<JsonValue>& items();
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Appends to an array (must be kArray).
  void Append(JsonValue v);
  /// Sets/overwrites an object member (must be kObject).
  void Set(const std::string& key, JsonValue v);

 private:
  Kind kind_;
  bool bool_ = false;
  bool int_ = false;
  std::int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parses `text` strictly (single document, no trailing garbage, depth
/// cap 64, duplicate keys rejected). Returns false and fills `error`
/// with a position-tagged message on failure.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

/// Serializes with 2-space indentation per level when `indent` is true,
/// compact otherwise. Integers print exactly; doubles use %.17g.
std::string DumpJson(const JsonValue& v, bool indent = true);

/// Reads and parses a JSON file. False (with `error`) on missing file,
/// read failure, or parse failure.
bool LoadJsonFile(const std::string& path, JsonValue* out, std::string* error);

/// Serializes `v` and writes it atomically (tmp + rename). False on any
/// filesystem error.
bool WriteJsonFile(const std::string& path, const JsonValue& v);

}  // namespace e2gcl

#endif  // E2GCL_IO_JSON_H_
