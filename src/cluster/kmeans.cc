#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/check.h"

namespace e2gcl {

namespace {

/// kmeans++ seeding: first center uniform, subsequent centers sampled
/// proportionally to squared distance from the nearest chosen center.
Matrix SeedPlusPlus(const Matrix& points, std::int64_t k, Rng& rng) {
  const std::int64_t n = points.rows();
  Matrix centers(k, points.cols());
  std::vector<float> d2(n, std::numeric_limits<float>::max());
  std::int64_t first = rng.UniformInt(n);
  std::copy(points.RowPtr(first), points.RowPtr(first) + points.cols(),
            centers.RowPtr(0));
  for (std::int64_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::int64_t v = 0; v < n; ++v) {
      const float d = RowSquaredDistance(points, v, centers, c - 1);
      d2[v] = std::min(d2[v], d);
      total += d2[v];
    }
    std::int64_t pick = 0;
    if (total > 0.0) {
      double u = static_cast<double>(rng.Uniform()) * total;
      for (std::int64_t v = 0; v < n; ++v) {
        u -= d2[v];
        if (u <= 0.0) {
          pick = v;
          break;
        }
      }
    } else {
      pick = rng.UniformInt(n);
    }
    std::copy(points.RowPtr(pick), points.RowPtr(pick) + points.cols(),
              centers.RowPtr(c));
  }
  return centers;
}

}  // namespace

KMeansResult KMeans(const Matrix& points, const KMeansOptions& opts,
                    Rng& rng) {
  const std::int64_t n = points.rows();
  const std::int64_t d = points.cols();
  std::int64_t k = std::min<std::int64_t>(opts.num_clusters, n);
  E2GCL_CHECK(k > 0);

  KMeansResult res;
  if (opts.kmeanspp) {
    res.centers = SeedPlusPlus(points, k, rng);
  } else {
    auto seeds = rng.SampleWithoutReplacement(n, k);
    res.centers = GatherRows(points, seeds);
  }
  res.assignment.assign(n, 0);

  double prev_inertia = std::numeric_limits<double>::max();
  for (int iter = 0; iter < opts.max_iters; ++iter) {
    // Assignment step.
    double inertia = 0.0;
    for (std::int64_t v = 0; v < n; ++v) {
      float best = std::numeric_limits<float>::max();
      std::int64_t best_c = 0;
      for (std::int64_t c = 0; c < k; ++c) {
        const float dist = RowSquaredDistance(points, v, res.centers, c);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      res.assignment[v] = best_c;
      inertia += best;
    }
    res.inertia = inertia;

    // Update step.
    Matrix sums(k, d);
    std::vector<std::int64_t> counts(k, 0);
    for (std::int64_t v = 0; v < n; ++v) {
      const std::int64_t c = res.assignment[v];
      counts[c] += 1;
      const float* row = points.RowPtr(v);
      float* srow = sums.RowPtr(c);
      for (std::int64_t j = 0; j < d; ++j) srow[j] += row[j];
    }
    for (std::int64_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its center.
        float worst = -1.0f;
        std::int64_t worst_v = 0;
        for (std::int64_t v = 0; v < n; ++v) {
          const float dist =
              RowSquaredDistance(points, v, res.centers, res.assignment[v]);
          if (dist > worst) {
            worst = dist;
            worst_v = v;
          }
        }
        std::copy(points.RowPtr(worst_v), points.RowPtr(worst_v) + d,
                  res.centers.RowPtr(c));
        res.assignment[worst_v] = c;
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[c]);
      float* crow = res.centers.RowPtr(c);
      const float* srow = sums.RowPtr(c);
      for (std::int64_t j = 0; j < d; ++j) crow[j] = srow[j] * inv;
    }

    if (prev_inertia - inertia <= opts.tol * std::max(prev_inertia, 1e-12)) {
      break;
    }
    prev_inertia = inertia;
  }

  // Final bookkeeping: clusters, radii, inertia under final centers.
  res.clusters.assign(k, {});
  res.max_radius.assign(k, 0.0f);
  double inertia = 0.0;
  for (std::int64_t v = 0; v < n; ++v) {
    float best = std::numeric_limits<float>::max();
    std::int64_t best_c = 0;
    for (std::int64_t c = 0; c < k; ++c) {
      const float dist = RowSquaredDistance(points, v, res.centers, c);
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    res.assignment[v] = best_c;
    res.clusters[best_c].push_back(v);
    inertia += best;
    res.max_radius[best_c] =
        std::max(res.max_radius[best_c], std::sqrt(best));
  }
  res.inertia = inertia;
  return res;
}

}  // namespace e2gcl
