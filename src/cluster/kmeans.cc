#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

// Row floor for the update-step partial sums: below this many points a
// single chunk reproduces the exact serial accumulation order.
constexpr std::int64_t kUpdateRowFloor = 512;

/// Nearest-center scan for one point. Ties break toward the lower center
/// index, matching the serial loop.
void NearestCenter(const Matrix& points, const Matrix& centers,
                   std::int64_t v, std::int64_t k, float* best,
                   std::int64_t* best_c) {
  *best = std::numeric_limits<float>::max();
  *best_c = 0;
  for (std::int64_t c = 0; c < k; ++c) {
    const float dist = RowSquaredDistance(points, v, centers, c);
    if (dist < *best) {
      *best = dist;
      *best_c = c;
    }
  }
}

/// kmeans++ seeding: first center uniform, subsequent centers sampled
/// proportionally to squared distance from the nearest chosen center.
/// The per-point distance updates run in parallel (exact, element-wise);
/// the sampling scan stays serial so the RNG stream and the picked
/// centers are identical to the single-threaded implementation.
Matrix SeedPlusPlus(const Matrix& points, std::int64_t k, Rng& rng) {
  const std::int64_t n = points.rows();
  Matrix centers(k, points.cols());
  std::vector<float> d2(n, std::numeric_limits<float>::max());
  std::int64_t first = rng.UniformInt(n);
  std::copy(points.RowPtr(first), points.RowPtr(first) + points.cols(),
            centers.RowPtr(0));
  const std::int64_t grain = GrainForCost(points.cols());
  for (std::int64_t c = 1; c < k; ++c) {
    ParallelFor(0, n, grain, [&](std::int64_t vb, std::int64_t ve) {
      for (std::int64_t v = vb; v < ve; ++v) {
        const float d = RowSquaredDistance(points, v, centers, c - 1);
        d2[v] = std::min(d2[v], d);
      }
    });
    double total = 0.0;
    for (std::int64_t v = 0; v < n; ++v) total += d2[v];
    std::int64_t pick = 0;
    if (total > 0.0) {
      double u = static_cast<double>(rng.Uniform()) * total;
      for (std::int64_t v = 0; v < n; ++v) {
        u -= d2[v];
        if (u <= 0.0) {
          pick = v;
          break;
        }
      }
    } else {
      pick = rng.UniformInt(n);
    }
    std::copy(points.RowPtr(pick), points.RowPtr(pick) + points.cols(),
              centers.RowPtr(c));
  }
  return centers;
}

}  // namespace

KMeansResult KMeans(const Matrix& points, const KMeansOptions& opts,
                    Rng& rng) {
  const std::int64_t n = points.rows();
  const std::int64_t d = points.cols();
  std::int64_t k = std::min<std::int64_t>(opts.num_clusters, n);
  E2GCL_CHECK(k > 0);
  TraceSpan kmeans_span("kmeans");
  static const Counter calls_counter = Counter::Get("kmeans.calls");
  static const Counter iters_counter = Counter::Get("kmeans.iterations");
  static const Counter reseeds_counter = Counter::Get("kmeans.reseeds");
  calls_counter.Increment();

  KMeansResult res;
  if (opts.kmeanspp) {
    res.centers = SeedPlusPlus(points, k, rng);
  } else {
    auto seeds = rng.SampleWithoutReplacement(n, k);
    res.centers = GatherRows(points, seeds);
  }
  res.assignment.assign(n, 0);

  // Per-point squared distance to the assigned center, filled by the
  // parallel assignment scans; inertia is summed serially from it so the
  // total keeps the serial accumulation order.
  std::vector<float> point_d2(n, 0.0f);
  const std::int64_t assign_grain = GrainForCost(k * d);

  double prev_inertia = std::numeric_limits<double>::max();
  for (int iter = 0; iter < opts.max_iters; ++iter) {
    iters_counter.Increment();
    // Assignment step: the O(n k d) scan is row-parallel and exact.
    ParallelFor(0, n, assign_grain, [&](std::int64_t vb, std::int64_t ve) {
      for (std::int64_t v = vb; v < ve; ++v) {
        float best;
        std::int64_t best_c;
        NearestCenter(points, res.centers, v, k, &best, &best_c);
        res.assignment[v] = best_c;
        point_d2[v] = best;
      }
    });
    double inertia = 0.0;
    for (std::int64_t v = 0; v < n; ++v) inertia += point_d2[v];
    res.inertia = inertia;

    // Update step: per-chunk partial sums and counts, reduced in chunk
    // order so center positions are independent of the thread count.
    Matrix sums(k, d);
    std::vector<std::int64_t> counts(k, 0);
    const std::int64_t update_grain = std::max(kUpdateRowFloor, GrainForCost(d));
    const std::int64_t chunks = NumChunks(n, update_grain);
    if (chunks <= 1) {
      for (std::int64_t v = 0; v < n; ++v) {
        const std::int64_t c = res.assignment[v];
        counts[c] += 1;
        const float* row = points.RowPtr(v);
        float* srow = sums.RowPtr(c);
        for (std::int64_t j = 0; j < d; ++j) srow[j] += row[j];
      }
    } else {
      std::vector<Matrix> sum_parts(chunks);
      std::vector<std::vector<std::int64_t>> count_parts(chunks);
      ParallelForChunks(
          0, n, update_grain,
          [&](std::int64_t chunk, std::int64_t vb, std::int64_t ve) {
            Matrix part(k, d);
            std::vector<std::int64_t> cnt(k, 0);
            for (std::int64_t v = vb; v < ve; ++v) {
              const std::int64_t c = res.assignment[v];
              cnt[c] += 1;
              const float* row = points.RowPtr(v);
              float* srow = part.RowPtr(c);
              for (std::int64_t j = 0; j < d; ++j) srow[j] += row[j];
            }
            sum_parts[chunk] = std::move(part);
            count_parts[chunk] = std::move(cnt);
          });
      for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
        AddInPlace(sums, sum_parts[chunk]);
        for (std::int64_t c = 0; c < k; ++c) counts[c] += count_parts[chunk][c];
      }
    }
    for (std::int64_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        reseeds_counter.Increment();
        // Re-seed an empty cluster with the point farthest from its center.
        float worst = -1.0f;
        std::int64_t worst_v = 0;
        for (std::int64_t v = 0; v < n; ++v) {
          const float dist =
              RowSquaredDistance(points, v, res.centers, res.assignment[v]);
          if (dist > worst) {
            worst = dist;
            worst_v = v;
          }
        }
        std::copy(points.RowPtr(worst_v), points.RowPtr(worst_v) + d,
                  res.centers.RowPtr(c));
        res.assignment[worst_v] = c;
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[c]);
      float* crow = res.centers.RowPtr(c);
      const float* srow = sums.RowPtr(c);
      for (std::int64_t j = 0; j < d; ++j) crow[j] = srow[j] * inv;
    }

    if (prev_inertia - inertia <= opts.tol * std::max(prev_inertia, 1e-12)) {
      break;
    }
    prev_inertia = inertia;
  }

  // Final bookkeeping: clusters, radii, inertia under final centers.
  // The distance scan is parallel; the membership lists are built by a
  // serial pass so node order inside each cluster stays ascending.
  ParallelFor(0, n, assign_grain, [&](std::int64_t vb, std::int64_t ve) {
    for (std::int64_t v = vb; v < ve; ++v) {
      float best;
      std::int64_t best_c;
      NearestCenter(points, res.centers, v, k, &best, &best_c);
      res.assignment[v] = best_c;
      point_d2[v] = best;
    }
  });
  res.clusters.assign(k, {});
  res.max_radius.assign(k, 0.0f);
  double inertia = 0.0;
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t c = res.assignment[v];
    res.clusters[c].push_back(v);
    inertia += point_d2[v];
    res.max_radius[c] = std::max(res.max_radius[c], std::sqrt(point_d2[v]));
  }
  res.inertia = inertia;
  return res;
}

}  // namespace e2gcl
