#ifndef E2GCL_CLUSTER_KMEANS_H_
#define E2GCL_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace e2gcl {

/// Result of Lloyd's algorithm over the rows of a matrix.
struct KMeansResult {
  /// num_clusters x dim cluster centers.
  Matrix centers;
  /// Cluster id per row of the input.
  std::vector<std::int64_t> assignment;
  /// Row indices grouped by cluster.
  std::vector<std::vector<std::int64_t>> clusters;
  /// Sum of squared distances to assigned centers.
  double inertia = 0.0;
  /// max_{v in C_i} ||c_i - x_v|| per cluster (the d_i^max of Eq. 13).
  std::vector<float> max_radius;
};

struct KMeansOptions {
  std::int64_t num_clusters = 8;
  int max_iters = 30;
  /// Relative inertia improvement below which iteration stops.
  double tol = 1e-4;
  /// Use kmeans++ seeding (true) or uniform seeding (false).
  bool kmeanspp = true;
};

/// Clusters the rows of `points`. Empty clusters are re-seeded with the
/// farthest point from its center, so exactly `num_clusters` non-empty
/// clusters are returned whenever num_rows >= num_clusters.
KMeansResult KMeans(const Matrix& points, const KMeansOptions& opts,
                    Rng& rng);

}  // namespace e2gcl

#endif  // E2GCL_CLUSTER_KMEANS_H_
