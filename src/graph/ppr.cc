#include "graph/ppr.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <vector>

#include "tensor/check.h"

namespace e2gcl {

namespace {

/// Local-push PPR for a single source; returns (node, mass) pairs.
std::vector<std::pair<std::int64_t, double>> PushPpr(const Graph& g,
                                                     std::int64_t source,
                                                     double alpha,
                                                     double epsilon) {
  std::unordered_map<std::int64_t, double> p;
  std::unordered_map<std::int64_t, double> r;
  r[source] = 1.0;
  std::deque<std::int64_t> queue{source};
  std::unordered_map<std::int64_t, bool> queued;
  queued[source] = true;

  while (!queue.empty()) {
    const std::int64_t u = queue.front();
    queue.pop_front();
    queued[u] = false;
    const double ru = r[u];
    const std::int64_t du = std::max<std::int64_t>(g.Degree(u), 1);
    if (ru < epsilon * du) continue;
    p[u] += alpha * ru;
    const double push = (1.0 - alpha) * ru / du;
    r[u] = 0.0;
    for (std::int32_t v : g.Neighbors(u)) {
      r[v] += push;
      const std::int64_t dv = std::max<std::int64_t>(g.Degree(v), 1);
      if (r[v] >= epsilon * dv && !queued[v]) {
        queue.push_back(v);
        queued[v] = true;
      }
    }
    // Isolated source: all mass stays.
    if (g.Degree(u) == 0) p[u] += (1.0 - alpha) * ru;
  }
  // Each node's mass accumulates in deterministic push order, so the
  // values are hash-independent; only the map's iteration order is not.
  // Draining into a node-id-sorted vector makes every downstream
  // consumer (top-k selection, normalization sums, triplet emission)
  // independent of the hash seed and insertion history.
  // e2gcl-lint: allow(unordered-iteration): drained then sorted by node id below; output order is hash-independent
  std::vector<std::pair<std::int64_t, double>> out(p.begin(), p.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace

CsrMatrix ApproximatePpr(const Graph& g, const PprOptions& opts) {
  E2GCL_CHECK(opts.alpha > 0.0 && opts.alpha < 1.0);
  std::vector<std::tuple<std::int64_t, std::int64_t, float>> triplets;
  for (std::int64_t s = 0; s < g.num_nodes; ++s) {
    auto mass = PushPpr(g, s, opts.alpha, opts.epsilon);
    if (opts.top_k > 0 &&
        static_cast<std::int64_t>(mass.size()) > opts.top_k) {
      // Total order (mass desc, node id asc) so the kept set is unique
      // even when masses tie; then restore node-id order so the
      // normalization sum and emitted triplets are fully deterministic.
      std::nth_element(mass.begin(), mass.begin() + opts.top_k, mass.end(),
                       [](const auto& a, const auto& b) {
                         if (a.second != b.second) return a.second > b.second;
                         return a.first < b.first;
                       });
      mass.resize(opts.top_k);
      std::sort(mass.begin(), mass.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    double total = 0.0;
    for (const auto& [v, m] : mass) total += m;
    if (total <= 0.0) continue;
    for (const auto& [v, m] : mass) {
      triplets.emplace_back(s, v, static_cast<float>(m / total));
    }
  }
  return CsrMatrix::FromCoo(g.num_nodes, g.num_nodes, std::move(triplets));
}

Graph DiffusionGraph(const Graph& g, const PprOptions& opts) {
  CsrMatrix ppr = ApproximatePpr(g, opts);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  for (std::int64_t v = 0; v < ppr.rows(); ++v) {
    for (std::int64_t k = ppr.row_ptr()[v]; k < ppr.row_ptr()[v + 1]; ++k) {
      const std::int64_t u = ppr.col_idx()[k];
      if (u != v) edges.emplace_back(v, u);
    }
  }
  return BuildGraph(g.num_nodes, edges, g.features, g.labels, g.num_classes);
}

}  // namespace e2gcl
