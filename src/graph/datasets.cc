#include "graph/datasets.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace e2gcl {

namespace {

SbmSpec MakeSpec(std::int64_t nodes, std::int64_t classes,
                 std::int64_t feature_dim, double avg_degree,
                 double homophily, std::int64_t info_dims) {
  SbmSpec s;
  s.num_nodes = nodes;
  s.num_classes = classes;
  s.feature_dim = feature_dim;
  s.avg_degree = avg_degree;
  s.homophily = homophily;
  s.informative_dims_per_class = info_dims;
  // Defaults tuned so the task is GNN-dependent rather than linearly
  // separable from raw features: a sizeable fraction of nodes carry no
  // class signal of their own, per-node signal is sparse, and leak /
  // noise dimensions compete with it.
  // Signal dimensions stay globally *heavier* (frequency x magnitude)
  // than noise dimensions — real bag-of-words importance behaves this
  // way — so the frequency-based feature score can recover them.
  s.signal_density = 0.55;
  s.signal_leak = 0.25;
  s.noise_density = 0.20;
  s.feature_missing_rate = 0.60;
  return s;
}

}  // namespace

DatasetSpec GetDatasetSpec(const std::string& name) {
  // Node counts / degrees / class counts follow Tab. III of the paper;
  // feature widths are scaled for CPU (Cora 1433 -> 128, etc.), and the
  // OGB graphs are scaled down proportionally (arxiv 169k -> 20k,
  // products 1.57M -> 60k with degree 337 -> 24). See DESIGN.md.
  DatasetSpec spec;
  spec.name = name;
  if (name == "cora") {
    spec.sbm = MakeSpec(2708, 7, 128, 3.89, 0.81, 12);
  } else if (name == "citeseer") {
    spec.sbm = MakeSpec(3327, 6, 128, 2.74, 0.74, 12);
  } else if (name == "photo") {
    spec.sbm = MakeSpec(7650, 8, 128, 31.13, 0.75, 10);
    spec.sbm.signal_leak = 0.35;  // Photo/Computers nodes are more alike.
    spec.sbm.feature_missing_rate = 0.70;
  } else if (name == "computers") {
    spec.sbm = MakeSpec(13752, 10, 128, 35.76, 0.72, 10);
    spec.sbm.signal_leak = 0.35;
    spec.sbm.feature_missing_rate = 0.70;
  } else if (name == "cs") {
    spec.sbm = MakeSpec(18333, 15, 128, 8.93, 0.81, 8);
  } else if (name == "arxiv") {
    spec.sbm = MakeSpec(20000, 40, 128, 13.77, 0.66, 3);
  } else if (name == "products") {
    spec.sbm = MakeSpec(60000, 32, 100, 24.0, 0.81, 3);
  } else if (name == "synthetic-1m") {
    // Million-node scale-out target for the sharded/out-of-core path
    // (ogbn-products-like shape at full node count, with the feature
    // width and degree kept modest so a single-host CPU run stays
    // tractable). High homophily keeps communities partition-friendly.
    // Deliberately NOT in NodeClassificationDatasets(): accuracy tables
    // iterate that list, and this graph exists for scale benchmarks.
    spec.sbm = MakeSpec(1050000, 24, 32, 8.0, 0.94, 1);
  } else {
    E2GCL_CHECK_MSG(false, "unknown dataset '%s'", name.c_str());
  }
  return spec;
}

std::vector<std::string> NodeClassificationDatasets() {
  return {"cora", "citeseer", "photo", "computers", "cs", "arxiv", "products"};
}

std::vector<std::string> SmallDatasets() {
  return {"cora", "citeseer", "photo", "computers", "cs"};
}

Graph LoadDataset(const std::string& name, std::uint64_t seed) {
  return LoadDatasetScaled(name, 1.0, seed);
}

Graph LoadDatasetScaled(const std::string& name, double scale,
                        std::uint64_t seed) {
  E2GCL_CHECK(scale > 0.0 && scale <= 1.0);
  DatasetSpec spec = GetDatasetSpec(name);
  spec.sbm.num_nodes = std::max<std::int64_t>(
      spec.sbm.num_classes * 4,
      static_cast<std::int64_t>(spec.sbm.num_nodes * scale));
  // Scale the degree with sqrt(node scale) so shrunk graphs keep a
  // realistic neighborhood-variance regime instead of becoming
  // relatively denser (and over-smoothed) as |V| drops.
  spec.sbm.avg_degree =
      std::max(3.5, spec.sbm.avg_degree * std::sqrt(scale));
  return GenerateSbm(spec.sbm, seed);
}

}  // namespace e2gcl
