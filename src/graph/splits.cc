#include "graph/splits.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/check.h"

namespace e2gcl {

NodeSplit RandomNodeSplit(std::int64_t num_nodes, double train_frac,
                          double val_frac, Rng& rng) {
  E2GCL_CHECK(train_frac >= 0 && val_frac >= 0 &&
              train_frac + val_frac <= 1.0);
  std::vector<std::int64_t> perm(num_nodes);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  const std::int64_t n_train =
      static_cast<std::int64_t>(std::floor(num_nodes * train_frac));
  const std::int64_t n_val =
      static_cast<std::int64_t>(std::floor(num_nodes * val_frac));
  NodeSplit s;
  s.train.assign(perm.begin(), perm.begin() + n_train);
  s.val.assign(perm.begin() + n_train, perm.begin() + n_train + n_val);
  s.test.assign(perm.begin() + n_train + n_val, perm.end());
  return s;
}

namespace {

/// Samples `count` node pairs that are not edges of `g` (and not
/// self-pairs), without duplicates within the returned set.
std::vector<std::pair<std::int64_t, std::int64_t>> SampleNegativeEdges(
    const Graph& g, std::int64_t count, Rng& rng) {
  std::vector<std::pair<std::int64_t, std::int64_t>> neg;
  neg.reserve(count);
  std::int64_t guard = 0;
  const std::int64_t max_guard = count * 50 + 1000;
  while (static_cast<std::int64_t>(neg.size()) < count &&
         guard++ < max_guard) {
    std::int64_t u = rng.UniformInt(g.num_nodes);
    std::int64_t v = rng.UniformInt(g.num_nodes);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (g.HasEdge(u, v)) continue;
    neg.emplace_back(u, v);
  }
  std::sort(neg.begin(), neg.end());
  neg.erase(std::unique(neg.begin(), neg.end()), neg.end());
  return neg;
}

}  // namespace

EdgeSplit RandomEdgeSplit(const Graph& g, double train_frac, double val_frac,
                          Rng& rng) {
  E2GCL_CHECK(train_frac > 0 && val_frac >= 0 &&
              train_frac + val_frac <= 1.0);
  auto edges = UndirectedEdges(g);
  std::vector<std::int64_t> perm(edges.size());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);

  const std::int64_t m = static_cast<std::int64_t>(edges.size());
  const std::int64_t m_train =
      static_cast<std::int64_t>(std::floor(m * train_frac));
  const std::int64_t m_val =
      static_cast<std::int64_t>(std::floor(m * val_frac));

  EdgeSplit split;
  std::vector<std::pair<std::int64_t, std::int64_t>> train_edges;
  for (std::int64_t i = 0; i < m; ++i) {
    const auto& e = edges[perm[i]];
    if (i < m_train) {
      split.train_pos.push_back(e);
      train_edges.push_back(e);
    } else if (i < m_train + m_val) {
      split.val_pos.push_back(e);
    } else {
      split.test_pos.push_back(e);
    }
  }
  split.train_graph = BuildGraph(g.num_nodes, train_edges, g.features,
                                 g.labels, g.num_classes);
  split.train_neg = SampleNegativeEdges(
      g, static_cast<std::int64_t>(split.train_pos.size()), rng);
  split.val_neg = SampleNegativeEdges(
      g, static_cast<std::int64_t>(split.val_pos.size()), rng);
  split.test_neg = SampleNegativeEdges(
      g, static_cast<std::int64_t>(split.test_pos.size()), rng);
  return split;
}

}  // namespace e2gcl
