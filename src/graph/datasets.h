#ifndef E2GCL_GRAPH_DATASETS_H_
#define E2GCL_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"

namespace e2gcl {

/// Named synthetic stand-ins for the paper's benchmark datasets
/// (Tab. III). Node counts match the paper for the five small datasets;
/// feature dimensions are scaled down for CPU runtimes, and the two OGB
/// graphs are scaled proportionally (see DESIGN.md).
///
/// Valid names: "cora", "citeseer", "photo", "computers", "cs",
/// "arxiv", "products".
struct DatasetSpec {
  std::string name;
  SbmSpec sbm;
};

/// Spec for `name`; aborts on unknown names.
DatasetSpec GetDatasetSpec(const std::string& name);

/// All seven node-classification dataset names in paper order.
std::vector<std::string> NodeClassificationDatasets();

/// The five small datasets used by Tables IV and VI-VIII.
std::vector<std::string> SmallDatasets();

/// Materializes the named dataset. Deterministic in (name, seed).
Graph LoadDataset(const std::string& name, std::uint64_t seed);

/// Materializes the named dataset scaled to `scale * num_nodes` nodes
/// (used by parameter-sweep benches to keep runtimes bounded). The
/// degree/feature structure is preserved.
Graph LoadDatasetScaled(const std::string& name, double scale,
                        std::uint64_t seed);

}  // namespace e2gcl

#endif  // E2GCL_GRAPH_DATASETS_H_
