#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <unordered_set>

#include "obs/metrics.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

/// Samples an index from a cumulative-weight table via binary search.
std::int64_t SampleFromCdf(const std::vector<double>& cdf, Rng& rng) {
  const double total = cdf.back();
  const double u = static_cast<double>(rng.Uniform()) * total;
  auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  std::int64_t idx = std::distance(cdf.begin(), it);
  if (idx >= static_cast<std::int64_t>(cdf.size())) {
    idx = static_cast<std::int64_t>(cdf.size()) - 1;
  }
  return idx;
}

}  // namespace

Graph GenerateSbm(const SbmSpec& spec, std::uint64_t seed) {
  return GenerateSbm(spec, seed, nullptr);
}

Graph GenerateSbm(const SbmSpec& spec, std::uint64_t seed,
                  SbmGenReport* report) {
  E2GCL_CHECK(spec.num_nodes > 0 && spec.num_classes > 0);
  E2GCL_CHECK(spec.feature_dim >=
              spec.num_classes * spec.informative_dims_per_class);
  Rng rng(seed);
  const std::int64_t n = spec.num_nodes;
  const std::int64_t k = spec.num_classes;

  // --- Class assignment with mild skew. ---------------------------------
  std::vector<double> class_weight(k);
  for (std::int64_t c = 0; c < k; ++c) {
    class_weight[c] = 1.0 + spec.class_skew * static_cast<double>(c);
  }
  const double wsum =
      std::accumulate(class_weight.begin(), class_weight.end(), 0.0);
  std::vector<std::int64_t> labels(n);
  std::vector<std::vector<std::int64_t>> members(k);
  {
    std::vector<double> cdf(k);
    double acc = 0.0;
    for (std::int64_t c = 0; c < k; ++c) {
      acc += class_weight[c] / wsum;
      cdf[c] = acc;
    }
    for (std::int64_t v = 0; v < n; ++v) {
      const double u = rng.Uniform();
      std::int64_t c = std::distance(
          cdf.begin(), std::lower_bound(cdf.begin(), cdf.end(), u));
      if (c >= k) c = k - 1;
      labels[v] = c;
      members[c].push_back(v);
    }
    // Guarantee non-empty classes (tiny graphs in tests).
    for (std::int64_t c = 0; c < k; ++c) {
      if (members[c].empty()) {
        const std::int64_t v = rng.UniformInt(n);
        members[labels[v]].erase(std::find(members[labels[v]].begin(),
                                           members[labels[v]].end(), v));
        labels[v] = c;
        members[c].push_back(v);
      }
    }
  }

  // --- Degree propensities (heavy-tailed). ------------------------------
  std::vector<double> theta(n);
  for (std::int64_t v = 0; v < n; ++v) {
    // Pareto(x_m = 1, alpha = degree_exponent), capped to avoid a single
    // node absorbing the edge budget.
    const double u = std::max(1e-9f, rng.Uniform());
    theta[v] = std::min(std::pow(u, -1.0 / spec.degree_exponent), 50.0);
  }

  // Per-class propensity CDFs for fast intra-class endpoint sampling.
  std::vector<std::vector<double>> class_cdf(k);
  for (std::int64_t c = 0; c < k; ++c) {
    class_cdf[c].reserve(members[c].size());
    double acc = 0.0;
    for (std::int64_t v : members[c]) {
      acc += theta[v];
      class_cdf[c].push_back(acc);
    }
  }
  std::vector<double> global_cdf(n);
  {
    double acc = 0.0;
    for (std::int64_t v = 0; v < n; ++v) {
      acc += theta[v];
      global_cdf[v] = acc;
    }
  }

  // --- Edge placement. ---------------------------------------------------
  // Only *novel* (u, v) pairs spend the edge budget: duplicate draws of
  // an already placed pair are rejected via the membership set below
  // (never iterated, so no hash-order dependence) and tallied. The RNG
  // consumption per attempt is unchanged, so graphs stay deterministic
  // in (spec, seed).
  const std::int64_t target_edges = static_cast<std::int64_t>(
      std::floor(spec.avg_degree * static_cast<double>(n) / 2.0));
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(target_edges);
  std::unordered_set<std::uint64_t> placed;
  placed.reserve(static_cast<std::size_t>(target_edges) * 2);
  std::int64_t duplicates_rejected = 0;
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = target_edges * 20 + 1000;
  while (static_cast<std::int64_t>(edges.size()) < target_edges &&
         attempts < max_attempts) {
    ++attempts;
    const std::int64_t u = SampleFromCdf(global_cdf, rng);
    std::int64_t v;
    if (rng.Uniform() < spec.homophily) {
      const std::int64_t c = labels[u];
      if (members[c].size() < 2) continue;
      v = members[c][SampleFromCdf(class_cdf[c], rng)];
    } else {
      v = SampleFromCdf(global_cdf, rng);
      if (labels[v] == labels[u]) continue;
    }
    if (u == v) continue;
    const std::int64_t a = std::min(u, v);
    const std::int64_t b = std::max(u, v);
    // n <= 2^31 (BuildGraph's id contract), so a * n + b < 2^62.
    const std::uint64_t key = static_cast<std::uint64_t>(a) *
                                  static_cast<std::uint64_t>(n) +
                              static_cast<std::uint64_t>(b);
    if (!placed.insert(key).second) {
      ++duplicates_rejected;
      continue;
    }
    edges.emplace_back(a, b);
  }

  const std::int64_t placed_count = static_cast<std::int64_t>(edges.size());
  const std::int64_t shortfall = target_edges - placed_count;
  if (duplicates_rejected > 0) {
    Counter::Get("generator.sbm.duplicate_pairs_rejected")
        .Add(static_cast<std::uint64_t>(duplicates_rejected));
  }
  if (shortfall > 0) {
    Counter::Get("generator.sbm.shortfall_events").Increment();
    Counter::Get("generator.sbm.shortfall_edges")
        .Add(static_cast<std::uint64_t>(shortfall));
    std::fprintf(stderr,
                 "E2GCL warning: SBM generator exhausted %lld attempts and "
                 "placed %lld of %lld requested edges (%lld short); the "
                 "homophily/degree config cannot supply the budget\n",
                 static_cast<long long>(attempts),
                 static_cast<long long>(placed_count),
                 static_cast<long long>(target_edges),
                 static_cast<long long>(shortfall));
  }
  if (report != nullptr) {
    report->target_edges = target_edges;
    report->edges_placed = placed_count;
    report->duplicates_rejected = duplicates_rejected;
    report->attempts = attempts;
    report->budget_met = shortfall <= 0;
  }

  // --- Features. ----------------------------------------------------------
  const std::int64_t block = spec.informative_dims_per_class;
  const std::int64_t signal_dims = k * block;
  Matrix x(n, spec.feature_dim);
  // Class information is carried by activation *magnitude* as well as
  // presence: own-block activations are ~|N(1.1, 0.35)|, leak and noise
  // activations sit near 0.5. Multiplicative feature perturbation
  // (Eq. 16 of the paper) therefore genuinely damages class signal when
  // it hits an informative dimension and is nearly harmless elsewhere —
  // the property the importance-aware generator exploits.
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t c = labels[v];
    const bool missing = rng.Uniform() < spec.feature_missing_rate;
    float* row = x.RowPtr(v);
    for (std::int64_t d = 0; d < signal_dims; ++d) {
      const bool own_block =
          !missing && (d >= c * block) && (d < (c + 1) * block);
      if (own_block) {
        if (rng.Uniform() < spec.signal_density) {
          row[d] = std::fabs(rng.Normal(1.1f, 0.35f));
        }
      } else if (rng.Uniform() < spec.signal_leak) {
        row[d] = std::fabs(rng.Normal(0.5f, 0.2f));
      }
    }
    for (std::int64_t d = signal_dims; d < spec.feature_dim; ++d) {
      if (rng.Uniform() < spec.noise_density) {
        row[d] = std::fabs(rng.Normal(0.45f, 0.25f));
      }
    }
  }

  return BuildGraph(n, edges, std::move(x), std::move(labels), k);
}

Graph GenerateErdosRenyi(std::int64_t num_nodes, double edge_prob,
                         std::int64_t feature_dim, std::uint64_t seed) {
  E2GCL_CHECK(num_nodes >= 0 && edge_prob >= 0.0 && edge_prob <= 1.0);
  Rng rng(seed);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  // For sparse p, sample the number of edges and place them uniformly;
  // exact G(n,p) enumeration is quadratic and only fine for small n.
  if (num_nodes <= 2000) {
    for (std::int64_t u = 0; u < num_nodes; ++u) {
      for (std::int64_t v = u + 1; v < num_nodes; ++v) {
        if (rng.Uniform() < edge_prob) edges.emplace_back(u, v);
      }
    }
  } else {
    const double total_pairs =
        0.5 * static_cast<double>(num_nodes) * (num_nodes - 1);
    const std::int64_t m =
        static_cast<std::int64_t>(std::floor(total_pairs * edge_prob));
    for (std::int64_t i = 0; i < m; ++i) {
      const std::int64_t u = rng.UniformInt(num_nodes);
      const std::int64_t v = rng.UniformInt(num_nodes);
      if (u != v) edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  Matrix x;
  if (feature_dim > 0) {
    x = Matrix::RandomUniform(num_nodes, feature_dim, 0.0f, 1.0f, rng);
  }
  return BuildGraph(num_nodes, edges, std::move(x));
}

}  // namespace e2gcl
