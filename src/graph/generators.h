#ifndef E2GCL_GRAPH_GENERATORS_H_
#define E2GCL_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "tensor/rng.h"

namespace e2gcl {

/// Parameters of the degree-corrected stochastic-block-model generator
/// with planted class-correlated features. This is the stand-in for the
/// paper's real attributed graphs (Cora, Citeseer, Photo, Computers, CS,
/// ogbn-arxiv, ogbn-products); see DESIGN.md for the substitution
/// rationale.
///
/// Structure: `num_nodes` nodes in `num_classes` classes (sizes drawn
/// from a mildly skewed multinomial). Each node gets a Pareto-like
/// propensity so degrees are heavy-tailed. `avg_degree * num_nodes / 2`
/// undirected edges are placed; with probability `homophily` an edge is
/// intra-class, otherwise it joins two distinct classes.
///
/// Features: dimension `feature_dim`. The first
/// `num_classes * informative_dims_per_class` dimensions form per-class
/// signal blocks; a node activates each dimension of its own class block
/// with probability `signal_density` (value |N(1, 0.3)|). All remaining
/// dimensions are structureless noise, active with probability
/// `noise_density` (value |N(0.5, 0.3)|). A small cross-talk probability
/// `signal_leak` activates other classes' blocks so the classification
/// problem is not trivially separable. This makes "feature importance"
/// a planted ground truth: signal dimensions matter, noise dimensions do
/// not — exactly the property E2GCL's feature score is supposed to pick
/// up.
struct SbmSpec {
  std::int64_t num_nodes = 1000;
  std::int64_t num_classes = 5;
  std::int64_t feature_dim = 64;
  double avg_degree = 6.0;
  double homophily = 0.8;
  /// Pareto tail exponent for degree propensities (larger = more uniform).
  double degree_exponent = 2.5;
  std::int64_t informative_dims_per_class = 8;
  double signal_density = 0.45;
  double signal_leak = 0.06;
  double noise_density = 0.08;
  /// Fraction of nodes whose own-class signal block is suppressed (they
  /// activate it only at the leak rate). Those nodes' classes are
  /// recoverable only through neighborhood aggregation, which keeps the
  /// task GNN-dependent instead of linearly separable from raw features.
  double feature_missing_rate = 0.0;
  /// Relative class-size skew in [0, 1): 0 = balanced classes.
  double class_skew = 0.3;
};

/// Outcome of one SBM edge-placement run. `edges_placed` counts the
/// *unique* undirected edges delivered (duplicate draws of an already
/// placed pair are rejected and tallied separately, never spent against
/// the budget). When the sampler exhausts its attempt budget before
/// reaching `target_edges` — degenerate homophily/degree configs —
/// `budget_met` is false, the shortfall is mirrored into the
/// `generator.sbm.shortfall_*` counters, and a warning is printed.
struct SbmGenReport {
  std::int64_t target_edges = 0;
  std::int64_t edges_placed = 0;
  std::int64_t duplicates_rejected = 0;
  std::int64_t attempts = 0;
  bool budget_met = false;
  std::int64_t shortfall() const { return target_edges - edges_placed; }
};

/// Generates a graph from the spec. Deterministic in (spec, seed).
Graph GenerateSbm(const SbmSpec& spec, std::uint64_t seed);

/// As above, additionally filling `*report` (may be null) with the
/// edge-placement outcome. Both overloads draw identical graphs for
/// identical (spec, seed).
Graph GenerateSbm(const SbmSpec& spec, std::uint64_t seed,
                  SbmGenReport* report);

/// Erdos-Renyi G(n, p) with optional random dense features; used by
/// tests and micro-benchmarks.
Graph GenerateErdosRenyi(std::int64_t num_nodes, double edge_prob,
                         std::int64_t feature_dim, std::uint64_t seed);

}  // namespace e2gcl

#endif  // E2GCL_GRAPH_GENERATORS_H_
