#ifndef E2GCL_GRAPH_PPR_H_
#define E2GCL_GRAPH_PPR_H_

#include <cstdint>

#include "graph/graph.h"
#include "tensor/csr.h"

namespace e2gcl {

/// Options for approximate personalized PageRank diffusion.
struct PprOptions {
  /// Teleport probability (paper lineage: MVGRL uses alpha ~ 0.15-0.2).
  double alpha = 0.15;
  /// Residual threshold of the local-push approximation.
  double epsilon = 1e-4;
  /// Keep only the top_k largest entries per row (0 = keep all).
  std::int64_t top_k = 32;
};

/// Sparse approximate PPR diffusion matrix computed with the
/// Andersen-Chung-Lang local push, one source node per row. Rows are
/// renormalized to sum to 1 after top-k sparsification. This is the
/// graph-diffusion substrate MVGRL's second view is built from.
CsrMatrix ApproximatePpr(const Graph& g, const PprOptions& opts);

/// Converts a diffusion matrix into an unweighted graph by thresholding:
/// each node keeps its `top_k` strongest diffusion neighbors as edges
/// (union over rows, symmetrized). Used to build MVGRL's diffusion view.
Graph DiffusionGraph(const Graph& g, const PprOptions& opts);

}  // namespace e2gcl

#endif  // E2GCL_GRAPH_PPR_H_
