#ifndef E2GCL_GRAPH_SPLITS_H_
#define E2GCL_GRAPH_SPLITS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "tensor/rng.h"

namespace e2gcl {

/// Node-level train/validation/test split (paper: 10% / 10% / 80%).
struct NodeSplit {
  std::vector<std::int64_t> train;
  std::vector<std::int64_t> val;
  std::vector<std::int64_t> test;
};

/// Random node split with the given fractions (remainder goes to test).
NodeSplit RandomNodeSplit(std::int64_t num_nodes, double train_frac,
                          double val_frac, Rng& rng);

/// Edge-level split for link prediction (paper: 70% / 10% / 20%).
/// `train_graph` keeps only training edges (so validation/test edges
/// cannot leak into GNN propagation); each split carries positive edges
/// and an equal number of sampled non-edges.
struct EdgeSplit {
  Graph train_graph;
  std::vector<std::pair<std::int64_t, std::int64_t>> train_pos;
  std::vector<std::pair<std::int64_t, std::int64_t>> val_pos;
  std::vector<std::pair<std::int64_t, std::int64_t>> test_pos;
  std::vector<std::pair<std::int64_t, std::int64_t>> train_neg;
  std::vector<std::pair<std::int64_t, std::int64_t>> val_neg;
  std::vector<std::pair<std::int64_t, std::int64_t>> test_neg;
};

EdgeSplit RandomEdgeSplit(const Graph& g, double train_frac, double val_frac,
                          Rng& rng);

}  // namespace e2gcl

#endif  // E2GCL_GRAPH_SPLITS_H_
