#ifndef E2GCL_GRAPH_GRAPH_H_
#define E2GCL_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "tensor/csr.h"
#include "tensor/matrix.h"

namespace e2gcl {

/// An undirected attributed graph G(V, A, X) with optional node labels,
/// stored as a symmetric CSR adjacency (both directions present, no
/// self-loops, no duplicates), a dense feature matrix X (|V| x d_x), and
/// integer class labels (empty when unlabeled).
///
/// Graph is a passive value type; all algorithms are free functions.
struct Graph {
  std::int64_t num_nodes = 0;
  /// CSR offsets, size num_nodes + 1.
  std::vector<std::int64_t> row_ptr{0};
  /// Neighbor lists, sorted within each row.
  std::vector<std::int32_t> col;
  /// Node features, num_nodes x feature_dim (may be empty).
  Matrix features;
  /// Node labels in [0, num_classes), or empty when unlabeled.
  std::vector<std::int64_t> labels;
  std::int64_t num_classes = 0;

  /// Number of undirected edges (each stored twice in CSR).
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(col.size()) / 2;
  }

  std::int64_t feature_dim() const { return features.cols(); }

  std::int64_t Degree(std::int64_t v) const {
    return row_ptr[v + 1] - row_ptr[v];
  }

  /// Neighbors of v as a read-only span.
  std::span<const std::int32_t> Neighbors(std::int64_t v) const {
    return {col.data() + row_ptr[v],
            static_cast<std::size_t>(row_ptr[v + 1] - row_ptr[v])};
  }

  /// True iff edge {u, v} exists (binary search, O(log deg)).
  bool HasEdge(std::int64_t u, std::int64_t v) const;

  /// Average degree 2|E| / |V|.
  double AverageDegree() const {
    return num_nodes == 0
               ? 0.0
               : static_cast<double>(col.size()) / num_nodes;
  }
};

/// Builds a Graph from an undirected edge list. Self-loops and duplicate
/// edges are dropped; each surviving edge is stored in both directions.
/// `features` may be empty (then the graph is structure-only); `labels`
/// may be empty.
Graph BuildGraph(std::int64_t num_nodes,
                 const std::vector<std::pair<std::int64_t, std::int64_t>>&
                     edges,
                 Matrix features = {}, std::vector<std::int64_t> labels = {},
                 std::int64_t num_classes = 0);

/// GCN-normalized adjacency D^{-1/2} (A + I) D^{-1/2} (Kipf & Welling),
/// where D counts the self-loop. Set `add_self_loops` to false for the
/// plain symmetric normalization D^{-1/2} A D^{-1/2}.
CsrMatrix NormalizedAdjacency(const Graph& g, bool add_self_loops = true);

/// Row-normalized adjacency D^{-1} A (random-walk normalization).
CsrMatrix RowNormalizedAdjacency(const Graph& g);

/// Nodes within L hops of `root` (including the root), sorted ascending.
std::vector<std::int64_t> KHopNeighborhood(const Graph& g, std::int64_t root,
                                           int hops);

/// Induced subgraph on `nodes` (must be sorted unique). Features/labels
/// are gathered. `old_to_new`, if non-null, receives the node index
/// remapping as pairs (old, new).
Graph InducedSubgraph(const Graph& g, const std::vector<std::int64_t>& nodes,
                      std::vector<std::pair<std::int64_t, std::int64_t>>*
                          old_to_new = nullptr);

/// Degree centrality phi_c(v) = log(D_v + 1) for every node (Sec. IV-C1).
std::vector<float> DegreeCentrality(const Graph& g);

/// All undirected edges as (u, v) with u < v.
std::vector<std::pair<std::int64_t, std::int64_t>> UndirectedEdges(
    const Graph& g);

/// Union of 1-hop and 2-hop neighbors of `v`, excluding v itself,
/// sorted ascending. These are the neighbor candidates V_u^N of Alg. 3.
std::vector<std::int64_t> TwoHopCandidates(const Graph& g, std::int64_t v);

}  // namespace e2gcl

#endif  // E2GCL_GRAPH_GRAPH_H_
