#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "tensor/check.h"

namespace e2gcl {

bool Graph::HasEdge(std::int64_t u, std::int64_t v) const {
  auto nb = Neighbors(u);
  return std::binary_search(nb.begin(), nb.end(),
                            static_cast<std::int32_t>(v));
}

Graph BuildGraph(
    std::int64_t num_nodes,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& edges,
    Matrix features, std::vector<std::int64_t> labels,
    std::int64_t num_classes) {
  E2GCL_CHECK(num_nodes >= 0);
  // Adjacency columns store node ids as int32; reject node counts whose
  // ids cannot round-trip before any allocation or narrowing happens.
  E2GCL_CHECK_MSG(num_nodes <= (std::int64_t{1} << 31),
                  "num_nodes %lld exceeds the int32 node-id range",
                  static_cast<long long>(num_nodes));
  E2GCL_CHECK(features.empty() || features.rows() == num_nodes);
  E2GCL_CHECK(labels.empty() ||
              static_cast<std::int64_t>(labels.size()) == num_nodes);

  // Symmetrize, drop self-loops, dedupe.
  std::vector<std::pair<std::int64_t, std::int64_t>> dir;
  dir.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    E2GCL_CHECK_MSG(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes,
                    "edge (%lld, %lld) out of range",
                    static_cast<long long>(u), static_cast<long long>(v));
    if (u == v) continue;
    dir.emplace_back(u, v);
    dir.emplace_back(v, u);
  }
  std::sort(dir.begin(), dir.end());
  dir.erase(std::unique(dir.begin(), dir.end()), dir.end());

  Graph g;
  g.num_nodes = num_nodes;
  g.row_ptr.assign(num_nodes + 1, 0);
  g.col.reserve(dir.size());
  for (const auto& [u, v] : dir) {
    g.col.push_back(static_cast<std::int32_t>(v));
    g.row_ptr[u + 1] += 1;
  }
  for (std::int64_t i = 0; i < num_nodes; ++i) g.row_ptr[i + 1] += g.row_ptr[i];
  g.features = std::move(features);
  g.labels = std::move(labels);
  g.num_classes = num_classes;
  return g;
}

CsrMatrix NormalizedAdjacency(const Graph& g, bool add_self_loops) {
  const std::int64_t n = g.num_nodes;
  std::vector<double> deg(n, add_self_loops ? 1.0 : 0.0);
  for (std::int64_t v = 0; v < n; ++v) deg[v] += g.Degree(v);

  std::vector<std::tuple<std::int64_t, std::int64_t, float>> triplets;
  triplets.reserve(g.col.size() + (add_self_loops ? n : 0));
  for (std::int64_t v = 0; v < n; ++v) {
    const double dv = deg[v];
    if (dv == 0.0) continue;
    if (add_self_loops) {
      triplets.emplace_back(v, v, static_cast<float>(1.0 / dv));
    }
    for (std::int32_t u : g.Neighbors(v)) {
      triplets.emplace_back(
          v, u, static_cast<float>(1.0 / std::sqrt(dv * deg[u])));
    }
  }
  return CsrMatrix::FromCoo(n, n, std::move(triplets));
}

CsrMatrix RowNormalizedAdjacency(const Graph& g) {
  const std::int64_t n = g.num_nodes;
  std::vector<std::tuple<std::int64_t, std::int64_t, float>> triplets;
  triplets.reserve(g.col.size());
  for (std::int64_t v = 0; v < n; ++v) {
    const std::int64_t dv = g.Degree(v);
    if (dv == 0) continue;
    const float w = 1.0f / static_cast<float>(dv);
    for (std::int32_t u : g.Neighbors(v)) triplets.emplace_back(v, u, w);
  }
  return CsrMatrix::FromCoo(n, n, std::move(triplets));
}

std::vector<std::int64_t> KHopNeighborhood(const Graph& g, std::int64_t root,
                                           int hops) {
  E2GCL_CHECK(root >= 0 && root < g.num_nodes);
  E2GCL_CHECK(hops >= 0);
  // `dist` is membership/depth lookup only; the reached nodes are
  // collected in BFS discovery order so no hash-ordered iteration ever
  // feeds the (sorted) output.
  std::unordered_map<std::int64_t, int> dist;
  dist[root] = 0;
  std::vector<std::int64_t> nodes{root};
  std::queue<std::int64_t> q;
  q.push(root);
  while (!q.empty()) {
    const std::int64_t v = q.front();
    q.pop();
    const int d = dist[v];
    if (d == hops) continue;
    for (std::int32_t u : g.Neighbors(v)) {
      if (dist.emplace(u, d + 1).second) {
        nodes.push_back(u);
        q.push(u);
      }
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

Graph InducedSubgraph(
    const Graph& g, const std::vector<std::int64_t>& nodes,
    std::vector<std::pair<std::int64_t, std::int64_t>>* old_to_new) {
  const std::int64_t m = static_cast<std::int64_t>(nodes.size());
  std::unordered_map<std::int64_t, std::int64_t> remap;
  remap.reserve(m);
  for (std::int64_t i = 0; i < m; ++i) {
    E2GCL_CHECK(nodes[i] >= 0 && nodes[i] < g.num_nodes);
    if (i > 0) E2GCL_CHECK_MSG(nodes[i] > nodes[i - 1], "nodes must be sorted unique");
    remap[nodes[i]] = i;
  }
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int32_t u : g.Neighbors(nodes[i])) {
      auto it = remap.find(u);
      if (it != remap.end() && it->second > i) {
        edges.emplace_back(i, it->second);
      }
    }
  }
  Matrix feats = g.features.empty() ? Matrix() : GatherRows(g.features, nodes);
  std::vector<std::int64_t> labels;
  if (!g.labels.empty()) {
    labels.reserve(m);
    for (std::int64_t v : nodes) labels.push_back(g.labels[v]);
  }
  if (old_to_new != nullptr) {
    old_to_new->clear();
    for (std::int64_t i = 0; i < m; ++i) old_to_new->emplace_back(nodes[i], i);
  }
  return BuildGraph(m, edges, std::move(feats), std::move(labels),
                    g.num_classes);
}

std::vector<float> DegreeCentrality(const Graph& g) {
  std::vector<float> c(g.num_nodes);
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    c[v] = std::log(static_cast<float>(g.Degree(v)) + 1.0f);
  }
  return c;
}

std::vector<std::pair<std::int64_t, std::int64_t>> UndirectedEdges(
    const Graph& g) {
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(g.num_edges());
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    for (std::int32_t u : g.Neighbors(v)) {
      if (u > v) edges.emplace_back(v, u);
    }
  }
  return edges;
}

std::vector<std::int64_t> TwoHopCandidates(const Graph& g, std::int64_t v) {
  std::vector<std::int64_t> out;
  for (std::int32_t u : g.Neighbors(v)) {
    out.push_back(u);
    for (std::int32_t w : g.Neighbors(u)) {
      if (w != v) out.push_back(w);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace e2gcl
