#ifndef E2GCL_GRAPH_TU_GENERATOR_H_
#define E2GCL_GRAPH_TU_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace e2gcl {

/// A graph-classification dataset: a collection of small labeled graphs.
/// Stand-in for the TU benchmark datasets (NCI1, PTC_MR, PROTEINS) used
/// by Table IX; see DESIGN.md for the substitution rationale.
struct TuDataset {
  std::string name;
  std::vector<Graph> graphs;
  /// Class label per graph, in [0, num_classes).
  std::vector<std::int64_t> graph_labels;
  std::int64_t num_classes = 2;
};

/// Parameters of the motif-mixture generator. Each class mixes
/// structural motifs (rings, cliques, stars, paths) with class-dependent
/// proportions, plus label-correlated node features, so graph class is
/// recoverable from structure and features together — the property the
/// Table IX experiment needs.
struct TuSpec {
  std::string name = "synthetic";
  std::int64_t num_graphs = 400;
  std::int64_t num_classes = 2;
  std::int64_t min_nodes = 12;
  std::int64_t max_nodes = 40;
  std::int64_t feature_dim = 16;
};

/// Generates a dataset; deterministic in (spec, seed).
TuDataset GenerateTuDataset(const TuSpec& spec, std::uint64_t seed);

/// Specs sized after the three paper datasets:
/// "nci1" (~2 classes, mid-size), "ptc_mr" (small), "proteins" (larger
/// graphs). Counts are scaled down for CPU runtimes.
TuSpec GetTuSpec(const std::string& name);

/// The three graph-classification dataset names in paper order.
std::vector<std::string> GraphClassificationDatasets();

}  // namespace e2gcl

#endif  // E2GCL_GRAPH_TU_GENERATOR_H_
