#include "graph/tu_generator.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"
#include "tensor/rng.h"

namespace e2gcl {

namespace {

/// Appends a motif over fresh node ids starting at `base`; returns the
/// number of nodes consumed.
std::int64_t AppendMotif(
    int motif, std::int64_t base, std::int64_t size,
    std::vector<std::pair<std::int64_t, std::int64_t>>& edges) {
  switch (motif) {
    case 0:  // ring
      for (std::int64_t i = 0; i < size; ++i) {
        edges.emplace_back(base + i, base + (i + 1) % size);
      }
      break;
    case 1:  // clique
      for (std::int64_t i = 0; i < size; ++i) {
        for (std::int64_t j = i + 1; j < size; ++j) {
          edges.emplace_back(base + i, base + j);
        }
      }
      break;
    case 2:  // star
      for (std::int64_t i = 1; i < size; ++i) {
        edges.emplace_back(base, base + i);
      }
      break;
    default:  // path
      for (std::int64_t i = 0; i + 1 < size; ++i) {
        edges.emplace_back(base + i, base + i + 1);
      }
      break;
  }
  return size;
}

}  // namespace

TuDataset GenerateTuDataset(const TuSpec& spec, std::uint64_t seed) {
  E2GCL_CHECK(spec.num_classes >= 2 && spec.num_graphs > 0);
  E2GCL_CHECK(spec.min_nodes >= 6 && spec.max_nodes >= spec.min_nodes);
  Rng rng(seed);
  TuDataset ds;
  ds.name = spec.name;
  ds.num_classes = spec.num_classes;

  for (std::int64_t gi = 0; gi < spec.num_graphs; ++gi) {
    const std::int64_t cls = gi % spec.num_classes;
    const std::int64_t target =
        spec.min_nodes + rng.UniformInt(spec.max_nodes - spec.min_nodes + 1);

    // Class-dependent motif mixture: class c prefers motif c (mod 4)
    // with probability 0.75, otherwise a random motif. Motif sizes 4-7.
    std::vector<std::pair<std::int64_t, std::int64_t>> edges;
    std::int64_t n = 0;
    std::vector<std::int64_t> motif_starts;
    while (n < target) {
      const std::int64_t size = std::min<std::int64_t>(
          4 + rng.UniformInt(4), target - n >= 4 ? target - n : 4);
      int motif = static_cast<int>(cls % 4);
      if (rng.Uniform() > 0.75f) motif = static_cast<int>(rng.UniformInt(4));
      motif_starts.push_back(n);
      n += AppendMotif(motif, n, size, edges);
    }
    // Connect consecutive motifs so the graph is connected.
    for (std::size_t i = 1; i < motif_starts.size(); ++i) {
      edges.emplace_back(motif_starts[i - 1], motif_starts[i]);
    }
    // A little structural noise.
    const std::int64_t noise = std::max<std::int64_t>(1, n / 20);
    for (std::int64_t i = 0; i < noise; ++i) {
      const std::int64_t u = rng.UniformInt(n);
      const std::int64_t v = rng.UniformInt(n);
      if (u != v) edges.emplace_back(u, v);
    }

    // Structure-only class signal: node features are uninformative
    // noise, so graph class is recoverable only through the motif
    // statistics the GNN aggregates (a SUM readout of raw features
    // carries no label information). This mirrors TU chemistry sets
    // where the discriminative signal is structural.
    Matrix x(n, spec.feature_dim);
    for (std::int64_t v = 0; v < n; ++v) {
      float* row = x.RowPtr(v);
      for (std::int64_t d = 0; d < spec.feature_dim; ++d) {
        row[d] = 0.5f * rng.Uniform();
      }
    }

    ds.graphs.push_back(BuildGraph(n, edges, std::move(x)));
    ds.graph_labels.push_back(cls);
  }
  return ds;
}

TuSpec GetTuSpec(const std::string& name) {
  TuSpec s;
  s.name = name;
  if (name == "nci1") {
    s.num_graphs = 400;
    s.num_classes = 2;
    s.min_nodes = 12;
    s.max_nodes = 40;
  } else if (name == "ptc_mr") {
    s.num_graphs = 240;
    s.num_classes = 2;
    s.min_nodes = 8;
    s.max_nodes = 30;
  } else if (name == "proteins") {
    s.num_graphs = 300;
    s.num_classes = 2;
    s.min_nodes = 16;
    s.max_nodes = 60;
  } else {
    E2GCL_CHECK_MSG(false, "unknown TU dataset '%s'", name.c_str());
  }
  return s;
}

std::vector<std::string> GraphClassificationDatasets() {
  return {"nci1", "ptc_mr", "proteins"};
}

}  // namespace e2gcl
