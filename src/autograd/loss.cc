#include "autograd/loss.h"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "parallel/parallel_for.h"
#include "tensor/check.h"

namespace e2gcl {
namespace ag {

using internal_autograd::Node;

namespace {

Var MakeScalarNode(float value, std::vector<Var> parents,
                   std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  Matrix v(1, 1);
  v(0, 0) = value;
  node->value = std::move(v);
  for (const Var& p : parents) {
    node->parents.push_back(p.node());
    node->requires_grad = node->requires_grad || p.node()->requires_grad;
  }
  if (node->requires_grad) node->backward = std::move(backward);
  return Var(std::move(node));
}

float WeightAt(const std::vector<float>& w, std::int64_t i) {
  return w.empty() ? 1.0f : w[i];
}

float WeightTotal(const std::vector<float>& w, std::int64_t n) {
  if (w.empty()) return static_cast<float>(n);
  double acc = 0.0;
  for (float x : w) acc += x;
  return static_cast<float>(acc);
}

// Anchor-row floor for chunked loss reductions: below this many rows a
// single chunk keeps the exact serial summation order.
constexpr std::int64_t kLossRowFloor = 64;

/// Splits [0, n) anchors into fixed chunks, runs body(chunk, begin, end)
/// with a per-chunk double accumulator slot, and returns the chunk-order
/// sum. `cost` is the per-anchor op estimate used to size the grain.
template <typename Body>
double ChunkedLossSum(std::int64_t n, std::int64_t cost, const Body& body) {
  const std::int64_t grain = std::max(kLossRowFloor, GrainForCost(cost));
  const std::int64_t chunks = NumChunks(n, grain);
  std::vector<double> partial(std::max<std::int64_t>(1, chunks), 0.0);
  ParallelForChunks(0, n, grain,
                    [&](std::int64_t chunk, std::int64_t b, std::int64_t e) {
                      partial[chunk] = body(b, e);
                    });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return acc;
}

}  // namespace

Var SoftmaxCrossEntropy(const Var& logits,
                        const std::vector<std::int64_t>& labels,
                        const std::vector<float>& row_weights) {
  const Matrix& x = logits.value();
  const std::int64_t n = x.rows(), c = x.cols();
  E2GCL_CHECK(static_cast<std::int64_t>(labels.size()) == n);
  E2GCL_CHECK(row_weights.empty() ||
              static_cast<std::int64_t>(row_weights.size()) == n);
  const float wtot = WeightTotal(row_weights, n);
  E2GCL_CHECK(wtot > 0.0f);

  // Forward: weighted mean of -log softmax(x)[label]. Cache the softmax
  // for the backward pass.
  auto probs = std::make_shared<Matrix>(SoftmaxRows(x));
  double loss = -ChunkedLossSum(n, c, [&](std::int64_t rb, std::int64_t re) {
    double acc = 0.0;
    for (std::int64_t r = rb; r < re; ++r) {
      E2GCL_CHECK(labels[r] >= 0 && labels[r] < c);
      const float p = std::max((*probs)(r, labels[r]), 1e-12f);
      acc += static_cast<double>(WeightAt(row_weights, r)) * std::log(p);
    }
    return acc;
  });
  loss /= wtot;

  return MakeScalarNode(
      static_cast<float>(loss), {logits},
      [probs, labels, row_weights, wtot](Node& node) {
        Node* px = node.parents[0].get();
        if (!px->requires_grad) return;
        const float gscale = node.grad(0, 0) / wtot;
        Matrix g = *probs;
        ParallelFor(0, g.rows(), GrainForCost(g.cols()),
                    [&](std::int64_t rb, std::int64_t re) {
                      for (std::int64_t r = rb; r < re; ++r) {
                        const float w = WeightAt(row_weights, r) * gscale;
                        float* row = g.RowPtr(r);
                        for (std::int64_t cc = 0; cc < g.cols(); ++cc) {
                          row[cc] *= w;
                        }
                        row[labels[r]] -= w;
                      }
                    });
        px->AccumulateGrad(g);
      });
}

Var InfoNce(const Var& z1, const Var& z2, float temperature,
            const std::vector<float>& row_weights) {
  const Matrix& a = z1.value();
  const Matrix& b = z2.value();
  E2GCL_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  E2GCL_CHECK(temperature > 0.0f);
  const std::int64_t n = a.rows();
  E2GCL_CHECK(n > 1);
  E2GCL_CHECK(row_weights.empty() ||
              static_cast<std::int64_t>(row_weights.size()) == n);
  const float wtot = WeightTotal(row_weights, n);
  const float inv_t = 1.0f / temperature;

  // Similarity matrices scaled by 1/t. For normalized rows entries are
  // bounded by 1/t, so exp() is safe without max-subtraction; we still
  // subtract the row max for robustness with unnormalized inputs.
  Matrix sim12 = e2gcl::MatMulTransposedB(a, b);
  Matrix sim11 = e2gcl::MatMulTransposedB(a, a);
  Matrix sim22 = e2gcl::MatMulTransposedB(b, b);
  for (Matrix* m : {&sim12, &sim11, &sim22}) {
    for (std::int64_t i = 0; i < m->size(); ++i) m->data()[i] *= inv_t;
  }

  // Direction 1 -> 2: anchor a_i, positive b_i, negatives {b_j} u {a_j, j != i}.
  // Direction 2 -> 1 mirrors with sim12 transposed and sim22.
  // We cache the soft assignment matrices for backward.
  auto p12 = std::make_shared<Matrix>(n, n);  // d l1_i / d sim12_ij (+delta)
  auto p11 = std::make_shared<Matrix>(n, n);
  auto p21 = std::make_shared<Matrix>(n, n);  // direction 2: over sim12^T
  auto p22 = std::make_shared<Matrix>(n, n);

  // Each anchor i owns row i of every soft-assignment matrix, so the
  // per-anchor loop parallelizes with no shared writes; the scalar loss
  // is reduced from per-chunk partials in chunk order.
  double loss = ChunkedLossSum(n, 8 * n, [&](std::int64_t ib, std::int64_t ie) {
    double acc = 0.0;
    for (std::int64_t i = ib; i < ie; ++i) {
      const float w = WeightAt(row_weights, i);
      // Row max for stability.
      float mx = sim12(i, 0);
      for (std::int64_t j = 0; j < n; ++j) {
        mx = std::max(mx, sim12(i, j));
        if (j != i) mx = std::max(mx, sim11(i, j));
      }
      double denom = 0.0;
      for (std::int64_t j = 0; j < n; ++j) {
        const float e12 = std::exp(sim12(i, j) - mx);
        (*p12)(i, j) = e12;
        denom += e12;
        if (j != i) {
          const float e11 = std::exp(sim11(i, j) - mx);
          (*p11)(i, j) = e11;
          denom += e11;
        }
      }
      const float inv_denom = static_cast<float>(1.0 / denom);
      for (std::int64_t j = 0; j < n; ++j) {
        (*p12)(i, j) *= inv_denom;
        (*p11)(i, j) *= inv_denom;
      }
      acc += w * (-(sim12(i, i) - mx) + std::log(denom));

      // Direction 2 -> 1.
      float mx2 = sim12(0, i);
      for (std::int64_t j = 0; j < n; ++j) {
        mx2 = std::max(mx2, sim12(j, i));
        if (j != i) mx2 = std::max(mx2, sim22(i, j));
      }
      double denom2 = 0.0;
      for (std::int64_t j = 0; j < n; ++j) {
        const float e21 = std::exp(sim12(j, i) - mx2);
        (*p21)(i, j) = e21;
        denom2 += e21;
        if (j != i) {
          const float e22 = std::exp(sim22(i, j) - mx2);
          (*p22)(i, j) = e22;
          denom2 += e22;
        }
      }
      const float inv_denom2 = static_cast<float>(1.0 / denom2);
      for (std::int64_t j = 0; j < n; ++j) {
        (*p21)(i, j) *= inv_denom2;
        (*p22)(i, j) *= inv_denom2;
      }
      acc += w * (-(sim12(i, i) - mx2) + std::log(denom2));
    }
    return acc;
  });
  loss /= 2.0 * wtot;

  return MakeScalarNode(
      static_cast<float>(loss), {z1, z2},
      [p12, p11, p21, p22, row_weights, wtot, inv_t](Node& node) {
        Node* pa = node.parents[0].get();
        Node* pb = node.parents[1].get();
        const Matrix& a = pa->value;
        const Matrix& b = pb->value;
        const std::int64_t n = a.rows(), d = a.cols();
        const float gscale = node.grad(0, 0) * inv_t / (2.0f * wtot);

        // Effective gradient coefficient matrices:
        //   dL/d sim12_ij = w_i * (p12_ij - delta_ij)      (dir 1)
        //                 + w_j * (p21_ji - delta_ij)      (dir 2)
        //   dL/d sim11_ij = w_i * p11_ij (i != j)           (dir 1)
        //   dL/d sim22_ij = w_i * p22_ij (i != j)           (dir 2)
        // sim12 = A B^T / t, sim11 = A A^T / t, sim22 = B B^T / t.
        Matrix g12(n, n), g11(n, n), g22(n, n);
        ParallelFor(0, n, GrainForCost(3 * n),
                    [&](std::int64_t ib, std::int64_t ie) {
                      for (std::int64_t i = ib; i < ie; ++i) {
                        const float wi = WeightAt(row_weights, i);
                        for (std::int64_t j = 0; j < n; ++j) {
                          const float wj = WeightAt(row_weights, j);
                          float v = wi * (*p12)(i, j) + wj * (*p21)(j, i);
                          if (i == j) v -= wi + wj;
                          g12(i, j) = v;
                          if (i != j) {
                            g11(i, j) = wi * (*p11)(i, j);
                            g22(i, j) = wi * (*p22)(i, j);
                          }
                        }
                      }
                    });
        if (pa->requires_grad) {
          // dA = (G12 B + (G11 + G11^T) A) * gscale.
          Matrix da = e2gcl::MatMul(g12, b);
          Matrix g11_sym = e2gcl::Add(g11, e2gcl::Transpose(g11));
          AddInPlace(da, e2gcl::MatMul(g11_sym, a));
          ParallelFor(0, n * d, std::int64_t{1} << 15,
                      [&](std::int64_t ib, std::int64_t ie) {
                        for (std::int64_t i = ib; i < ie; ++i) {
                          da.data()[i] *= gscale;
                        }
                      });
          pa->AccumulateGrad(da);
        }
        if (pb->requires_grad) {
          Matrix db = e2gcl::MatMulTransposedA(g12, a);
          Matrix g22_sym = e2gcl::Add(g22, e2gcl::Transpose(g22));
          AddInPlace(db, e2gcl::MatMul(g22_sym, b));
          ParallelFor(0, n * d, std::int64_t{1} << 15,
                      [&](std::int64_t ib, std::int64_t ie) {
                        for (std::int64_t i = ib; i < ie; ++i) {
                          db.data()[i] *= gscale;
                        }
                      });
          pb->AccumulateGrad(db);
        }
      });
}

Var EuclideanContrastive(const Var& z1, const Var& z2,
                         const std::vector<std::int64_t>& neg_perm,
                         const std::vector<float>& row_weights) {
  const Matrix& a = z1.value();
  const Matrix& b = z2.value();
  E2GCL_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  const std::int64_t n = a.rows(), d = a.cols();
  E2GCL_CHECK(static_cast<std::int64_t>(neg_perm.size()) == n);
  const float wtot = WeightTotal(row_weights, n);

  double loss = ChunkedLossSum(n, 3 * d, [&](std::int64_t ib, std::int64_t ie) {
    double acc = 0.0;
    for (std::int64_t i = ib; i < ie; ++i) {
      const float w = WeightAt(row_weights, i);
      acc += w * RowSquaredDistance(a, i, b, i);
      const std::int64_t u = neg_perm[i];
      E2GCL_CHECK(u >= 0 && u < n);
      // Negative views drawn from the first view's embeddings (the paper
      // averages over both positive views; we use one sampled negative per
      // anchor per view).
      acc -= 0.5 * w * (RowSquaredDistance(a, i, a, u) +
                        RowSquaredDistance(b, i, a, u));
    }
    return acc;
  });
  loss /= wtot;

  return MakeScalarNode(
      static_cast<float>(loss), {z1, z2},
      [neg_perm, row_weights, wtot, n, d](Node& node) {
        Node* pa = node.parents[0].get();
        Node* pb = node.parents[1].get();
        const Matrix& a = pa->value;
        const Matrix& b = pb->value;
        const float gs = node.grad(0, 0) / wtot;
        Matrix da(n, d), db(n, d);
        // Stays serial: iteration i writes da rows i and neg_perm[i], so
        // rows alias across iterations; the loop is O(n d), cold next to
        // the O(n^2 d) similarity kernels.
        for (std::int64_t i = 0; i < n; ++i) {
          const float w = WeightAt(row_weights, i) * gs;
          const std::int64_t u = neg_perm[i];
          const float* ai = a.RowPtr(i);
          const float* bi = b.RowPtr(i);
          const float* au = a.RowPtr(u);
          float* dai = da.RowPtr(i);
          float* dbi = db.RowPtr(i);
          float* dau = da.RowPtr(u);
          for (std::int64_t c = 0; c < d; ++c) {
            const float pos = 2.0f * (ai[c] - bi[c]);
            dai[c] += w * pos;
            dbi[c] -= w * pos;
            const float neg_a = ai[c] - au[c];
            const float neg_b = bi[c] - au[c];
            dai[c] -= w * neg_a;
            dau[c] += w * neg_a;
            dbi[c] -= w * neg_b;
            dau[c] += w * neg_b;
          }
        }
        if (pa->requires_grad) pa->AccumulateGrad(da);
        if (pb->requires_grad) pb->AccumulateGrad(db);
      });
}

Var BceWithLogits(const Var& logits, const std::vector<float>& targets) {
  const Matrix& x = logits.value();
  const std::int64_t n = x.size();
  E2GCL_CHECK(static_cast<std::int64_t>(targets.size()) == n);
  E2GCL_CHECK(n > 0);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float z = x.data()[i];
    const float t = targets[i];
    // log(1 + exp(z)) - t*z, computed stably.
    const float softplus = z > 0 ? z + std::log1p(std::exp(-z))
                                 : std::log1p(std::exp(z));
    loss += softplus - t * z;
  }
  loss /= static_cast<double>(n);

  return MakeScalarNode(
      static_cast<float>(loss), {logits}, [targets, n](Node& node) {
        Node* px = node.parents[0].get();
        if (!px->requires_grad) return;
        const float gs = node.grad(0, 0) / static_cast<float>(n);
        Matrix g(px->value.rows(), px->value.cols());
        for (std::int64_t i = 0; i < n; ++i) {
          const float z = px->value.data()[i];
          const float sig = 1.0f / (1.0f + std::exp(-z));
          g.data()[i] = gs * (sig - targets[i]);
        }
        px->AccumulateGrad(g);
      });
}

Var CosinePredictionLoss(const Var& pred, const Var& target) {
  Var p = NormalizeRowsL2(pred);
  Var t = NormalizeRowsL2(target);
  Var dots = SumAll(Hadamard(p, t));  // sum_i cos(p_i, t_i)
  const float n = static_cast<float>(pred.rows());
  // 2 - 2/n * sum cos.
  Var scaled = Scale(dots, -2.0f / n);
  Matrix two(1, 1);
  two(0, 0) = 2.0f;
  return Add(Var::Constant(std::move(two)), scaled);
}

Var MseLoss(const Var& a, const Var& b) {
  Var diff = Sub(a, b);
  return MeanAll(Hadamard(diff, diff));
}

}  // namespace ag
}  // namespace e2gcl
