#include "autograd/variable.h"

#include <unordered_map>
#include <unordered_set>

#include "tensor/check.h"

namespace e2gcl {

namespace internal_autograd {

void Node::AccumulateGrad(const Matrix& g) {
  if (!requires_grad) return;
  if (!grad_initialized) {
    grad = Matrix(value.rows(), value.cols());
    grad_initialized = true;
  }
  AddInPlace(grad, g);
}

}  // namespace internal_autograd

using internal_autograd::Node;

Var Var::Constant(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return Var(std::move(node));
}

Var Var::Param(Matrix value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  return Var(std::move(node));
}

const Matrix& Var::value() const {
  E2GCL_CHECK(node_ != nullptr);
  return node_->value;
}

Matrix& Var::mutable_value() {
  E2GCL_CHECK(node_ != nullptr);
  return node_->value;
}

const Matrix& Var::grad() const {
  E2GCL_CHECK(node_ != nullptr);
  static const Matrix kEmpty;
  return node_->grad_initialized ? node_->grad : kEmpty;
}

Matrix& Var::mutable_grad() {
  E2GCL_CHECK(node_ != nullptr);
  E2GCL_CHECK(node_->grad_initialized);
  return node_->grad;
}

bool Var::requires_grad() const {
  E2GCL_CHECK(node_ != nullptr);
  return node_->requires_grad;
}

void Var::ZeroGrad() {
  E2GCL_CHECK(node_ != nullptr);
  node_->grad_initialized = false;
  node_->grad = Matrix();
}

void Var::Backward() const {
  E2GCL_CHECK(node_ != nullptr);
  E2GCL_CHECK_MSG(node_->value.rows() == 1 && node_->value.cols() == 1,
                  "Backward() must start from a scalar");

  // Topological order via iterative post-order DFS. Alongside it,
  // count how many in-tape references (parent edges) each node has and
  // sample its shared_ptr use_count: a node whose only owners are
  // parent edges has no external Var handle, so nothing can observe
  // its value or grad after its own backward step has run.
  std::vector<Node*> order;
  std::unordered_map<Node*, std::int64_t> tape_refs;
  std::unordered_map<Node*, std::int64_t> use_count;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [cur, idx] = stack.back();
    if (idx < cur->parents.size()) {
      const std::shared_ptr<Node>& parent_ref = cur->parents[idx];
      Node* parent = parent_ref.get();
      tape_refs[parent] += 1;
      use_count.emplace(parent, parent_ref.use_count());
      ++idx;
      if (visited.insert(parent).second) stack.emplace_back(parent, 0);
    } else {
      order.push_back(cur);
      stack.pop_back();
    }
  }

  // Seed and sweep in reverse topological order (self first). Children
  // always run before their parents, so once a node's own backward has
  // fired nothing later in the sweep touches its value or grad; if it
  // also has no external handle, release them (and the closure's
  // captured state) immediately. This keeps the backward peak near the
  // forward peak instead of retaining the whole tape, which is what
  // lets a sharded batch step fit in an out-of-core memory budget. The
  // tape is single-use either way: every training loop rebuilds the
  // graph before the next Backward().
  Matrix seed(1, 1);
  seed(0, 0) = 1.0f;
  // Root may not itself require grad (e.g. loss of constants only).
  node_->grad = seed;
  node_->grad_initialized = true;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward && n->grad_initialized) n->backward(*n);
    if (n == node_.get()) continue;
    const auto uc = use_count.find(n);
    if (uc != use_count.end() && uc->second == tape_refs[n]) {
      n->value = Matrix();
      n->grad = Matrix();
      n->grad_initialized = false;
      n->backward = nullptr;
    }
  }
}

}  // namespace e2gcl
