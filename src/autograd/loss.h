#ifndef E2GCL_AUTOGRAD_LOSS_H_
#define E2GCL_AUTOGRAD_LOSS_H_

#include <vector>

#include "autograd/variable.h"

namespace e2gcl {
namespace ag {

/// Fused loss functions. Each returns a scalar (1x1) Var with a
/// hand-derived backward pass; all are verified against finite
/// differences in tests/autograd_loss_test.cc.

/// Mean softmax cross-entropy of `logits` (n x C) against integer class
/// labels (size n, values in [0, C)). If `row_weights` is non-empty it
/// must have size n; rows are weighted and the loss is the weighted mean.
Var SoftmaxCrossEntropy(const Var& logits,
                        const std::vector<std::int64_t>& labels,
                        const std::vector<float>& row_weights = {});

/// InfoNCE / NT-Xent between two aligned views (n x d each; callers
/// normally pass row-L2-normalized projections). For each anchor i the
/// positive is row i of the other view; negatives are all other rows of
/// both views (intra-view negatives included, as in GRACE). The loss is
/// symmetrized over the two directions. `row_weights` (optional, size n)
/// weights each anchor's term — E2GCL uses the coreset weights lambda
/// here.
Var InfoNce(const Var& z1, const Var& z2, float temperature,
            const std::vector<float>& row_weights = {});

/// The paper's Eq. (5): mean_i ||z1_i - z2_i||^2
///   - 1/(2|Neg|) * sum over both positive views of mean negative
///     distance, with the negative set approximated by `neg_perm`, a
///     permutation giving each row its sampled negative row (of z1/z2
///     themselves). `row_weights` as above.
Var EuclideanContrastive(const Var& z1, const Var& z2,
                         const std::vector<std::int64_t>& neg_perm,
                         const std::vector<float>& row_weights = {});

/// Mean binary cross-entropy of logits (any shape) against {0,1} targets
/// of the same size (flattened order).
Var BceWithLogits(const Var& logits, const std::vector<float>& targets);

/// BYOL/BGRL-style predictive loss: 2 - 2 * mean_i cos(p_i, y_i), where
/// `target` is treated as constant (stop-gradient) by the caller passing
/// a Constant Var.
Var CosinePredictionLoss(const Var& pred, const Var& target);

/// Mean squared error between two same-shaped Vars.
Var MseLoss(const Var& a, const Var& b);

}  // namespace ag
}  // namespace e2gcl

#endif  // E2GCL_AUTOGRAD_LOSS_H_
