#ifndef E2GCL_AUTOGRAD_OPS_H_
#define E2GCL_AUTOGRAD_OPS_H_

#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "tensor/csr.h"
#include "tensor/rng.h"

namespace e2gcl {
namespace ag {

/// Differentiable ops. Each returns a fresh tape node; gradients flow to
/// any parent with requires_grad set. Naming mirrors tensor/matrix.h.

/// C = A * B.
Var MatMul(const Var& a, const Var& b);

/// C = A * B^T.
Var MatMulTransposedB(const Var& a, const Var& b);

/// C = S * X where S is a constant sparse matrix (no gradient flows to
/// S; this is the GCN propagation step). The caller keeps `s` alive via
/// the shared_ptr.
Var Spmm(std::shared_ptr<const CsrMatrix> s, const Var& x);

Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Hadamard(const Var& a, const Var& b);

/// alpha * A for a compile-time-known scalar.
Var Scale(const Var& a, float alpha);

/// Adds a 1 x C bias row to every row of A (broadcast).
Var AddRowBroadcast(const Var& a, const Var& bias);

Var Relu(const Var& a);

/// PReLU with a scalar (1x1) learnable slope for the negative part, as
/// used by DGI's encoder.
Var PRelu(const Var& a, const Var& slope);

Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Exp(const Var& a);

/// Natural log; inputs must be positive.
Var Log(const Var& a);

/// Rows rescaled to unit L2 norm (zero rows pass through).
Var NormalizeRowsL2(const Var& a, float eps = 1e-12f);

Var Transpose(const Var& a);

/// Scalar (1x1) sum / mean over all entries.
Var SumAll(const Var& a);
Var MeanAll(const Var& a);

/// 1 x C mean over rows.
Var MeanRows(const Var& a);

/// Gathers rows (backward scatter-adds into the source).
Var GatherRows(const Var& a, std::vector<std::int64_t> indices);

/// Inverted dropout: zeroes entries with probability p and scales the
/// rest by 1/(1-p). Identity when `training` is false or p <= 0.
Var Dropout(const Var& a, float p, Rng& rng, bool training);

/// Batch normalization over columns with batch statistics:
/// y = gamma * (x - mean_col) / sqrt(var_col + eps) + beta.
/// gamma/beta are 1 x C. Uses the current batch's statistics (the only
/// mode the library needs: BN appears in training-only heads such as
/// BGRL's predictor).
Var BatchNormColumns(const Var& x, const Var& gamma, const Var& beta,
                     float eps = 1e-5f);

}  // namespace ag
}  // namespace e2gcl

#endif  // E2GCL_AUTOGRAD_OPS_H_
