#include "autograd/ops.h"

#include <cmath>
#include <utility>

#include "parallel/parallel_for.h"
#include "tensor/check.h"

namespace e2gcl {
namespace ag {

using internal_autograd::Node;

namespace {

/// Creates an op node: value, parents, backward closure. requires_grad
/// is inherited from the parents so gradient flows through intermediate
/// results even when they are not parameters themselves.
Var MakeNode(Matrix value, std::vector<Var> parents,
             std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  for (const Var& p : parents) {
    E2GCL_CHECK(p.defined());
    node->parents.push_back(p.node());
    node->requires_grad = node->requires_grad || p.node()->requires_grad;
  }
  if (node->requires_grad) node->backward = std::move(backward);
  return Var(std::move(node));
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  Matrix value = e2gcl::MatMul(a.value(), b.value());
  return MakeNode(std::move(value), {a, b}, [](Node& n) {
    Node* pa = n.parents[0].get();
    Node* pb = n.parents[1].get();
    if (pa->requires_grad) {
      pa->AccumulateGrad(e2gcl::MatMulTransposedB(n.grad, pb->value));
    }
    if (pb->requires_grad) {
      pb->AccumulateGrad(e2gcl::MatMulTransposedA(pa->value, n.grad));
    }
  });
}

Var MatMulTransposedB(const Var& a, const Var& b) {
  Matrix value = e2gcl::MatMulTransposedB(a.value(), b.value());
  return MakeNode(std::move(value), {a, b}, [](Node& n) {
    Node* pa = n.parents[0].get();
    Node* pb = n.parents[1].get();
    // C = A B^T: dA = G B, dB = G^T A.
    if (pa->requires_grad) {
      pa->AccumulateGrad(e2gcl::MatMul(n.grad, pb->value));
    }
    if (pb->requires_grad) {
      pb->AccumulateGrad(e2gcl::MatMulTransposedA(n.grad, pa->value));
    }
  });
}

Var Spmm(std::shared_ptr<const CsrMatrix> s, const Var& x) {
  E2GCL_CHECK(s != nullptr);
  Matrix value = e2gcl::Spmm(*s, x.value());
  return MakeNode(std::move(value), {x}, [s](Node& n) {
    Node* px = n.parents[0].get();
    if (px->requires_grad) {
      px->AccumulateGrad(e2gcl::SpmmTransposedA(*s, n.grad));
    }
  });
}

Var Add(const Var& a, const Var& b) {
  Matrix value = e2gcl::Add(a.value(), b.value());
  return MakeNode(std::move(value), {a, b}, [](Node& n) {
    for (int i = 0; i < 2; ++i) n.parents[i]->AccumulateGrad(n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  Matrix value = e2gcl::Sub(a.value(), b.value());
  return MakeNode(std::move(value), {a, b}, [](Node& n) {
    n.parents[0]->AccumulateGrad(n.grad);
    if (n.parents[1]->requires_grad) {
      n.parents[1]->AccumulateGrad(e2gcl::Scale(n.grad, -1.0f));
    }
  });
}

Var Hadamard(const Var& a, const Var& b) {
  Matrix value = e2gcl::Hadamard(a.value(), b.value());
  return MakeNode(std::move(value), {a, b}, [](Node& n) {
    Node* pa = n.parents[0].get();
    Node* pb = n.parents[1].get();
    if (pa->requires_grad) {
      pa->AccumulateGrad(e2gcl::Hadamard(n.grad, pb->value));
    }
    if (pb->requires_grad) {
      pb->AccumulateGrad(e2gcl::Hadamard(n.grad, pa->value));
    }
  });
}

Var Scale(const Var& a, float alpha) {
  Matrix value = e2gcl::Scale(a.value(), alpha);
  return MakeNode(std::move(value), {a}, [alpha](Node& n) {
    n.parents[0]->AccumulateGrad(e2gcl::Scale(n.grad, alpha));
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  E2GCL_CHECK(bias.rows() == 1 && bias.cols() == a.cols());
  Matrix value = a.value();
  for (std::int64_t r = 0; r < value.rows(); ++r) {
    float* row = value.RowPtr(r);
    const float* b = bias.value().RowPtr(0);
    for (std::int64_t c = 0; c < value.cols(); ++c) row[c] += b[c];
  }
  return MakeNode(std::move(value), {a, bias}, [](Node& n) {
    n.parents[0]->AccumulateGrad(n.grad);
    if (n.parents[1]->requires_grad) {
      n.parents[1]->AccumulateGrad(e2gcl::ColSums(n.grad));
    }
  });
}

Var Relu(const Var& a) {
  Matrix value = a.value();
  ParallelFor(0, value.size(), std::int64_t{1} << 15,
              [&](std::int64_t ib, std::int64_t ie) {
                for (std::int64_t i = ib; i < ie; ++i) {
                  value.data()[i] = std::max(0.0f, value.data()[i]);
                }
              });
  return MakeNode(std::move(value), {a}, [](Node& n) {
    Node* pa = n.parents[0].get();
    Matrix g = n.grad;
    ParallelFor(0, g.size(), std::int64_t{1} << 15,
                [&](std::int64_t ib, std::int64_t ie) {
                  for (std::int64_t i = ib; i < ie; ++i) {
                    if (pa->value.data()[i] <= 0.0f) g.data()[i] = 0.0f;
                  }
                });
    pa->AccumulateGrad(g);
  });
}

Var PRelu(const Var& a, const Var& slope) {
  E2GCL_CHECK(slope.rows() == 1 && slope.cols() == 1);
  const float s = slope.value()(0, 0);
  Matrix value = a.value();
  for (std::int64_t i = 0; i < value.size(); ++i) {
    if (value.data()[i] < 0.0f) value.data()[i] *= s;
  }
  return MakeNode(std::move(value), {a, slope}, [s](Node& n) {
    Node* pa = n.parents[0].get();
    Node* ps = n.parents[1].get();
    if (pa->requires_grad) {
      Matrix g = n.grad;
      for (std::int64_t i = 0; i < g.size(); ++i) {
        if (pa->value.data()[i] < 0.0f) g.data()[i] *= s;
      }
      pa->AccumulateGrad(g);
    }
    if (ps->requires_grad) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < n.grad.size(); ++i) {
        const float x = pa->value.data()[i];
        if (x < 0.0f) acc += static_cast<double>(n.grad.data()[i]) * x;
      }
      Matrix gs(1, 1);
      gs(0, 0) = static_cast<float>(acc);
      ps->AccumulateGrad(gs);
    }
  });
}

Var Sigmoid(const Var& a) {
  Matrix value = a.value();
  for (std::int64_t i = 0; i < value.size(); ++i) {
    value.data()[i] = 1.0f / (1.0f + std::exp(-value.data()[i]));
  }
  return MakeNode(std::move(value), {a}, [](Node& n) {
    Matrix g = n.grad;
    for (std::int64_t i = 0; i < g.size(); ++i) {
      const float y = n.value.data()[i];
      g.data()[i] *= y * (1.0f - y);
    }
    n.parents[0]->AccumulateGrad(g);
  });
}

Var Tanh(const Var& a) {
  Matrix value = a.value();
  for (std::int64_t i = 0; i < value.size(); ++i) {
    value.data()[i] = std::tanh(value.data()[i]);
  }
  return MakeNode(std::move(value), {a}, [](Node& n) {
    Matrix g = n.grad;
    for (std::int64_t i = 0; i < g.size(); ++i) {
      const float y = n.value.data()[i];
      g.data()[i] *= 1.0f - y * y;
    }
    n.parents[0]->AccumulateGrad(g);
  });
}

Var Exp(const Var& a) {
  Matrix value = a.value();
  for (std::int64_t i = 0; i < value.size(); ++i) {
    value.data()[i] = std::exp(value.data()[i]);
  }
  return MakeNode(std::move(value), {a}, [](Node& n) {
    Matrix g = e2gcl::Hadamard(n.grad, n.value);
    n.parents[0]->AccumulateGrad(g);
  });
}

Var Log(const Var& a) {
  Matrix value = a.value();
  for (std::int64_t i = 0; i < value.size(); ++i) {
    E2GCL_CHECK_MSG(value.data()[i] > 0.0f, "Log of non-positive value");
    value.data()[i] = std::log(value.data()[i]);
  }
  return MakeNode(std::move(value), {a}, [](Node& n) {
    Matrix g = n.grad;
    for (std::int64_t i = 0; i < g.size(); ++i) {
      g.data()[i] /= n.parents[0]->value.data()[i];
    }
    n.parents[0]->AccumulateGrad(g);
  });
}

Var NormalizeRowsL2(const Var& a, float eps) {
  Matrix value = e2gcl::NormalizeRowsL2(a.value(), eps);
  return MakeNode(std::move(value), {a}, [eps](Node& n) {
    // y = x / ||x||: dx = (g - (g . y) y) / ||x||, per row.
    Node* pa = n.parents[0].get();
    const Matrix& x = pa->value;
    const Matrix& y = n.value;
    Matrix g(x.rows(), x.cols());
    ParallelFor(0, x.rows(), GrainForCost(3 * x.cols()),
                [&](std::int64_t rb, std::int64_t re) {
                  for (std::int64_t r = rb; r < re; ++r) {
                    const float* xr = x.RowPtr(r);
                    const float* yr = y.RowPtr(r);
                    const float* gr = n.grad.RowPtr(r);
                    float* out = g.RowPtr(r);
                    double norm2 = 0.0;
                    for (std::int64_t c = 0; c < x.cols(); ++c) {
                      norm2 += static_cast<double>(xr[c]) * xr[c];
                    }
                    const float norm = static_cast<float>(std::sqrt(norm2));
                    if (norm <= eps) {
                      // Zero row passed through unchanged: identity gradient.
                      for (std::int64_t c = 0; c < x.cols(); ++c) {
                        out[c] = gr[c];
                      }
                      continue;
                    }
                    float dot = 0.0f;
                    for (std::int64_t c = 0; c < x.cols(); ++c) {
                      dot += gr[c] * yr[c];
                    }
                    const float inv = 1.0f / norm;
                    for (std::int64_t c = 0; c < x.cols(); ++c) {
                      out[c] = (gr[c] - dot * yr[c]) * inv;
                    }
                  }
                });
    pa->AccumulateGrad(g);
  });
}

Var Transpose(const Var& a) {
  Matrix value = e2gcl::Transpose(a.value());
  return MakeNode(std::move(value), {a}, [](Node& n) {
    n.parents[0]->AccumulateGrad(e2gcl::Transpose(n.grad));
  });
}

Var SumAll(const Var& a) {
  Matrix value(1, 1);
  value(0, 0) = e2gcl::SumAll(a.value());
  return MakeNode(std::move(value), {a}, [](Node& n) {
    Node* pa = n.parents[0].get();
    Matrix g(pa->value.rows(), pa->value.cols(), n.grad(0, 0));
    pa->AccumulateGrad(g);
  });
}

Var MeanAll(const Var& a) {
  E2GCL_CHECK(a.value().size() > 0);
  Matrix value(1, 1);
  value(0, 0) = e2gcl::MeanAll(a.value());
  return MakeNode(std::move(value), {a}, [](Node& n) {
    Node* pa = n.parents[0].get();
    const float scale = n.grad(0, 0) / static_cast<float>(pa->value.size());
    Matrix g(pa->value.rows(), pa->value.cols(), scale);
    pa->AccumulateGrad(g);
  });
}

Var MeanRows(const Var& a) {
  E2GCL_CHECK(a.rows() > 0);
  Matrix value = e2gcl::Scale(e2gcl::ColSums(a.value()),
                              1.0f / static_cast<float>(a.rows()));
  return MakeNode(std::move(value), {a}, [](Node& n) {
    Node* pa = n.parents[0].get();
    const float inv = 1.0f / static_cast<float>(pa->value.rows());
    Matrix g(pa->value.rows(), pa->value.cols());
    for (std::int64_t r = 0; r < g.rows(); ++r) {
      const float* grow = n.grad.RowPtr(0);
      float* out = g.RowPtr(r);
      for (std::int64_t c = 0; c < g.cols(); ++c) out[c] = grow[c] * inv;
    }
    pa->AccumulateGrad(g);
  });
}

Var GatherRows(const Var& a, std::vector<std::int64_t> indices) {
  Matrix value = e2gcl::GatherRows(a.value(), indices);
  return MakeNode(std::move(value), {a},
                  [idx = std::move(indices)](Node& n) {
                    Node* pa = n.parents[0].get();
                    Matrix g(pa->value.rows(), pa->value.cols());
                    for (std::size_t i = 0; i < idx.size(); ++i) {
                      const float* grow =
                          n.grad.RowPtr(static_cast<std::int64_t>(i));
                      float* out = g.RowPtr(idx[i]);
                      for (std::int64_t c = 0; c < g.cols(); ++c) {
                        out[c] += grow[c];
                      }
                    }
                    pa->AccumulateGrad(g);
                  });
}

Var Dropout(const Var& a, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) return a;
  E2GCL_CHECK(p < 1.0f);
  const float keep = 1.0f - p;
  const float scale = 1.0f / keep;
  auto mask = std::make_shared<std::vector<float>>(a.value().size());
  Matrix value = a.value();
  for (std::int64_t i = 0; i < value.size(); ++i) {
    const float m = rng.Bernoulli(keep) ? scale : 0.0f;
    (*mask)[i] = m;
    value.data()[i] *= m;
  }
  return MakeNode(std::move(value), {a}, [mask](Node& n) {
    Matrix g = n.grad;
    for (std::int64_t i = 0; i < g.size(); ++i) g.data()[i] *= (*mask)[i];
    n.parents[0]->AccumulateGrad(g);
  });
}

Var BatchNormColumns(const Var& x, const Var& gamma, const Var& beta,
                     float eps) {
  const Matrix& in = x.value();
  const std::int64_t n = in.rows(), c = in.cols();
  E2GCL_CHECK(n > 0);
  E2GCL_CHECK(gamma.rows() == 1 && gamma.cols() == c);
  E2GCL_CHECK(beta.rows() == 1 && beta.cols() == c);

  // Forward: column statistics + normalized activations, cached for the
  // backward pass.
  auto mean = std::make_shared<std::vector<float>>(c, 0.0f);
  auto inv_std = std::make_shared<std::vector<float>>(c, 0.0f);
  auto xhat = std::make_shared<Matrix>(n, c);
  for (std::int64_t j = 0; j < c; ++j) {
    double m = 0.0;
    for (std::int64_t i = 0; i < n; ++i) m += in(i, j);
    m /= n;
    double v = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double d = in(i, j) - m;
      v += d * d;
    }
    v /= n;
    (*mean)[j] = static_cast<float>(m);
    (*inv_std)[j] = 1.0f / std::sqrt(static_cast<float>(v) + eps);
  }
  Matrix value(n, c);
  const float* g_row = gamma.value().RowPtr(0);
  const float* b_row = beta.value().RowPtr(0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      const float h = (in(i, j) - (*mean)[j]) * (*inv_std)[j];
      (*xhat)(i, j) = h;
      value(i, j) = g_row[j] * h + b_row[j];
    }
  }

  return MakeNode(
      std::move(value), {x, gamma, beta},
      [mean, inv_std, xhat, n, c](Node& node) {
        Node* px = node.parents[0].get();
        Node* pg = node.parents[1].get();
        Node* pb = node.parents[2].get();
        const Matrix& g = node.grad;
        if (pg->requires_grad) {
          Matrix dg(1, c);
          for (std::int64_t j = 0; j < c; ++j) {
            double acc = 0.0;
            for (std::int64_t i = 0; i < n; ++i) {
              acc += static_cast<double>(g(i, j)) * (*xhat)(i, j);
            }
            dg(0, j) = static_cast<float>(acc);
          }
          pg->AccumulateGrad(dg);
        }
        if (pb->requires_grad) {
          pb->AccumulateGrad(e2gcl::ColSums(g));
        }
        if (px->requires_grad) {
          // dx = gamma * inv_std * (g - mean(g) - xhat * mean(g*xhat)).
          Matrix dx(n, c);
          const float* gamma_row = pg->value.RowPtr(0);
          for (std::int64_t j = 0; j < c; ++j) {
            double g_mean = 0.0, gx_mean = 0.0;
            for (std::int64_t i = 0; i < n; ++i) {
              g_mean += g(i, j);
              gx_mean += static_cast<double>(g(i, j)) * (*xhat)(i, j);
            }
            g_mean /= n;
            gx_mean /= n;
            const float scale = gamma_row[j] * (*inv_std)[j];
            for (std::int64_t i = 0; i < n; ++i) {
              dx(i, j) = scale * (g(i, j) - static_cast<float>(g_mean) -
                                  (*xhat)(i, j) * static_cast<float>(gx_mean));
            }
          }
          px->AccumulateGrad(dx);
        }
      });
}

}  // namespace ag
}  // namespace e2gcl
