#ifndef E2GCL_AUTOGRAD_VARIABLE_H_
#define E2GCL_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace e2gcl {

namespace internal_autograd {
struct Node;
}  // namespace internal_autograd

/// A handle to a node in a dynamically-built reverse-mode autograd tape.
///
/// Semantics mirror the familiar define-by-run model: every op in
/// autograd/ops.h creates a fresh node whose `backward` closure scatters
/// the incoming gradient to its parents. Calling Backward() on a scalar
/// (1x1) Var runs a topological sweep and accumulates `grad()` on every
/// reachable node with requires_grad set.
///
/// Var is a cheap shared handle; copies alias the same node.
class Var {
 public:
  Var() = default;

  /// Wraps a constant (no gradient requested).
  static Var Constant(Matrix value);

  /// Wraps a parameter/leaf that accumulates gradient.
  static Var Param(Matrix value);

  bool defined() const { return node_ != nullptr; }

  const Matrix& value() const;
  Matrix& mutable_value();

  /// Gradient accumulated by the last Backward() sweep. Zero-shaped
  /// until backward has touched this node.
  const Matrix& grad() const;

  /// Mutable access to the accumulated gradient (used by gradient
  /// clipping). Must not be called before backward has touched the node.
  Matrix& mutable_grad();

  bool requires_grad() const;

  /// Zeroes the stored gradient (optimizers call this between steps).
  void ZeroGrad();

  /// Runs backpropagation from this node, which must hold a 1x1 scalar.
  /// Seeds d(self)/d(self) = 1 and accumulates into every reachable
  /// requires-grad node.
  ///
  /// The sweep releases interior tape state eagerly: once a node's own
  /// backward step has fired, its value, grad, and closure are freed
  /// unless some live Var handle still references it (leaves held by a
  /// ParamSet, or intermediates the caller kept). This caps the
  /// backward peak near the forward peak. The tape is single-use:
  /// rebuild the graph (as every define-by-run loop does) before
  /// calling Backward() again.
  void Backward() const;

  std::int64_t rows() const { return value().rows(); }
  std::int64_t cols() const { return value().cols(); }

  /// Internal: used by ops.cc to build the tape.
  std::shared_ptr<internal_autograd::Node> node() const { return node_; }
  explicit Var(std::shared_ptr<internal_autograd::Node> node)
      : node_(std::move(node)) {}

 private:
  std::shared_ptr<internal_autograd::Node> node_;
};

namespace internal_autograd {

/// Tape node. `backward` receives the node itself (its grad has already
/// been accumulated) and is responsible for pushing gradient into
/// `parents` via AccumulateGrad.
struct Node {
  Matrix value;
  Matrix grad;
  bool requires_grad = false;
  bool grad_initialized = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward;

  /// Adds `g` into this node's gradient, materializing storage lazily.
  void AccumulateGrad(const Matrix& g);
};

}  // namespace internal_autograd

}  // namespace e2gcl

#endif  // E2GCL_AUTOGRAD_VARIABLE_H_
