#include "nn/mlp.h"

#include "tensor/check.h"

namespace e2gcl {

Mlp::Mlp(const MlpConfig& config, Rng& rng) : config_(config) {
  E2GCL_CHECK(config.dims.size() >= 2);
  for (std::size_t l = 0; l + 1 < config.dims.size(); ++l) {
    weights_.push_back(
        params_.Create(GlorotUniform(config.dims[l], config.dims[l + 1], rng)));
    biases_.push_back(params_.Create(Matrix(1, config.dims[l + 1])));
    if (config.batch_norm && l + 2 < config.dims.size()) {
      bn_gamma_.push_back(
          params_.Create(Matrix(1, config.dims[l + 1], 1.0f)));
      bn_beta_.push_back(params_.Create(Matrix(1, config.dims[l + 1])));
    }
  }
}

Var Mlp::Forward(const Var& x, Rng& rng, bool training) const {
  Var h = x;
  const int layers = static_cast<int>(weights_.size());
  for (int l = 0; l < layers; ++l) {
    h = ag::Dropout(h, config_.dropout, rng, training);
    h = ag::MatMul(h, weights_[l]);
    h = ag::AddRowBroadcast(h, biases_[l]);
    const bool last = (l == layers - 1);
    if (config_.batch_norm && !last &&
        static_cast<std::size_t>(l) < bn_gamma_.size() && h.rows() > 1) {
      h = ag::BatchNormColumns(h, bn_gamma_[l], bn_beta_[l]);
    }
    if (!last || config_.final_activation) h = ag::Relu(h);
  }
  return h;
}

}  // namespace e2gcl
