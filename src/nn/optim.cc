#include "nn/optim.h"

#include <cmath>

#include "tensor/check.h"

namespace e2gcl {

Adam::Adam(std::vector<Var> params, const Options& opts)
    : params_(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    E2GCL_CHECK(p.defined() && p.requires_grad());
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(opts_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& w = params_[i].mutable_value();
    const Matrix& g = params_[i].grad();
    if (g.empty()) continue;  // No gradient flowed this step.
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (std::int64_t j = 0; j < w.size(); ++j) {
      const float gj = g.data()[j];
      m.data()[j] = opts_.beta1 * m.data()[j] + (1.0f - opts_.beta1) * gj;
      v.data()[j] = opts_.beta2 * v.data()[j] + (1.0f - opts_.beta2) * gj * gj;
      const float mhat = m.data()[j] / bc1;
      const float vhat = v.data()[j] / bc2;
      float upd = mhat / (std::sqrt(vhat) + opts_.eps);
      if (opts_.weight_decay > 0.0f) upd += opts_.weight_decay * w.data()[j];
      w.data()[j] -= opts_.lr * upd;
    }
  }
}

void Adam::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

AdamState Adam::CloneState() const {
  AdamState state;
  state.m = m_;
  state.v = v_;
  state.t = t_;
  return state;
}

bool Adam::LoadState(const AdamState& state) {
  if (state.m.size() != params_.size() || state.v.size() != params_.size() ||
      state.t < 0) {
    return false;
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Matrix& w = params_[i].value();
    if (state.m[i].rows() != w.rows() || state.m[i].cols() != w.cols() ||
        state.v[i].rows() != w.rows() || state.v[i].cols() != w.cols()) {
      return false;
    }
  }
  m_ = state.m;
  v_ = state.v;
  t_ = state.t;
  return true;
}

Sgd::Sgd(std::vector<Var> params, float lr, float weight_decay)
    : params_(std::move(params)), lr_(lr), weight_decay_(weight_decay) {
  for (const Var& p : params_) E2GCL_CHECK(p.defined() && p.requires_grad());
}

void Sgd::Step() {
  for (Var& p : params_) {
    Matrix& w = p.mutable_value();
    const Matrix& g = p.grad();
    if (g.empty()) continue;
    for (std::int64_t j = 0; j < w.size(); ++j) {
      w.data()[j] -= lr_ * (g.data()[j] + weight_decay_ * w.data()[j]);
    }
  }
}

void Sgd::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

}  // namespace e2gcl
