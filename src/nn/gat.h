#ifndef E2GCL_NN_GAT_H_
#define E2GCL_NN_GAT_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "graph/graph.h"
#include "nn/init.h"

namespace e2gcl {

/// Adjacency structure shared by all GAT layers of one forward pass:
/// neighbor lists including a self-loop per node (GAT attends over
/// N(v) u {v}).
struct GatAdjacency {
  std::vector<std::int64_t> row_ptr;
  std::vector<std::int32_t> col;

  static GatAdjacency FromGraph(const Graph& g);
};

namespace ag {

/// Fused GAT propagation (Velickovic et al. 2018, single head):
/// given transformed features H (n x d) and attention vectors
/// a_src, a_dst (d x 1), computes
///   s_i = H_i . a_src,  t_j = H_j . a_dst,
///   e_ij = LeakyReLU(s_i + t_j),  alpha_i. = softmax over j in N+(i),
///   out_i = sum_j alpha_ij H_j.
/// Gradients flow into H (both through values and attention) and into
/// a_src / a_dst. `adj` must outlive the tape.
Var GatPropagate(std::shared_ptr<const GatAdjacency> adj, const Var& h,
                 const Var& a_src, const Var& a_dst,
                 float negative_slope = 0.2f);

}  // namespace ag

/// Multi-layer single-head GAT encoder with the same interface shape as
/// GcnEncoder; usable as a drop-in alternative encoder for supervised
/// training and contrastive pre-training.
struct GatConfig {
  std::vector<std::int64_t> dims = {64, 64, 64};
  float dropout = 0.0f;
  float negative_slope = 0.2f;
  bool final_activation = false;
};

class GatEncoder {
 public:
  GatEncoder(const GatConfig& config, Rng& rng);

  GatEncoder(const GatEncoder&) = delete;
  GatEncoder& operator=(const GatEncoder&) = delete;
  GatEncoder(GatEncoder&&) = default;
  GatEncoder& operator=(GatEncoder&&) = default;

  /// Encodes features over the attention adjacency.
  Var Forward(const std::shared_ptr<const GatAdjacency>& adj, const Var& x,
              Rng& rng, bool training) const;

  /// Convenience full-graph encoding without gradient tracking.
  Matrix Encode(const Graph& g) const;

  ParamSet& params() { return params_; }
  const ParamSet& params() const { return params_; }
  int num_layers() const { return static_cast<int>(weights_.size()); }

 private:
  GatConfig config_;
  ParamSet params_;
  std::vector<Var> weights_;
  std::vector<Var> attn_src_;
  std::vector<Var> attn_dst_;
};

}  // namespace e2gcl

#endif  // E2GCL_NN_GAT_H_
