#include "nn/init.h"

#include <cmath>

#include "tensor/check.h"

namespace e2gcl {

Matrix GlorotUniform(std::int64_t fan_in, std::int64_t fan_out, Rng& rng) {
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Matrix::RandomUniform(fan_in, fan_out, -a, a, rng);
}

Var ParamSet::Create(Matrix init) {
  Var p = Var::Param(std::move(init));
  params_.push_back(p);
  return p;
}

void ParamSet::Absorb(ParamSet&& other) {
  for (Var& p : other.params_) params_.push_back(std::move(p));
  other.params_.clear();
}

void ParamSet::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

std::vector<Matrix> ParamSet::CloneValues() const {
  std::vector<Matrix> out;
  out.reserve(params_.size());
  for (const Var& p : params_) out.push_back(p.value());
  return out;
}

void ParamSet::LoadValues(const std::vector<Matrix>& values) {
  E2GCL_CHECK(values.size() == params_.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    E2GCL_CHECK(values[i].rows() == params_[i].value().rows() &&
                values[i].cols() == params_[i].value().cols());
    params_[i].mutable_value() = values[i];
  }
}

void ParamSet::EmaUpdateFrom(const ParamSet& online, float decay) {
  E2GCL_CHECK(params_.size() == online.params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& t = params_[i].mutable_value();
    const Matrix& o = online.params_[i].value();
    E2GCL_CHECK(t.rows() == o.rows() && t.cols() == o.cols());
    for (std::int64_t j = 0; j < t.size(); ++j) {
      t.data()[j] = decay * t.data()[j] + (1.0f - decay) * o.data()[j];
    }
  }
}

}  // namespace e2gcl
