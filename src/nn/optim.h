#ifndef E2GCL_NN_OPTIM_H_
#define E2GCL_NN_OPTIM_H_

#include <vector>

#include "autograd/variable.h"

namespace e2gcl {

/// Snapshot of an Adam optimizer's mutable state: first/second moment
/// buffers (in parameter order) and the step counter. Checkpointing
/// round-trips this so resumed runs are bit-identical to uninterrupted
/// ones.
struct AdamState {
  std::vector<Matrix> m;
  std::vector<Matrix> v;
  std::int64_t t = 0;
};

/// Adam optimizer (Kingma & Ba) over a fixed parameter list. The
/// parameter Vars are shared handles into the model, so Step() mutates
/// the model weights in place.
class Adam {
 public:
  struct Options {
    float lr = 1e-2f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    /// Decoupled L2 weight decay (AdamW style).
    float weight_decay = 0.0f;
  };

  Adam(std::vector<Var> params, const Options& opts);

  /// Applies one update from the gradients accumulated by Backward().
  void Step();

  /// Zeroes gradients of all managed parameters.
  void ZeroGrad();

  float lr() const { return opts_.lr; }
  void set_lr(float lr) { opts_.lr = lr; }

  /// Deep copy of the moment buffers and step counter.
  AdamState CloneState() const;

  /// Restores state cloned by CloneState(). Returns false (leaving the
  /// optimizer untouched) when buffer counts or shapes do not match the
  /// managed parameters.
  bool LoadState(const AdamState& state);

 private:
  std::vector<Var> params_;
  Options opts_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  std::int64_t t_ = 0;
};

/// Plain SGD with optional L2 weight decay (used by DeepWalk's SGNS).
class Sgd {
 public:
  Sgd(std::vector<Var> params, float lr, float weight_decay = 0.0f);

  void Step();
  void ZeroGrad();

 private:
  std::vector<Var> params_;
  float lr_;
  float weight_decay_;
};

}  // namespace e2gcl

#endif  // E2GCL_NN_OPTIM_H_
