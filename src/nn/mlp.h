#ifndef E2GCL_NN_MLP_H_
#define E2GCL_NN_MLP_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/init.h"

namespace e2gcl {

/// Multi-layer perceptron with ReLU hidden activations and a linear
/// output layer. Used as the supervised MLP baseline, GRACE/GCA's
/// projection head, and BGRL's predictor.
struct MlpConfig {
  std::vector<std::int64_t> dims = {64, 64};
  float dropout = 0.0f;
  /// ELU-free: hidden nonlinearity is ReLU. Set to apply it after the
  /// final layer as well.
  bool final_activation = false;
  /// Batch-normalize hidden pre-activations (batch statistics). Needed
  /// by BYOL-style predictors (BGRL) to avoid representation collapse.
  bool batch_norm = false;
};

class Mlp {
 public:
  Mlp(const MlpConfig& config, Rng& rng);

  Mlp(const Mlp&) = delete;
  Mlp& operator=(const Mlp&) = delete;
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  Var Forward(const Var& x, Rng& rng, bool training) const;

  ParamSet& params() { return params_; }
  const ParamSet& params() const { return params_; }

 private:
  MlpConfig config_;
  ParamSet params_;
  std::vector<Var> weights_;
  std::vector<Var> biases_;
  std::vector<Var> bn_gamma_;
  std::vector<Var> bn_beta_;
};

}  // namespace e2gcl

#endif  // E2GCL_NN_MLP_H_
