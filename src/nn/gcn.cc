#include "nn/gcn.h"

#include <algorithm>

#include "parallel/parallel_for.h"
#include "tensor/check.h"
#include "tensor/simd/simd.h"

namespace e2gcl {

GcnEncoder::GcnEncoder(const GcnConfig& config, Rng& rng) : config_(config) {
  E2GCL_CHECK(config.dims.size() >= 2);
  for (std::size_t l = 0; l + 1 < config.dims.size(); ++l) {
    weights_.push_back(
        params_.Create(GlorotUniform(config.dims[l], config.dims[l + 1], rng)));
    if (config.bias) {
      biases_.push_back(params_.Create(Matrix(1, config.dims[l + 1])));
    }
  }
  if (config.prelu) {
    Matrix slope(1, 1);
    slope(0, 0) = 0.25f;
    prelu_slope_ = params_.Create(std::move(slope));
  }
}

Var GcnEncoder::Forward(const std::shared_ptr<const CsrMatrix>& adj,
                        const Var& x, Rng& rng, bool training) const {
  E2GCL_CHECK(adj != nullptr);
  Var h = x;
  const int layers = num_layers();
  for (int l = 0; l < layers; ++l) {
    h = ag::Dropout(h, config_.dropout, rng, training);
    h = ag::MatMul(h, weights_[l]);
    h = ag::Spmm(adj, h);
    if (config_.bias) h = ag::AddRowBroadcast(h, biases_[l]);
    const bool last = (l == layers - 1);
    if (!last || config_.final_activation) {
      h = config_.prelu ? ag::PRelu(h, prelu_slope_) : ag::Relu(h);
    }
  }
  return h;
}

Matrix GcnEncoder::Encode(const Graph& g) const {
  auto adj = std::make_shared<const CsrMatrix>(NormalizedAdjacency(g));
  Rng rng(0);  // Dropout disabled; rng is unused.
  Var x = Var::Constant(g.features);
  Var h = Forward(adj, x, rng, /*training=*/false);
  return h.value();
}

Matrix GcnEncoder::EncodeRows(const CsrMatrix& adj, const Matrix& x,
                              const std::vector<std::int64_t>& nodes) const {
  E2GCL_CHECK_MSG(adj.rows() == adj.cols() && adj.rows() == x.rows(),
                  "EncodeRows: adjacency/feature shape mismatch");
  const int layers = num_layers();
  E2GCL_CHECK(x.cols() == config_.dims.front());

  // Frontier walk, output layer backwards to the input: frontier[L] is
  // the sorted-unique request set, frontier[l] the union of frontier
  // [l + 1] with all its propagation-matrix neighbours. Each frontier is
  // a superset of the next (A_n carries self-loops), so every row needed
  // at layer l + 1 can be gathered from the layer-l frontier.
  std::vector<std::vector<std::int64_t>> frontier(layers + 1);
  frontier[layers] = nodes;
  std::sort(frontier[layers].begin(), frontier[layers].end());
  frontier[layers].erase(
      std::unique(frontier[layers].begin(), frontier[layers].end()),
      frontier[layers].end());
  E2GCL_CHECK(!frontier[layers].empty());
  E2GCL_CHECK_MSG(frontier[layers].front() >= 0 &&
                      frontier[layers].back() < adj.rows(),
                  "EncodeRows: node id out of range");
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  const auto& vs = adj.values();
  for (int l = layers; l > 0; --l) {
    std::vector<std::int64_t> next = frontier[l];
    for (std::int64_t g : frontier[l]) {
      for (std::int64_t k = rp[g]; k < rp[g + 1]; ++k) {
        next.push_back(ci[k]);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier[l - 1] = std::move(next);
  }

  // Forward pass over the shrinking frontiers. Each kernel below repeats
  // the full-graph per-row arithmetic exactly: MatMul is the shared
  // kernel (row i depends only on row i of its input), the subset SpMM
  // replays one simd::Axpy per edge in ascending k over the SAME csr row
  // the full simd::SpmmRows kernel reads (the two are per-element
  // identical by the tensor/simd contract), and bias/activation are
  // elementwise. Floats see identical operations in identical order,
  // hence bit-identical rows.
  //
  // Global node id -> frontier position. A dense inverse map costs
  // |V| int32s once per call but turns the per-edge source lookup into
  // O(1) instead of a binary search over the frontier. Entries are
  // rewritten per layer; ids outside the current frontier stay -1.
  std::vector<std::int32_t> inv(adj.rows(), -1);
  Matrix h = GatherRows(x, frontier[0]);
  for (int l = 0; l < layers; ++l) {
    // Inference mode: Dropout is the identity.
    const Matrix hw = MatMul(h, weights_[l].value());
    const std::vector<std::int64_t>& src = frontier[l];
    const std::vector<std::int64_t>& dst = frontier[l + 1];
    const std::int64_t out_rows = static_cast<std::int64_t>(dst.size());
    const std::int64_t n = hw.cols();
    Matrix out(out_rows, n);
    if (l > 0) {
      // Clear the previous layer's entries (frontiers shrink, so the
      // previous frontier is a superset of everything ever set).
      for (std::int64_t g : frontier[l - 1]) inv[g] = -1;
    }
    for (std::size_t s = 0; s < src.size(); ++s) {
      inv[src[s]] = static_cast<std::int32_t>(s);
    }
    const std::int64_t avg_nnz =
        adj.rows() > 0 ? std::max<std::int64_t>(1, adj.nnz() / adj.rows()) : 1;
    ParallelFor(0, out_rows, GrainForCost(avg_nnz * n),
                [&](std::int64_t rb, std::int64_t re) {
                  for (std::int64_t i = rb; i < re; ++i) {
                    const std::int64_t g = dst[i];
                    float* crow = out.RowPtr(i);
                    for (std::int64_t k = rp[g]; k < rp[g + 1]; ++k) {
                      const std::int32_t s = inv[ci[k]];
                      E2GCL_CHECK(s >= 0);
                      simd::Axpy(crow, vs[k], hw.RowPtr(s), n);
                    }
                  }
                });
    if (config_.bias) {
      const float* bias = biases_[l].value().RowPtr(0);
      for (std::int64_t r = 0; r < out_rows; ++r) {
        float* row = out.RowPtr(r);
        for (std::int64_t c = 0; c < n; ++c) row[c] += bias[c];
      }
    }
    const bool last = (l == layers - 1);
    if (!last || config_.final_activation) {
      if (config_.prelu) {
        const float s = prelu_slope_.value()(0, 0);
        for (std::int64_t i = 0; i < out.size(); ++i) {
          if (out.data()[i] < 0.0f) out.data()[i] *= s;
        }
      } else {
        for (std::int64_t i = 0; i < out.size(); ++i) {
          out.data()[i] = std::max(0.0f, out.data()[i]);
        }
      }
    }
    h = std::move(out);
  }

  // Scatter back to the caller's (possibly repeated, unsorted) order.
  const std::vector<std::int64_t>& sorted = frontier[layers];
  Matrix result(static_cast<std::int64_t>(nodes.size()), h.cols());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto it =
        std::lower_bound(sorted.begin(), sorted.end(), nodes[i]);
    const float* srow = h.RowPtr(it - sorted.begin());
    std::copy(srow, srow + h.cols(),
              result.RowPtr(static_cast<std::int64_t>(i)));
  }
  return result;
}

}  // namespace e2gcl
