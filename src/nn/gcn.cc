#include "nn/gcn.h"

#include "tensor/check.h"

namespace e2gcl {

GcnEncoder::GcnEncoder(const GcnConfig& config, Rng& rng) : config_(config) {
  E2GCL_CHECK(config.dims.size() >= 2);
  for (std::size_t l = 0; l + 1 < config.dims.size(); ++l) {
    weights_.push_back(
        params_.Create(GlorotUniform(config.dims[l], config.dims[l + 1], rng)));
    if (config.bias) {
      biases_.push_back(params_.Create(Matrix(1, config.dims[l + 1])));
    }
  }
  if (config.prelu) {
    Matrix slope(1, 1);
    slope(0, 0) = 0.25f;
    prelu_slope_ = params_.Create(std::move(slope));
  }
}

Var GcnEncoder::Forward(const std::shared_ptr<const CsrMatrix>& adj,
                        const Var& x, Rng& rng, bool training) const {
  E2GCL_CHECK(adj != nullptr);
  Var h = x;
  const int layers = num_layers();
  for (int l = 0; l < layers; ++l) {
    h = ag::Dropout(h, config_.dropout, rng, training);
    h = ag::MatMul(h, weights_[l]);
    h = ag::Spmm(adj, h);
    if (config_.bias) h = ag::AddRowBroadcast(h, biases_[l]);
    const bool last = (l == layers - 1);
    if (!last || config_.final_activation) {
      h = config_.prelu ? ag::PRelu(h, prelu_slope_) : ag::Relu(h);
    }
  }
  return h;
}

Matrix GcnEncoder::Encode(const Graph& g) const {
  auto adj = std::make_shared<const CsrMatrix>(NormalizedAdjacency(g));
  Rng rng(0);  // Dropout disabled; rng is unused.
  Var x = Var::Constant(g.features);
  Var h = Forward(adj, x, rng, /*training=*/false);
  return h.value();
}

}  // namespace e2gcl
