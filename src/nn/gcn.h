#ifndef E2GCL_NN_GCN_H_
#define E2GCL_NN_GCN_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "graph/graph.h"
#include "nn/init.h"

namespace e2gcl {

/// Configuration of an L-layer GCN encoder (Eq. 1 of the paper):
/// H^{l+1} = sigma(A_n H^l W^l). `dims` lists input, hidden..., output
/// widths, so dims.size() - 1 is the layer count L.
struct GcnConfig {
  std::vector<std::int64_t> dims = {64, 64, 64};
  float dropout = 0.0f;
  /// Apply the nonlinearity after the last layer too (DGI-style) or
  /// leave the final layer linear (GRACE/GCA-style).
  bool final_activation = false;
  /// Use a PReLU nonlinearity (DGI) instead of ReLU.
  bool prelu = false;
  /// Learn a bias per layer.
  bool bias = true;
};

/// GCN encoder f_theta. The normalized adjacency is passed per call so
/// the same weights can encode different views (the core operation of
/// contrastive learning).
class GcnEncoder {
 public:
  GcnEncoder(const GcnConfig& config, Rng& rng);

  GcnEncoder(const GcnEncoder&) = delete;
  GcnEncoder& operator=(const GcnEncoder&) = delete;
  GcnEncoder(GcnEncoder&&) = default;
  GcnEncoder& operator=(GcnEncoder&&) = default;

  /// Encodes features `x` over the propagation matrix `adj`.
  /// `training` enables dropout.
  Var Forward(const std::shared_ptr<const CsrMatrix>& adj, const Var& x,
              Rng& rng, bool training) const;

  /// Convenience: encodes a graph (builds A_n and wraps X) without
  /// gradient tracking and returns the embedding matrix.
  Matrix Encode(const Graph& g) const;

  /// Encodes ONLY the requested nodes (inference mode, no dropout) and
  /// returns a |nodes| x out_dim matrix whose row i is the embedding of
  /// nodes[i]. Internally walks the L-hop frontier backwards (per-node
  /// embeddings depend only on the L-hop neighborhood), then replays the
  /// exact per-row arithmetic of the full-graph kernels — same MatMul
  /// row loop, same ascending-k SpMM accumulation — so every returned
  /// row is bit-identical to the corresponding row of Encode(). `adj`
  /// must be the same propagation matrix Encode would build
  /// (NormalizedAdjacency; its self-loops make each frontier a superset
  /// of the next). Indices may repeat and appear in any order.
  Matrix EncodeRows(const CsrMatrix& adj, const Matrix& x,
                    const std::vector<std::int64_t>& nodes) const;

  ParamSet& params() { return params_; }
  const ParamSet& params() const { return params_; }

  int num_layers() const { return static_cast<int>(weights_.size()); }
  const GcnConfig& config() const { return config_; }

 private:
  GcnConfig config_;
  ParamSet params_;
  std::vector<Var> weights_;
  std::vector<Var> biases_;
  Var prelu_slope_;
};

}  // namespace e2gcl

#endif  // E2GCL_NN_GCN_H_
