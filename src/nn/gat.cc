#include "nn/gat.h"

#include <cmath>

#include "tensor/check.h"

namespace e2gcl {

GatAdjacency GatAdjacency::FromGraph(const Graph& g) {
  GatAdjacency adj;
  adj.row_ptr.assign(g.num_nodes + 1, 0);
  adj.col.reserve(g.col.size() + g.num_nodes);
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    adj.col.push_back(static_cast<std::int32_t>(v));  // self-loop first
    for (std::int32_t u : g.Neighbors(v)) adj.col.push_back(u);
    adj.row_ptr[v + 1] = static_cast<std::int64_t>(adj.col.size());
  }
  return adj;
}

namespace ag {

using internal_autograd::Node;

Var GatPropagate(std::shared_ptr<const GatAdjacency> adj, const Var& h,
                 const Var& a_src, const Var& a_dst, float negative_slope) {
  E2GCL_CHECK(adj != nullptr);
  const Matrix& hv = h.value();
  const std::int64_t n = hv.rows();
  const std::int64_t d = hv.cols();
  E2GCL_CHECK(static_cast<std::int64_t>(adj->row_ptr.size()) == n + 1);
  E2GCL_CHECK(a_src.rows() == d && a_src.cols() == 1);
  E2GCL_CHECK(a_dst.rows() == d && a_dst.cols() == 1);

  // Forward. Cache per-edge attention weights and per-edge pre-softmax
  // LeakyReLU slopes for backward.
  const std::int64_t nnz = static_cast<std::int64_t>(adj->col.size());
  auto alpha = std::make_shared<std::vector<float>>(nnz);
  auto slope = std::make_shared<std::vector<float>>(nnz);

  // s_i = H_i . a_src, t_j = H_j . a_dst.
  std::vector<float> s(n), t(n);
  const float* as = a_src.value().data();
  const float* ad = a_dst.value().data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = hv.RowPtr(i);
    float accs = 0.0f, acct = 0.0f;
    for (std::int64_t c = 0; c < d; ++c) {
      accs += row[c] * as[c];
      acct += row[c] * ad[c];
    }
    s[i] = accs;
    t[i] = acct;
  }

  Matrix out(n, d);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = adj->row_ptr[i], hi = adj->row_ptr[i + 1];
    if (lo == hi) continue;
    // Stable softmax over the row's edges.
    float mx = -1e30f;
    for (std::int64_t k = lo; k < hi; ++k) {
      const float z = s[i] + t[adj->col[k]];
      const float e = z > 0 ? z : negative_slope * z;
      (*slope)[k] = z > 0 ? 1.0f : negative_slope;
      (*alpha)[k] = e;  // store logits first
      mx = std::max(mx, e);
    }
    float denom = 0.0f;
    for (std::int64_t k = lo; k < hi; ++k) {
      (*alpha)[k] = std::exp((*alpha)[k] - mx);
      denom += (*alpha)[k];
    }
    const float inv = 1.0f / denom;
    float* orow = out.RowPtr(i);
    for (std::int64_t k = lo; k < hi; ++k) {
      (*alpha)[k] *= inv;
      const float* hrow = hv.RowPtr(adj->col[k]);
      const float a = (*alpha)[k];
      for (std::int64_t c = 0; c < d; ++c) orow[c] += a * hrow[c];
    }
  }

  auto node = std::make_shared<Node>();
  node->value = std::move(out);
  node->parents = {h.node(), a_src.node(), a_dst.node()};
  node->requires_grad = h.node()->requires_grad ||
                        a_src.node()->requires_grad ||
                        a_dst.node()->requires_grad;
  if (node->requires_grad) {
    node->backward = [adj, alpha, slope, n, d, negative_slope](Node& nd) {
      Node* ph = nd.parents[0].get();
      Node* pas = nd.parents[1].get();
      Node* pad = nd.parents[2].get();
      const Matrix& hv = ph->value;
      const Matrix& g = nd.grad;

      Matrix dh(n, d);
      std::vector<float> ds(n, 0.0f);  // dL/ds_i
      std::vector<float> dt(n, 0.0f);  // dL/dt_j
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t lo = adj->row_ptr[i], hi = adj->row_ptr[i + 1];
        if (lo == hi) continue;
        const float* grow = g.RowPtr(i);
        // dot_k = g_i . h_{col_k}; row_mean = sum_k alpha_k dot_k.
        float row_mean = 0.0f;
        for (std::int64_t k = lo; k < hi; ++k) {
          const float* hrow = hv.RowPtr(adj->col[k]);
          float dot = 0.0f;
          for (std::int64_t c = 0; c < d; ++c) dot += grow[c] * hrow[c];
          row_mean += (*alpha)[k] * dot;
          // Value path: dL/dh_j += alpha * g_i.
          float* dhrow = dh.RowPtr(adj->col[k]);
          const float a = (*alpha)[k];
          for (std::int64_t c = 0; c < d; ++c) dhrow[c] += a * grow[c];
        }
        for (std::int64_t k = lo; k < hi; ++k) {
          const float* hrow = hv.RowPtr(adj->col[k]);
          float dot = 0.0f;
          for (std::int64_t c = 0; c < d; ++c) dot += grow[c] * hrow[c];
          // Softmax backward + LeakyReLU slope.
          const float de = (*alpha)[k] * (dot - row_mean) * (*slope)[k];
          ds[i] += de;
          dt[adj->col[k]] += de;
        }
      }
      if (ph->requires_grad) {
        // Attention paths: s = H a_src, t = H a_dst.
        const float* as = pas->value.data();
        const float* ad = pad->value.data();
        for (std::int64_t i = 0; i < n; ++i) {
          float* dhrow = dh.RowPtr(i);
          for (std::int64_t c = 0; c < d; ++c) {
            dhrow[c] += ds[i] * as[c] + dt[i] * ad[c];
          }
        }
        ph->AccumulateGrad(dh);
      }
      if (pas->requires_grad) {
        Matrix das(d, 1);
        for (std::int64_t i = 0; i < n; ++i) {
          const float* hrow = hv.RowPtr(i);
          for (std::int64_t c = 0; c < d; ++c) das(c, 0) += ds[i] * hrow[c];
        }
        pas->AccumulateGrad(das);
      }
      if (pad->requires_grad) {
        Matrix dad(d, 1);
        for (std::int64_t i = 0; i < n; ++i) {
          const float* hrow = hv.RowPtr(i);
          for (std::int64_t c = 0; c < d; ++c) dad(c, 0) += dt[i] * hrow[c];
        }
        pad->AccumulateGrad(dad);
      }
    };
  }
  return Var(std::move(node));
}

}  // namespace ag

GatEncoder::GatEncoder(const GatConfig& config, Rng& rng) : config_(config) {
  E2GCL_CHECK(config.dims.size() >= 2);
  for (std::size_t l = 0; l + 1 < config.dims.size(); ++l) {
    weights_.push_back(
        params_.Create(GlorotUniform(config.dims[l], config.dims[l + 1], rng)));
    attn_src_.push_back(
        params_.Create(GlorotUniform(config.dims[l + 1], 1, rng)));
    attn_dst_.push_back(
        params_.Create(GlorotUniform(config.dims[l + 1], 1, rng)));
  }
}

Var GatEncoder::Forward(const std::shared_ptr<const GatAdjacency>& adj,
                        const Var& x, Rng& rng, bool training) const {
  Var h = x;
  const int layers = num_layers();
  for (int l = 0; l < layers; ++l) {
    h = ag::Dropout(h, config_.dropout, rng, training);
    h = ag::MatMul(h, weights_[l]);
    h = ag::GatPropagate(adj, h, attn_src_[l], attn_dst_[l],
                         config_.negative_slope);
    const bool last = (l == layers - 1);
    if (!last || config_.final_activation) h = ag::Relu(h);
  }
  return h;
}

Matrix GatEncoder::Encode(const Graph& g) const {
  auto adj = std::make_shared<const GatAdjacency>(GatAdjacency::FromGraph(g));
  Rng rng(0);
  Var x = Var::Constant(g.features);
  return Forward(adj, x, rng, /*training=*/false).value();
}

}  // namespace e2gcl
