#ifndef E2GCL_NN_INIT_H_
#define E2GCL_NN_INIT_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "tensor/rng.h"

namespace e2gcl {

/// Glorot/Xavier-uniform weight matrix: U(-a, a), a = sqrt(6/(fi+fo)).
Matrix GlorotUniform(std::int64_t fan_in, std::int64_t fan_out, Rng& rng);

/// Owns the trainable parameters of a model. Modules call Create() for
/// each weight; optimizers consume params().
class ParamSet {
 public:
  ParamSet() = default;
  ParamSet(const ParamSet&) = delete;
  ParamSet& operator=(const ParamSet&) = delete;
  ParamSet(ParamSet&&) = default;
  ParamSet& operator=(ParamSet&&) = default;

  /// Registers a new trainable parameter initialized to `init`.
  Var Create(Matrix init);

  /// Adopts parameters from another set (for composite models).
  void Absorb(ParamSet&& other);

  const std::vector<Var>& params() const { return params_; }

  /// Zeroes all gradients.
  void ZeroGrad();

  /// Deep copy of all parameter values (for snapshots / target networks).
  std::vector<Matrix> CloneValues() const;

  /// Loads values cloned by CloneValues(); shapes must match.
  void LoadValues(const std::vector<Matrix>& values);

  /// Exponential moving average update toward `online`:
  /// p_target = decay * p_target + (1 - decay) * p_online.
  /// Used by BGRL's target encoder.
  void EmaUpdateFrom(const ParamSet& online, float decay);

 private:
  std::vector<Var> params_;
};

}  // namespace e2gcl

#endif  // E2GCL_NN_INIT_H_
