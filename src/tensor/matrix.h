#ifndef E2GCL_TENSOR_MATRIX_H_
#define E2GCL_TENSOR_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/aligned.h"
#include "tensor/rng.h"

namespace e2gcl {

/// Dense row-major float32 matrix. This is the single numeric container
/// used throughout the library (vectors are 1xN or Nx1 matrices).
///
/// The class is a passive value type: copyable, movable, no hidden
/// sharing. All linear-algebra kernels are free functions below so they
/// can be tested and benchmarked in isolation.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(std::int64_t rows, std::int64_t cols);

  /// Matrix filled with `value`.
  Matrix(std::int64_t rows, std::int64_t cols, float value);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Builds from an explicit row-major initializer, e.g.
  /// Matrix::FromRows({{1,2},{3,4}}).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(std::int64_t n);

  /// Uniform[lo, hi) entries.
  static Matrix RandomUniform(std::int64_t rows, std::int64_t cols, float lo,
                              float hi, Rng& rng);

  /// Normal(mean, stddev) entries.
  static Matrix RandomNormal(std::int64_t rows, std::int64_t cols, float mean,
                             float stddev, Rng& rng);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float& operator()(std::int64_t r, std::int64_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::int64_t r, std::int64_t c) const {
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Pointer to the beginning of row r.
  float* RowPtr(std::int64_t r) { return data_.data() + r * cols_; }
  const float* RowPtr(std::int64_t r) const { return data_.data() + r * cols_; }

  /// Copies row r into a 1 x cols matrix.
  Matrix Row(std::int64_t r) const;

  /// Sets all entries to `value`.
  void Fill(float value);

  /// Sets all entries to zero.
  void SetZero() { Fill(0.0f); }

  /// True iff shapes and all entries are exactly equal.
  bool operator==(const Matrix& other) const;

  /// Human-readable form for debugging/tests (small matrices only).
  std::string ToString() const;

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  /// 64-byte-aligned backing store (see tensor/aligned.h): entry (0, 0)
  /// always sits on a cache-line boundary for the SIMD kernels.
  AlignedVector<float> data_;
};

// ---------------------------------------------------------------------------
// Kernels. Shape mismatches abort via E2GCL_CHECK.
// ---------------------------------------------------------------------------

/// C = A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A * B^T (avoids materializing the transpose).
Matrix MatMulTransposedB(const Matrix& a, const Matrix& b);

/// C = A^T * B.
Matrix MatMulTransposedA(const Matrix& a, const Matrix& b);

/// Element-wise sum/difference/product.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// alpha * A.
Matrix Scale(const Matrix& a, float alpha);

/// A += alpha * B (in place).
void AxpyInPlace(Matrix& a, float alpha, const Matrix& b);

/// A += B (in place).
void AddInPlace(Matrix& a, const Matrix& b);

/// Transpose.
Matrix Transpose(const Matrix& a);

/// Sum of all entries.
float SumAll(const Matrix& a);

/// Mean of all entries.
float MeanAll(const Matrix& a);

/// Frobenius norm.
float FrobeniusNorm(const Matrix& a);

/// Column vector (rows x 1) of row sums.
Matrix RowSums(const Matrix& a);

/// Row vector (1 x cols) of column sums.
Matrix ColSums(const Matrix& a);

/// Column vector (rows x 1) of Euclidean row norms.
Matrix RowL2Norms(const Matrix& a);

/// Rows scaled to unit Euclidean norm; zero rows are left as zeros.
Matrix NormalizeRowsL2(const Matrix& a, float eps = 1e-12f);

/// Squared Euclidean distance between row `r` of `a` and row `s` of `b`.
/// Rows must have equal width.
float RowSquaredDistance(const Matrix& a, std::int64_t r, const Matrix& b,
                         std::int64_t s);

/// Euclidean distance between rows (sqrt of the above).
float RowDistance(const Matrix& a, std::int64_t r, const Matrix& b,
                  std::int64_t s);

/// Gathers the given rows of `a` into a new matrix (indices may repeat).
Matrix GatherRows(const Matrix& a, const std::vector<std::int64_t>& indices);

/// Row-wise softmax (numerically stable).
Matrix SoftmaxRows(const Matrix& a);

/// Max absolute difference between same-shaped matrices.
float MaxAbsDiff(const Matrix& a, const Matrix& b);

/// True iff every entry is finite (no NaN/Inf). Bit-identical at any
/// thread count. Note the zero-skip fast path in MatMul/MatMulTransposedA
/// evaluates 0 * NaN as 0, so a non-finite parameter can produce finite
/// activations, losses and gradients — callers guarding against divergence
/// must check the parameters themselves with this function, not just the
/// loss scalar.
bool AllFinite(const Matrix& a);

}  // namespace e2gcl

#endif  // E2GCL_TENSOR_MATRIX_H_
