#ifndef E2GCL_TENSOR_RNG_H_
#define E2GCL_TENSOR_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace e2gcl {

/// Deterministic random number generator used by every randomized
/// component (generators, augmentation, initialization, optimizers).
///
/// All stochastic behaviour in the library flows through an explicitly
/// seeded Rng so experiments are reproducible bit-for-bit given a seed.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Equal seeds yield equal
  /// streams.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Uniform float in [0, 1).
  float Uniform();

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::int64_t UniformInt(std::int64_t n);

  /// Standard normal sample.
  float Normal();

  /// Normal sample with the given mean and standard deviation.
  float Normal(float mean, float stddev);

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool Bernoulli(float p);

  /// Samples `k` distinct values from {0, ..., n-1} uniformly, in
  /// unspecified order. Requires 0 <= k <= n.
  std::vector<std::int64_t> SampleWithoutReplacement(std::int64_t n,
                                                     std::int64_t k);

  /// Samples `k` indices from {0, ..., weights.size()-1} *without*
  /// replacement with probability proportional to `weights` (weights must
  /// be non-negative; zero-weight entries are never picked unless all
  /// weights are zero, in which case sampling falls back to uniform).
  /// If k exceeds the number of positive-weight entries, returns fewer
  /// than k indices.
  std::vector<std::int64_t> WeightedSampleWithoutReplacement(
      const std::vector<float>& weights, std::int64_t k);

  /// Fisher-Yates shuffle of `values`.
  void Shuffle(std::vector<std::int64_t>& values);

  /// Derives an independent child generator; useful to give parallel or
  /// repeated phases their own streams without correlating them.
  Rng Fork();

  /// Serializes the full engine state (position included) to a portable
  /// text form, so a restored generator continues the exact stream.
  std::string SerializeState() const;

  /// Restores a state produced by SerializeState(). Returns false (and
  /// leaves the generator untouched) when `state` does not parse.
  bool RestoreState(const std::string& state);

  /// Access to the raw engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace e2gcl

#endif  // E2GCL_TENSOR_RNG_H_
