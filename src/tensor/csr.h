#ifndef E2GCL_TENSOR_CSR_H_
#define E2GCL_TENSOR_CSR_H_

#include <cstdint>
#include <tuple>
#include <vector>

#include "tensor/matrix.h"

namespace e2gcl {

/// Sparse float32 matrix in compressed-sparse-row form. Used for
/// (normalized) adjacency matrices; the GCN propagation `A_n H` is a
/// SpMM against this type.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) { row_ptr_.push_back(0); }

  /// Builds from COO triplets (row, col, value). Duplicate (row, col)
  /// entries are summed. Triplets may be in any order.
  static CsrMatrix FromCoo(std::int64_t rows, std::int64_t cols,
                           std::vector<std::tuple<std::int64_t, std::int64_t,
                                                  float>> triplets);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t nnz() const {
    return static_cast<std::int64_t>(col_idx_.size());
  }

  const std::vector<std::int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Number of stored entries in row r.
  std::int64_t RowNnz(std::int64_t r) const {
    return row_ptr_[r + 1] - row_ptr_[r];
  }

  /// Transposed copy (O(nnz)).
  CsrMatrix Transposed() const;

  /// Dense copy (tests / tiny matrices only).
  Matrix ToDense() const;

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int32_t> col_idx_;
  std::vector<float> values_;
};

/// Dense result of sparse x dense: C = A * B with A sparse.
Matrix Spmm(const CsrMatrix& a, const Matrix& b);

/// C = A^T * B without materializing the transpose (scatter form).
Matrix SpmmTransposedA(const CsrMatrix& a, const Matrix& b);

}  // namespace e2gcl

#endif  // E2GCL_TENSOR_CSR_H_
