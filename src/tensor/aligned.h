#ifndef E2GCL_TENSOR_ALIGNED_H_
#define E2GCL_TENSOR_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace e2gcl {

/// Minimal std::allocator replacement that over-aligns every allocation
/// to `Alignment` bytes (default: one cache line, which also covers any
/// current SIMD register width). Matrix's backing store uses it so row 0
/// of every matrix starts on a 64-byte boundary — aligned vector loads
/// for kernels that walk whole matrices, and no false sharing between a
/// matrix and its neighbors. Interior rows are only as aligned as
/// `cols * 4` allows; kernels therefore still use unaligned loads, which
/// cost nothing extra on aligned addresses on any AVX2-era CPU.
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two and at least alignof(T)");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    // e2gcl-lint: allow(naked-new-delete): allocator implementation —
    // this IS the owning abstraction; aligned operator new has no
    // std::make_* style wrapper.
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    // e2gcl-lint: allow(naked-new-delete): matching aligned delete for
    // the allocate() above.
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// The vector type backing Matrix storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace e2gcl

#endif  // E2GCL_TENSOR_ALIGNED_H_
