// Build-time backend dispatch. The CMake option E2GCL_SIMD decides
// which backend the public simd:: symbols forward to; the portable
// reference is always compiled so the parity suite can compare against
// it in the same binary.

#include "tensor/simd/simd.h"

#if defined(E2GCL_SIMD_AVX2)

namespace e2gcl {
namespace simd {

namespace avx2 {
float Dot(const float* a, const float* b, std::int64_t n);
float SquaredDistance(const float* a, const float* b, std::int64_t n);
double SquaredNormD(const float* a, std::int64_t n);
double SumD(const float* a, std::int64_t n);
void Axpy(float* y, float alpha, const float* x, std::int64_t n);
void Scale(float* y, float alpha, std::int64_t n);
void NormalizeRowL2(float* dst, const float* src, std::int64_t n, float eps);
void GemmRows(const float* a, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t k,
              std::int64_t n);
void GemmTransBRows(const float* a, const float* b, float* c,
                    std::int64_t row_begin, std::int64_t row_end,
                    std::int64_t k, std::int64_t n);
void SpmmRows(const std::int64_t* row_ptr, const std::int32_t* col_idx,
              const float* vals, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t n);
std::int32_t DotI8(const std::int8_t* a, const std::int8_t* b,
                   std::int64_t n);
}  // namespace avx2

namespace backend = avx2;

const char* BackendName() { return "avx2"; }

}  // namespace simd
}  // namespace e2gcl

#else  // portable

namespace e2gcl {
namespace simd {

namespace backend = portable;

const char* BackendName() { return "portable"; }

}  // namespace simd
}  // namespace e2gcl

#endif

namespace e2gcl {
namespace simd {

float Dot(const float* a, const float* b, std::int64_t n) {
  return backend::Dot(a, b, n);
}

float SquaredDistance(const float* a, const float* b, std::int64_t n) {
  return backend::SquaredDistance(a, b, n);
}

double SquaredNormD(const float* a, std::int64_t n) {
  return backend::SquaredNormD(a, n);
}

double SumD(const float* a, std::int64_t n) { return backend::SumD(a, n); }

void Axpy(float* y, float alpha, const float* x, std::int64_t n) {
  backend::Axpy(y, alpha, x, n);
}

void Scale(float* y, float alpha, std::int64_t n) {
  backend::Scale(y, alpha, n);
}

void NormalizeRowL2(float* dst, const float* src, std::int64_t n, float eps) {
  backend::NormalizeRowL2(dst, src, n, eps);
}

void GemmRows(const float* a, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t k,
              std::int64_t n) {
  backend::GemmRows(a, b, c, row_begin, row_end, k, n);
}

void GemmTransBRows(const float* a, const float* b, float* c,
                    std::int64_t row_begin, std::int64_t row_end,
                    std::int64_t k, std::int64_t n) {
  backend::GemmTransBRows(a, b, c, row_begin, row_end, k, n);
}

void SpmmRows(const std::int64_t* row_ptr, const std::int32_t* col_idx,
              const float* vals, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t n) {
  backend::SpmmRows(row_ptr, col_idx, vals, b, c, row_begin, row_end, n);
}

std::int32_t DotI8(const std::int8_t* a, const std::int8_t* b,
                   std::int64_t n) {
  return backend::DotI8(a, b, n);
}

}  // namespace simd
}  // namespace e2gcl
