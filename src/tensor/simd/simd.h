#ifndef E2GCL_TENSOR_SIMD_SIMD_H_
#define E2GCL_TENSOR_SIMD_SIMD_H_

#include <cstdint>

namespace e2gcl {

/// Vectorized kernel layer.
///
/// Every dense hot loop in the library (GEMM variants, SpMM row
/// accumulation, row norms, dot/top-k scans, the int8 serving path)
/// funnels through the primitives declared here. The backend is chosen
/// at build time with -DE2GCL_SIMD=avx2|portable|auto (see the
/// top-level CMakeLists.txt); `simd::BackendName()` reports which one
/// is linked in.
///
/// Determinism contract (DESIGN.md "SIMD kernels & quantized
/// serving"): results are bit-identical across runs and thread counts
/// *within one build configuration*. The portable backend reproduces
/// the original scalar kernels exactly; the AVX2 backend uses fixed
/// lane counts and a fixed reduction order, so it is equally
/// deterministic, but FMA contraction and lane-wise accumulation give
/// float sums that differ from the portable backend in the last ulps.
/// Integer kernels (the int8 dot) are exact and therefore
/// bit-identical across backends. tests/simd_kernels_test.cc holds the
/// two backends together on awkward shapes.
///
/// All pointers may be unaligned (Matrix storage is 64-byte aligned,
/// but kernels are routinely called on row offsets); n may be 0.
namespace simd {

/// Name of the backend compiled into this binary: "avx2" or "portable".
const char* BackendName();

// --- fp32 primitives --------------------------------------------------

/// Sum of a[i] * b[i] (float accumulation).
float Dot(const float* a, const float* b, std::int64_t n);

/// Sum of (a[i] - b[i])^2 (float accumulation).
float SquaredDistance(const float* a, const float* b, std::int64_t n);

/// Sum of (double)a[i] * a[i] — the double-precision row-norm
/// accumulator used by NormalizeRowsL2 / RowL2Norms / FrobeniusNorm.
double SquaredNormD(const float* a, std::int64_t n);

/// Sum of (double)a[i].
double SumD(const float* a, std::int64_t n);

/// y[i] += alpha * x[i]. The ascending-index accumulation every SpMM
/// form and the scatter GEMMs rely on; the AVX2 body performs exactly
/// one fused multiply-add per element so repeated Axpy calls and the
/// blocked kernels below see identical per-element arithmetic.
void Axpy(float* y, float alpha, const float* x, std::int64_t n);

/// y[i] *= alpha.
void Scale(float* y, float alpha, std::int64_t n);

/// dst = src scaled to unit L2 norm (norm computed via SquaredNormD,
/// inverse applied in float). Rows with norm <= eps are copied
/// unchanged. dst may equal src.
void NormalizeRowL2(float* dst, const float* src, std::int64_t n, float eps);

/// Rows [row_begin, row_end) of C = A * B, row-major, C pre-zeroed:
/// c[i][j] += a[i][p] * b[p][j] with p ascending per element. Entries
/// a[i][p] == 0.0f are skipped, preserving the scalar kernel's 0 * NaN
/// masking (see AllFinite in tensor/matrix.h). The AVX2 backend keeps a
/// register-resident C tile across the k loop (cache-blocked tiling).
void GemmRows(const float* a, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t k,
              std::int64_t n);

/// Rows [row_begin, row_end) of C = A * B^T (dot form):
/// c[i][j] = Dot(a_row_i, b_row_j, k).
void GemmTransBRows(const float* a, const float* b, float* c,
                    std::int64_t row_begin, std::int64_t row_end,
                    std::int64_t k, std::int64_t n);

/// Rows [row_begin, row_end) of the CSR gather-form SpMM, C pre-zeroed:
/// c[r][j] += vals[e] * b[col_idx[e]][j] for e in [row_ptr[r],
/// row_ptr[r+1]) ascending. Per-element arithmetic matches one Axpy
/// call per edge, so subset replays (GcnEncoder::EncodeRows) that use
/// Axpy directly produce bit-identical rows. The AVX2 backend blocks
/// each output row into register tiles held across the edge loop.
void SpmmRows(const std::int64_t* row_ptr, const std::int32_t* col_idx,
              const float* vals, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t n);

// --- int8 quantized primitives ---------------------------------------

/// Sum of (int32)a[i] * b[i]. Exact integer arithmetic: bit-identical
/// across backends. Callers keep n below ~130k so the i32 accumulator
/// cannot overflow (127 * 127 * n < 2^31); embedding widths are far
/// smaller.
std::int32_t DotI8(const std::int8_t* a, const std::int8_t* b,
                   std::int64_t n);

/// Symmetric per-row int8 quantization: returns scale = maxabs / 127
/// and writes dst[i] = llround(src[i] / scale) clamped to [-127, 127].
/// An all-zero (or empty) row yields scale 0 and all-zero codes.
/// Shared scalar implementation — identical output in every backend.
float QuantizeRowI8(std::int8_t* dst, const float* src, std::int64_t n);

/// The always-compiled scalar reference backend. `simd::portable::*`
/// mirrors every primitive above with plain serial loops; the parity
/// suite compares the dispatched backend against it, and it doubles as
/// the readable specification of each kernel's semantics.
namespace portable {
float Dot(const float* a, const float* b, std::int64_t n);
float SquaredDistance(const float* a, const float* b, std::int64_t n);
double SquaredNormD(const float* a, std::int64_t n);
double SumD(const float* a, std::int64_t n);
void Axpy(float* y, float alpha, const float* x, std::int64_t n);
void Scale(float* y, float alpha, std::int64_t n);
void NormalizeRowL2(float* dst, const float* src, std::int64_t n, float eps);
void GemmRows(const float* a, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t k,
              std::int64_t n);
void GemmTransBRows(const float* a, const float* b, float* c,
                    std::int64_t row_begin, std::int64_t row_end,
                    std::int64_t k, std::int64_t n);
void SpmmRows(const std::int64_t* row_ptr, const std::int32_t* col_idx,
              const float* vals, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t n);
std::int32_t DotI8(const std::int8_t* a, const std::int8_t* b,
                   std::int64_t n);
}  // namespace portable

}  // namespace simd
}  // namespace e2gcl

#endif  // E2GCL_TENSOR_SIMD_SIMD_H_
