// Scalar reference backend. These loops are the original (pre-SIMD)
// kernel bodies, kept byte-for-byte equivalent so a portable build
// reproduces the historical numerics exactly and the AVX2 backend has
// an in-binary reference to be parity-tested against.

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/simd/simd.h"

namespace e2gcl {
namespace simd {
namespace portable {

float Dot(const float* a, const float* b, std::int64_t n) {
  float acc = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredDistance(const float* a, const float* b, std::int64_t n) {
  float acc = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double SquaredNormD(const float* a, std::int64_t n) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  return acc;
}

double SumD(const float* a, std::int64_t n) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}

void Axpy(float* y, float alpha, const float* x, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(float* y, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] *= alpha;
}

void NormalizeRowL2(float* dst, const float* src, std::int64_t n, float eps) {
  const float norm = static_cast<float>(std::sqrt(SquaredNormD(src, n)));
  if (dst != src) std::copy(src, src + n, dst);
  if (norm <= eps) return;
  Scale(dst, 1.0f / norm, n);
}

void GemmRows(const float* a, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t k,
              std::int64_t n) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmTransBRows(const float* a, const float* b, float* c,
                    std::int64_t row_begin, std::int64_t row_end,
                    std::int64_t k, std::int64_t n) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) crow[j] = Dot(arow, b + j * k, k);
  }
}

void SpmmRows(const std::int64_t* row_ptr, const std::int32_t* col_idx,
              const float* vals, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t n) {
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    float* crow = c + r * n;
    for (std::int64_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
      Axpy(crow, vals[e], b + static_cast<std::int64_t>(col_idx[e]) * n, n);
    }
  }
}

std::int32_t DotI8(const std::int8_t* a, const std::int8_t* b,
                   std::int64_t n) {
  std::int32_t acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

}  // namespace portable

float QuantizeRowI8(std::int8_t* dst, const float* src, std::int64_t n) {
  float maxabs = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    maxabs = std::max(maxabs, std::fabs(src[i]));
  }
  if (maxabs == 0.0f) {
    std::fill(dst, dst + n, std::int8_t{0});
    return 0.0f;
  }
  const float scale = maxabs / 127.0f;
  const float inv = 127.0f / maxabs;
  for (std::int64_t i = 0; i < n; ++i) {
    const long long q = std::llround(src[i] * inv);
    dst[i] = static_cast<std::int8_t>(
        std::clamp<long long>(q, -127, 127));
  }
  return scale;
}

}  // namespace simd
}  // namespace e2gcl
