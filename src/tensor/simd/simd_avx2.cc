// AVX2/FMA backend. Compiled only when the build selects
// -DE2GCL_SIMD=avx2 (the CMake option adds -mavx2 -mfma for this file
// alone, so the rest of the tree stays portable-ISA).
//
// Determinism notes:
//  - every kernel uses fixed lane counts, fixed tile boundaries, and a
//    fixed reduction order, so results are bit-identical across runs
//    and thread counts for a given build;
//  - Axpy and SpmmRows perform exactly one FMA per element in
//    ascending-edge order with the same vector/scalar split (8-wide
//    blocks, fmaf tail), so the subset SpMM replay in
//    GcnEncoder::EncodeRows (per-edge Axpy) is bit-identical to the
//    blocked full-graph SpmmRows — the serving contract depends on it;
//  - integer kernels are exact and match the portable backend bit for
//    bit.

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/simd/simd.h"

namespace e2gcl {
namespace simd {
namespace avx2 {

namespace {

/// Scalar FMA used by every fp32 tail so scalar and vector elements see
/// the same fused rounding regardless of compiler contraction choices.
inline void ScalarFma(float* y, float a, float x) { *y = std::fmaf(a, x, *y); }

/// Fixed-order horizontal sum: lane 0 + 1 + ... + 7.
inline float HSum(__m256 v) {
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, v);
  float acc = lanes[0];
  for (int i = 1; i < 8; ++i) acc += lanes[i];
  return acc;
}

inline double HSumD(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

}  // namespace

float Dot(const float* a, const float* b, std::int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
  }
  float acc =
      HSum(_mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) ScalarFma(&acc, a[i], b[i]);
  return acc;
}

float SquaredDistance(const float* a, const float* b, std::int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float acc = HSum(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    ScalarFma(&acc, d, d);
  }
  return acc;
}

double SquaredNormD(const float* a, std::int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    acc0 = _mm256_fmadd_pd(lo, lo, acc0);
    acc1 = _mm256_fmadd_pd(hi, hi, acc1);
  }
  double acc = HSumD(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  return acc;
}

double SumD(const float* a, std::int64_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double acc = HSumD(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += a[i];
  return acc;
}

void Axpy(float* y, float alpha, const float* x, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i,
        _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) ScalarFma(y + i, alpha, x[i]);
}

void Scale(float* y, float alpha, std::int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(va, _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= alpha;
}

void NormalizeRowL2(float* dst, const float* src, std::int64_t n, float eps) {
  const float norm = static_cast<float>(std::sqrt(SquaredNormD(src, n)));
  if (norm <= eps) {
    if (dst != src) std::copy(src, src + n, dst);
    return;
  }
  const float inv = 1.0f / norm;
  const __m256 vi = _mm256_set1_ps(inv);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(vi, _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = src[i] * inv;
}

void GemmRows(const float* a, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t k,
              std::int64_t n) {
  // Register-tiled i-k-j: for each output row, a tile of C columns
  // stays resident in YMM registers across the whole k loop, so C is
  // loaded/stored once per tile instead of once per (p, tile). The
  // per-element accumulation order (ascending p, one FMA each) and the
  // scalar zero-skip on a[i][p] are identical to the portable kernel.
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::int64_t j = 0;
    for (; j + 32 <= n; j += 32) {
      float* cj = crow + j;
      __m256 t0 = _mm256_loadu_ps(cj);
      __m256 t1 = _mm256_loadu_ps(cj + 8);
      __m256 t2 = _mm256_loadu_ps(cj + 16);
      __m256 t3 = _mm256_loadu_ps(cj + 24);
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        const __m256 va = _mm256_set1_ps(av);
        const float* bj = b + p * n + j;
        t0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bj), t0);
        t1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bj + 8), t1);
        t2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bj + 16), t2);
        t3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bj + 24), t3);
      }
      _mm256_storeu_ps(cj, t0);
      _mm256_storeu_ps(cj + 8, t1);
      _mm256_storeu_ps(cj + 16, t2);
      _mm256_storeu_ps(cj + 24, t3);
    }
    for (; j + 8 <= n; j += 8) {
      float* cj = crow + j;
      __m256 t0 = _mm256_loadu_ps(cj);
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        t0 = _mm256_fmadd_ps(_mm256_set1_ps(av),
                             _mm256_loadu_ps(b + p * n + j), t0);
      }
      _mm256_storeu_ps(cj, t0);
    }
    for (; j < n; ++j) {
      float acc = crow[j];
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        ScalarFma(&acc, av, b[p * n + j]);
      }
      crow[j] = acc;
    }
  }
}

void GemmTransBRows(const float* a, const float* b, float* c,
                    std::int64_t row_begin, std::int64_t row_end,
                    std::int64_t k, std::int64_t n) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) crow[j] = Dot(arow, b + j * k, k);
  }
}

void SpmmRows(const std::int64_t* row_ptr, const std::int32_t* col_idx,
              const float* vals, const float* b, float* c,
              std::int64_t row_begin, std::int64_t row_end, std::int64_t n) {
  // Row-blocked gather form: a register tile of the output row is held
  // across the whole edge list, so the row is written once per tile.
  // Tile boundaries (32-wide, then 8-wide, then fmaf tail) match Axpy's
  // vector/scalar split, and edges accumulate in ascending order, so
  // each element sees the exact FMA sequence a per-edge Axpy loop
  // would produce (EncodeRows' subset replay relies on this).
  for (std::int64_t r = row_begin; r < row_end; ++r) {
    const std::int64_t e0 = row_ptr[r];
    const std::int64_t e1 = row_ptr[r + 1];
    float* crow = c + r * n;
    std::int64_t j = 0;
    for (; j + 32 <= n; j += 32) {
      float* cj = crow + j;
      __m256 t0 = _mm256_loadu_ps(cj);
      __m256 t1 = _mm256_loadu_ps(cj + 8);
      __m256 t2 = _mm256_loadu_ps(cj + 16);
      __m256 t3 = _mm256_loadu_ps(cj + 24);
      for (std::int64_t e = e0; e < e1; ++e) {
        const __m256 vv = _mm256_set1_ps(vals[e]);
        const float* bj = b + static_cast<std::int64_t>(col_idx[e]) * n + j;
        t0 = _mm256_fmadd_ps(vv, _mm256_loadu_ps(bj), t0);
        t1 = _mm256_fmadd_ps(vv, _mm256_loadu_ps(bj + 8), t1);
        t2 = _mm256_fmadd_ps(vv, _mm256_loadu_ps(bj + 16), t2);
        t3 = _mm256_fmadd_ps(vv, _mm256_loadu_ps(bj + 24), t3);
      }
      _mm256_storeu_ps(cj, t0);
      _mm256_storeu_ps(cj + 8, t1);
      _mm256_storeu_ps(cj + 16, t2);
      _mm256_storeu_ps(cj + 24, t3);
    }
    for (; j + 8 <= n; j += 8) {
      float* cj = crow + j;
      __m256 t0 = _mm256_loadu_ps(cj);
      for (std::int64_t e = e0; e < e1; ++e) {
        t0 = _mm256_fmadd_ps(
            _mm256_set1_ps(vals[e]),
            _mm256_loadu_ps(b + static_cast<std::int64_t>(col_idx[e]) * n + j),
            t0);
      }
      _mm256_storeu_ps(cj, t0);
    }
    for (; j < n; ++j) {
      float acc = crow[j];
      for (std::int64_t e = e0; e < e1; ++e) {
        ScalarFma(&acc, vals[e],
                  b[static_cast<std::int64_t>(col_idx[e]) * n + j]);
      }
      crow[j] = acc;
    }
  }
}

std::int32_t DotI8(const std::int8_t* a, const std::int8_t* b,
                   std::int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int32_t total = 0;
  for (int l = 0; l < 8; ++l) total += lanes[l];
  for (; i < n; ++i) {
    total += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return total;
}

}  // namespace avx2
}  // namespace simd
}  // namespace e2gcl
