#ifndef E2GCL_TENSOR_CHECK_H_
#define E2GCL_TENSOR_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Precondition-checking macros. The library does not use exceptions
/// (Google style); violated invariants abort with a source location so
/// failures in long benchmark runs are attributable.

/// Aborts with a message when `cond` is false. Always active (also in
/// release builds) because every use guards an API precondition whose
/// violation would otherwise corrupt memory.
#define E2GCL_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "E2GCL_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Like E2GCL_CHECK but with a printf-style explanation.
#define E2GCL_CHECK_MSG(cond, ...)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "E2GCL_CHECK failed at %s:%d: %s: ", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // E2GCL_TENSOR_CHECK_H_
