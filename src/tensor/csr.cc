#include "tensor/csr.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "parallel/parallel_for.h"
#include "tensor/check.h"
#include "tensor/simd/simd.h"

namespace e2gcl {

CsrMatrix CsrMatrix::FromCoo(
    std::int64_t rows, std::int64_t cols,
    std::vector<std::tuple<std::int64_t, std::int64_t, float>> triplets) {
  E2GCL_CHECK(rows >= 0 && cols >= 0);
  // Column ids are stored as int32; a bare narrowing cast below would
  // silently corrupt indices for billion-column inputs.
  E2GCL_CHECK_MSG(
      cols <= std::numeric_limits<std::int32_t>::max(),
      "CsrMatrix column count %lld exceeds the int32 column-index range",
      static_cast<long long>(cols));
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              if (std::get<0>(a) != std::get<0>(b)) {
                return std::get<0>(a) < std::get<0>(b);
              }
              return std::get<1>(a) < std::get<1>(b);
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    const auto [r, c, v] = triplets[i];
    E2GCL_CHECK_MSG(r >= 0 && r < rows && c >= 0 && c < cols,
                    "COO entry (%lld, %lld) out of bounds",
                    static_cast<long long>(r), static_cast<long long>(c));
    // Triplets are sorted, so duplicate coordinates are adjacent: sum them.
    if (i > 0 && std::get<0>(triplets[i - 1]) == r &&
        std::get<1>(triplets[i - 1]) == c) {
      m.values_.back() += v;
      continue;
    }
    m.col_idx_.push_back(static_cast<std::int32_t>(c));
    m.values_.push_back(v);
    m.row_ptr_[r + 1] += 1;
  }
  for (std::int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<std::tuple<std::int64_t, std::int64_t, float>> triplets;
  triplets.reserve(nnz());
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      triplets.emplace_back(col_idx_[k], r, values_[k]);
    }
  }
  return FromCoo(cols_, rows_, std::move(triplets));
}

Matrix CsrMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d(r, col_idx_[k]) += values_[k];
    }
  }
  return d;
}

namespace {

// Output-row floor for the scatter-form SpmmTransposedA: below this many
// input rows there is a single chunk and the exact serial accumulation
// order is preserved (covers every unit-test-sized graph).
constexpr std::int64_t kScatterRowFloor = 512;

/// Telemetry for one sparse-dense product: call count and touched byte
/// volume (nnz values + indices, gathered/scattered dense rows, output).
void RecordSpmmMetrics(const CsrMatrix& a, std::int64_t n,
                       std::int64_t out_rows) {
  if (!ObsEnabled()) return;
  static const Counter calls = Counter::Get("spmm.calls");
  static const Counter bytes = Counter::Get("spmm.bytes");
  calls.Increment();
  const std::int64_t nnz = a.nnz();
  bytes.Add(static_cast<std::uint64_t>(
      nnz * static_cast<std::int64_t>(sizeof(float) + sizeof(std::int32_t)) +
      (nnz + out_rows) * n * static_cast<std::int64_t>(sizeof(float))));
}

}  // namespace

Matrix Spmm(const CsrMatrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.cols() == b.rows(), "spmm inner-dim mismatch");
  const std::int64_t n = b.cols();
  RecordSpmmMetrics(a, n, a.rows());
  Matrix c(a.rows(), n);
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vs = a.values();
  // Row-parallel gather form: each output row is owned by one chunk, so
  // the result is bit-identical to the serial kernel at any thread count.
  // The row kernel (register-blocked under AVX2, per-element identical to
  // one Axpy per edge) lives in tensor/simd/.
  const std::int64_t avg_nnz =
      a.rows() > 0 ? std::max<std::int64_t>(1, a.nnz() / a.rows()) : 1;
  ParallelFor(0, a.rows(), GrainForCost(avg_nnz * n),
              [&](std::int64_t rb, std::int64_t re) {
                simd::SpmmRows(rp.data(), ci.data(), vs.data(), b.data(),
                               c.data(), rb, re, n);
              });
  return c;
}

Matrix SpmmTransposedA(const CsrMatrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.rows() == b.rows(), "spmm(A^T) inner-dim mismatch");
  const std::int64_t n = b.cols();
  RecordSpmmMetrics(a, n, a.cols());
  Matrix c(a.cols(), n);
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vs = a.values();
  // Scatter form: entry (r, col) contributes to output row `col`, so
  // output rows are shared across input rows. Input rows are cut into
  // fixed size-based chunks, each scattering into its own cols x n
  // partial; partials are reduced in ascending chunk order, making the
  // result independent of the thread count (never atomics on floats).
  const std::int64_t avg_nnz =
      a.rows() > 0 ? std::max<std::int64_t>(1, a.nnz() / a.rows()) : 1;
  const std::int64_t grain =
      std::max({kScatterRowFloor, GrainForCost(avg_nnz * n),
                (a.rows() + 63) / 64});
  const std::int64_t chunks = NumChunks(a.rows(), grain);
  auto scatter = [&](Matrix& dst, std::int64_t rb, std::int64_t re) {
    for (std::int64_t r = rb; r < re; ++r) {
      const float* brow = b.RowPtr(r);
      for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k) {
        simd::Axpy(dst.RowPtr(ci[k]), vs[k], brow, n);
      }
    }
  };
  if (chunks <= 1) {
    scatter(c, 0, a.rows());
    return c;
  }
  // Chunks are processed in waves so only `wave` cols x n partials are
  // ever resident at once — a full partial per chunk peaks at 64 dense
  // copies of the output on large graphs, which is what used to blow
  // the backward-pass memory budget. The reduction stays in ascending
  // chunk order across waves, so the result is still bit-identical at
  // any thread count; the wave width only bounds memory.
  const std::int64_t wave =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(GetNumThreads()));
  std::vector<Matrix> partials(std::min(chunks, wave));
  for (std::int64_t wb = 0; wb < chunks; wb += wave) {
    const std::int64_t we = std::min(chunks, wb + wave);
    GlobalThreadPool().Run(we - wb, [&](std::int64_t i) {
      const std::int64_t chunk = wb + i;
      const std::int64_t rb = chunk * grain;
      const std::int64_t re = std::min(a.rows(), rb + grain);
      partials[i] = Matrix(a.cols(), n);
      scatter(partials[i], rb, re);
    });
    for (std::int64_t i = 0; i < we - wb; ++i) {
      AddInPlace(c, partials[i]);
      partials[i] = Matrix();
    }
  }
  return c;
}

}  // namespace e2gcl
