#include "tensor/csr.h"

#include <algorithm>

#include "tensor/check.h"

namespace e2gcl {

CsrMatrix CsrMatrix::FromCoo(
    std::int64_t rows, std::int64_t cols,
    std::vector<std::tuple<std::int64_t, std::int64_t, float>> triplets) {
  E2GCL_CHECK(rows >= 0 && cols >= 0);
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              if (std::get<0>(a) != std::get<0>(b)) {
                return std::get<0>(a) < std::get<0>(b);
              }
              return std::get<1>(a) < std::get<1>(b);
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    const auto [r, c, v] = triplets[i];
    E2GCL_CHECK_MSG(r >= 0 && r < rows && c >= 0 && c < cols,
                    "COO entry (%lld, %lld) out of bounds",
                    static_cast<long long>(r), static_cast<long long>(c));
    // Triplets are sorted, so duplicate coordinates are adjacent: sum them.
    if (i > 0 && std::get<0>(triplets[i - 1]) == r &&
        std::get<1>(triplets[i - 1]) == c) {
      m.values_.back() += v;
      continue;
    }
    m.col_idx_.push_back(static_cast<std::int32_t>(c));
    m.values_.push_back(v);
    m.row_ptr_[r + 1] += 1;
  }
  for (std::int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

CsrMatrix CsrMatrix::Transposed() const {
  std::vector<std::tuple<std::int64_t, std::int64_t, float>> triplets;
  triplets.reserve(nnz());
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      triplets.emplace_back(col_idx_[k], r, values_[k]);
    }
  }
  return FromCoo(cols_, rows_, std::move(triplets));
}

Matrix CsrMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d(r, col_idx_[k]) += values_[k];
    }
  }
  return d;
}

Matrix Spmm(const CsrMatrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.cols() == b.rows(), "spmm inner-dim mismatch");
  const std::int64_t n = b.cols();
  Matrix c(a.rows(), n);
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vs = a.values();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    float* crow = c.RowPtr(r);
    for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k) {
      const float v = vs[k];
      const float* brow = b.RowPtr(ci[k]);
      for (std::int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

Matrix SpmmTransposedA(const CsrMatrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.rows() == b.rows(), "spmm(A^T) inner-dim mismatch");
  const std::int64_t n = b.cols();
  Matrix c(a.cols(), n);
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& vs = a.values();
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* brow = b.RowPtr(r);
    for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k) {
      const float v = vs[k];
      float* crow = c.RowPtr(ci[k]);
      for (std::int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

}  // namespace e2gcl
