#include "tensor/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <string>

#include "tensor/check.h"

namespace e2gcl {

float Rng::Uniform() {
  return std::uniform_real_distribution<float>(0.0f, 1.0f)(engine_);
}

float Rng::Uniform(float lo, float hi) {
  return std::uniform_real_distribution<float>(lo, hi)(engine_);
}

std::int64_t Rng::UniformInt(std::int64_t n) {
  E2GCL_CHECK(n > 0);
  return std::uniform_int_distribution<std::int64_t>(0, n - 1)(engine_);
}

float Rng::Normal() {
  return std::normal_distribution<float>(0.0f, 1.0f)(engine_);
}

float Rng::Normal(float mean, float stddev) {
  return std::normal_distribution<float>(mean, stddev)(engine_);
}

bool Rng::Bernoulli(float p) {
  if (p <= 0.0f) return false;
  if (p >= 1.0f) return true;
  return std::bernoulli_distribution(static_cast<double>(p))(engine_);
}

std::vector<std::int64_t> Rng::SampleWithoutReplacement(std::int64_t n,
                                                        std::int64_t k) {
  E2GCL_CHECK(k >= 0 && k <= n);
  if (k == 0) return {};
  // Floyd's algorithm: O(k) expected work, no O(n) allocation when k << n.
  std::vector<std::int64_t> result;
  result.reserve(k);
  // For k close to n a partial Fisher-Yates over an index vector is
  // simpler and not slower.
  if (k * 2 >= n) {
    std::vector<std::int64_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    for (std::int64_t i = 0; i < k; ++i) {
      std::int64_t j = i + UniformInt(n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }
  std::vector<std::int64_t> chosen;
  chosen.reserve(k);
  for (std::int64_t j = n - k; j < n; ++j) {
    std::int64_t t = UniformInt(j + 1);
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  return chosen;
}

std::vector<std::int64_t> Rng::WeightedSampleWithoutReplacement(
    const std::vector<float>& weights, std::int64_t k) {
  const std::int64_t n = static_cast<std::int64_t>(weights.size());
  if (k <= 0 || n == 0) return {};
  if (k > n) k = n;

  // Exponential-sort trick (Efraimidis-Spirakis): draw key
  // u^(1/w) per item and take the top-k keys; equivalent to sequential
  // weighted sampling without replacement. We use -log(u)/w and take the
  // k smallest, which is numerically friendlier.
  std::vector<std::pair<float, std::int64_t>> keys;
  keys.reserve(n);
  bool any_positive = false;
  for (std::int64_t i = 0; i < n; ++i) {
    E2GCL_CHECK(weights[i] >= 0.0f);
    if (weights[i] > 0.0f) any_positive = true;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    float w = weights[i];
    if (!any_positive) w = 1.0f;  // Degenerate case: uniform fallback.
    if (w <= 0.0f) continue;
    float u = Uniform();
    // Guard against log(0).
    u = std::max(u, 1e-12f);
    keys.emplace_back(-std::log(u) / w, i);
  }
  if (static_cast<std::int64_t>(keys.size()) < k) {
    k = static_cast<std::int64_t>(keys.size());
  }
  std::partial_sort(keys.begin(), keys.begin() + k, keys.end());
  std::vector<std::int64_t> result(k);
  for (std::int64_t i = 0; i < k; ++i) result[i] = keys[i].second;
  return result;
}

void Rng::Shuffle(std::vector<std::int64_t>& values) {
  const std::int64_t n = static_cast<std::int64_t>(values.size());
  for (std::int64_t i = n - 1; i > 0; --i) {
    std::int64_t j = UniformInt(i + 1);
    std::swap(values[i], values[j]);
  }
}

Rng Rng::Fork() {
  std::uint64_t child_seed = engine_();
  return Rng(child_seed);
}

std::string Rng::SerializeState() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

bool Rng::RestoreState(const std::string& state) {
  std::istringstream is(state);
  std::mt19937_64 restored;
  is >> restored;
  if (is.fail()) return false;
  engine_ = restored;
  return true;
}

}  // namespace e2gcl
