#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "parallel/parallel_for.h"
#include "tensor/check.h"
#include "tensor/simd/simd.h"

namespace e2gcl {

Matrix::Matrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
  E2GCL_CHECK(rows >= 0 && cols >= 0);
}

Matrix::Matrix(std::int64_t rows, std::int64_t cols, float value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {
  E2GCL_CHECK(rows >= 0 && cols >= 0);
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  const std::int64_t r = static_cast<std::int64_t>(rows.size());
  const std::int64_t c = static_cast<std::int64_t>(rows[0].size());
  Matrix m(r, c);
  for (std::int64_t i = 0; i < r; ++i) {
    E2GCL_CHECK(static_cast<std::int64_t>(rows[i].size()) == c);
    std::copy(rows[i].begin(), rows[i].end(), m.RowPtr(i));
  }
  return m;
}

Matrix Matrix::Identity(std::int64_t n) {
  Matrix m(n, n);
  for (std::int64_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::RandomUniform(std::int64_t rows, std::int64_t cols, float lo,
                             float hi, Rng& rng) {
  Matrix m(rows, cols);
  for (std::int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::RandomNormal(std::int64_t rows, std::int64_t cols, float mean,
                            float stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (std::int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Normal(mean, stddev);
  }
  return m;
}

Matrix Matrix::Row(std::int64_t r) const {
  E2GCL_CHECK(r >= 0 && r < rows_);
  Matrix out(1, cols_);
  std::memcpy(out.data(), RowPtr(r), sizeof(float) * cols_);
  return out;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool Matrix::operator==(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]\n";
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) {
      os << (c == 0 ? "" : " ") << (*this)(r, c);
    }
    os << "\n";
  }
  return os.str();
}

namespace {

void CheckSameShape(const Matrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                  "shape mismatch: %lld x %lld vs %lld x %lld",
                  static_cast<long long>(a.rows()),
                  static_cast<long long>(a.cols()),
                  static_cast<long long>(b.rows()),
                  static_cast<long long>(b.cols()));
}

// Elements per chunk for flat element-wise loops.
constexpr std::int64_t kFlatGrain = std::int64_t{1} << 15;

// Row floor for kernels whose chunking changes float-reduction order
// (per-chunk partials). Below this many rows there is a single chunk, so
// small inputs keep the exact serial summation order.
constexpr std::int64_t kReduceRowFloor = 512;

/// Telemetry for an (m x k) * (k x n) product: call count, fused
/// multiply-add count, and the touched byte volume (a + b + c, float32).
void RecordMatMulMetrics(std::int64_t m, std::int64_t k, std::int64_t n) {
  if (!ObsEnabled()) return;
  static const Counter calls = Counter::Get("matmul.calls");
  static const Counter fmas = Counter::Get("matmul.fmas");
  static const Counter bytes = Counter::Get("matmul.bytes");
  calls.Increment();
  fmas.Add(static_cast<std::uint64_t>(m * k * n));
  bytes.Add(static_cast<std::uint64_t>((m * k + k * n + m * n) *
                                       static_cast<std::int64_t>(
                                           sizeof(float))));
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.cols() == b.rows(), "matmul inner-dim mismatch");
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  RecordMatMulMetrics(m, k, n);
  Matrix c(m, n);
  // Row-chunked over the output: each output row is owned by exactly one
  // chunk, so the parallel result is bit-identical to the serial one at
  // any thread count. The kernel itself (i-k-j order with a register-
  // resident C tile under AVX2) lives in tensor/simd/.
  ParallelFor(0, m, GrainForCost(k * n), [&](std::int64_t rb, std::int64_t re) {
    simd::GemmRows(a.data(), b.data(), c.data(), rb, re, k, n);
  });
  return c;
}

Matrix MatMulTransposedB(const Matrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.cols() == b.cols(), "matmul(B^T) inner-dim mismatch");
  const std::int64_t m = a.rows(), k = a.cols(), n = b.rows();
  RecordMatMulMetrics(m, k, n);
  Matrix c(m, n);
  ParallelFor(0, m, GrainForCost(k * n), [&](std::int64_t rb, std::int64_t re) {
    simd::GemmTransBRows(a.data(), b.data(), c.data(), rb, re, k, n);
  });
  return c;
}

Matrix MatMulTransposedA(const Matrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.rows() == b.rows(), "matmul(A^T) inner-dim mismatch");
  const std::int64_t m = a.cols(), k = a.rows(), n = b.cols();
  RecordMatMulMetrics(m, k, n);
  Matrix c(m, n);
  // The reduction runs over k (the shared row dimension), so output rows
  // cannot be assigned to single chunks. Instead k is cut into fixed
  // size-based chunks, each accumulating into its own m x n partial;
  // partials are reduced in ascending chunk order, which keeps the result
  // independent of the thread count. A single chunk (small k) follows the
  // exact serial path.
  const std::int64_t grain =
      std::max({kReduceRowFloor, GrainForCost(m * n), (k + 63) / 64});
  const std::int64_t chunks = NumChunks(k, grain);
  auto accumulate = [&](Matrix& dst, std::int64_t pb, std::int64_t pe) {
    for (std::int64_t p = pb; p < pe; ++p) {
      const float* arow = a.RowPtr(p);
      const float* brow = b.RowPtr(p);
      for (std::int64_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        simd::Axpy(dst.RowPtr(i), av, brow, n);
      }
    }
  };
  if (chunks <= 1) {
    accumulate(c, 0, k);
    return c;
  }
  std::vector<Matrix> partials(chunks);
  ParallelForChunks(0, k, grain,
                    [&](std::int64_t chunk, std::int64_t pb, std::int64_t pe) {
                      partials[chunk] = Matrix(m, n);
                      accumulate(partials[chunk], pb, pe);
                    });
  for (const Matrix& part : partials) AddInPlace(c, part);
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  AddInPlace(c, b);
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  AxpyInPlace(c, -1.0f, b);
  return c;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  ParallelFor(0, c.size(), kFlatGrain, [&](std::int64_t ib, std::int64_t ie) {
    for (std::int64_t i = ib; i < ie; ++i) c.data()[i] *= b.data()[i];
  });
  return c;
}

Matrix Scale(const Matrix& a, float alpha) {
  Matrix c = a;
  ParallelFor(0, c.size(), kFlatGrain, [&](std::int64_t ib, std::int64_t ie) {
    simd::Scale(c.data() + ib, alpha, ie - ib);
  });
  return c;
}

void AxpyInPlace(Matrix& a, float alpha, const Matrix& b) {
  CheckSameShape(a, b);
  ParallelFor(0, a.size(), kFlatGrain, [&](std::int64_t ib, std::int64_t ie) {
    simd::Axpy(a.data() + ib, alpha, b.data() + ib, ie - ib);
  });
}

void AddInPlace(Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  // alpha == 1.0f makes the Axpy FMA exact, so this matches plain
  // element-wise addition bit for bit in every backend.
  ParallelFor(0, a.size(), kFlatGrain, [&](std::int64_t ib, std::int64_t ie) {
    simd::Axpy(a.data() + ib, 1.0f, b.data() + ib, ie - ib);
  });
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  ParallelFor(0, a.rows(), GrainForCost(a.cols()),
              [&](std::int64_t rb, std::int64_t re) {
                for (std::int64_t r = rb; r < re; ++r) {
                  for (std::int64_t c = 0; c < a.cols(); ++c) t(c, r) = a(r, c);
                }
              });
  return t;
}

float SumAll(const Matrix& a) {
  // Per-chunk accumulation in double (reduced in chunk order) to keep
  // reductions accurate for the large matrices the benches touch.
  const std::int64_t chunks = NumChunks(a.size(), kFlatGrain * 2);
  std::vector<double> partial(std::max<std::int64_t>(1, chunks), 0.0);
  ParallelForChunks(0, a.size(), kFlatGrain * 2,
                    [&](std::int64_t chunk, std::int64_t ib, std::int64_t ie) {
                      partial[chunk] = simd::SumD(a.data() + ib, ie - ib);
                    });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return static_cast<float>(acc);
}

float MeanAll(const Matrix& a) {
  E2GCL_CHECK(a.size() > 0);
  return SumAll(a) / static_cast<float>(a.size());
}

float FrobeniusNorm(const Matrix& a) {
  const std::int64_t chunks = NumChunks(a.size(), kFlatGrain * 2);
  std::vector<double> partial(std::max<std::int64_t>(1, chunks), 0.0);
  ParallelForChunks(0, a.size(), kFlatGrain * 2,
                    [&](std::int64_t chunk, std::int64_t ib, std::int64_t ie) {
                      partial[chunk] =
                          simd::SquaredNormD(a.data() + ib, ie - ib);
                    });
  double acc = 0.0;
  for (double p : partial) acc += p;
  return static_cast<float>(std::sqrt(acc));
}

Matrix RowSums(const Matrix& a) {
  Matrix s(a.rows(), 1);
  ParallelFor(0, a.rows(), GrainForCost(a.cols()),
              [&](std::int64_t rb, std::int64_t re) {
                for (std::int64_t r = rb; r < re; ++r) {
                  s(r, 0) =
                      static_cast<float>(simd::SumD(a.RowPtr(r), a.cols()));
                }
              });
  return s;
}

Matrix ColSums(const Matrix& a) {
  Matrix s(1, a.cols());
  // Reduction over rows: per-chunk 1 x cols partials, combined in chunk
  // order so the summation order is fixed regardless of thread count.
  const std::int64_t grain = std::max(kReduceRowFloor, GrainForCost(a.cols()));
  const std::int64_t chunks = NumChunks(a.rows(), grain);
  if (chunks <= 1) {
    for (std::int64_t r = 0; r < a.rows(); ++r) {
      const float* row = a.RowPtr(r);
      for (std::int64_t c = 0; c < a.cols(); ++c) s(0, c) += row[c];
    }
    return s;
  }
  std::vector<Matrix> partials(chunks);
  ParallelForChunks(0, a.rows(), grain,
                    [&](std::int64_t chunk, std::int64_t rb, std::int64_t re) {
                      Matrix part(1, a.cols());
                      for (std::int64_t r = rb; r < re; ++r) {
                        const float* row = a.RowPtr(r);
                        for (std::int64_t c = 0; c < a.cols(); ++c) {
                          part(0, c) += row[c];
                        }
                      }
                      partials[chunk] = std::move(part);
                    });
  for (const Matrix& part : partials) AddInPlace(s, part);
  return s;
}

Matrix RowL2Norms(const Matrix& a) {
  Matrix s(a.rows(), 1);
  ParallelFor(0, a.rows(), GrainForCost(a.cols()),
              [&](std::int64_t rb, std::int64_t re) {
                for (std::int64_t r = rb; r < re; ++r) {
                  s(r, 0) = static_cast<float>(
                      std::sqrt(simd::SquaredNormD(a.RowPtr(r), a.cols())));
                }
              });
  return s;
}

Matrix NormalizeRowsL2(const Matrix& a, float eps) {
  // Fused per-row kernel: norm (double accumulate) and the scale pass in
  // one sweep over the row; rows with norm <= eps are copied unchanged.
  Matrix out(a.rows(), a.cols());
  ParallelFor(0, a.rows(), GrainForCost(a.cols()),
              [&](std::int64_t rb, std::int64_t re) {
                for (std::int64_t r = rb; r < re; ++r) {
                  simd::NormalizeRowL2(out.RowPtr(r), a.RowPtr(r), a.cols(),
                                       eps);
                }
              });
  return out;
}

float RowSquaredDistance(const Matrix& a, std::int64_t r, const Matrix& b,
                         std::int64_t s) {
  E2GCL_CHECK(a.cols() == b.cols());
  return simd::SquaredDistance(a.RowPtr(r), b.RowPtr(s), a.cols());
}

float RowDistance(const Matrix& a, std::int64_t r, const Matrix& b,
                  std::int64_t s) {
  return std::sqrt(RowSquaredDistance(a, r, b, s));
}

Matrix GatherRows(const Matrix& a, const std::vector<std::int64_t>& indices) {
  Matrix out(static_cast<std::int64_t>(indices.size()), a.cols());
  ParallelFor(0, out.rows(), GrainForCost(a.cols()),
              [&](std::int64_t ib, std::int64_t ie) {
                for (std::int64_t i = ib; i < ie; ++i) {
                  const std::int64_t r = indices[i];
                  E2GCL_CHECK(r >= 0 && r < a.rows());
                  std::memcpy(out.RowPtr(i), a.RowPtr(r),
                              sizeof(float) * a.cols());
                }
              });
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  ParallelFor(0, a.rows(), GrainForCost(a.cols() * 4),
              [&](std::int64_t rb, std::int64_t re) {
                for (std::int64_t r = rb; r < re; ++r) {
                  const float* in = a.RowPtr(r);
                  float* o = out.RowPtr(r);
                  float mx = in[0];
                  for (std::int64_t c = 1; c < a.cols(); ++c) {
                    mx = std::max(mx, in[c]);
                  }
                  float denom = 0.0f;
                  for (std::int64_t c = 0; c < a.cols(); ++c) {
                    o[c] = std::exp(in[c] - mx);
                    denom += o[c];
                  }
                  const float inv = 1.0f / denom;
                  for (std::int64_t c = 0; c < a.cols(); ++c) o[c] *= inv;
                }
              });
  return out;
}

bool AllFinite(const Matrix& a) {
  // A logical AND over entries is order-insensitive, so per-chunk partial
  // results need no ordered reduce; they are still combined in chunk order
  // for uniformity with the other reductions.
  const std::int64_t chunks = NumChunks(a.size(), kFlatGrain * 2);
  std::vector<char> partial(std::max<std::int64_t>(1, chunks), 1);
  ParallelForChunks(0, a.size(), kFlatGrain * 2,
                    [&](std::int64_t chunk, std::int64_t ib, std::int64_t ie) {
                      char ok = 1;
                      for (std::int64_t i = ib; i < ie; ++i) {
                        if (!std::isfinite(a.data()[i])) {
                          ok = 0;
                          break;
                        }
                      }
                      partial[chunk] = ok;
                    });
  for (char p : partial) {
    if (!p) return false;
  }
  return true;
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  // Max is order-insensitive, so per-chunk maxima need no ordered reduce,
  // but we still combine them in chunk order for uniformity.
  const std::int64_t chunks = NumChunks(a.size(), kFlatGrain * 2);
  std::vector<float> partial(std::max<std::int64_t>(1, chunks), 0.0f);
  ParallelForChunks(0, a.size(), kFlatGrain * 2,
                    [&](std::int64_t chunk, std::int64_t ib, std::int64_t ie) {
                      float mx = 0.0f;
                      for (std::int64_t i = ib; i < ie; ++i) {
                        mx = std::max(mx, std::fabs(a.data()[i] - b.data()[i]));
                      }
                      partial[chunk] = mx;
                    });
  float mx = 0.0f;
  for (float p : partial) mx = std::max(mx, p);
  return mx;
}

}  // namespace e2gcl
