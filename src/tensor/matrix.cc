#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "tensor/check.h"

namespace e2gcl {

Matrix::Matrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {
  E2GCL_CHECK(rows >= 0 && cols >= 0);
}

Matrix::Matrix(std::int64_t rows, std::int64_t cols, float value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {
  E2GCL_CHECK(rows >= 0 && cols >= 0);
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  const std::int64_t r = static_cast<std::int64_t>(rows.size());
  const std::int64_t c = static_cast<std::int64_t>(rows[0].size());
  Matrix m(r, c);
  for (std::int64_t i = 0; i < r; ++i) {
    E2GCL_CHECK(static_cast<std::int64_t>(rows[i].size()) == c);
    std::copy(rows[i].begin(), rows[i].end(), m.RowPtr(i));
  }
  return m;
}

Matrix Matrix::Identity(std::int64_t n) {
  Matrix m(n, n);
  for (std::int64_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::RandomUniform(std::int64_t rows, std::int64_t cols, float lo,
                             float hi, Rng& rng) {
  Matrix m(rows, cols);
  for (std::int64_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::RandomNormal(std::int64_t rows, std::int64_t cols, float mean,
                            float stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (std::int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Normal(mean, stddev);
  }
  return m;
}

Matrix Matrix::Row(std::int64_t r) const {
  E2GCL_CHECK(r >= 0 && r < rows_);
  Matrix out(1, cols_);
  std::memcpy(out.data(), RowPtr(r), sizeof(float) * cols_);
  return out;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

bool Matrix::operator==(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]\n";
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) {
      os << (c == 0 ? "" : " ") << (*this)(r, c);
    }
    os << "\n";
  }
  return os.str();
}

namespace {

void CheckSameShape(const Matrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(),
                  "shape mismatch: %lld x %lld vs %lld x %lld",
                  static_cast<long long>(a.rows()),
                  static_cast<long long>(a.cols()),
                  static_cast<long long>(b.rows()),
                  static_cast<long long>(b.cols()));
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.cols() == b.rows(), "matmul inner-dim mismatch");
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  // i-k-j loop order: streams over b and c rows; good cache behaviour
  // without blocking for the sizes this library runs at.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c.RowPtr(i);
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.RowPtr(p);
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransposedB(const Matrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.cols() == b.cols(), "matmul(B^T) inner-dim mismatch");
  const std::int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a.RowPtr(i);
    float* crow = c.RowPtr(i);
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b.RowPtr(j);
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

Matrix MatMulTransposedA(const Matrix& a, const Matrix& b) {
  E2GCL_CHECK_MSG(a.rows() == b.rows(), "matmul(A^T) inner-dim mismatch");
  const std::int64_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a.RowPtr(p);
    const float* brow = b.RowPtr(p);
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.RowPtr(i);
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  AddInPlace(c, b);
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  AxpyInPlace(c, -1.0f, b);
  return c;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  for (std::int64_t i = 0; i < c.size(); ++i) c.data()[i] *= b.data()[i];
  return c;
}

Matrix Scale(const Matrix& a, float alpha) {
  Matrix c = a;
  for (std::int64_t i = 0; i < c.size(); ++i) c.data()[i] *= alpha;
  return c;
}

void AxpyInPlace(Matrix& a, float alpha, const Matrix& b) {
  CheckSameShape(a, b);
  for (std::int64_t i = 0; i < a.size(); ++i) a.data()[i] += alpha * b.data()[i];
}

void AddInPlace(Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  for (std::int64_t i = 0; i < a.size(); ++i) a.data()[i] += b.data()[i];
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t c = 0; c < a.cols(); ++c) t(c, r) = a(r, c);
  }
  return t;
}

float SumAll(const Matrix& a) {
  // Pairwise-ish accumulation in double to keep reductions accurate for
  // the large matrices the benches touch.
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) acc += a.data()[i];
  return static_cast<float>(acc);
}

float MeanAll(const Matrix& a) {
  E2GCL_CHECK(a.size() > 0);
  return SumAll(a) / static_cast<float>(a.size());
}

float FrobeniusNorm(const Matrix& a) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * a.data()[i];
  }
  return static_cast<float>(std::sqrt(acc));
}

Matrix RowSums(const Matrix& a) {
  Matrix s(a.rows(), 1);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const float* row = a.RowPtr(r);
    for (std::int64_t c = 0; c < a.cols(); ++c) acc += row[c];
    s(r, 0) = static_cast<float>(acc);
  }
  return s;
}

Matrix ColSums(const Matrix& a) {
  Matrix s(1, a.cols());
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* row = a.RowPtr(r);
    for (std::int64_t c = 0; c < a.cols(); ++c) s(0, c) += row[c];
  }
  return s;
}

Matrix RowL2Norms(const Matrix& a) {
  Matrix s(a.rows(), 1);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const float* row = a.RowPtr(r);
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      acc += static_cast<double>(row[c]) * row[c];
    }
    s(r, 0) = static_cast<float>(std::sqrt(acc));
  }
  return s;
}

Matrix NormalizeRowsL2(const Matrix& a, float eps) {
  Matrix out = a;
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const float* row = a.RowPtr(r);
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      acc += static_cast<double>(row[c]) * row[c];
    }
    const float norm = static_cast<float>(std::sqrt(acc));
    if (norm <= eps) continue;
    float* orow = out.RowPtr(r);
    const float inv = 1.0f / norm;
    for (std::int64_t c = 0; c < a.cols(); ++c) orow[c] *= inv;
  }
  return out;
}

float RowSquaredDistance(const Matrix& a, std::int64_t r, const Matrix& b,
                         std::int64_t s) {
  E2GCL_CHECK(a.cols() == b.cols());
  const float* ar = a.RowPtr(r);
  const float* br = b.RowPtr(s);
  float acc = 0.0f;
  for (std::int64_t c = 0; c < a.cols(); ++c) {
    const float d = ar[c] - br[c];
    acc += d * d;
  }
  return acc;
}

float RowDistance(const Matrix& a, std::int64_t r, const Matrix& b,
                  std::int64_t s) {
  return std::sqrt(RowSquaredDistance(a, r, b, s));
}

Matrix GatherRows(const Matrix& a, const std::vector<std::int64_t>& indices) {
  Matrix out(static_cast<std::int64_t>(indices.size()), a.cols());
  for (std::int64_t i = 0; i < out.rows(); ++i) {
    const std::int64_t r = indices[i];
    E2GCL_CHECK(r >= 0 && r < a.rows());
    std::memcpy(out.RowPtr(i), a.RowPtr(r), sizeof(float) * a.cols());
  }
  return out;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    const float* in = a.RowPtr(r);
    float* o = out.RowPtr(r);
    float mx = in[0];
    for (std::int64_t c = 1; c < a.cols(); ++c) mx = std::max(mx, in[c]);
    float denom = 0.0f;
    for (std::int64_t c = 0; c < a.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += o[c];
    }
    const float inv = 1.0f / denom;
    for (std::int64_t c = 0; c < a.cols(); ++c) o[c] *= inv;
  }
  return out;
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  float mx = 0.0f;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::fabs(a.data()[i] - b.data()[i]));
  }
  return mx;
}

}  // namespace e2gcl
