#include "parallel/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "obs/metrics.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

/// True while the current thread is executing pool chunks; nested Run()
/// calls from such a thread execute inline to avoid self-deadlock.
thread_local bool t_in_parallel_region = false;

int ClampThreads(long n) {
  return static_cast<int>(std::clamp<long>(n, 1, 1024));
}

int DefaultNumThreads() {
  if (const char* env = std::getenv("E2GCL_NUM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return ClampThreads(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return ClampThreads(hw == 0 ? 1 : static_cast<long>(hw));
}

Mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool E2GCL_GUARDED_BY(g_pool_mu);
/// 0 = not overridden via SetNumThreads.
int g_requested_threads E2GCL_GUARDED_BY(g_pool_mu) = 0;

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(ClampThreads(num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    // Notified under the lock (project convention): wait-morphing keeps
    // this cheap and lets the thread-safety analysis pair the notify
    // with the guarded shutdown_ write.
    job_cv_.NotifyAll();
  }
  for (std::thread& w : workers_) w.join();
}

std::int64_t ThreadPool::DrainCurrentJob() {
  std::int64_t ran = 0;
  for (;;) {
    const std::function<void(std::int64_t)>* fn;
    std::int64_t chunk;
    {
      MutexLock lock(mu_);
      if (next_chunk_ >= job_chunks_) return ran;
      chunk = next_chunk_++;
      fn = job_fn_;
    }
    // The user callback runs with mu_ dropped: chunks execute in
    // parallel and fn may itself submit (inline) nested jobs.
    try {
      (*fn)(chunk);
    } catch (...) {
      MutexLock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    ++ran;
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_in_parallel_region = true;
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!shutdown_ && !(generation_ != seen_generation &&
                             next_chunk_ < job_chunks_)) {
        job_cv_.Wait(lock);
      }
      if (shutdown_) return;
      seen_generation = generation_;
    }
    const std::int64_t ran = DrainCurrentJob();
    if (ran > 0 && ObsEnabled()) {
      // Which worker claims which chunk is scheduling-dependent, so
      // utilization is a gauge, not a counter (see obs/metrics.h).
      static const Gauge worker_chunks = Gauge::Get("parallel.worker_chunks");
      worker_chunks.Add(ran);
    }
  }
}

void ThreadPool::Run(std::int64_t num_chunks,
                     const std::function<void(std::int64_t)>& fn) {
  if (num_chunks <= 0) return;
  if (ObsEnabled()) {
    // Recorded before the inline-path branch: chunk counts come from
    // size-based splitting, so these counters are thread-count
    // deterministic. Scheduling-dependent quantities below are gauges.
    static const Counter jobs = Counter::Get("parallel.jobs");
    static const Counter chunks = Counter::Get("parallel.chunks");
    static const Histogram chunks_per_job = Histogram::Get(
        "parallel.chunks_per_job", {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024});
    jobs.Increment();
    chunks.Add(static_cast<std::uint64_t>(num_chunks));
    chunks_per_job.Record(num_chunks);
  }
  if (num_chunks == 1 || num_threads_ == 1 || t_in_parallel_region) {
    for (std::int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }

  static const Gauge queue_depth = Gauge::Get("parallel.queue_depth_max");
  queue_depth.Max(num_chunks);

  MutexLock run_lock(run_mu_);
  {
    MutexLock lock(mu_);
    job_fn_ = &fn;
    job_chunks_ = num_chunks;
    next_chunk_ = 0;
    pending_ = num_chunks;
    first_error_ = nullptr;
    ++generation_;
    job_cv_.NotifyAll();
  }

  t_in_parallel_region = true;
  DrainCurrentJob();
  t_in_parallel_region = false;

  std::exception_ptr err;
  {
    MutexLock lock(mu_);
    while (pending_ != 0) done_cv_.Wait(lock);
    job_fn_ = nullptr;
    job_chunks_ = 0;
    err = first_error_;
  }
  if (err) std::rethrow_exception(err);
}

ThreadPool& GlobalThreadPool() {
  MutexLock lock(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(
        g_requested_threads > 0 ? g_requested_threads : DefaultNumThreads());
  }
  return *g_pool;
}

int GetNumThreads() {
  MutexLock lock(g_pool_mu);
  if (g_pool) return g_pool->num_threads();
  return g_requested_threads > 0 ? g_requested_threads : DefaultNumThreads();
}

void SetNumThreads(int num_threads) {
  E2GCL_CHECK(num_threads >= 1);
  MutexLock lock(g_pool_mu);
  g_requested_threads = ClampThreads(num_threads);
  g_pool.reset();  // next GlobalThreadPool() call respawns at the new size
}

}  // namespace e2gcl
