#ifndef E2GCL_PARALLEL_THREAD_POOL_H_
#define E2GCL_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace e2gcl {

/// Persistent worker-thread pool used by every parallel kernel.
///
/// The pool hands out *chunk indices* [0, num_chunks) to its workers and
/// the calling thread; the mapping from chunks to threads is dynamic
/// (work-stealing via a shared counter), but chunk *contents* are defined
/// entirely by the caller, so determinism is a property of the chunking
/// scheme, never of the schedule. See parallel_for.h for the fixed,
/// size-based chunking that all kernels use.
///
/// A pool of size n runs chunks on n-1 dedicated workers plus the calling
/// thread. Calls from inside a pool thread (nested parallelism) execute
/// inline on that thread, so kernels may freely call other kernels.
class ThreadPool {
 public:
  /// Spawns num_threads - 1 workers (the caller is the n-th executor).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes fn(chunk) for every chunk in [0, num_chunks), distributed
  /// across the pool and the calling thread. Blocks until all chunks have
  /// finished. Exceptions thrown by fn are rethrown (first one wins).
  /// Concurrent top-level Run() calls are serialized; calls from inside a
  /// worker run inline.
  void Run(std::int64_t num_chunks, const std::function<void(std::int64_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims chunks from the current job until none remain. Returns the
  /// number of chunks this thread executed.
  std::int64_t DrainCurrentJob();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;  // Run() waits for completion
  const std::function<void(std::int64_t)>* job_fn_ = nullptr;
  std::int64_t job_chunks_ = 0;
  std::int64_t next_chunk_ = 0;    // next unclaimed chunk
  std::int64_t pending_ = 0;       // chunks not yet finished
  std::uint64_t generation_ = 0;   // bumped per job so workers re-wake
  std::exception_ptr first_error_;
  bool shutdown_ = false;

  std::mutex run_mu_;  // serializes top-level Run() calls
};

/// The process-wide pool used by all kernels, created on first use with
/// GetNumThreads() threads. Not destroyed until process exit.
ThreadPool& GlobalThreadPool();

/// Thread count the global pool uses: the value of SetNumThreads() if
/// called, else the E2GCL_NUM_THREADS environment variable, else
/// std::thread::hardware_concurrency().
int GetNumThreads();

/// Re-sizes the global pool (tears down and respawns workers). Intended
/// for tests and benchmarks; must not race with in-flight kernels.
/// Values are clamped to [1, 1024]. Thread count never affects results —
/// only wall-clock — because all kernels chunk by size, not by threads.
void SetNumThreads(int num_threads);

}  // namespace e2gcl

#endif  // E2GCL_PARALLEL_THREAD_POOL_H_
