#ifndef E2GCL_PARALLEL_THREAD_POOL_H_
#define E2GCL_PARALLEL_THREAD_POOL_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace e2gcl {

/// Persistent worker-thread pool used by every parallel kernel.
///
/// The pool hands out *chunk indices* [0, num_chunks) to its workers and
/// the calling thread; the mapping from chunks to threads is dynamic
/// (work-stealing via a shared counter), but chunk *contents* are defined
/// entirely by the caller, so determinism is a property of the chunking
/// scheme, never of the schedule. See parallel_for.h for the fixed,
/// size-based chunking that all kernels use.
///
/// A pool of size n runs chunks on n-1 dedicated workers plus the calling
/// thread. Calls from inside a pool thread (nested parallelism) execute
/// inline on that thread, so kernels may freely call other kernels.
class ThreadPool {
 public:
  /// Spawns num_threads - 1 workers (the caller is the n-th executor).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes fn(chunk) for every chunk in [0, num_chunks), distributed
  /// across the pool and the calling thread. Blocks until all chunks have
  /// finished. Exceptions thrown by fn are rethrown (first one wins).
  /// Concurrent top-level Run() calls are serialized; calls from inside a
  /// worker run inline.
  void Run(std::int64_t num_chunks, const std::function<void(std::int64_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims chunks from the current job until none remain. Returns the
  /// number of chunks this thread executed. Acquires mu_ internally per
  /// chunk; callers must not hold it.
  std::int64_t DrainCurrentJob() E2GCL_EXCLUDES(mu_);

  const int num_threads_;
  std::vector<std::thread> workers_;

  // e2gcl-lock-order: run_mu_ < mu_
  /// Serializes top-level Run() calls; always taken before mu_.
  Mutex run_mu_ E2GCL_ACQUIRED_BEFORE(mu_);
  Mutex mu_;
  CondVar job_cv_ E2GCL_GUARDED_BY(mu_);   // workers wait for a new job
  CondVar done_cv_ E2GCL_GUARDED_BY(mu_);  // Run() waits for completion
  const std::function<void(std::int64_t)>* job_fn_ E2GCL_GUARDED_BY(mu_) =
      nullptr;
  std::int64_t job_chunks_ E2GCL_GUARDED_BY(mu_) = 0;
  /// Next unclaimed chunk.
  std::int64_t next_chunk_ E2GCL_GUARDED_BY(mu_) = 0;
  /// Chunks not yet finished.
  std::int64_t pending_ E2GCL_GUARDED_BY(mu_) = 0;
  /// Bumped per job so workers re-wake.
  std::uint64_t generation_ E2GCL_GUARDED_BY(mu_) = 0;
  std::exception_ptr first_error_ E2GCL_GUARDED_BY(mu_);
  bool shutdown_ E2GCL_GUARDED_BY(mu_) = false;
};

/// The process-wide pool used by all kernels, created on first use with
/// GetNumThreads() threads. Not destroyed until process exit.
ThreadPool& GlobalThreadPool();

/// Thread count the global pool uses: the value of SetNumThreads() if
/// called, else the E2GCL_NUM_THREADS environment variable, else
/// std::thread::hardware_concurrency().
int GetNumThreads();

/// Re-sizes the global pool (tears down and respawns workers). Intended
/// for tests and benchmarks; must not race with in-flight kernels.
/// Values are clamped to [1, 1024]. Thread count never affects results —
/// only wall-clock — because all kernels chunk by size, not by threads.
void SetNumThreads(int num_threads);

}  // namespace e2gcl

#endif  // E2GCL_PARALLEL_THREAD_POOL_H_
