#ifndef E2GCL_PARALLEL_PARALLEL_FOR_H_
#define E2GCL_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <cstdint>

#include "parallel/thread_pool.h"

namespace e2gcl {

/// Fixed, size-based chunking.
///
/// The index range [begin, end) is split into ceil(n / grain) chunks of
/// `grain` consecutive indices (last chunk may be short). Chunk count and
/// boundaries depend ONLY on the range and the grain — never on the
/// thread count — so a kernel that (a) writes disjoint outputs per chunk
/// and (b) reduces per-chunk partials in ascending chunk order produces
/// bit-identical results at any pool size. This is the determinism
/// contract every kernel in the library relies on; see DESIGN.md
/// "Threading model".

/// Number of chunks the range [0, n) splits into at the given grain.
inline std::int64_t NumChunks(std::int64_t n, std::int64_t grain) {
  if (n <= 0) return 0;
  grain = std::max<std::int64_t>(1, grain);
  return (n + grain - 1) / grain;
}

/// Runs fn(chunk_index, chunk_begin, chunk_end) for every chunk of
/// [begin, end). Chunks run concurrently on the global pool; the call
/// blocks until all chunks finish. Use the chunk index to address
/// per-chunk partial accumulators, then reduce them in index order on
/// the calling thread.
template <typename Fn>
void ParallelForChunks(std::int64_t begin, std::int64_t end,
                       std::int64_t grain, const Fn& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = NumChunks(n, grain);
  if (chunks == 1) {
    fn(std::int64_t{0}, begin, end);
    return;
  }
  GlobalThreadPool().Run(chunks, [&](std::int64_t c) {
    const std::int64_t b = begin + c * grain;
    const std::int64_t e = std::min(end, b + grain);
    fn(c, b, e);
  });
}

/// Runs fn(chunk_begin, chunk_end) for every chunk of [begin, end).
/// For loops whose iterations write disjoint outputs (e.g. one output
/// row per index); such kernels are bit-identical to their serial form.
template <typename Fn>
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const Fn& fn) {
  ParallelForChunks(begin, end, grain,
                    [&](std::int64_t, std::int64_t b, std::int64_t e) {
                      fn(b, e);
                    });
}

/// Grain that targets roughly `target_ops` inner operations per chunk
/// for a loop whose per-iteration cost is `ops_per_item`. Size-based
/// only, so chunk boundaries stay independent of thread count.
inline std::int64_t GrainForCost(std::int64_t ops_per_item,
                                 std::int64_t target_ops = std::int64_t{1}
                                                           << 15) {
  ops_per_item = std::max<std::int64_t>(1, ops_per_item);
  return std::max<std::int64_t>(1, target_ops / ops_per_item);
}

}  // namespace e2gcl

#endif  // E2GCL_PARALLEL_PARALLEL_FOR_H_
