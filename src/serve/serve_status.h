#ifndef E2GCL_SERVE_SERVE_STATUS_H_
#define E2GCL_SERVE_SERVE_STATUS_H_

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace e2gcl {

/// Typed outcome of a serving call. Every response carries one, so
/// callers can distinguish a served answer (kOk/kDegraded) from a
/// fast-failed one without parsing error strings. See DESIGN.md
/// "Serving robustness model".
enum class ServeStatus : std::uint8_t {
  /// Served exactly: the answer is bit-identical to the offline encode
  /// of the response's model generation.
  kOk = 0,
  /// Served, but from the int8 approximate scan with the exact rescore
  /// skipped (load shedding). Only TopKSimilar degrades, only when the
  /// request allows it, and the response is always flagged — a degraded
  /// answer is never silent.
  kDegraded = 1,
  /// The request's deadline_us elapsed before the flusher served it.
  /// The caller has already been released; no result was produced.
  kDeadlineExceeded = 2,
  /// Admission control rejected the request at the max_queue_depth
  /// watermark. Transient: retryable.
  kOverloaded = 3,
  /// A checkpoint reload could not start because another reload is
  /// already in flight. Transient: retryable.
  kReloading = 4,
  /// The server is draining for shutdown and no longer admits work.
  kShutdown = 5,
  /// The argument (e.g. a reload checkpoint) failed validation.
  kInvalidArgument = 6,
  /// Client-side only: the transport failed (connect/send/recv error,
  /// timeout, malformed or mismatched response frame). Never valid on
  /// the wire — ServeStatusFromByte rejects it, so a server cannot
  /// fabricate one.
  kTransportError = 7,
};

/// Stable lowercase name for logs/CLI output.
inline const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kDegraded: return "degraded";
    case ServeStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ServeStatus::kOverloaded: return "overloaded";
    case ServeStatus::kReloading: return "reloading";
    case ServeStatus::kShutdown: return "shutdown";
    case ServeStatus::kInvalidArgument: return "invalid_argument";
    case ServeStatus::kTransportError: return "transport_error";
  }
  return "unknown";
}

/// Validated narrowing from an untrusted byte (the network protocol
/// carries ServeStatus values on the wire). Returns false when `byte`
/// is not a status a server may legitimately send — undefined values
/// and the client-side kTransportError — leaving `*out` untouched.
inline bool ServeStatusFromByte(std::uint8_t byte, ServeStatus* out) {
  if (byte > static_cast<std::uint8_t>(ServeStatus::kInvalidArgument)) {
    return false;
  }
  *out = static_cast<ServeStatus>(byte);
  return true;
}

/// True when the call produced an answer (exact or degraded).
inline bool ServeStatusServed(ServeStatus status) {
  return status == ServeStatus::kOk || status == ServeStatus::kDegraded;
}

/// True for rejections that a bounded retry can reasonably turn into a
/// success. Deadline expiry is not retryable here: the deadline belongs
/// to the caller, who must decide whether a later answer is still
/// useful.
inline bool ServeStatusRetryable(ServeStatus status) {
  return status == ServeStatus::kOverloaded ||
         status == ServeStatus::kReloading;
}

/// Per-request options carried by every serving call.
struct ServeRequestOptions {
  /// Fail the request with kDeadlineExceeded once this many microseconds
  /// have elapsed since submission (admission + queueing + compute).
  /// 0 = no deadline: block until served (the pre-robustness contract).
  std::int64_t deadline_us = 0;
  /// Allow the server to answer this request degraded (approximate
  /// TopK) under pressure. Callers that need the exact contract set
  /// false and keep kOk-or-rejected semantics.
  bool allow_degraded = true;
};

/// Query result of TopKSimilar: up to k nodes ordered by descending
/// dot-product score (node id ascending on ties), query node excluded.
struct TopKResult {
  std::vector<std::int64_t> nodes;
  std::vector<float> scores;
};

/// Responses: status + the model generation that produced the answer
/// (0 when the request was never admitted — rejected at the door by
/// admission control or shutdown). Within one generation every
/// served row/score is bit-identical to that generation's offline
/// encode — the tag is what makes that testable across hot reloads.
struct EmbeddingResponse {
  ServeStatus status = ServeStatus::kOk;
  std::uint64_t generation = 0;
  std::vector<float> row;
  bool served() const { return ServeStatusServed(status); }
};

struct ScoreResponse {
  ServeStatus status = ServeStatus::kOk;
  std::uint64_t generation = 0;
  float score = 0.0f;
  bool served() const { return ServeStatusServed(status); }
};

struct TopKResponse {
  ServeStatus status = ServeStatus::kOk;
  std::uint64_t generation = 0;
  TopKResult result;
  bool served() const { return ServeStatusServed(status); }
};

/// Bounded-retry policy for transient rejects (kOverloaded/kReloading):
/// exponential backoff starting at initial_backoff_us, doubling per
/// attempt, capped at max_backoff_us.
struct RetryPolicy {
  int max_attempts = 4;
  std::int64_t initial_backoff_us = 100;
  std::int64_t max_backoff_us = 10000;
  /// Total wall-clock budget across every attempt *and* backoff sleep,
  /// measured from the first call. When the budget would be exceeded by
  /// the next backoff, the helper stops retrying and returns the last
  /// response instead of sleeping into a deadline it cannot meet.
  /// 0 = unbounded (the attempts-only contract).
  std::int64_t total_deadline_us = 0;
};

/// Client helper: calls `fn` (returning any *Response type) up to
/// policy.max_attempts times, sleeping the backoff between attempts,
/// until the status stops being retryable (so terminal rejections —
/// kShutdown, kInvalidArgument, kDeadlineExceeded — are returned after
/// exactly one attempt). Returns the last response.
template <typename Fn>
auto RetryWithBackoff(const RetryPolicy& policy, Fn&& fn) -> decltype(fn()) {
  const auto start = std::chrono::steady_clock::now();
  auto response = fn();
  std::int64_t backoff_us = policy.initial_backoff_us;
  for (int attempt = 1; attempt < policy.max_attempts &&
                        ServeStatusRetryable(response.status);
       ++attempt) {
    if (policy.total_deadline_us > 0) {
      const std::int64_t elapsed_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      // Give up rather than start a sleep that lands past the budget:
      // the caller gets the transient status back while there is still
      // time to act on it.
      if (elapsed_us + backoff_us >= policy.total_deadline_us) break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    backoff_us = std::min(policy.max_backoff_us, backoff_us * 2);
    response = fn();
  }
  return response;
}

}  // namespace e2gcl

#endif  // E2GCL_SERVE_SERVE_STATUS_H_
