#include "serve/reload.h"

#include <utility>
#include <vector>

#include "serve/embedding_server.h"

namespace e2gcl {

namespace {

bool ShapesMatch(const std::vector<Var>& params,
                 const std::vector<Matrix>& values) {
  if (params.size() != values.size()) return false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].value().rows() != values[i].rows() ||
        params[i].value().cols() != values[i].cols()) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::shared_ptr<ModelState> BuildModelState(const Graph& graph,
                                            const TrainerCheckpoint& ckpt,
                                            const ServeOptions& options,
                                            std::uint64_t generation,
                                            std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::shared_ptr<ModelState>();
  };
  if (graph.num_nodes <= 0 || graph.features.empty()) {
    return fail("serving requires a non-empty graph with node features");
  }
  if (options.expected_fingerprint != 0 &&
      ckpt.config_fingerprint != options.expected_fingerprint) {
    return fail("checkpoint config fingerprint does not match the expected "
                "fingerprint");
  }
  GcnConfig config = options.encoder;
  if (config.dims.empty()) {
    if (!InferEncoderLayout(ckpt.encoder_params, &config.dims,
                            &config.bias)) {
      return fail("checkpoint encoder parameters form no consistent GCN "
                  "layer chain");
    }
  }
  // Serving is inference-only; dropout would be ignored anyway.
  config.dropout = 0.0f;
  if (config.dims.front() != graph.feature_dim()) {
    return fail("checkpoint encoder input width does not match the graph's "
                "feature dimension");
  }
  Rng rng(0);  // Initial weights are immediately overwritten.
  auto encoder = std::make_unique<GcnEncoder>(config, rng);
  if (!ShapesMatch(encoder->params().params(), ckpt.encoder_params)) {
    return fail("checkpoint encoder parameter shapes do not match the "
                "encoder configuration");
  }
  encoder->params().LoadValues(ckpt.encoder_params);

  auto state = std::make_shared<ModelState>();
  state->generation = generation;
  state->encoder = std::move(encoder);
  if (options.precompute) {
    state->full = state->encoder->Encode(graph);
  } else {
    state->cache = std::make_unique<ShardedRowCache>(options.cache_capacity,
                                                     options.cache_shards);
  }
  if (options.quantize_int8) {
    // Build the int8 table from a transient full encode; in lazy mode
    // the fp32 matrix is dropped right after, leaving the 4x-smaller
    // table as the only |V|-resident state (TopK never materializes
    // `full`).
    if (options.precompute) {
      state->quantized = QuantizedEmbeddingTable::Build(state->full);
    } else {
      state->quantized =
          QuantizedEmbeddingTable::Build(state->encoder->Encode(graph));
    }
  }
  return state;
}

}  // namespace e2gcl
