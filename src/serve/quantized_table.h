#ifndef E2GCL_SERVE_QUANTIZED_TABLE_H_
#define E2GCL_SERVE_QUANTIZED_TABLE_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace e2gcl {

/// Symmetric per-row int8 quantization of an embedding matrix, the
/// serving-side memory cut: one byte per coefficient plus one float
/// scale per row (~4x smaller than the fp32 table for typical widths).
///
/// Scheme (DESIGN.md "SIMD kernels & quantized serving"): for each row
/// `scale = maxabs / 127`, codes are `llround(value / scale)` clamped to
/// [-127, 127] (the -128 code is never produced, keeping the scheme
/// symmetric). An approximate dot score of a quantized query q against
/// row r is
///     DotI8(q.codes, r.codes) * q.scale * r.scale
/// computed with exact int32 accumulation, so scores are bit-identical
/// across SIMD backends and thread counts. The EmbeddingServer re-scores
/// the top candidates with exact fp32 rows to recover fp32 rankings (see
/// ServeOptions::rescore_factor).
class QuantizedEmbeddingTable {
 public:
  QuantizedEmbeddingTable() = default;

  /// Quantizes every row of `z` (row-parallel; deterministic).
  static QuantizedEmbeddingTable Build(const Matrix& z);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  const std::int8_t* RowPtr(std::int64_t r) const {
    return codes_.data() + r * cols_;
  }
  float scale(std::int64_t r) const {
    return scales_[static_cast<std::size_t>(r)];
  }

  /// Quantizes one fp32 query row (must have cols() entries) into
  /// `codes` (resized) and returns its scale.
  float QuantizeQuery(const float* row, std::vector<std::int8_t>* codes) const;

  /// scores[i] = approximate dot score of the quantized query against
  /// row i, for every row (row-parallel, one owned slot per row).
  void ScoreAll(const std::int8_t* query, float query_scale,
                std::vector<float>* scores) const;

  /// Resident bytes of codes + scales (the number the 4x claim is about).
  std::int64_t MemoryBytes() const {
    return static_cast<std::int64_t>(codes_.size()) +
           static_cast<std::int64_t>(scales_.size() * sizeof(float));
  }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int8_t> codes_;  // rows_ x cols_, row-major
  std::vector<float> scales_;       // per-row dequantization scale
};

}  // namespace e2gcl

#endif  // E2GCL_SERVE_QUANTIZED_TABLE_H_
