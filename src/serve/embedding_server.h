#ifndef E2GCL_SERVE_EMBEDDING_SERVER_H_
#define E2GCL_SERVE_EMBEDDING_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph.h"
#include "io/checkpoint.h"
#include "nn/gcn.h"
#include "serve/lru_cache.h"
#include "serve/quantized_table.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"

namespace e2gcl {

/// Configuration of an EmbeddingServer instance.
struct ServeOptions {
  /// Precompute every node's embedding at load time (O(1) reads, |V| x d
  /// resident memory) instead of computing L-hop frontiers lazily behind
  /// the row cache. Both modes return bit-identical rows.
  bool precompute = false;
  /// Total row budget of the lazy-mode cache and its shard count (the
  /// budget is split evenly across shards; see ShardedRowCache).
  std::int64_t cache_capacity = 4096;
  int cache_shards = 8;
  /// Micro-batching: a batch is flushed as soon as `max_batch` requests
  /// are queued OR the oldest queued request has waited
  /// `batch_deadline_us` microseconds, whichever comes first.
  /// max_batch = 1 disables batching (every request served solo).
  std::int64_t max_batch = 32;
  std::int64_t batch_deadline_us = 200;
  /// How long an idle flusher lingers for more requests before flushing
  /// a partial batch. 0 (the default) is greedy: whatever is queued when
  /// the flusher is free ships immediately — under load batches still
  /// form naturally while the previous batch is being served, and a lone
  /// request never waits out the deadline. A positive gap trades latency
  /// for bigger batches; `batch_deadline_us` stays the hard cap either
  /// way.
  std::int64_t batch_gap_us = 0;
  /// Serve TopKSimilar from a symmetric int8 per-row quantized copy of
  /// the embedding table (built once at startup; ~4x smaller than the
  /// fp32 matrix that lazy TopK would otherwise materialize). The
  /// approximate scan picks k * rescore_factor candidates, which are
  /// re-scored with exact fp32 rows before the final top-k cut;
  /// rescore_factor = 0 skips the rescore and returns approximate
  /// scores. GetEmbedding/ScoreLink always stay exact fp32.
  bool quantize_int8 = false;
  std::int64_t rescore_factor = 4;
  /// When nonzero, loading refuses a checkpoint whose config fingerprint
  /// differs (same contract as trainer resume).
  std::uint64_t expected_fingerprint = 0;
  /// Encoder architecture. When `encoder.dims` is empty (the serving
  /// default — note GcnConfig's own default dims are non-empty) the
  /// widths and bias flag are inferred from the checkpoint parameter
  /// shapes (InferEncoderLayout) and the remaining knobs keep the
  /// trainer defaults (ReLU, linear final layer, no PReLU).
  GcnConfig encoder = {.dims = {}};
};

/// Result of a TopKSimilar query: up to k nodes ordered by descending
/// dot-product score (node id ascending on ties), query node excluded.
struct TopKResult {
  std::vector<std::int64_t> nodes;
  std::vector<float> scores;
};

/// Serves frozen-encoder embedding queries over one graph + checkpoint.
///
/// Three APIs — GetEmbedding, ScoreLink (dot score of the two rows, the
/// deployable analogue of the Hadamard link probe), TopKSimilar — all
/// funnel through a micro-batching queue drained by a single flusher
/// thread; the flusher computes missing rows in one frontier-batched
/// GcnEncoder::EncodeRows call per batch (riding the global thread
/// pool) and fills per-request results. Callers block until their
/// request is served; any number of threads may query concurrently.
///
/// Determinism contract: a row is bit-identical whether it is served
/// cold, from the cache, solo, or inside any batch composition, at any
/// E2GCL_NUM_THREADS — see DESIGN.md "Serving architecture".
class EmbeddingServer {
 public:
  /// Loads + validates an on-disk checkpoint (magic/version/per-section
  /// CRC32 via LoadTrainerCheckpoint, then fingerprint and shape checks)
  /// and builds a server. Returns nullptr with `*error` set on failure.
  static std::unique_ptr<EmbeddingServer> Load(const Graph& graph,
                                               const std::string& path,
                                               const ServeOptions& options,
                                               std::string* error);

  /// Same, from an in-memory checkpoint (e.g. freshly trained).
  static std::unique_ptr<EmbeddingServer> FromCheckpoint(
      const Graph& graph, const TrainerCheckpoint& ckpt,
      const ServeOptions& options, std::string* error);

  /// Prefer the factories: this constructor trusts that `encoder`
  /// already holds validated weights for `graph`.
  EmbeddingServer(const Graph& graph, std::unique_ptr<GcnEncoder> encoder,
                  const ServeOptions& options);

  /// Drains the queue (every in-flight request completes) and joins the
  /// flusher thread.
  ~EmbeddingServer();

  EmbeddingServer(const EmbeddingServer&) = delete;
  EmbeddingServer& operator=(const EmbeddingServer&) = delete;

  /// The embedding row of `node` (blocking).
  std::vector<float> GetEmbedding(std::int64_t node);

  /// Dot-product link score <z_u, z_v> (blocking).
  float ScoreLink(std::int64_t u, std::int64_t v);

  /// The k most similar nodes to `node` by dot-product score (blocking).
  TopKResult TopKSimilar(std::int64_t node, std::int64_t k);

  std::int64_t num_nodes() const { return graph_->num_nodes; }
  std::int64_t embed_dim() const {
    return encoder_->config().dims.back();
  }
  const GcnEncoder& encoder() const { return *encoder_; }
  /// Lazy-mode row cache (nullptr in precompute mode).
  const ShardedRowCache* cache() const { return cache_.get(); }
  /// Int8 table (empty unless options.quantize_int8).
  const QuantizedEmbeddingTable& quantized() const { return quantized_; }

 private:
  struct Request;

  /// Enqueues and blocks until the flusher marks the request done.
  void Submit(const std::shared_ptr<Request>& req);
  /// Single-threaded flusher: batches by size/deadline, serves, signals.
  void FlusherLoop();
  /// Serves one popped batch (runs on the flusher thread, outside mu_).
  void ProcessBatch(const std::vector<std::shared_ptr<Request>>& batch);
  /// Rows for sorted-unique `nodes`, aligned with `nodes` — cache/lazy
  /// or precomputed, depending on the mode.
  std::vector<std::vector<float>> FetchRows(
      const std::vector<std::int64_t>& nodes);
  /// The full |V| x d embedding matrix (precomputed, or materialized on
  /// first TopK in lazy mode).
  const Matrix& FullEmbeddings();
  /// Serves one TopK request from the int8 table (+ fp32 rescore).
  void ServeTopKQuantized(Request* req, const std::vector<float>& query);

  const Graph* graph_;
  CsrMatrix adj_;
  std::unique_ptr<GcnEncoder> encoder_;
  ServeOptions options_;
  std::unique_ptr<ShardedRowCache> cache_;  // lazy mode only

  /// Full embedding matrix; rows() == 0 until materialized. Only the
  /// constructor (precompute mode) and the flusher thread (first TopK)
  /// write it.
  Matrix full_;
  /// Int8 copy of the embedding table, built once at construction when
  /// options.quantize_int8 is set; immutable afterwards.
  QuantizedEmbeddingTable quantized_;

  std::mutex mu_;
  std::condition_variable queue_cv_;  // wakes the flusher
  std::condition_variable done_cv_;   // wakes blocked callers
  std::deque<std::shared_ptr<Request>> queue_;
  bool shutdown_ = false;
  std::thread flusher_;
};

}  // namespace e2gcl

#endif  // E2GCL_SERVE_EMBEDDING_SERVER_H_
