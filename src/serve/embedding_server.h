#ifndef E2GCL_SERVE_EMBEDDING_SERVER_H_
#define E2GCL_SERVE_EMBEDDING_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"
#include "graph/graph.h"
#include "io/checkpoint.h"
#include "nn/gcn.h"
#include "serve/fault_injector.h"
#include "serve/lru_cache.h"
#include "serve/quantized_table.h"
#include "serve/reload.h"
#include "serve/serve_status.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"

namespace e2gcl {

/// Configuration of an EmbeddingServer instance.
struct ServeOptions {
  /// Precompute every node's embedding at load time (O(1) reads, |V| x d
  /// resident memory) instead of computing L-hop frontiers lazily behind
  /// the row cache. Both modes return bit-identical rows.
  bool precompute = false;
  /// Total row budget of the lazy-mode cache and its shard count (the
  /// budget is split evenly across shards; see ShardedRowCache).
  std::int64_t cache_capacity = 4096;
  int cache_shards = 8;
  /// Micro-batching: a batch is flushed as soon as `max_batch` requests
  /// are queued OR the oldest queued request has waited
  /// `batch_deadline_us` microseconds, whichever comes first.
  /// max_batch = 1 disables batching (every request served solo).
  std::int64_t max_batch = 32;
  std::int64_t batch_deadline_us = 200;
  /// How long an idle flusher lingers for more requests before flushing
  /// a partial batch. 0 (the default) is greedy: whatever is queued when
  /// the flusher is free ships immediately — under load batches still
  /// form naturally while the previous batch is being served, and a lone
  /// request never waits out the deadline. A positive gap trades latency
  /// for bigger batches; `batch_deadline_us` stays the hard cap either
  /// way.
  std::int64_t batch_gap_us = 0;
  /// Serve TopKSimilar from a symmetric int8 per-row quantized copy of
  /// the embedding table (built once per model generation; ~4x smaller
  /// than the fp32 matrix that lazy TopK would otherwise materialize).
  /// The approximate scan picks k * rescore_factor candidates, which are
  /// re-scored with exact fp32 rows before the final top-k cut;
  /// rescore_factor = 0 skips the rescore and returns approximate
  /// scores. GetEmbedding/ScoreLink always stay exact fp32.
  bool quantize_int8 = false;
  std::int64_t rescore_factor = 4;
  /// Admission-control watermark: a request arriving while this many
  /// requests are already queued is rejected immediately with
  /// kOverloaded (load shedding) instead of growing the queue without
  /// bound. The bounded-retry helper (RetryWithBackoff) is the intended
  /// client response.
  std::int64_t max_queue_depth = 4096;
  /// Graceful degradation: when a TopKSimilar request that allows it
  /// arrives while at least this many requests are queued (pressure),
  /// it is answered from the int8 approximate scan with the exact
  /// rescore skipped and flagged kDegraded. 0 disables degradation.
  /// Requires quantize_int8 (without a table there is nothing cheaper
  /// to answer from, and the request is served exactly).
  std::int64_t degrade_watermark = 0;
  /// When nonzero, loading refuses a checkpoint whose config fingerprint
  /// differs (same contract as trainer resume). Hot reloads revalidate
  /// against the same fingerprint.
  std::uint64_t expected_fingerprint = 0;
  /// Encoder architecture. When `encoder.dims` is empty (the serving
  /// default — note GcnConfig's own default dims are non-empty) the
  /// widths and bias flag are inferred from the checkpoint parameter
  /// shapes (InferEncoderLayout) and the remaining knobs keep the
  /// trainer defaults (ReLU, linear final layer, no PReLU).
  GcnConfig encoder = {.dims = {}};
  /// Test-only fault hooks; unset in production (fault_injector.h).
  ServeFaultInjector fault_injector;
};

/// Serves frozen-encoder embedding queries over one graph + checkpoint.
///
/// Three APIs — GetEmbedding, ScoreLink (dot score of the two rows, the
/// deployable analogue of the Hadamard link probe), TopKSimilar — all
/// funnel through a micro-batching queue drained by a single flusher
/// thread; the flusher computes missing rows in one frontier-batched
/// GcnEncoder::EncodeRows call per batch (riding the global thread
/// pool) and fills per-request results. Any number of threads may query
/// concurrently.
///
/// Robustness layer (DESIGN.md "Serving robustness model"):
///  * Every call has a status-typed variant carrying ServeRequestOptions
///    with a deadline: expired requests fail fast with
///    kDeadlineExceeded — the caller is released at its deadline even if
///    the flusher is wedged, and an expired queued request is dropped
///    without paying its compute.
///  * Admission control sheds load at the max_queue_depth watermark
///    (kOverloaded) and degrades eligible TopK requests under pressure
///    (kDegraded, int8 approximate scan, always flagged and counted).
///  * Hot checkpoint reload: ReloadCheckpoint/ReloadFromFile build and
///    validate a fresh generation off the serving path, then swap it in
///    RCU-style. In-flight requests stay pinned to the generation they
///    were admitted under; every response is tagged with its
///    generation.
///  * Shutdown drains deterministically: queued requests are served (or
///    deadline-failed), new ones are rejected with kShutdown, and no
///    caller stays blocked past the destructor.
///
/// Determinism contract: within one model generation a row is
/// bit-identical whether it is served cold, from the cache, solo, or
/// inside any batch composition, at any E2GCL_NUM_THREADS — see
/// DESIGN.md "Serving architecture". Degraded responses are exactly the
/// approximate-scan answers (themselves deterministic), never a mix.
class EmbeddingServer {
 public:
  /// Loads + validates an on-disk checkpoint (magic/version/per-section
  /// CRC32 via LoadTrainerCheckpoint, then fingerprint and shape checks)
  /// and builds a server. Returns nullptr with `*error` set on failure.
  static std::unique_ptr<EmbeddingServer> Load(const Graph& graph,
                                               const std::string& path,
                                               const ServeOptions& options,
                                               std::string* error);

  /// Same, from an in-memory checkpoint (e.g. freshly trained).
  static std::unique_ptr<EmbeddingServer> FromCheckpoint(
      const Graph& graph, const TrainerCheckpoint& ckpt,
      const ServeOptions& options, std::string* error);

  /// Prefer the factories: this constructor trusts that `state` was
  /// built by BuildModelState for `graph` + `options`.
  EmbeddingServer(const Graph& graph, std::shared_ptr<ModelState> state,
                  const ServeOptions& options);

  /// BeginShutdown() + drain (every admitted request completes or fails
  /// its deadline) + join the flusher thread. Never blocks on callers.
  ~EmbeddingServer();

  EmbeddingServer(const EmbeddingServer&) = delete;
  EmbeddingServer& operator=(const EmbeddingServer&) = delete;

  // --- Status-typed API (deadline/admission aware). ------------------------

  /// The embedding row of `node`. Blocks at most until the request's
  /// deadline (forever when deadline_us == 0).
  EmbeddingResponse GetEmbedding(std::int64_t node,
                                 const ServeRequestOptions& request);

  /// Dot-product link score <z_u, z_v>.
  ScoreResponse ScoreLink(std::int64_t u, std::int64_t v,
                          const ServeRequestOptions& request);

  /// The k most similar nodes to `node` by dot-product score. May be
  /// answered degraded (see ServeOptions::degrade_watermark) when
  /// `request.allow_degraded` is set.
  TopKResponse TopKSimilar(std::int64_t node, std::int64_t k,
                           const ServeRequestOptions& request);

  // --- Legacy blocking API (no deadline, exact-only, aborts on a
  // rejected request — kept for callers from before the robustness
  // layer; new code should use the status-typed calls). ---------------------

  std::vector<float> GetEmbedding(std::int64_t node);
  float ScoreLink(std::int64_t u, std::int64_t v);
  TopKResult TopKSimilar(std::int64_t node, std::int64_t k);

  // --- Hot checkpoint reload. ----------------------------------------------

  /// Zero-downtime reload: validates `ckpt` with exactly the checks the
  /// initial load performs, builds the next generation (encoder +
  /// fresh cache + quantized table) off the serving path, then swaps it
  /// in atomically. Queries keep being served from the old generation
  /// for the whole build; requests already admitted finish on the
  /// generation they started on. Returns kOk (swapped), kReloading
  /// (another reload in flight), kShutdown, or kInvalidArgument
  /// (validation failed; `*error` says why and serving is untouched).
  ServeStatus ReloadCheckpoint(const TrainerCheckpoint& ckpt,
                               std::string* error = nullptr);

  /// ReloadCheckpoint from a checkpoint file (full magic/version/CRC
  /// validation; a torn or corrupt file is rejected without touching
  /// the serving state).
  ServeStatus ReloadFromFile(const std::string& path,
                             std::string* error = nullptr);

  /// Stops admitting new requests (they fail fast with kShutdown) and
  /// lets the flusher drain what was already admitted. Idempotent; the
  /// destructor calls it implicitly.
  void BeginShutdown();

  // --- Introspection. ------------------------------------------------------

  std::int64_t num_nodes() const { return graph_->num_nodes; }
  std::int64_t embed_dim() const;
  /// Current model generation (1 = initial checkpoint).
  std::uint64_t generation() const;
  /// Pins and returns the current generation (tests; survives reloads).
  std::shared_ptr<const ModelState> state() const;
  /// Requests currently queued (scheduling-dependent; tests only).
  std::int64_t queue_depth() const;
  /// Current generation's lazy-mode row cache (nullptr in precompute
  /// mode). The pointer is invalidated by a reload — use state() when
  /// reloads may run concurrently.
  const ShardedRowCache* cache() const;
  /// Current generation's int8 table (empty unless
  /// options.quantize_int8). Same reload caveat as cache().
  const QuantizedEmbeddingTable& quantized() const;

 private:
  struct Request;

  /// Admission control + enqueue + bounded wait. Returns the request's
  /// final status. Acquires mu_ internally.
  ServeStatus Submit(const std::shared_ptr<Request>& req,
                     const ServeRequestOptions& request) E2GCL_EXCLUDES(mu_);
  /// Single-threaded flusher: batches by size/deadline/generation,
  /// serves, signals.
  void FlusherLoop() E2GCL_EXCLUDES(mu_);
  /// Pops the next batch off queue_ (size/deadline/generation bounded,
  /// abandoned requests skipped). Sets *expired_any when it
  /// deadline-failed at least one request so the caller wakes waiters.
  std::vector<std::shared_ptr<Request>> PopBatchLocked(bool* expired_any)
      E2GCL_REQUIRES(mu_);
  /// Serves one popped batch (runs on the flusher thread, outside mu_).
  /// Every request in the batch is pinned to the same generation.
  void ProcessBatch(const std::vector<std::shared_ptr<Request>>& batch);
  /// Rows for sorted-unique `nodes`, aligned with `nodes` — cache/lazy
  /// or precomputed, depending on the mode.
  std::vector<std::vector<float>> FetchRows(
      ModelState& state, const std::vector<std::int64_t>& nodes);
  /// The generation's full |V| x d embedding matrix (precomputed, or
  /// materialized on first fp32 TopK in lazy mode).
  const Matrix& FullEmbeddings(ModelState& state);
  /// Serves one TopK request from the int8 table. `degraded` skips the
  /// exact rescore regardless of rescore_factor.
  void ServeTopKQuantized(ModelState& state, Request* req,
                          const std::vector<float>& query, bool degraded);

  const Graph* graph_;
  CsrMatrix adj_;
  ServeOptions options_;

  mutable Mutex mu_;
  /// Current generation; swapped under mu_ by ReloadCheckpoint. Requests
  /// pin their own shared_ptr copy at admission.
  std::shared_ptr<ModelState> state_ E2GCL_GUARDED_BY(mu_);
  CondVar queue_cv_ E2GCL_GUARDED_BY(mu_);  // wakes the flusher
  CondVar done_cv_ E2GCL_GUARDED_BY(mu_);   // wakes blocked callers
  std::deque<std::shared_ptr<Request>> queue_ E2GCL_GUARDED_BY(mu_);
  bool shutdown_ E2GCL_GUARDED_BY(mu_) = false;
  /// Single-reload gate (kReloading for the losers of the race).
  std::atomic<bool> reload_in_flight_{false};
  std::thread flusher_;
};

}  // namespace e2gcl

#endif  // E2GCL_SERVE_EMBEDDING_SERVER_H_
