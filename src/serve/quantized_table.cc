#include "serve/quantized_table.h"

#include "parallel/parallel_for.h"
#include "tensor/check.h"
#include "tensor/simd/simd.h"

namespace e2gcl {

QuantizedEmbeddingTable QuantizedEmbeddingTable::Build(const Matrix& z) {
  QuantizedEmbeddingTable t;
  t.rows_ = z.rows();
  t.cols_ = z.cols();
  t.codes_.resize(static_cast<std::size_t>(z.rows() * z.cols()));
  t.scales_.resize(static_cast<std::size_t>(z.rows()));
  // Row-parallel: each row's codes and scale are owned by one iteration,
  // and QuantizeRowI8 is a shared scalar routine, so the table is
  // bit-identical at any thread count and in every SIMD backend.
  ParallelFor(0, z.rows(), GrainForCost(z.cols()),
              [&](std::int64_t rb, std::int64_t re) {
                for (std::int64_t r = rb; r < re; ++r) {
                  t.scales_[static_cast<std::size_t>(r)] = simd::QuantizeRowI8(
                      t.codes_.data() + r * z.cols(), z.RowPtr(r), z.cols());
                }
              });
  return t;
}

float QuantizedEmbeddingTable::QuantizeQuery(
    const float* row, std::vector<std::int8_t>* codes) const {
  codes->resize(static_cast<std::size_t>(cols_));
  return simd::QuantizeRowI8(codes->data(), row, cols_);
}

void QuantizedEmbeddingTable::ScoreAll(const std::int8_t* query,
                                       float query_scale,
                                       std::vector<float>* scores) const {
  scores->resize(static_cast<std::size_t>(rows_));
  ParallelFor(0, rows_, GrainForCost(cols_),
              [&](std::int64_t rb, std::int64_t re) {
                for (std::int64_t r = rb; r < re; ++r) {
                  const std::int32_t acc = simd::DotI8(query, RowPtr(r), cols_);
                  (*scores)[static_cast<std::size_t>(r)] =
                      static_cast<float>(acc) *
                      (query_scale * scales_[static_cast<std::size_t>(r)]);
                }
              });
}

}  // namespace e2gcl
