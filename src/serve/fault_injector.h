#ifndef E2GCL_SERVE_FAULT_INJECTOR_H_
#define E2GCL_SERVE_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>

namespace e2gcl {

/// Deterministic serve-side fault-injection hooks, mirroring the
/// trainer's FaultInjector (core/trainer.h): all hooks are optional,
/// production servers leave them unset and pay one null-check per site.
/// They exist so tests/serve_robustness_test.cc can stage the failure
/// modes the robustness layer defends against — a stalled flusher, a
/// corrupted cache entry, a reload racing live queries, a saturated
/// queue — without sleeps-and-hope scheduling.
struct ServeFaultInjector {
  /// Called by the flusher thread right before it serves a popped batch
  /// (outside the queue lock). Blocking here stalls the serving path
  /// while admission, deadlines, and shutdown keep running — the stall
  /// every deadline/watermark test is built on.
  std::function<void(std::int64_t batch_size)> stall_batch;
  /// Consulted after a freshly computed row is inserted into the lazy
  /// row cache. Return true to flip a byte of the cached copy (checksum
  /// left stale), planting the corruption that the CRC-checked Get must
  /// catch and repair. The served row itself is never touched.
  std::function<bool(std::int64_t node)> corrupt_row_after_put;
  /// Called on the reloading thread after the new generation is fully
  /// built and validated, right before the pointer swap. Lets tests
  /// hold a reload in flight to order it against concurrent queries and
  /// competing reloads.
  std::function<void(std::uint64_t new_generation)> before_reload_swap;
};

}  // namespace e2gcl

#endif  // E2GCL_SERVE_FAULT_INJECTOR_H_
