#include "serve/embedding_server.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "tensor/check.h"
#include "tensor/simd/simd.h"

namespace e2gcl {

namespace {

bool ShapesMatch(const std::vector<Var>& params,
                 const std::vector<Matrix>& values) {
  if (params.size() != values.size()) return false;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].value().rows() != values[i].rows() ||
        params[i].value().cols() != values[i].cols()) {
      return false;
    }
  }
  return true;
}

void RecordRequestMetrics(std::int64_t latency_us) {
  if (!ObsEnabled()) return;
  static const Counter requests = Counter::Get("serve.requests");
  static const Histogram latency = Histogram::Get(
      "serve.latency_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000, 200000});
  requests.Increment();
  latency.Record(latency_us);
}

void RecordBatchMetrics(std::int64_t size) {
  if (!ObsEnabled()) return;
  static const Counter batches = Counter::Get("serve.batches");
  static const Histogram batch_size =
      Histogram::Get("serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
  batches.Increment();
  batch_size.Record(size);
}

void RecordCacheMetrics(std::int64_t hits, std::int64_t misses) {
  if (!ObsEnabled()) return;
  static const Counter hit_counter = Counter::Get("serve.cache.hits");
  static const Counter miss_counter = Counter::Get("serve.cache.misses");
  if (hits > 0) hit_counter.Add(static_cast<std::uint64_t>(hits));
  if (misses > 0) miss_counter.Add(static_cast<std::uint64_t>(misses));
}

void RecordRowsComputed(std::int64_t rows) {
  if (!ObsEnabled()) return;
  static const Counter computed = Counter::Get("serve.rows_computed");
  computed.Add(static_cast<std::uint64_t>(rows));
}

void UpdateQueueGauge(std::int64_t depth) {
  if (!ObsEnabled()) return;
  static const Gauge gauge = Gauge::Get("serve.queue_depth");
  gauge.Set(depth);
}

}  // namespace

struct EmbeddingServer::Request {
  enum class Kind { kEmbedding, kScore, kTopK };
  Kind kind = Kind::kEmbedding;
  /// kEmbedding/kTopK: the query node. kScore: u.
  std::int64_t a = 0;
  /// kScore: v. kTopK: k.
  std::int64_t b = 0;
  std::vector<float> row;
  float score = 0.0f;
  TopKResult topk;
  /// Written by the flusher under mu_ after the results above; readers
  /// observe the results through the same lock (release/acquire on mu_).
  bool done = false;
  std::chrono::steady_clock::time_point enqueue;
};

std::unique_ptr<EmbeddingServer> EmbeddingServer::Load(
    const Graph& graph, const std::string& path, const ServeOptions& options,
    std::string* error) {
  TrainerCheckpoint ckpt;
  if (!LoadTrainerCheckpoint(path, &ckpt)) {
    if (error != nullptr) {
      *error = "checkpoint " + path +
               " failed validation (bad magic/version/CRC or truncated)";
    }
    return nullptr;
  }
  return FromCheckpoint(graph, ckpt, options, error);
}

std::unique_ptr<EmbeddingServer> EmbeddingServer::FromCheckpoint(
    const Graph& graph, const TrainerCheckpoint& ckpt,
    const ServeOptions& options, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::unique_ptr<EmbeddingServer>();
  };
  if (graph.num_nodes <= 0 || graph.features.empty()) {
    return fail("serving requires a non-empty graph with node features");
  }
  if (options.expected_fingerprint != 0 &&
      ckpt.config_fingerprint != options.expected_fingerprint) {
    return fail("checkpoint config fingerprint does not match the expected "
                "fingerprint");
  }
  GcnConfig config = options.encoder;
  if (config.dims.empty()) {
    if (!InferEncoderLayout(ckpt.encoder_params, &config.dims,
                            &config.bias)) {
      return fail("checkpoint encoder parameters form no consistent GCN "
                  "layer chain");
    }
  }
  // Serving is inference-only; dropout would be ignored anyway.
  config.dropout = 0.0f;
  if (config.dims.front() != graph.feature_dim()) {
    return fail("checkpoint encoder input width does not match the graph's "
                "feature dimension");
  }
  Rng rng(0);  // Initial weights are immediately overwritten.
  auto encoder = std::make_unique<GcnEncoder>(config, rng);
  if (!ShapesMatch(encoder->params().params(), ckpt.encoder_params)) {
    return fail("checkpoint encoder parameter shapes do not match the "
                "encoder configuration");
  }
  encoder->params().LoadValues(ckpt.encoder_params);
  return std::make_unique<EmbeddingServer>(graph, std::move(encoder),
                                           options);
}

EmbeddingServer::EmbeddingServer(const Graph& graph,
                                 std::unique_ptr<GcnEncoder> encoder,
                                 const ServeOptions& options)
    : graph_(&graph),
      adj_(NormalizedAdjacency(graph)),
      encoder_(std::move(encoder)),
      options_(options) {
  E2GCL_CHECK(options_.max_batch >= 1);
  E2GCL_CHECK(options_.batch_deadline_us >= 0);
  E2GCL_CHECK(options_.batch_gap_us >= 0);
  E2GCL_CHECK(options_.rescore_factor >= 0);
  if (options_.precompute) {
    full_ = encoder_->Encode(*graph_);
  } else {
    cache_ = std::make_unique<ShardedRowCache>(options_.cache_capacity,
                                               options_.cache_shards);
  }
  if (options_.quantize_int8) {
    // Build the int8 table from a transient full encode; in lazy mode the
    // fp32 matrix is dropped right after, leaving the 4x-smaller table as
    // the only |V|-resident state (TopK never materializes full_).
    if (options_.precompute) {
      quantized_ = QuantizedEmbeddingTable::Build(full_);
    } else {
      quantized_ = QuantizedEmbeddingTable::Build(encoder_->Encode(*graph_));
    }
  }
  // Started last: everything above happens-before the flusher's first
  // instruction via the thread launch.
  flusher_ = std::thread([this] { FlusherLoop(); });
}

EmbeddingServer::~EmbeddingServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

std::vector<float> EmbeddingServer::GetEmbedding(std::int64_t node) {
  E2GCL_CHECK_MSG(node >= 0 && node < graph_->num_nodes,
                  "GetEmbedding: node %lld out of range",
                  static_cast<long long>(node));
  auto req = std::make_shared<Request>();
  req->kind = Request::Kind::kEmbedding;
  req->a = node;
  Submit(req);
  return std::move(req->row);
}

float EmbeddingServer::ScoreLink(std::int64_t u, std::int64_t v) {
  E2GCL_CHECK_MSG(u >= 0 && u < graph_->num_nodes && v >= 0 &&
                      v < graph_->num_nodes,
                  "ScoreLink: node pair (%lld, %lld) out of range",
                  static_cast<long long>(u), static_cast<long long>(v));
  auto req = std::make_shared<Request>();
  req->kind = Request::Kind::kScore;
  req->a = u;
  req->b = v;
  Submit(req);
  return req->score;
}

TopKResult EmbeddingServer::TopKSimilar(std::int64_t node, std::int64_t k) {
  E2GCL_CHECK_MSG(node >= 0 && node < graph_->num_nodes,
                  "TopKSimilar: node %lld out of range",
                  static_cast<long long>(node));
  E2GCL_CHECK(k >= 0);
  auto req = std::make_shared<Request>();
  req->kind = Request::Kind::kTopK;
  req->a = node;
  req->b = k;
  Submit(req);
  return std::move(req->topk);
}

void EmbeddingServer::Submit(const std::shared_ptr<Request>& req) {
  TraceSpan span("serve_request");
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mu_);
    E2GCL_CHECK_MSG(!shutdown_, "EmbeddingServer: query during shutdown");
    req->enqueue = t0;
    queue_.push_back(req);
    UpdateQueueGauge(static_cast<std::int64_t>(queue_.size()));
    queue_cv_.notify_one();
    done_cv_.wait(lock, [&] { return req->done; });
  }
  RecordRequestMetrics(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
}

void EmbeddingServer::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    // Micro-batching: keep collecting until the batch is full, but never
    // hold the oldest request past its deadline. With the default greedy
    // gap (batch_gap_us == 0) an idle flusher ships whatever is queued
    // right away — batches still form under load because requests pile
    // up while the previous batch is served. A positive gap lets the
    // flusher linger that long for stragglers, deadline-capped. A
    // shutdown flushes whatever is queued immediately.
    if (options_.batch_gap_us > 0) {
      const auto deadline =
          queue_.front()->enqueue +
          std::chrono::microseconds(options_.batch_deadline_us);
      const auto linger = std::min(
          deadline, std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.batch_gap_us));
      while (!shutdown_ &&
             static_cast<std::int64_t>(queue_.size()) < options_.max_batch &&
             queue_cv_.wait_until(lock, linger) != std::cv_status::timeout) {
      }
    }
    std::vector<std::shared_ptr<Request>> batch;
    const std::int64_t take = std::min<std::int64_t>(
        static_cast<std::int64_t>(queue_.size()), options_.max_batch);
    batch.reserve(static_cast<std::size_t>(take));
    for (std::int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    UpdateQueueGauge(static_cast<std::int64_t>(queue_.size()));
    lock.unlock();
    ProcessBatch(batch);
    lock.lock();
    for (const auto& r : batch) r->done = true;
    done_cv_.notify_all();
  }
}

void EmbeddingServer::ProcessBatch(
    const std::vector<std::shared_ptr<Request>>& batch) {
  TraceSpan span("serve_batch");
  RecordBatchMetrics(static_cast<std::int64_t>(batch.size()));
  // One frontier-batched row fetch covers every node the batch touches.
  std::vector<std::int64_t> needed;
  needed.reserve(batch.size() * 2);
  for (const auto& r : batch) {
    needed.push_back(r->a);
    if (r->kind == Request::Kind::kScore) needed.push_back(r->b);
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  const std::vector<std::vector<float>> rows = FetchRows(needed);
  const auto row_of = [&](std::int64_t node) -> const std::vector<float>& {
    const auto it = std::lower_bound(needed.begin(), needed.end(), node);
    return rows[static_cast<std::size_t>(it - needed.begin())];
  };
  for (const auto& r : batch) {
    switch (r->kind) {
      case Request::Kind::kEmbedding:
        r->row = row_of(r->a);
        break;
      case Request::Kind::kScore: {
        const std::vector<float>& u = row_of(r->a);
        const std::vector<float>& v = row_of(r->b);
        r->score = simd::Dot(u.data(), v.data(),
                             static_cast<std::int64_t>(u.size()));
        break;
      }
      case Request::Kind::kTopK: {
        if (!quantized_.empty()) {
          ServeTopKQuantized(r.get(), row_of(r->a));
          break;
        }
        const Matrix& z = FullEmbeddings();
        const std::vector<float>& q = row_of(r->a);
        const std::int64_t n = z.rows();
        // One owned slot per node: deterministic at any thread count.
        std::vector<float> scores(static_cast<std::size_t>(n));
        ParallelFor(0, n, GrainForCost(z.cols()),
                    [&](std::int64_t rb, std::int64_t re) {
                      for (std::int64_t i = rb; i < re; ++i) {
                        scores[static_cast<std::size_t>(i)] =
                            simd::Dot(q.data(), z.RowPtr(i), z.cols());
                      }
                    });
        std::vector<std::int64_t> order;
        order.reserve(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) {
          if (i != r->a) order.push_back(i);
        }
        const std::int64_t k = std::min<std::int64_t>(
            r->b, static_cast<std::int64_t>(order.size()));
        // Total order (score desc, node id asc): ties cannot depend on
        // scheduling.
        std::partial_sort(order.begin(), order.begin() + k, order.end(),
                          [&](std::int64_t x, std::int64_t y) {
                            const float sx = scores[static_cast<std::size_t>(
                                x)];
                            const float sy = scores[static_cast<std::size_t>(
                                y)];
                            if (sx != sy) return sx > sy;
                            return x < y;
                          });
        r->topk.nodes.assign(order.begin(), order.begin() + k);
        r->topk.scores.reserve(static_cast<std::size_t>(k));
        for (std::int64_t i = 0; i < k; ++i) {
          r->topk.scores.push_back(
              scores[static_cast<std::size_t>(r->topk.nodes[i])]);
        }
        break;
      }
    }
  }
}

void EmbeddingServer::ServeTopKQuantized(Request* req,
                                         const std::vector<float>& query) {
  TraceSpan span("serve_topk_quantized");
  const std::int64_t n = quantized_.rows();
  // Approximate scan over the int8 table (exact integer dot + one float
  // rescale per row — deterministic at any thread count and identical
  // in every SIMD backend).
  std::vector<std::int8_t> qcodes;
  const float qscale = quantized_.QuantizeQuery(query.data(), &qcodes);
  std::vector<float> approx;
  quantized_.ScoreAll(qcodes.data(), qscale, &approx);
  std::vector<std::int64_t> order;
  order.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    if (i != req->a) order.push_back(i);
  }
  const std::int64_t k =
      std::min<std::int64_t>(req->b, static_cast<std::int64_t>(order.size()));
  // Candidate pool: k * rescore_factor by approximate score (total order:
  // score desc, node id asc). rescore_factor == 0 disables the exact
  // pass and returns the approximate top-k directly.
  const std::int64_t pool =
      options_.rescore_factor == 0
          ? k
          : std::min<std::int64_t>(k * options_.rescore_factor,
                                   static_cast<std::int64_t>(order.size()));
  auto by_approx = [&](std::int64_t x, std::int64_t y) {
    const float sx = approx[static_cast<std::size_t>(x)];
    const float sy = approx[static_cast<std::size_t>(y)];
    if (sx != sy) return sx > sy;
    return x < y;
  };
  std::partial_sort(order.begin(), order.begin() + pool, order.end(),
                    by_approx);
  order.resize(static_cast<std::size_t>(pool));
  if (options_.rescore_factor == 0) {
    req->topk.nodes.assign(order.begin(), order.begin() + k);
    req->topk.scores.reserve(static_cast<std::size_t>(k));
    for (std::int64_t i = 0; i < k; ++i) {
      req->topk.scores.push_back(
          approx[static_cast<std::size_t>(req->topk.nodes[i])]);
    }
    return;
  }
  // Exact fp32 rescore of the candidate pool: fetch the candidates' fp32
  // rows through the normal cache/precompute path (one frontier-batched
  // EncodeRows for the misses) and rank by exact dot score. As long as
  // the true top-k survives into the pool, the result matches the fp32
  // scan exactly — rows, scores, and tie-breaks.
  std::vector<std::int64_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<std::vector<float>> rows = FetchRows(sorted);
  std::vector<float> exact(static_cast<std::size_t>(pool));
  for (std::int64_t i = 0; i < pool; ++i) {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), order[i]);
    const std::vector<float>& row =
        rows[static_cast<std::size_t>(it - sorted.begin())];
    exact[static_cast<std::size_t>(i)] =
        simd::Dot(query.data(), row.data(),
                  static_cast<std::int64_t>(row.size()));
  }
  std::vector<std::int64_t> idx(static_cast<std::size_t>(pool));
  for (std::int64_t i = 0; i < pool; ++i) idx[static_cast<std::size_t>(i)] = i;
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](std::int64_t x, std::int64_t y) {
                      const float sx = exact[static_cast<std::size_t>(x)];
                      const float sy = exact[static_cast<std::size_t>(y)];
                      if (sx != sy) return sx > sy;
                      return order[static_cast<std::size_t>(x)] <
                             order[static_cast<std::size_t>(y)];
                    });
  req->topk.nodes.reserve(static_cast<std::size_t>(k));
  req->topk.scores.reserve(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    const std::int64_t j = idx[static_cast<std::size_t>(i)];
    req->topk.nodes.push_back(order[static_cast<std::size_t>(j)]);
    req->topk.scores.push_back(exact[static_cast<std::size_t>(j)]);
  }
}

std::vector<std::vector<float>> EmbeddingServer::FetchRows(
    const std::vector<std::int64_t>& nodes) {
  std::vector<std::vector<float>> rows(nodes.size());
  if (options_.precompute) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const float* r = full_.RowPtr(nodes[i]);
      rows[i].assign(r, r + full_.cols());
    }
    return rows;
  }
  std::vector<std::int64_t> missing;
  std::vector<std::size_t> missing_slot;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!cache_->Get(nodes[i], &rows[i])) {
      missing.push_back(nodes[i]);
      missing_slot.push_back(i);
    }
  }
  RecordCacheMetrics(
      static_cast<std::int64_t>(nodes.size() - missing.size()),
      static_cast<std::int64_t>(missing.size()));
  if (!missing.empty()) {
    // `missing` is sorted (nodes is), so one EncodeRows call computes all
    // cold rows over a single shared frontier.
    const Matrix computed =
        encoder_->EncodeRows(adj_, graph_->features, missing);
    RecordRowsComputed(static_cast<std::int64_t>(missing.size()));
    for (std::size_t j = 0; j < missing.size(); ++j) {
      const float* r = computed.RowPtr(static_cast<std::int64_t>(j));
      rows[missing_slot[j]].assign(r, r + computed.cols());
      cache_->Put(missing[j], rows[missing_slot[j]]);
    }
  }
  return rows;
}

const Matrix& EmbeddingServer::FullEmbeddings() {
  // Precomputed at construction, or materialized by the flusher on the
  // first TopK; only the flusher thread reaches this path afterwards, so
  // no lock is needed.
  if (full_.rows() == 0) {
    full_ = encoder_->Encode(*graph_);
  }
  return full_;
}

}  // namespace e2gcl
