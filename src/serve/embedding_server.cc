#include "serve/embedding_server.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "tensor/check.h"
#include "tensor/simd/simd.h"

namespace e2gcl {

namespace {

void RecordRequestMetrics(std::int64_t latency_us) {
  if (!ObsEnabled()) return;
  static const Counter requests = Counter::Get("serve.requests");
  static const Histogram latency = Histogram::Get(
      "serve.latency_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000, 200000});
  requests.Increment();
  latency.Record(latency_us);
}

void RecordBatchMetrics(std::int64_t size) {
  if (!ObsEnabled()) return;
  static const Counter batches = Counter::Get("serve.batches");
  static const Histogram batch_size =
      Histogram::Get("serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
  batches.Increment();
  batch_size.Record(size);
}

void RecordCacheMetrics(std::int64_t hits, std::int64_t misses) {
  if (!ObsEnabled()) return;
  static const Counter hit_counter = Counter::Get("serve.cache.hits");
  static const Counter miss_counter = Counter::Get("serve.cache.misses");
  if (hits > 0) hit_counter.Add(static_cast<std::uint64_t>(hits));
  if (misses > 0) miss_counter.Add(static_cast<std::uint64_t>(misses));
}

void RecordCorruptDropped(std::uint64_t dropped) {
  if (!ObsEnabled() || dropped == 0) return;
  static const Counter corrupt =
      Counter::Get("serve.cache.corrupt_dropped");
  corrupt.Add(dropped);
}

void RecordRowsComputed(std::int64_t rows) {
  if (!ObsEnabled()) return;
  static const Counter computed = Counter::Get("serve.rows_computed");
  computed.Add(static_cast<std::uint64_t>(rows));
}

void UpdateQueueGauge(std::int64_t depth) {
  if (!ObsEnabled()) return;
  static const Gauge gauge = Gauge::Get("serve.queue_depth");
  gauge.Set(depth);
}

/// One counter per fail-fast rejection class (the load-shedding story
/// is only auditable if every shed request is counted somewhere).
void RecordRejected(ServeStatus status) {
  if (!ObsEnabled()) return;
  static const Counter overloaded =
      Counter::Get("serve.rejected.overloaded");
  static const Counter deadline = Counter::Get("serve.rejected.deadline");
  static const Counter shutdown = Counter::Get("serve.rejected.shutdown");
  switch (status) {
    case ServeStatus::kOverloaded: overloaded.Increment(); break;
    case ServeStatus::kDeadlineExceeded: deadline.Increment(); break;
    case ServeStatus::kShutdown: shutdown.Increment(); break;
    default: break;
  }
}

void RecordDegraded() {
  if (!ObsEnabled()) return;
  static const Counter degraded = Counter::Get("serve.degraded");
  degraded.Increment();
}

void RecordReload(ServeStatus status) {
  if (!ObsEnabled()) return;
  static const Counter success = Counter::Get("serve.reload.success");
  static const Counter failed = Counter::Get("serve.reload.failed");
  static const Counter rejected = Counter::Get("serve.reload.rejected");
  switch (status) {
    case ServeStatus::kOk: success.Increment(); break;
    case ServeStatus::kReloading: rejected.Increment(); break;
    default: failed.Increment(); break;
  }
}

void UpdateGenerationGauge(std::uint64_t gen) {
  if (!ObsEnabled()) return;
  static const Gauge gauge = Gauge::Get("serve.generation");
  gauge.Set(static_cast<std::int64_t>(gen));
}

}  // namespace

struct EmbeddingServer::Request {
  enum class Kind { kEmbedding, kScore, kTopK };
  Kind kind = Kind::kEmbedding;
  /// kEmbedding/kTopK: the query node. kScore: u.
  std::int64_t a = 0;
  /// kScore: v. kTopK: k.
  std::int64_t b = 0;
  /// The model generation this request was admitted under (pinned: a
  /// concurrent reload cannot change the model mid-request).
  std::shared_ptr<ModelState> state;
  std::vector<float> row;
  float score = 0.0f;
  TopKResult topk;
  /// Written by the flusher OUTSIDE mu_ while serving (the flusher is
  /// the only writer before `done`); promoted into `status` under mu_.
  ServeStatus result_status = ServeStatus::kOk;
  /// Final caller-visible status. Only ever written under mu_: by the
  /// flusher when it completes/expires the request, or by the caller
  /// when it abandons at its deadline.
  ServeStatus status = ServeStatus::kOk;
  /// Serve this TopK request from the approximate scan (load shedding).
  bool degrade = false;
  /// Written under mu_ after the results above; readers observe the
  /// results through the same lock (release/acquire on mu_).
  bool done = false;
  /// The caller gave up at its deadline and will never read the result.
  bool abandoned = false;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;
  std::chrono::steady_clock::time_point enqueue;
};

std::unique_ptr<EmbeddingServer> EmbeddingServer::Load(
    const Graph& graph, const std::string& path, const ServeOptions& options,
    std::string* error) {
  TrainerCheckpoint ckpt;
  std::string why;
  if (!LoadTrainerCheckpoint(path, &ckpt, &why)) {
    if (error != nullptr) *error = "checkpoint " + path + " " + why;
    return nullptr;
  }
  return FromCheckpoint(graph, ckpt, options, error);
}

std::unique_ptr<EmbeddingServer> EmbeddingServer::FromCheckpoint(
    const Graph& graph, const TrainerCheckpoint& ckpt,
    const ServeOptions& options, std::string* error) {
  std::shared_ptr<ModelState> state =
      BuildModelState(graph, ckpt, options, /*generation=*/1, error);
  if (state == nullptr) return nullptr;
  return std::make_unique<EmbeddingServer>(graph, std::move(state), options);
}

EmbeddingServer::EmbeddingServer(const Graph& graph,
                                 std::shared_ptr<ModelState> state,
                                 const ServeOptions& options)
    : graph_(&graph),
      adj_(NormalizedAdjacency(graph)),
      options_(options),
      state_(std::move(state)) {
  E2GCL_CHECK(options_.max_batch >= 1);
  E2GCL_CHECK(options_.batch_deadline_us >= 0);
  E2GCL_CHECK(options_.batch_gap_us >= 0);
  E2GCL_CHECK(options_.rescore_factor >= 0);
  E2GCL_CHECK(options_.max_queue_depth >= 1);
  E2GCL_CHECK(options_.degrade_watermark >= 0);
  E2GCL_CHECK(state_ != nullptr && state_->encoder != nullptr);
  UpdateGenerationGauge(state_->generation);
  // Started last: everything above happens-before the flusher's first
  // instruction via the thread launch.
  flusher_ = std::thread([this] { FlusherLoop(); });
}

EmbeddingServer::~EmbeddingServer() {
  BeginShutdown();
  if (flusher_.joinable()) flusher_.join();
}

void EmbeddingServer::BeginShutdown() {
  MutexLock lock(mu_);
  shutdown_ = true;
  // Notified under the lock (project convention): wait-morphing keeps
  // this cheap and the thread-safety analysis can pair the notify with
  // the guarded shutdown_ write.
  queue_cv_.NotifyAll();
}

// --- Status-typed API. -----------------------------------------------------

EmbeddingResponse EmbeddingServer::GetEmbedding(
    std::int64_t node, const ServeRequestOptions& request) {
  E2GCL_CHECK_MSG(node >= 0 && node < graph_->num_nodes,
                  "GetEmbedding: node %lld out of range",
                  static_cast<long long>(node));
  auto req = std::make_shared<Request>();
  req->kind = Request::Kind::kEmbedding;
  req->a = node;
  EmbeddingResponse response;
  response.status = Submit(req, request);
  response.generation = req->state != nullptr ? req->state->generation : 0;
  if (response.served()) response.row = std::move(req->row);
  return response;
}

ScoreResponse EmbeddingServer::ScoreLink(std::int64_t u, std::int64_t v,
                                         const ServeRequestOptions& request) {
  E2GCL_CHECK_MSG(u >= 0 && u < graph_->num_nodes && v >= 0 &&
                      v < graph_->num_nodes,
                  "ScoreLink: node pair (%lld, %lld) out of range",
                  static_cast<long long>(u), static_cast<long long>(v));
  auto req = std::make_shared<Request>();
  req->kind = Request::Kind::kScore;
  req->a = u;
  req->b = v;
  ScoreResponse response;
  response.status = Submit(req, request);
  response.generation = req->state != nullptr ? req->state->generation : 0;
  if (response.served()) response.score = req->score;
  return response;
}

TopKResponse EmbeddingServer::TopKSimilar(std::int64_t node, std::int64_t k,
                                          const ServeRequestOptions& request) {
  E2GCL_CHECK_MSG(node >= 0 && node < graph_->num_nodes,
                  "TopKSimilar: node %lld out of range",
                  static_cast<long long>(node));
  E2GCL_CHECK(k >= 0);
  auto req = std::make_shared<Request>();
  req->kind = Request::Kind::kTopK;
  req->a = node;
  req->b = k;
  TopKResponse response;
  response.status = Submit(req, request);
  response.generation = req->state != nullptr ? req->state->generation : 0;
  if (response.served()) response.result = std::move(req->topk);
  return response;
}

// --- Legacy blocking API. --------------------------------------------------

std::vector<float> EmbeddingServer::GetEmbedding(std::int64_t node) {
  EmbeddingResponse response = GetEmbedding(node, ServeRequestOptions{});
  E2GCL_CHECK_MSG(response.status == ServeStatus::kOk,
                  "EmbeddingServer::GetEmbedding rejected: %s",
                  ServeStatusName(response.status));
  return std::move(response.row);
}

float EmbeddingServer::ScoreLink(std::int64_t u, std::int64_t v) {
  ScoreResponse response = ScoreLink(u, v, ServeRequestOptions{});
  E2GCL_CHECK_MSG(response.status == ServeStatus::kOk,
                  "EmbeddingServer::ScoreLink rejected: %s",
                  ServeStatusName(response.status));
  return response.score;
}

TopKResult EmbeddingServer::TopKSimilar(std::int64_t node, std::int64_t k) {
  ServeRequestOptions exact;
  exact.allow_degraded = false;
  TopKResponse response = TopKSimilar(node, k, exact);
  E2GCL_CHECK_MSG(response.status == ServeStatus::kOk,
                  "EmbeddingServer::TopKSimilar rejected: %s",
                  ServeStatusName(response.status));
  return std::move(response.result);
}

// --- Hot reload. -----------------------------------------------------------

ServeStatus EmbeddingServer::ReloadCheckpoint(const TrainerCheckpoint& ckpt,
                                              std::string* error) {
  TraceSpan span("serve_reload");
  bool expected = false;
  if (!reload_in_flight_.compare_exchange_strong(expected, true)) {
    if (error != nullptr) *error = "another checkpoint reload is in flight";
    RecordReload(ServeStatus::kReloading);
    return ServeStatus::kReloading;
  }
  std::uint64_t next_generation = 0;
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      if (error != nullptr) *error = "server is shutting down";
      reload_in_flight_.store(false);
      return ServeStatus::kShutdown;
    }
    next_generation = state_->generation + 1;
  }
  // The expensive part — validation + full rebuild of encoder, cache,
  // precompute/quantized tables — runs on the reloading thread with no
  // server lock held: queries keep flowing against the old generation.
  std::string why;
  std::shared_ptr<ModelState> fresh =
      BuildModelState(*graph_, ckpt, options_, next_generation, &why);
  if (fresh == nullptr) {
    if (error != nullptr) *error = why;
    RecordReload(ServeStatus::kInvalidArgument);
    reload_in_flight_.store(false);
    return ServeStatus::kInvalidArgument;
  }
  if (options_.fault_injector.before_reload_swap) {
    options_.fault_injector.before_reload_swap(next_generation);
  }
  {
    // RCU swap: requests admitted before this line hold their own
    // shared_ptr to the old generation and finish on it; requests
    // admitted after see only the new one. Nothing is ever torn.
    MutexLock lock(mu_);
    state_ = std::move(fresh);
  }
  UpdateGenerationGauge(next_generation);
  RecordReload(ServeStatus::kOk);
  reload_in_flight_.store(false);
  return ServeStatus::kOk;
}

ServeStatus EmbeddingServer::ReloadFromFile(const std::string& path,
                                            std::string* error) {
  TrainerCheckpoint ckpt;
  std::string why;
  if (!LoadTrainerCheckpoint(path, &ckpt, &why)) {
    if (error != nullptr) *error = "checkpoint " + path + " " + why;
    RecordReload(ServeStatus::kInvalidArgument);
    return ServeStatus::kInvalidArgument;
  }
  return ReloadCheckpoint(ckpt, error);
}

// --- Introspection. --------------------------------------------------------

std::int64_t EmbeddingServer::embed_dim() const {
  MutexLock lock(mu_);
  return state_->encoder->config().dims.back();
}

std::uint64_t EmbeddingServer::generation() const {
  MutexLock lock(mu_);
  return state_->generation;
}

std::shared_ptr<const ModelState> EmbeddingServer::state() const {
  MutexLock lock(mu_);
  return state_;
}

std::int64_t EmbeddingServer::queue_depth() const {
  MutexLock lock(mu_);
  return static_cast<std::int64_t>(queue_.size());
}

const ShardedRowCache* EmbeddingServer::cache() const {
  MutexLock lock(mu_);
  return state_->cache.get();
}

const QuantizedEmbeddingTable& EmbeddingServer::quantized() const {
  MutexLock lock(mu_);
  return state_->quantized;
}

// --- Queue plumbing. -------------------------------------------------------

ServeStatus EmbeddingServer::Submit(const std::shared_ptr<Request>& req,
                                    const ServeRequestOptions& request) {
  TraceSpan span("serve_request");
  const auto t0 = std::chrono::steady_clock::now();
  ServeStatus status = ServeStatus::kOk;
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      RecordRejected(ServeStatus::kShutdown);
      return ServeStatus::kShutdown;
    }
    if (static_cast<std::int64_t>(queue_.size()) >=
        options_.max_queue_depth) {
      // Admission control: shed the request instead of growing an
      // unbounded queue behind a slow flusher.
      RecordRejected(ServeStatus::kOverloaded);
      return ServeStatus::kOverloaded;
    }
    // Pin the generation at admission: a reload swapping state_ after
    // this line does not affect this request.
    req->state = state_;
    if (req->kind == Request::Kind::kTopK && request.allow_degraded &&
        options_.degrade_watermark > 0 && !req->state->quantized.empty() &&
        static_cast<std::int64_t>(queue_.size()) >=
            options_.degrade_watermark) {
      req->degrade = true;
    }
    req->enqueue = t0;
    if (request.deadline_us > 0) {
      req->has_deadline = true;
      req->deadline = t0 + std::chrono::microseconds(request.deadline_us);
    }
    queue_.push_back(req);
    UpdateQueueGauge(static_cast<std::int64_t>(queue_.size()));
    queue_cv_.NotifyOne();
    if (req->has_deadline) {
      while (!req->done) {
        if (done_cv_.WaitUntil(lock, req->deadline) ==
                std::cv_status::timeout &&
            !req->done) {
          // Deadline expired with the request still unserved (queued or
          // mid-batch): release the caller NOW. The flusher discards the
          // request when it reaches it; the shared_ptr keeps it alive.
          req->abandoned = true;
          req->status = ServeStatus::kDeadlineExceeded;
          RecordRejected(ServeStatus::kDeadlineExceeded);
          return ServeStatus::kDeadlineExceeded;
        }
      }
    } else {
      while (!req->done) done_cv_.Wait(lock);
    }
    status = req->status;
  }
  RecordRequestMetrics(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
  return status;
}

void EmbeddingServer::FlusherLoop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!shutdown_ && queue_.empty()) queue_cv_.Wait(lock);
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    // Micro-batching: keep collecting until the batch is full, but never
    // hold the oldest request past its deadline. With the default greedy
    // gap (batch_gap_us == 0) an idle flusher ships whatever is queued
    // right away — batches still form under load because requests pile
    // up while the previous batch is served. A positive gap lets the
    // flusher linger that long for stragglers, deadline-capped. A
    // shutdown flushes whatever is queued immediately.
    if (options_.batch_gap_us > 0 && !shutdown_) {
      const auto deadline =
          queue_.front()->enqueue +
          std::chrono::microseconds(options_.batch_deadline_us);
      const auto linger = std::min(
          deadline, std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.batch_gap_us));
      while (!shutdown_ &&
             static_cast<std::int64_t>(queue_.size()) < options_.max_batch &&
             queue_cv_.WaitUntil(lock, linger) != std::cv_status::timeout) {
      }
    }
    bool expired_any = false;
    std::vector<std::shared_ptr<Request>> batch = PopBatchLocked(&expired_any);
    UpdateQueueGauge(static_cast<std::int64_t>(queue_.size()));
    if (expired_any) done_cv_.NotifyAll();
    if (batch.empty()) continue;
    // The batch is served with mu_ dropped — compute never blocks
    // admission, introspection, or reload swaps. The fault hook below
    // likewise runs unlocked (hold-lock-across-callback contract).
    lock.Unlock();
    if (options_.fault_injector.stall_batch) {
      options_.fault_injector.stall_batch(
          static_cast<std::int64_t>(batch.size()));
    }
    ProcessBatch(batch);
    lock.Lock();
    for (const auto& r : batch) {
      if (!r->abandoned) r->status = r->result_status;
      r->done = true;
    }
    done_cv_.NotifyAll();
  }
}

std::vector<std::shared_ptr<EmbeddingServer::Request>>
EmbeddingServer::PopBatchLocked(bool* expired_any) E2GCL_REQUIRES(mu_) {
  // Pop a batch: skip abandoned requests, fail already-expired ones
  // fast (their compute would be wasted — the caller is gone or about
  // to give up), and stop at a generation boundary so one batch never
  // mixes models (each batch computes rows with exactly one encoder).
  std::vector<std::shared_ptr<Request>> batch;
  const auto now = std::chrono::steady_clock::now();
  *expired_any = false;
  while (static_cast<std::int64_t>(batch.size()) < options_.max_batch &&
         !queue_.empty()) {
    std::shared_ptr<Request>& front = queue_.front();
    if (front->abandoned) {
      front->done = true;
      queue_.pop_front();
      continue;
    }
    if (front->has_deadline && now >= front->deadline) {
      front->status = ServeStatus::kDeadlineExceeded;
      front->done = true;
      RecordRejected(ServeStatus::kDeadlineExceeded);
      *expired_any = true;
      queue_.pop_front();
      continue;
    }
    if (!batch.empty() && front->state.get() != batch.front()->state.get()) {
      break;
    }
    batch.push_back(std::move(front));
    queue_.pop_front();
  }
  return batch;
}

void EmbeddingServer::ProcessBatch(
    const std::vector<std::shared_ptr<Request>>& batch) {
  TraceSpan span("serve_batch");
  RecordBatchMetrics(static_cast<std::int64_t>(batch.size()));
  // Every request in the batch shares one pinned generation.
  ModelState& state = *batch.front()->state;
  // One frontier-batched row fetch covers every node the batch touches.
  std::vector<std::int64_t> needed;
  needed.reserve(batch.size() * 2);
  for (const auto& r : batch) {
    needed.push_back(r->a);
    if (r->kind == Request::Kind::kScore) needed.push_back(r->b);
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  const std::vector<std::vector<float>> rows = FetchRows(state, needed);
  const auto row_of = [&](std::int64_t node) -> const std::vector<float>& {
    const auto it = std::lower_bound(needed.begin(), needed.end(), node);
    return rows[static_cast<std::size_t>(it - needed.begin())];
  };
  for (const auto& r : batch) {
    switch (r->kind) {
      case Request::Kind::kEmbedding:
        r->row = row_of(r->a);
        break;
      case Request::Kind::kScore: {
        const std::vector<float>& u = row_of(r->a);
        const std::vector<float>& v = row_of(r->b);
        r->score = simd::Dot(u.data(), v.data(),
                             static_cast<std::int64_t>(u.size()));
        break;
      }
      case Request::Kind::kTopK: {
        if (!state.quantized.empty()) {
          ServeTopKQuantized(state, r.get(), row_of(r->a), r->degrade);
          break;
        }
        const Matrix& z = FullEmbeddings(state);
        const std::vector<float>& q = row_of(r->a);
        const std::int64_t n = z.rows();
        // One owned slot per node: deterministic at any thread count.
        std::vector<float> scores(static_cast<std::size_t>(n));
        ParallelFor(0, n, GrainForCost(z.cols()),
                    [&](std::int64_t rb, std::int64_t re) {
                      for (std::int64_t i = rb; i < re; ++i) {
                        scores[static_cast<std::size_t>(i)] =
                            simd::Dot(q.data(), z.RowPtr(i), z.cols());
                      }
                    });
        std::vector<std::int64_t> order;
        order.reserve(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) {
          if (i != r->a) order.push_back(i);
        }
        const std::int64_t k = std::min<std::int64_t>(
            r->b, static_cast<std::int64_t>(order.size()));
        // Total order (score desc, node id asc): ties cannot depend on
        // scheduling.
        std::partial_sort(order.begin(), order.begin() + k, order.end(),
                          [&](std::int64_t x, std::int64_t y) {
                            const float sx = scores[static_cast<std::size_t>(
                                x)];
                            const float sy = scores[static_cast<std::size_t>(
                                y)];
                            if (sx != sy) return sx > sy;
                            return x < y;
                          });
        r->topk.nodes.assign(order.begin(), order.begin() + k);
        r->topk.scores.reserve(static_cast<std::size_t>(k));
        for (std::int64_t i = 0; i < k; ++i) {
          r->topk.scores.push_back(
              scores[static_cast<std::size_t>(r->topk.nodes[i])]);
        }
        break;
      }
    }
  }
}

void EmbeddingServer::ServeTopKQuantized(ModelState& state, Request* req,
                                         const std::vector<float>& query,
                                         bool degraded) {
  TraceSpan span("serve_topk_quantized");
  const QuantizedEmbeddingTable& quantized = state.quantized;
  const std::int64_t n = quantized.rows();
  // Approximate scan over the int8 table (exact integer dot + one float
  // rescale per row — deterministic at any thread count and identical
  // in every SIMD backend).
  std::vector<std::int8_t> qcodes;
  const float qscale = quantized.QuantizeQuery(query.data(), &qcodes);
  std::vector<float> approx;
  quantized.ScoreAll(qcodes.data(), qscale, &approx);
  std::vector<std::int64_t> order;
  order.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    if (i != req->a) order.push_back(i);
  }
  const std::int64_t k =
      std::min<std::int64_t>(req->b, static_cast<std::int64_t>(order.size()));
  // Candidate pool: k * rescore_factor by approximate score (total order:
  // score desc, node id asc). rescore_factor == 0 — or a degraded
  // request (load shedding skips the exact pass) — returns the
  // approximate top-k directly.
  const bool approx_only = degraded || options_.rescore_factor == 0;
  const std::int64_t pool =
      approx_only
          ? k
          : std::min<std::int64_t>(k * options_.rescore_factor,
                                   static_cast<std::int64_t>(order.size()));
  auto by_approx = [&](std::int64_t x, std::int64_t y) {
    const float sx = approx[static_cast<std::size_t>(x)];
    const float sy = approx[static_cast<std::size_t>(y)];
    if (sx != sy) return sx > sy;
    return x < y;
  };
  std::partial_sort(order.begin(), order.begin() + pool, order.end(),
                    by_approx);
  order.resize(static_cast<std::size_t>(pool));
  if (approx_only) {
    req->topk.nodes.assign(order.begin(), order.begin() + k);
    req->topk.scores.reserve(static_cast<std::size_t>(k));
    for (std::int64_t i = 0; i < k; ++i) {
      req->topk.scores.push_back(
          approx[static_cast<std::size_t>(req->topk.nodes[i])]);
    }
    if (degraded) {
      req->result_status = ServeStatus::kDegraded;
      RecordDegraded();
    }
    return;
  }
  // Exact fp32 rescore of the candidate pool: fetch the candidates' fp32
  // rows through the normal cache/precompute path (one frontier-batched
  // EncodeRows for the misses) and rank by exact dot score. As long as
  // the true top-k survives into the pool, the result matches the fp32
  // scan exactly — rows, scores, and tie-breaks.
  std::vector<std::int64_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<std::vector<float>> rows = FetchRows(state, sorted);
  std::vector<float> exact(static_cast<std::size_t>(pool));
  for (std::int64_t i = 0; i < pool; ++i) {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), order[i]);
    const std::vector<float>& row =
        rows[static_cast<std::size_t>(it - sorted.begin())];
    exact[static_cast<std::size_t>(i)] =
        simd::Dot(query.data(), row.data(),
                  static_cast<std::int64_t>(row.size()));
  }
  std::vector<std::int64_t> idx(static_cast<std::size_t>(pool));
  for (std::int64_t i = 0; i < pool; ++i) idx[static_cast<std::size_t>(i)] = i;
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](std::int64_t x, std::int64_t y) {
                      const float sx = exact[static_cast<std::size_t>(x)];
                      const float sy = exact[static_cast<std::size_t>(y)];
                      if (sx != sy) return sx > sy;
                      return order[static_cast<std::size_t>(x)] <
                             order[static_cast<std::size_t>(y)];
                    });
  req->topk.nodes.reserve(static_cast<std::size_t>(k));
  req->topk.scores.reserve(static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < k; ++i) {
    const std::int64_t j = idx[static_cast<std::size_t>(i)];
    req->topk.nodes.push_back(order[static_cast<std::size_t>(j)]);
    req->topk.scores.push_back(exact[static_cast<std::size_t>(j)]);
  }
}

std::vector<std::vector<float>> EmbeddingServer::FetchRows(
    ModelState& state, const std::vector<std::int64_t>& nodes) {
  std::vector<std::vector<float>> rows(nodes.size());
  if (options_.precompute) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const float* r = state.full.RowPtr(nodes[i]);
      rows[i].assign(r, r + state.full.cols());
    }
    return rows;
  }
  ShardedRowCache& cache = *state.cache;
  const std::uint64_t corrupt_before = cache.corrupt_dropped();
  std::vector<std::int64_t> missing;
  std::vector<std::size_t> missing_slot;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!cache.Get(nodes[i], &rows[i])) {
      missing.push_back(nodes[i]);
      missing_slot.push_back(i);
    }
  }
  RecordCacheMetrics(
      static_cast<std::int64_t>(nodes.size() - missing.size()),
      static_cast<std::int64_t>(missing.size()));
  RecordCorruptDropped(cache.corrupt_dropped() - corrupt_before);
  if (!missing.empty()) {
    // `missing` is sorted (nodes is), so one EncodeRows call computes all
    // cold rows over a single shared frontier.
    const Matrix computed =
        state.encoder->EncodeRows(adj_, graph_->features, missing);
    RecordRowsComputed(static_cast<std::int64_t>(missing.size()));
    for (std::size_t j = 0; j < missing.size(); ++j) {
      const float* r = computed.RowPtr(static_cast<std::int64_t>(j));
      rows[missing_slot[j]].assign(r, r + computed.cols());
      cache.Put(missing[j], rows[missing_slot[j]]);
      if (options_.fault_injector.corrupt_row_after_put &&
          options_.fault_injector.corrupt_row_after_put(missing[j])) {
        cache.CorruptEntryForTest(missing[j]);
      }
    }
  }
  return rows;
}

const Matrix& EmbeddingServer::FullEmbeddings(ModelState& state) {
  // Precomputed at generation build time, or materialized by the
  // flusher on the first fp32 TopK; only the flusher thread reaches
  // this path afterwards, so no lock is needed.
  if (state.full.rows() == 0) {
    state.full = state.encoder->Encode(*graph_);
  }
  return state.full;
}

}  // namespace e2gcl
