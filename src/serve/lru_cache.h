#ifndef E2GCL_SERVE_LRU_CACHE_H_
#define E2GCL_SERVE_LRU_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"
#include "io/serialize.h"
#include "tensor/check.h"

namespace e2gcl {

/// Sharded LRU cache for lazily-computed embedding rows, keyed by node
/// id. A row's shard is `node % num_shards`, so a given key always maps
/// to the same shard and hit/miss behaviour is independent of which
/// thread asks. Each shard holds an intrusive recency list plus an
/// unordered index into it and is protected by its own mutex; lookups
/// for different shards never contend. The cache stores *values*
/// (copies in, copies out) — callers never see references into the
/// cache, so eviction can never invalidate a served row.
///
/// Capacity is a total row budget split evenly across shards (each
/// shard gets at least one slot). Eviction is strictly
/// least-recently-used within a shard.
///
/// Every entry carries a CRC32 of its row bytes, computed at Put time
/// and re-verified on Get: a corrupted entry (bit rot, stray write) is
/// dropped and reported as a miss, so the caller recomputes the row
/// instead of serving garbage. Detections are counted in
/// `corrupt_dropped()` and the `serve.cache.corrupt_dropped` counter.
class ShardedRowCache {
 public:
  ShardedRowCache(std::int64_t capacity, int num_shards)
      : shards_(static_cast<std::size_t>(num_shards)) {
    E2GCL_CHECK(capacity >= 1 && num_shards >= 1);
    per_shard_capacity_ =
        std::max<std::int64_t>(1, capacity / num_shards);
  }

  ShardedRowCache(const ShardedRowCache&) = delete;
  ShardedRowCache& operator=(const ShardedRowCache&) = delete;

  /// Copies the cached row for `node` into `*out` and marks it most
  /// recently used. Returns false (leaving `*out` untouched) on a miss
  /// or when the entry fails its checksum (the entry is dropped so the
  /// caller's recompute repairs the cache).
  bool Get(std::int64_t node, std::vector<float>* out) {
    Shard& shard = ShardFor(node);
    MutexLock lock(shard.mu);
    const auto it = shard.index.find(node);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (RowCrc(it->second->row) != it->second->crc) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
      corrupt_dropped_.fetch_add(1, std::memory_order_relaxed);
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    *out = it->second->row;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Inserts (or refreshes) the row for `node`, evicting the shard's
  /// least-recently-used entry when the shard is full.
  void Put(std::int64_t node, std::vector<float> row) {
    const std::uint32_t crc = RowCrc(row);
    Shard& shard = ShardFor(node);
    MutexLock lock(shard.mu);
    const auto it = shard.index.find(node);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      it->second->row = std::move(row);
      it->second->crc = crc;
      return;
    }
    shard.lru.push_front(Entry{node, std::move(row), crc});
    shard.index.emplace(node, shard.lru.begin());
    if (static_cast<std::int64_t>(shard.lru.size()) > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().node);
      shard.lru.pop_back();
    }
  }

  /// Test-only: flips one byte of the cached row for `node` (checksum
  /// left stale) to plant the corruption the next Get must detect.
  /// Returns false when the node is not cached or its row is empty.
  bool CorruptEntryForTest(std::int64_t node) {
    Shard& shard = ShardFor(node);
    MutexLock lock(shard.mu);
    const auto it = shard.index.find(node);
    if (it == shard.index.end() || it->second->row.empty()) return false;
    auto* bytes = reinterpret_cast<unsigned char*>(it->second->row.data());
    bytes[0] = static_cast<unsigned char>(bytes[0] ^ 0x5a);
    return true;
  }

  /// True iff `node` is currently cached (no recency update, no
  /// checksum verification; test/debug).
  bool Contains(std::int64_t node) const {
    const Shard& shard = ShardFor(node);
    MutexLock lock(shard.mu);
    return shard.index.find(node) != shard.index.end();
  }

  /// Total rows currently cached, summed over shards in shard order.
  std::int64_t Size() const {
    std::int64_t total = 0;
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      total += static_cast<std::int64_t>(shard.lru.size());
    }
    return total;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  std::int64_t per_shard_capacity() const { return per_shard_capacity_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Entries dropped because their stored CRC no longer matched.
  std::uint64_t corrupt_dropped() const {
    return corrupt_dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::int64_t node;
    std::vector<float> row;
    std::uint32_t crc;
  };

  struct Shard {
    /// Per-shard lock; shards are independent and never nested, so no
    /// cross-shard order exists (enforced by the lock-order lint rule
    /// observing acquisitions).
    mutable Mutex mu;
    /// Front = most recently used. The index maps node id -> list node.
    std::list<Entry> lru E2GCL_GUARDED_BY(mu);
    std::unordered_map<std::int64_t, std::list<Entry>::iterator> index
        E2GCL_GUARDED_BY(mu);
  };

  static std::uint32_t RowCrc(const std::vector<float>& row) {
    return Crc32(row.data(), row.size() * sizeof(float));
  }

  Shard& ShardFor(std::int64_t node) {
    return shards_[static_cast<std::size_t>(
        node % static_cast<std::int64_t>(shards_.size()))];
  }
  const Shard& ShardFor(std::int64_t node) const {
    return shards_[static_cast<std::size_t>(
        node % static_cast<std::int64_t>(shards_.size()))];
  }

  std::vector<Shard> shards_;
  std::int64_t per_shard_capacity_ = 1;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> corrupt_dropped_{0};
};

}  // namespace e2gcl

#endif  // E2GCL_SERVE_LRU_CACHE_H_
