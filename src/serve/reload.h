#ifndef E2GCL_SERVE_RELOAD_H_
#define E2GCL_SERVE_RELOAD_H_

#include <cstdint>
#include <memory>
#include <string>

#include "graph/graph.h"
#include "io/checkpoint.h"
#include "nn/gcn.h"
#include "serve/lru_cache.h"
#include "serve/quantized_table.h"
#include "tensor/matrix.h"

namespace e2gcl {

struct ServeOptions;  // embedding_server.h (which includes this header)

/// One immutable-once-published model generation: everything whose
/// contents depend on the checkpoint weights. The EmbeddingServer holds
/// the current generation behind a `shared_ptr` and swaps it RCU-style
/// on hot reload; every request pins the generation it was admitted
/// under, so in-flight queries stay bit-identical to the model they
/// started on and never observe a half-switched state. The row cache
/// and quantized table live *inside* the generation — a reload starts
/// from a cold cache rather than risking rows encoded by older weights.
///
/// Mutability after publication is confined to single-writer members:
/// `cache` is internally synchronized, and `full` is written only by
/// the flusher thread (lazy-mode first-TopK materialization). There is
/// deliberately no mutex here — the EmbeddingServer's annotated mu_
/// (see core/thread_annotations.h and DESIGN.md "Concurrency
/// discipline") guards only the *pointer* to the current generation;
/// the pointed-to state is immutable or single-writer by construction,
/// which is what makes the RCU swap safe without per-state locking.
struct ModelState {
  /// Monotonic reload epoch: 1 for the initially loaded checkpoint,
  /// +1 per successful reload. Echoed in every response's
  /// `generation` field.
  std::uint64_t generation = 0;
  std::unique_ptr<GcnEncoder> encoder;
  /// Lazy-mode row cache (nullptr in precompute mode).
  std::unique_ptr<ShardedRowCache> cache;
  /// Full |V| x d embedding matrix; rows() == 0 until materialized
  /// (at build time in precompute mode, by the flusher on the first
  /// fp32 TopK in lazy mode).
  Matrix full;
  /// Int8 table (empty unless ServeOptions::quantize_int8).
  QuantizedEmbeddingTable quantized;
};

/// Validates `ckpt` against `graph` + `options` (fingerprint, encoder
/// layout inference, parameter shapes, feature width — the same checks
/// initial Load performs) and builds a complete generation: encoder
/// weights loaded, cache/precompute/quantized state constructed. This
/// is the shared path behind both server construction and hot reload,
/// so a reloaded checkpoint can never bypass a validation the initial
/// one went through. Returns nullptr with `*error` set on any failure;
/// the caller's serving state is untouched.
std::shared_ptr<ModelState> BuildModelState(const Graph& graph,
                                            const TrainerCheckpoint& ckpt,
                                            const ServeOptions& options,
                                            std::uint64_t generation,
                                            std::string* error);

}  // namespace e2gcl

#endif  // E2GCL_SERVE_RELOAD_H_
