#ifndef E2GCL_BASELINES_MVGRL_H_
#define E2GCL_BASELINES_MVGRL_H_

#include <cstdint>
#include <memory>

#include "core/trainer.h"
#include "graph/graph.h"
#include "graph/ppr.h"
#include "nn/gcn.h"

namespace e2gcl {

/// MVGRL [Hassani & Khasahmadi 2020]: diffusion-based GCL. The first
/// view is the original adjacency, the second the PPR diffusion graph
/// (edge deletion + addition driven by global topology). Two encoders
/// (one per view) are trained with a DGI-style cross-view discriminator;
/// the node embedding is the sum of the two views' embeddings.
struct MvgrlConfig {
  PprOptions ppr;
  /// FP upgrade (Fig. 2): multiplicative feature noise strength applied
  /// to the encoder inputs each epoch (0 = native MVGRL).
  float feature_perturb_eta = 0.0f;
  std::int64_t hidden_dim = 64;
  std::int64_t embed_dim = 64;
  int num_layers = 1;
  float lr = 5e-3f;
  float weight_decay = 1e-5f;
  int epochs = 60;
  std::int64_t batch_size = 500;
  std::uint64_t seed = 1;
};

class MvgrlTrainer {
 public:
  MvgrlTrainer(const Graph& graph, const MvgrlConfig& config);

  void Train(const EpochCallback& callback = nullptr);

  /// Combined embedding (sum of both views' encoders).
  Matrix Embed() const;
  const E2gclStats& stats() const { return stats_; }
  const Graph& diffusion_view() const { return diffusion_; }

 private:
  const Graph* graph_;
  MvgrlConfig config_;
  Graph diffusion_;
  std::unique_ptr<GcnEncoder> enc_a_;  // adjacency view
  std::unique_ptr<GcnEncoder> enc_d_;  // diffusion view
  ParamSet disc_params_;
  Var disc_w_;
  E2gclStats stats_;
  Rng rng_;
};

}  // namespace e2gcl

#endif  // E2GCL_BASELINES_MVGRL_H_
