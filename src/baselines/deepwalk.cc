#include "baselines/deepwalk.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/check.h"
#include "tensor/rng.h"

namespace e2gcl {

namespace {

/// One biased (node2vec) random-walk step from `cur` with predecessor
/// `prev` (-1 for the first step). Rejection sampling over the
/// unnormalized bias keeps this O(1) expected per step.
std::int64_t WalkStep(const Graph& g, std::int64_t prev, std::int64_t cur,
                      float p, float q, Rng& rng) {
  const auto nb = g.Neighbors(cur);
  if (nb.empty()) return -1;
  if (prev < 0 || (p == 1.0f && q == 1.0f)) {
    return nb[rng.UniformInt(static_cast<std::int64_t>(nb.size()))];
  }
  const float max_bias =
      std::max({1.0f, 1.0f / p, 1.0f / q});
  for (int tries = 0; tries < 32; ++tries) {
    const std::int64_t cand =
        nb[rng.UniformInt(static_cast<std::int64_t>(nb.size()))];
    float bias;
    if (cand == prev) {
      bias = 1.0f / p;
    } else if (g.HasEdge(cand, prev)) {
      bias = 1.0f;
    } else {
      bias = 1.0f / q;
    }
    if (rng.Uniform() * max_bias <= bias) return cand;
  }
  return nb[rng.UniformInt(static_cast<std::int64_t>(nb.size()))];
}

}  // namespace

Matrix TrainDeepWalk(const Graph& g, const DeepWalkConfig& config) {
  const std::int64_t n = g.num_nodes;
  const std::int64_t d = config.embed_dim;
  Rng rng(config.seed);
  Matrix emb = Matrix::RandomUniform(n, d, -0.5f / d, 0.5f / d, rng);
  Matrix ctx(n, d);  // context table starts at zero (word2vec convention)

  // Degree^{3/4} negative-sampling table (word2vec style), as a CDF.
  std::vector<double> neg_cdf(n);
  double acc = 0.0;
  for (std::int64_t v = 0; v < n; ++v) {
    acc += std::pow(static_cast<double>(g.Degree(v)) + 1.0, 0.75);
    neg_cdf[v] = acc;
  }
  auto sample_negative = [&]() {
    const double u = static_cast<double>(rng.Uniform()) * acc;
    return static_cast<std::int64_t>(
        std::distance(neg_cdf.begin(),
                      std::upper_bound(neg_cdf.begin(), neg_cdf.end(), u)));
  };

  std::vector<float> grad_center(d);
  std::vector<std::int64_t> order(n);
  for (std::int64_t i = 0; i < n; ++i) order[i] = i;
  float lr = config.lr;
  const float lr_min = config.lr * 0.05f;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    for (std::int64_t start : order) {
      for (int w = 0; w < config.walks_per_node; ++w) {
        // Generate the walk.
        std::vector<std::int64_t> walk{start};
        std::int64_t prev = -1, cur = start;
        for (int s = 1; s < config.walk_length; ++s) {
          const std::int64_t nxt =
              WalkStep(g, prev, cur, config.p, config.q, rng);
          if (nxt < 0) break;
          walk.push_back(nxt);
          prev = cur;
          cur = nxt;
        }
        // SGNS over window pairs.
        for (std::size_t i = 0; i < walk.size(); ++i) {
          const std::int64_t center = walk[i];
          float* ec = emb.RowPtr(center);
          const std::size_t lo =
              i >= static_cast<std::size_t>(config.window)
                  ? i - config.window
                  : 0;
          const std::size_t hi =
              std::min(walk.size() - 1, i + config.window);
          for (std::size_t j = lo; j <= hi; ++j) {
            if (j == i) continue;
            std::fill(grad_center.begin(), grad_center.end(), 0.0f);
            // Positive pair + negatives.
            for (int neg = -1; neg < config.negatives; ++neg) {
              const std::int64_t target =
                  neg < 0 ? walk[j] : sample_negative();
              if (neg >= 0 && target == walk[j]) continue;
              const float label = neg < 0 ? 1.0f : 0.0f;
              float* ct = ctx.RowPtr(target);
              float dot = 0.0f;
              for (std::int64_t kk = 0; kk < d; ++kk) dot += ec[kk] * ct[kk];
              const float sig = 1.0f / (1.0f + std::exp(-dot));
              const float gscale = lr * (label - sig);
              for (std::int64_t kk = 0; kk < d; ++kk) {
                grad_center[kk] += gscale * ct[kk];
                ct[kk] += gscale * ec[kk];
              }
            }
            for (std::int64_t kk = 0; kk < d; ++kk) {
              ec[kk] += grad_center[kk];
            }
          }
        }
      }
    }
    lr = std::max(lr_min, lr * 0.5f);
  }
  return emb;
}

}  // namespace e2gcl
