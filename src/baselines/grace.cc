#include "baselines/grace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "tensor/check.h"

namespace e2gcl {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

GraceTrainer::GraceTrainer(const Graph& graph, const GraceConfig& config)
    : graph_(&graph), config_(config), rng_(config.seed) {
  GcnConfig enc;
  enc.dims.assign(config.num_layers + 1, config.hidden_dim);
  enc.dims.front() = graph.feature_dim();
  enc.dims.back() = config.embed_dim;
  enc.dropout = config.dropout;
  encoder_ = std::make_unique<GcnEncoder>(enc, rng_);
  if (config.projection_head) {
    MlpConfig proj;
    proj.dims = {config.embed_dim, config.embed_dim, config.embed_dim};
    projector_ = std::make_unique<Mlp>(proj, rng_);
  }

  edges_ = UndirectedEdges(graph);
  if (config.adaptive) {
    // GCA: drop probability of edge (u, v) grows as the mean endpoint
    // degree centrality shrinks (peripheral edges dropped more).
    auto cent = DegreeCentrality(graph);
    edge_keep_weight_.reserve(edges_.size());
    float mx = 0.0f;
    double sum = 0.0;
    std::vector<float> s(edges_.size());
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      s[i] = 0.5f * (cent[edges_[i].first] + cent[edges_[i].second]);
      mx = std::max(mx, s[i]);
      sum += s[i];
    }
    const float mean = static_cast<float>(sum / std::max<std::size_t>(
                                                    edges_.size(), 1));
    const float denom = std::max(mx - mean, 1e-9f);
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      // Normalized "unimportance" in [0, ~]: higher => drop more.
      edge_keep_weight_.push_back((mx - s[i]) / denom);
    }
    // Feature-mask weights: inverse frequency weighted by centrality
    // (same signal as E2GCL's feature score).
    const std::int64_t d = graph.feature_dim();
    feature_mask_weight_.assign(d, 0.0f);
    for (std::int64_t v = 0; v < graph.num_nodes; ++v) {
      const float* row = graph.features.RowPtr(v);
      for (std::int64_t i = 0; i < d; ++i) {
        feature_mask_weight_[i] += cent[v] * std::fabs(row[i]);
      }
    }
    float fmx = 0.0f;
    double fsum = 0.0;
    for (float& w : feature_mask_weight_) {
      w = std::log1p(w);
      fmx = std::max(fmx, w);
      fsum += w;
    }
    const float fmean = static_cast<float>(fsum / d);
    const float fdenom = std::max(fmx - fmean, 1e-9f);
    for (float& w : feature_mask_weight_) w = (fmx - w) / fdenom;
  }
}

Graph GraceTrainer::SampleView(float drop_edge, float mask_feature,
                               Rng& rng) const {
  const Graph& g = *graph_;
  std::vector<std::pair<std::int64_t, std::int64_t>> kept;
  kept.reserve(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    float p_drop = drop_edge;
    if (config_.adaptive && !edge_keep_weight_.empty()) {
      p_drop = std::min(drop_edge * edge_keep_weight_[i], 0.95f);
    }
    if (!rng.Bernoulli(p_drop)) kept.push_back(edges_[i]);
  }
  // EA upgrade: random 2-hop edge additions.
  if (config_.add_edge_ratio > 0.0f) {
    const std::int64_t extra = static_cast<std::int64_t>(std::floor(
        config_.add_edge_ratio * static_cast<float>(edges_.size())));
    for (std::int64_t i = 0; i < extra; ++i) {
      const std::int64_t u = rng.UniformInt(g.num_nodes);
      if (g.Degree(u) == 0) continue;
      const auto nb = g.Neighbors(u);
      const std::int64_t w = nb[rng.UniformInt(nb.size())];
      const auto nb2 = g.Neighbors(w);
      if (nb2.empty()) continue;
      const std::int64_t x = nb2[rng.UniformInt(nb2.size())];
      if (x != u) kept.emplace_back(std::min<std::int64_t>(u, x),
                                    std::max<std::int64_t>(u, x));
    }
  }

  Matrix feats = g.features;
  const std::int64_t d = g.feature_dim();
  if (config_.mask_features && mask_feature > 0.0f) {
    // GRACE masks whole dimensions per view.
    std::vector<char> mask(d, 0);
    for (std::int64_t i = 0; i < d; ++i) {
      float p = mask_feature;
      if (config_.adaptive && !feature_mask_weight_.empty()) {
        p = std::min(mask_feature * feature_mask_weight_[i], 0.95f);
      }
      mask[i] = rng.Bernoulli(p) ? 1 : 0;
    }
    for (std::int64_t v = 0; v < g.num_nodes; ++v) {
      float* row = feats.RowPtr(v);
      for (std::int64_t i = 0; i < d; ++i) {
        if (mask[i]) row[i] = 0.0f;
      }
    }
  }
  // FP upgrade: Eq. 16-style multiplicative noise.
  if (config_.feature_perturb_eta > 0.0f) {
    const float eta = std::min(config_.feature_perturb_eta, 0.95f);
    for (std::int64_t v = 0; v < g.num_nodes; ++v) {
      float* row = feats.RowPtr(v);
      for (std::int64_t i = 0; i < d; ++i) {
        if (rng.Bernoulli(eta)) {
          row[i] += (2.0f * rng.Uniform() - 1.0f) * row[i];
        }
      }
    }
  }
  return BuildGraph(g.num_nodes, kept, std::move(feats), g.labels,
                    g.num_classes);
}

void GraceTrainer::Train(const EpochCallback& callback) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t n = graph_->num_nodes;

  std::vector<Var> params;
  for (const Var& p : encoder_->params().params()) params.push_back(p);
  if (projector_ != nullptr) {
    for (const Var& p : projector_->params().params()) params.push_back(p);
  }
  Adam::Options opts;
  opts.lr = config_.lr;
  opts.weight_decay = config_.weight_decay;
  Adam adam(params, opts);

  const std::int64_t batch = std::min<std::int64_t>(config_.batch_size, n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const auto tv = std::chrono::steady_clock::now();
    Graph v1 = SampleView(config_.drop_edge_1, config_.mask_feature_1, rng_);
    Graph v2 = SampleView(config_.drop_edge_2, config_.mask_feature_2, rng_);
    auto a1 = std::make_shared<const CsrMatrix>(NormalizedAdjacency(v1));
    auto a2 = std::make_shared<const CsrMatrix>(NormalizedAdjacency(v2));
    stats_.view_seconds += SecondsSince(tv);

    std::vector<std::int64_t> batch_nodes =
        rng_.SampleWithoutReplacement(n, batch);

    Var h1 = encoder_->Forward(a1, Var::Constant(v1.features), rng_, true);
    Var h2 = encoder_->Forward(a2, Var::Constant(v2.features), rng_, true);
    Var z1 = ag::GatherRows(h1, batch_nodes);
    Var z2 = ag::GatherRows(h2, batch_nodes);
    if (projector_ != nullptr) {
      z1 = projector_->Forward(z1, rng_, true);
      z2 = projector_->Forward(z2, rng_, true);
    }
    Var loss = ag::InfoNce(ag::NormalizeRowsL2(z1), ag::NormalizeRowsL2(z2),
                           config_.temperature);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    stats_.epochs_run = epoch + 1;
    if (callback) callback(epoch, SecondsSince(t0), *encoder_);
  }
  stats_.total_seconds = SecondsSince(t0);
}

}  // namespace e2gcl
