#include "baselines/bgrl.h"

#include <chrono>

#include "autograd/loss.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

BgrlTrainer::BgrlTrainer(const Graph& graph, const BgrlConfig& config)
    : graph_(&graph), config_(config), rng_(config.seed) {
  GcnConfig enc;
  enc.dims.assign(config.num_layers + 1, config.hidden_dim);
  enc.dims.front() = graph.feature_dim();
  enc.dims.back() = config.embed_dim;
  enc.dropout = config.dropout;
  online_ = std::make_unique<GcnEncoder>(enc, rng_);
  target_ = std::make_unique<GcnEncoder>(enc, rng_);
  // Target starts as a copy of online.
  target_->params().LoadValues(online_->params().CloneValues());
  MlpConfig pred;
  pred.dims = {config.embed_dim, config.embed_dim, config.embed_dim};
  pred.batch_norm = true;  // BYOL-style predictors collapse without BN.
  predictor_ = std::make_unique<Mlp>(pred, rng_);
  edges_ = UndirectedEdges(graph);
}

Graph BgrlTrainer::SampleView(float drop_edge, float mask_feature) {
  const Graph& g = *graph_;
  std::vector<std::pair<std::int64_t, std::int64_t>> kept;
  kept.reserve(edges_.size());
  for (const auto& e : edges_) {
    if (!rng_.Bernoulli(drop_edge)) kept.push_back(e);
  }
  Matrix feats = g.features;
  if (mask_feature > 0.0f) {
    const std::int64_t d = g.feature_dim();
    std::vector<char> mask(d, 0);
    for (std::int64_t i = 0; i < d; ++i) {
      mask[i] = rng_.Bernoulli(mask_feature) ? 1 : 0;
    }
    for (std::int64_t v = 0; v < g.num_nodes; ++v) {
      float* row = feats.RowPtr(v);
      for (std::int64_t i = 0; i < d; ++i) {
        if (mask[i]) row[i] = 0.0f;
      }
    }
  }
  return BuildGraph(g.num_nodes, kept, std::move(feats), g.labels,
                    g.num_classes);
}

void BgrlTrainer::Train(const EpochCallback& callback) {
  const auto t0 = std::chrono::steady_clock::now();
  const Graph& g = *graph_;
  const std::int64_t n = g.num_nodes;

  std::vector<Var> params;
  for (const Var& p : online_->params().params()) params.push_back(p);
  for (const Var& p : predictor_->params().params()) params.push_back(p);
  Adam::Options opts;
  opts.lr = config_.lr;
  opts.weight_decay = config_.weight_decay;
  Adam adam(params, opts);

  auto base_adj = std::make_shared<const CsrMatrix>(NormalizedAdjacency(g));
  auto rw_adj =
      std::make_shared<const CsrMatrix>(RowNormalizedAdjacency(g));

  const std::int64_t batch = std::min<std::int64_t>(config_.batch_size, n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::vector<std::int64_t> batch_nodes =
        rng_.SampleWithoutReplacement(n, batch);

    Var loss;
    if (config_.augmentation_free) {
      // AFGRL-style: online prediction of neighborhood-averaged target
      // embeddings on the unaugmented graph.
      Var h_on =
          online_->Forward(base_adj, Var::Constant(g.features), rng_, true);
      Matrix h_tg = target_->Encode(g);
      Matrix h_tg_nb = Spmm(*rw_adj, h_tg);  // neighbor-mean targets
      Var p = predictor_->Forward(ag::GatherRows(h_on, batch_nodes), rng_,
                                  true);
      Var y = Var::Constant(GatherRows(h_tg_nb, batch_nodes));
      loss = ag::CosinePredictionLoss(p, y);
    } else {
      const auto tv = std::chrono::steady_clock::now();
      Graph v1 = SampleView(config_.drop_edge_1, config_.mask_feature_1);
      Graph v2 = SampleView(config_.drop_edge_2, config_.mask_feature_2);
      auto a1 = std::make_shared<const CsrMatrix>(NormalizedAdjacency(v1));
      auto a2 = std::make_shared<const CsrMatrix>(NormalizedAdjacency(v2));
      stats_.view_seconds += SecondsSince(tv);

      Var h1 = online_->Forward(a1, Var::Constant(v1.features), rng_, true);
      Var h2 = online_->Forward(a2, Var::Constant(v2.features), rng_, true);
      Matrix t1 = [&] {
        Rng tmp(0);
        Var ht = target_->Forward(a1, Var::Constant(v1.features), tmp, false);
        return ht.value();
      }();
      Matrix t2 = [&] {
        Rng tmp(0);
        Var ht = target_->Forward(a2, Var::Constant(v2.features), tmp, false);
        return ht.value();
      }();
      Var p1 = predictor_->Forward(ag::GatherRows(h1, batch_nodes), rng_,
                                   true);
      Var p2 = predictor_->Forward(ag::GatherRows(h2, batch_nodes), rng_,
                                   true);
      Var y2 = Var::Constant(GatherRows(t2, batch_nodes));
      Var y1 = Var::Constant(GatherRows(t1, batch_nodes));
      loss = ag::Scale(ag::Add(ag::CosinePredictionLoss(p1, y2),
                               ag::CosinePredictionLoss(p2, y1)),
                       0.5f);
    }

    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    target_->params().EmaUpdateFrom(online_->params(), config_.ema_decay);
    stats_.epochs_run = epoch + 1;
    if (callback) callback(epoch, SecondsSince(t0), *online_);
  }
  stats_.total_seconds = SecondsSince(t0);
}

}  // namespace e2gcl
