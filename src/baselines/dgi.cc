#include "baselines/dgi.h"

#include <chrono>
#include <numeric>

#include "autograd/loss.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

DgiTrainer::DgiTrainer(const Graph& graph, const DgiConfig& config)
    : graph_(&graph), config_(config), rng_(config.seed) {
  GcnConfig enc;
  enc.dims.assign(config.num_layers + 1, config.hidden_dim);
  enc.dims.front() = graph.feature_dim();
  enc.dims.back() = config.embed_dim;
  enc.prelu = true;
  enc.final_activation = true;
  encoder_ = std::make_unique<GcnEncoder>(enc, rng_);
  disc_w_ = disc_params_.Create(
      GlorotUniform(config.embed_dim, config.embed_dim, rng_));
}

void DgiTrainer::Train(const EpochCallback& callback) {
  const auto t0 = std::chrono::steady_clock::now();
  const Graph& g = *graph_;
  const std::int64_t n = g.num_nodes;
  auto adj = std::make_shared<const CsrMatrix>(NormalizedAdjacency(g));

  std::vector<Var> params;
  for (const Var& p : encoder_->params().params()) params.push_back(p);
  params.push_back(disc_w_);
  Adam::Options opts;
  opts.lr = config_.lr;
  opts.weight_decay = config_.weight_decay;
  Adam adam(params, opts);

  const std::int64_t batch = std::min<std::int64_t>(config_.batch_size, n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Corruption: shuffle feature rows over the same topology.
    std::vector<std::int64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    rng_.Shuffle(perm);
    Matrix corrupted = GatherRows(g.features, perm);

    Var h_pos = encoder_->Forward(adj, Var::Constant(g.features), rng_, true);
    Var h_neg =
        encoder_->Forward(adj, Var::Constant(corrupted), rng_, true);
    // Summary s = sigmoid(mean over nodes).
    Var summary = ag::Sigmoid(ag::MeanRows(h_pos));

    std::vector<std::int64_t> batch_nodes =
        rng_.SampleWithoutReplacement(n, batch);
    Var hp = ag::GatherRows(h_pos, batch_nodes);
    Var hn = ag::GatherRows(h_neg, batch_nodes);
    // Bilinear score: h W s^T.
    Var ws = ag::MatMulTransposedB(disc_w_, summary);  // d x 1
    Var logits_pos = ag::MatMul(hp, ws);               // batch x 1
    Var logits_neg = ag::MatMul(hn, ws);

    std::vector<float> targets(2 * batch, 0.0f);
    for (std::int64_t i = 0; i < batch; ++i) targets[i] = 1.0f;
    // Stack by computing the two BCEs separately (same as concatenated).
    Var loss_pos = ag::BceWithLogits(
        logits_pos, std::vector<float>(batch, 1.0f));
    Var loss_neg = ag::BceWithLogits(
        logits_neg, std::vector<float>(batch, 0.0f));
    Var loss = ag::Scale(ag::Add(loss_pos, loss_neg), 0.5f);

    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    stats_.epochs_run = epoch + 1;
    if (callback) callback(epoch, SecondsSince(t0), *encoder_);
  }
  stats_.total_seconds = SecondsSince(t0);
}

}  // namespace e2gcl
