#ifndef E2GCL_BASELINES_BGRL_H_
#define E2GCL_BASELINES_BGRL_H_

#include <cstdint>
#include <memory>

#include "baselines/grace.h"
#include "core/trainer.h"
#include "graph/graph.h"
#include "nn/gcn.h"
#include "nn/mlp.h"

namespace e2gcl {

/// BGRL [Thakoor et al. 2021]: negative-free bootstrapped GCL. An online
/// encoder + predictor regress the EMA target encoder's embedding of the
/// other view; views come from GRACE-style uniform ED + FM.
///
/// With `augmentation_free` set, this becomes our AFGRL-style variant
/// [Lee et al. 2022]: no augmentation at all; the prediction target of a
/// node is the neighborhood-averaged target embedding (neighbor
/// positives instead of augmentation positives).
struct BgrlConfig {
  float drop_edge_1 = 0.2f;
  float drop_edge_2 = 0.4f;
  float mask_feature_1 = 0.2f;
  float mask_feature_2 = 0.3f;
  float ema_decay = 0.9f;
  bool augmentation_free = false;  // AFGRL variant.

  std::int64_t hidden_dim = 64;
  std::int64_t embed_dim = 64;
  int num_layers = 2;
  float dropout = 0.1f;
  float lr = 5e-3f;
  float weight_decay = 1e-5f;
  int epochs = 60;
  std::int64_t batch_size = 500;
  std::uint64_t seed = 1;
};

class BgrlTrainer {
 public:
  BgrlTrainer(const Graph& graph, const BgrlConfig& config);

  void Train(const EpochCallback& callback = nullptr);

  const GcnEncoder& encoder() const { return *online_; }
  const E2gclStats& stats() const { return stats_; }

 private:
  Graph SampleView(float drop_edge, float mask_feature);

  const Graph* graph_;
  BgrlConfig config_;
  std::unique_ptr<GcnEncoder> online_;
  std::unique_ptr<GcnEncoder> target_;
  std::unique_ptr<Mlp> predictor_;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges_;
  E2gclStats stats_;
  Rng rng_;
};

}  // namespace e2gcl

#endif  // E2GCL_BASELINES_BGRL_H_
