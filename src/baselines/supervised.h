#ifndef E2GCL_BASELINES_SUPERVISED_H_
#define E2GCL_BASELINES_SUPERVISED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/splits.h"
#include "nn/gcn.h"
#include "nn/mlp.h"

namespace e2gcl {

/// End-to-end supervised baselines of Table IV: a 2-layer GCN and an
/// MLP trained with cross-entropy on the labeled training nodes, with
/// early model selection on validation accuracy.
struct SupervisedConfig {
  std::int64_t hidden_dim = 64;
  int num_layers = 2;
  float dropout = 0.5f;
  float lr = 1e-2f;
  float weight_decay = 5e-4f;
  int epochs = 120;
  std::uint64_t seed = 1;
};

/// Trains a supervised GCN classifier; returns test accuracy at the
/// best validation epoch.
double TrainSupervisedGcn(const Graph& g, const NodeSplit& split,
                          const SupervisedConfig& config);

/// Same with a feature-only MLP.
double TrainSupervisedMlp(const Graph& g, const NodeSplit& split,
                          const SupervisedConfig& config);

}  // namespace e2gcl

#endif  // E2GCL_BASELINES_SUPERVISED_H_
