#include "baselines/gae.h"

#include <chrono>
#include <cmath>

#include "autograd/loss.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

GaeTrainer::GaeTrainer(const Graph& graph, const GaeConfig& config)
    : graph_(&graph), config_(config), rng_(config.seed) {
  GcnConfig enc;
  enc.dims = {graph.feature_dim(), config.hidden_dim, config.embed_dim};
  encoder_ = std::make_unique<GcnEncoder>(enc, rng_);
  if (config.variational) {
    logvar_ = std::make_unique<GcnEncoder>(enc, rng_);
  }
  edges_ = UndirectedEdges(graph);
}

Matrix GaeTrainer::Embed() const { return encoder_->Encode(*graph_); }

void GaeTrainer::Train(const EpochCallback& callback) {
  const auto t0 = std::chrono::steady_clock::now();
  const Graph& g = *graph_;
  const std::int64_t n = g.num_nodes;
  auto adj = std::make_shared<const CsrMatrix>(NormalizedAdjacency(g));

  std::vector<Var> params;
  for (const Var& p : encoder_->params().params()) params.push_back(p);
  if (logvar_ != nullptr) {
    for (const Var& p : logvar_->params().params()) params.push_back(p);
  }
  Adam::Options opts;
  opts.lr = config_.lr;
  opts.weight_decay = config_.weight_decay;
  Adam adam(params, opts);

  const std::int64_t m = static_cast<std::int64_t>(edges_.size());
  const std::int64_t batch = std::min<std::int64_t>(config_.batch_edges, m);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    Var mu = encoder_->Forward(adj, Var::Constant(g.features), rng_, true);
    Var z = mu;
    Var kl;
    if (logvar_ != nullptr) {
      Var logvar =
          logvar_->Forward(adj, Var::Constant(g.features), rng_, true);
      // Reparameterize: z = mu + exp(logvar / 2) * eps.
      Matrix eps_m =
          Matrix::RandomNormal(mu.rows(), mu.cols(), 0.0f, 1.0f, rng_);
      Var eps = Var::Constant(std::move(eps_m));
      Var std_dev = ag::Exp(ag::Scale(logvar, 0.5f));
      z = ag::Add(mu, ag::Hadamard(std_dev, eps));
      // KL(q || N(0,I)) = -0.5 * mean(1 + logvar - mu^2 - exp(logvar)).
      Var one = Var::Constant(Matrix(mu.rows(), mu.cols(), 1.0f));
      Var term = ag::Sub(ag::Add(one, logvar),
                         ag::Add(ag::Hadamard(mu, mu), ag::Exp(logvar)));
      kl = ag::Scale(ag::MeanAll(term), -0.5f);
    }

    // Edge batch: positive edges + equal sampled negatives.
    std::vector<std::int64_t> left, right;
    std::vector<float> targets;
    for (std::int64_t idx : rng_.SampleWithoutReplacement(m, batch)) {
      left.push_back(edges_[idx].first);
      right.push_back(edges_[idx].second);
      targets.push_back(1.0f);
    }
    std::int64_t made = 0;
    while (made < batch) {
      const std::int64_t u = rng_.UniformInt(n);
      const std::int64_t v = rng_.UniformInt(n);
      if (u == v || g.HasEdge(u, v)) continue;
      left.push_back(u);
      right.push_back(v);
      targets.push_back(0.0f);
      ++made;
    }
    Var zu = ag::GatherRows(z, left);
    Var zv = ag::GatherRows(z, right);
    // Inner-product decoder: logits = sum(zu * zv, dim).
    Var prod = ag::Hadamard(zu, zv);
    Var ones = Var::Constant(Matrix(z.cols(), 1, 1.0f));
    Var logits = ag::MatMul(prod, ones);
    Var loss = ag::BceWithLogits(logits, targets);
    if (kl.defined()) {
      loss = ag::Add(loss, ag::Scale(kl, config_.kl_weight));
    }

    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    stats_.epochs_run = epoch + 1;
    if (callback) callback(epoch, SecondsSince(t0), *encoder_);
  }
  stats_.total_seconds = SecondsSince(t0);
}

}  // namespace e2gcl
