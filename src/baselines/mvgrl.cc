#include "baselines/mvgrl.h"

#include <chrono>
#include <numeric>

#include "autograd/loss.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

MvgrlTrainer::MvgrlTrainer(const Graph& graph, const MvgrlConfig& config)
    : graph_(&graph), config_(config), rng_(config.seed) {
  const auto t0 = std::chrono::steady_clock::now();
  diffusion_ = DiffusionGraph(graph, config.ppr);
  stats_.view_seconds = SecondsSince(t0);

  GcnConfig enc;
  enc.dims.assign(config.num_layers + 1, config.hidden_dim);
  enc.dims.front() = graph.feature_dim();
  enc.dims.back() = config.embed_dim;
  enc.prelu = true;
  enc.final_activation = true;
  enc_a_ = std::make_unique<GcnEncoder>(enc, rng_);
  enc_d_ = std::make_unique<GcnEncoder>(enc, rng_);
  disc_w_ = disc_params_.Create(
      GlorotUniform(config.embed_dim, config.embed_dim, rng_));
}

Matrix MvgrlTrainer::Embed() const {
  Matrix ha = enc_a_->Encode(*graph_);
  Matrix hd = enc_d_->Encode(diffusion_);
  AddInPlace(ha, hd);
  return ha;
}

void MvgrlTrainer::Train(const EpochCallback& callback) {
  const auto t0 = std::chrono::steady_clock::now();
  const Graph& g = *graph_;
  const std::int64_t n = g.num_nodes;
  auto adj_a = std::make_shared<const CsrMatrix>(NormalizedAdjacency(g));
  auto adj_d =
      std::make_shared<const CsrMatrix>(NormalizedAdjacency(diffusion_));

  std::vector<Var> params;
  for (const Var& p : enc_a_->params().params()) params.push_back(p);
  for (const Var& p : enc_d_->params().params()) params.push_back(p);
  params.push_back(disc_w_);
  Adam::Options opts;
  opts.lr = config_.lr;
  opts.weight_decay = config_.weight_decay;
  Adam adam(params, opts);

  const std::int64_t batch = std::min<std::int64_t>(config_.batch_size, n);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::vector<std::int64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    rng_.Shuffle(perm);

    Matrix inputs = g.features;
    if (config_.feature_perturb_eta > 0.0f) {
      const float eta = std::min(config_.feature_perturb_eta, 0.95f);
      for (std::int64_t i = 0; i < inputs.size(); ++i) {
        if (rng_.Bernoulli(eta)) {
          inputs.data()[i] +=
              (2.0f * rng_.Uniform() - 1.0f) * inputs.data()[i];
        }
      }
    }
    Matrix corrupted = GatherRows(inputs, perm);

    Var ha = enc_a_->Forward(adj_a, Var::Constant(inputs), rng_, true);
    Var hd = enc_d_->Forward(adj_d, Var::Constant(inputs), rng_, true);
    Var ha_neg =
        enc_a_->Forward(adj_a, Var::Constant(corrupted), rng_, true);
    Var hd_neg =
        enc_d_->Forward(adj_d, Var::Constant(corrupted), rng_, true);

    Var sum_a = ag::Sigmoid(ag::MeanRows(ha));
    Var sum_d = ag::Sigmoid(ag::MeanRows(hd));

    std::vector<std::int64_t> batch_nodes =
        rng_.SampleWithoutReplacement(n, batch);
    // Cross-view scores: nodes of one view vs summary of the other.
    Var ws_a = ag::MatMulTransposedB(disc_w_, sum_a);  // d x 1
    Var ws_d = ag::MatMulTransposedB(disc_w_, sum_d);
    Var pos_ad = ag::MatMul(ag::GatherRows(ha, batch_nodes), ws_d);
    Var pos_da = ag::MatMul(ag::GatherRows(hd, batch_nodes), ws_a);
    Var neg_ad = ag::MatMul(ag::GatherRows(ha_neg, batch_nodes), ws_d);
    Var neg_da = ag::MatMul(ag::GatherRows(hd_neg, batch_nodes), ws_a);

    const std::vector<float> ones(batch, 1.0f);
    const std::vector<float> zeros(batch, 0.0f);
    Var loss = ag::Scale(
        ag::Add(ag::Add(ag::BceWithLogits(pos_ad, ones),
                        ag::BceWithLogits(pos_da, ones)),
                ag::Add(ag::BceWithLogits(neg_ad, zeros),
                        ag::BceWithLogits(neg_da, zeros))),
        0.25f);

    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    stats_.epochs_run = epoch + 1;
    if (callback) callback(epoch, SecondsSince(t0), *enc_a_);
  }
  stats_.total_seconds = SecondsSince(t0) + stats_.view_seconds;
}

}  // namespace e2gcl
