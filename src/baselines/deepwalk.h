#ifndef E2GCL_BASELINES_DEEPWALK_H_
#define E2GCL_BASELINES_DEEPWALK_H_

#include <cstdint>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace e2gcl {

/// DeepWalk / node2vec: truncated random walks + skip-gram with
/// negative sampling (SGNS), implemented directly on the embedding
/// tables (no autograd; SGNS is its own closed-form update). node2vec's
/// return parameter p and in-out parameter q bias the walk; p = q = 1
/// reduces to DeepWalk.
struct DeepWalkConfig {
  std::int64_t embed_dim = 64;
  int walks_per_node = 8;
  int walk_length = 20;
  int window = 5;
  int negatives = 4;
  float lr = 0.025f;
  int epochs = 2;
  /// node2vec bias parameters (1, 1) == DeepWalk.
  float p = 1.0f;
  float q = 1.0f;
  std::uint64_t seed = 1;
};

/// Learns embeddings; returns the input (center) embedding table.
Matrix TrainDeepWalk(const Graph& g, const DeepWalkConfig& config);

}  // namespace e2gcl

#endif  // E2GCL_BASELINES_DEEPWALK_H_
