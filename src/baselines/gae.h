#ifndef E2GCL_BASELINES_GAE_H_
#define E2GCL_BASELINES_GAE_H_

#include <cstdint>
#include <memory>

#include "core/trainer.h"
#include "graph/graph.h"
#include "nn/gcn.h"

namespace e2gcl {

/// (Variational) Graph Auto-Encoder [Kipf & Welling 2016]. A GCN
/// encoder produces Z (for VGAE: mu and logvar heads with a
/// reparameterized sample); an inner-product decoder reconstructs
/// edges. Loss: BCE over positive edges and an equal number of sampled
/// negatives (+ KL for VGAE). Embedding: Z (GAE) / mu (VGAE).
struct GaeConfig {
  bool variational = false;
  std::int64_t hidden_dim = 64;
  std::int64_t embed_dim = 64;
  float lr = 5e-3f;
  float weight_decay = 1e-5f;
  int epochs = 60;
  std::int64_t batch_edges = 1000;
  float kl_weight = 1e-2f;
  std::uint64_t seed = 1;
};

class GaeTrainer {
 public:
  GaeTrainer(const Graph& graph, const GaeConfig& config);

  void Train(const EpochCallback& callback = nullptr);

  /// Embedding matrix (Z for GAE, mu for VGAE).
  Matrix Embed() const;
  const E2gclStats& stats() const { return stats_; }
  const GcnEncoder& encoder() const { return *encoder_; }

 private:
  const Graph* graph_;
  GaeConfig config_;
  std::unique_ptr<GcnEncoder> encoder_;   // shared trunk -> mu head
  std::unique_ptr<GcnEncoder> logvar_;    // VGAE only
  std::vector<std::pair<std::int64_t, std::int64_t>> edges_;
  E2gclStats stats_;
  Rng rng_;
};

}  // namespace e2gcl

#endif  // E2GCL_BASELINES_GAE_H_
