#ifndef E2GCL_BASELINES_GRACE_H_
#define E2GCL_BASELINES_GRACE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/trainer.h"
#include "graph/graph.h"
#include "nn/gcn.h"
#include "nn/mlp.h"

namespace e2gcl {

/// The GRACE / GCA family of perturbation-based GCL baselines, plus the
/// operation-upgrade switches used by the Fig. 2 study.
///
/// GRACE [Zhu et al. 2020]: two views via uniform edge dropping (ED) and
/// uniform feature masking (FM); InfoNCE with intra-view negatives.
/// GCA [Zhu et al. 2021]: the same pipeline with degree-centrality-
/// adaptive edge-drop and feature-mask probabilities.
/// Fig. 2 upgrades: `add_edge_ratio` > 0 enables EA (random 2-hop edge
/// addition) and `feature_perturb_eta` > 0 enables FP (Eq. 16-style
/// multiplicative noise) on top of the native operation set.
struct GraceConfig {
  // --- Augmentation. -----------------------------------------------------
  float drop_edge_1 = 0.2f;
  float drop_edge_2 = 0.4f;
  float mask_feature_1 = 0.2f;
  float mask_feature_2 = 0.3f;
  /// GCA-style adaptive (importance-weighted) probabilities.
  bool adaptive = false;
  /// EA upgrade: adds this fraction of |E| new edges per view.
  float add_edge_ratio = 0.0f;
  /// FP upgrade: multiplicative feature noise strength (0 = off).
  float feature_perturb_eta = 0.0f;
  /// Disable FM (for ADGCL-style {ED}-only ablations).
  bool mask_features = true;

  // --- Encoder / optimization (mirrors E2gclConfig). ----------------------
  std::int64_t hidden_dim = 64;
  std::int64_t embed_dim = 64;
  int num_layers = 2;
  float dropout = 0.1f;
  float lr = 1e-3f;
  float weight_decay = 1e-5f;
  int epochs = 60;
  std::int64_t batch_size = 500;
  float temperature = 0.5f;
  bool projection_head = true;
  std::uint64_t seed = 1;
};

/// Pre-trains a GCN encoder with the GRACE/GCA objective.
class GraceTrainer {
 public:
  GraceTrainer(const Graph& graph, const GraceConfig& config);

  void Train(const EpochCallback& callback = nullptr);

  const GcnEncoder& encoder() const { return *encoder_; }
  const E2gclStats& stats() const { return stats_; }

  /// Samples one augmented view (exposed for tests and Fig. 2).
  Graph SampleView(float drop_edge, float mask_feature, Rng& rng) const;

 private:
  const Graph* graph_;
  GraceConfig config_;
  std::unique_ptr<GcnEncoder> encoder_;
  std::unique_ptr<Mlp> projector_;
  E2gclStats stats_;
  Rng rng_;
  // Adaptive (GCA) importance weights.
  std::vector<float> edge_keep_weight_;   // per undirected edge
  std::vector<std::pair<std::int64_t, std::int64_t>> edges_;
  std::vector<float> feature_mask_weight_;  // per dimension
};

}  // namespace e2gcl

#endif  // E2GCL_BASELINES_GRACE_H_
