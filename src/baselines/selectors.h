#ifndef E2GCL_BASELINES_SELECTORS_H_
#define E2GCL_BASELINES_SELECTORS_H_

#include <string>
#include <vector>

#include "core/node_selector.h"
#include "graph/graph.h"

namespace e2gcl {

/// Node-selection strategies compared in Table VII. All return a
/// SelectionResult with lambda weights computed the same way (nearest
/// selected node in raw-aggregation space) so downstream training is
/// identical and only the selection differs.
enum class SelectorKind {
  kRandom,         // uniform k nodes
  kDegree,         // sample k nodes with prob ∝ log(D_v + 1)
  kKMeans,         // 10 clusters, k nodes drawn evenly across clusters
  kKCenterGreedy,  // KCG [Sener & Savarese]: farthest-point traversal
  kGrain,          // Grain-style diversified influence maximization
  kE2gcl,          // ours (Alg. 2)
};

/// Parses "random", "degree", "kmeans", "kcg", "grain", "ours".
SelectorKind SelectorKindFromName(const std::string& name);
std::string SelectorKindName(SelectorKind kind);

/// Runs the chosen strategy. `r` is the raw aggregation matrix
/// A_n^L X shared by all strategies that need geometry; `config` is
/// used by kE2gcl (budget is always taken from `budget`).
SelectionResult SelectNodes(SelectorKind kind, const Graph& g,
                            const Matrix& r, std::int64_t budget,
                            const SelectorConfig& config, Rng& rng);

}  // namespace e2gcl

#endif  // E2GCL_BASELINES_SELECTORS_H_
