#include "baselines/selectors.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "cluster/kmeans.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

/// Nearest-selected-node lambda weights in R space (plain Euclidean —
/// baselines have no cluster structure to exploit). O(n * k).
void AssignWeights(const Matrix& r, SelectionResult& result, Rng& rng) {
  const std::int64_t n = r.rows();
  const std::int64_t k = static_cast<std::int64_t>(result.nodes.size());
  result.weights.assign(k, 0.0f);
  // Full assignment is O(n * k * d); when that exceeds a budget,
  // estimate the weights from a node subsample (weights only reweight
  // the loss, an unbiased estimate is sufficient).
  std::vector<std::int64_t> probes;
  double per_probe_weight = 1.0;
  if (n * k <= 4'000'000) {
    probes.resize(n);
    std::iota(probes.begin(), probes.end(), 0);
  } else {
    const std::int64_t m = std::max<std::int64_t>(1, 4'000'000 / k);
    probes = rng.SampleWithoutReplacement(n, std::min(m, n));
    per_probe_weight =
        static_cast<double>(n) / static_cast<double>(probes.size());
  }
  double objective = 0.0;
  for (std::int64_t v : probes) {
    float best = std::numeric_limits<float>::max();
    std::int64_t best_i = 0;
    for (std::int64_t i = 0; i < k; ++i) {
      const float d = RowSquaredDistance(r, v, r, result.nodes[i]);
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    result.weights[best_i] += static_cast<float>(per_probe_weight);
    objective += std::sqrt(best) * per_probe_weight;
  }
  result.representativity = objective;
}

SelectionResult SelectRandom(std::int64_t n, std::int64_t k, Rng& rng) {
  SelectionResult res;
  res.nodes = rng.SampleWithoutReplacement(n, k);
  return res;
}

SelectionResult SelectDegree(const Graph& g, std::int64_t k, Rng& rng) {
  std::vector<float> w(g.num_nodes);
  for (std::int64_t v = 0; v < g.num_nodes; ++v) {
    w[v] = std::log(static_cast<float>(g.Degree(v)) + 1.0f);
  }
  SelectionResult res;
  res.nodes = rng.WeightedSampleWithoutReplacement(w, k);
  // Zero-degree-only corner: top up uniformly.
  while (static_cast<std::int64_t>(res.nodes.size()) < k) {
    const std::int64_t v = rng.UniformInt(g.num_nodes);
    if (std::find(res.nodes.begin(), res.nodes.end(), v) == res.nodes.end()) {
      res.nodes.push_back(v);
    }
  }
  return res;
}

SelectionResult SelectKMeansEven(const Matrix& r, std::int64_t k, Rng& rng) {
  KMeansOptions opts;
  opts.num_clusters = 10;
  KMeansResult km = KMeans(r, opts, rng);
  SelectionResult res;
  // Draw nodes evenly across clusters, round-robin.
  std::vector<std::vector<std::int64_t>> pools = km.clusters;
  for (auto& pool : pools) rng.Shuffle(pool);
  std::size_t cluster = 0;
  std::vector<std::size_t> cursor(pools.size(), 0);
  while (static_cast<std::int64_t>(res.nodes.size()) < k) {
    bool advanced = false;
    for (std::size_t tries = 0; tries < pools.size(); ++tries) {
      auto& pool = pools[cluster];
      auto& cur = cursor[cluster];
      cluster = (cluster + 1) % pools.size();
      if (cur < pool.size()) {
        res.nodes.push_back(pool[cur++]);
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return res;
}

SelectionResult SelectKCenterGreedy(const Matrix& r, std::int64_t k,
                                    Rng& rng) {
  const std::int64_t n = r.rows();
  SelectionResult res;
  std::vector<float> dist(n, std::numeric_limits<float>::max());
  std::int64_t cur = rng.UniformInt(n);
  res.nodes.push_back(cur);
  for (std::int64_t i = 1; i < k; ++i) {
    float far_d = -1.0f;
    std::int64_t far_v = 0;
    for (std::int64_t v = 0; v < n; ++v) {
      dist[v] = std::min(dist[v], RowSquaredDistance(r, v, r, cur));
      if (dist[v] > far_d) {
        far_d = dist[v];
        far_v = v;
      }
    }
    cur = far_v;
    res.nodes.push_back(cur);
  }
  std::sort(res.nodes.begin(), res.nodes.end());
  res.nodes.erase(std::unique(res.nodes.begin(), res.nodes.end()),
                  res.nodes.end());
  return res;
}

/// Grain-style diversified influence maximization, adapted to the
/// label-free setting: greedily add the node whose (feature-space
/// epsilon-ball ∪ 1-hop neighborhood) covers the most yet-uncovered
/// nodes; ties broken by degree. The epsilon radius is set to the
/// median nearest-neighbor distance over a sample.
SelectionResult SelectGrain(const Graph& g, const Matrix& r, std::int64_t k,
                            Rng& rng) {
  const std::int64_t n = r.rows();
  // Estimate epsilon from a sample of pairwise nearest distances.
  const std::int64_t sample = std::min<std::int64_t>(n, 256);
  auto sample_nodes = rng.SampleWithoutReplacement(n, sample);
  std::vector<float> nn_dist;
  nn_dist.reserve(sample);
  for (std::int64_t i = 0; i < sample; ++i) {
    float best = std::numeric_limits<float>::max();
    for (std::int64_t j = 0; j < sample; ++j) {
      if (i == j) continue;
      best = std::min(best, RowSquaredDistance(r, sample_nodes[i], r,
                                               sample_nodes[j]));
    }
    nn_dist.push_back(std::sqrt(best));
  }
  std::nth_element(nn_dist.begin(), nn_dist.begin() + nn_dist.size() / 2,
                   nn_dist.end());
  const float eps = 2.0f * nn_dist[nn_dist.size() / 2] + 1e-6f;
  const float eps2 = eps * eps;

  std::vector<char> covered(n, 0);
  SelectionResult res;
  std::vector<char> chosen(n, 0);
  // Candidate pool per round (full greedy is O(k n^2)); sample like the
  // E2GCL selector to stay tractable.
  const std::int64_t ns = std::min<std::int64_t>(n, 128);
  for (std::int64_t i = 0; i < k; ++i) {
    auto pool = rng.SampleWithoutReplacement(n, ns);
    double best_gain = -1.0;
    std::int64_t best_u = -1;
    for (std::int64_t u : pool) {
      if (chosen[u]) continue;
      double gain = 0.0;
      for (std::int32_t w : g.Neighbors(u)) {
        if (!covered[w]) gain += 1.0;
      }
      // Feature-ball coverage against a node subsample to bound cost.
      for (std::int64_t j = 0; j < sample; ++j) {
        const std::int64_t v = sample_nodes[j];
        if (!covered[v] && RowSquaredDistance(r, u, r, v) <= eps2) {
          gain += 1.0;
        }
      }
      gain += 1e-3 * std::log(static_cast<double>(g.Degree(u)) + 1.0);
      if (gain > best_gain) {
        best_gain = gain;
        best_u = u;
      }
    }
    if (best_u < 0) break;
    chosen[best_u] = 1;
    res.nodes.push_back(best_u);
    covered[best_u] = 1;
    for (std::int32_t w : g.Neighbors(best_u)) covered[w] = 1;
    for (std::int64_t j = 0; j < sample; ++j) {
      const std::int64_t v = sample_nodes[j];
      if (!covered[v] && RowSquaredDistance(r, best_u, r, v) <= eps2) {
        covered[v] = 1;
      }
    }
  }
  return res;
}

}  // namespace

SelectorKind SelectorKindFromName(const std::string& name) {
  if (name == "random") return SelectorKind::kRandom;
  if (name == "degree") return SelectorKind::kDegree;
  if (name == "kmeans") return SelectorKind::kKMeans;
  if (name == "kcg") return SelectorKind::kKCenterGreedy;
  if (name == "grain") return SelectorKind::kGrain;
  if (name == "ours") return SelectorKind::kE2gcl;
  E2GCL_CHECK_MSG(false, "unknown selector '%s'", name.c_str());
  return SelectorKind::kRandom;
}

std::string SelectorKindName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kRandom: return "random";
    case SelectorKind::kDegree: return "degree";
    case SelectorKind::kKMeans: return "kmeans";
    case SelectorKind::kKCenterGreedy: return "kcg";
    case SelectorKind::kGrain: return "grain";
    case SelectorKind::kE2gcl: return "ours";
  }
  return "?";
}

SelectionResult SelectNodes(SelectorKind kind, const Graph& g,
                            const Matrix& r, std::int64_t budget,
                            const SelectorConfig& config, Rng& rng) {
  E2GCL_CHECK(budget > 0 && budget <= g.num_nodes);
  const auto t0 = std::chrono::steady_clock::now();
  SelectionResult res;
  switch (kind) {
    case SelectorKind::kRandom:
      res = SelectRandom(g.num_nodes, budget, rng);
      break;
    case SelectorKind::kDegree:
      res = SelectDegree(g, budget, rng);
      break;
    case SelectorKind::kKMeans:
      res = SelectKMeansEven(r, budget, rng);
      break;
    case SelectorKind::kKCenterGreedy:
      res = SelectKCenterGreedy(r, budget, rng);
      break;
    case SelectorKind::kGrain:
      res = SelectGrain(g, r, budget, rng);
      break;
    case SelectorKind::kE2gcl: {
      SelectorConfig cfg = config;
      cfg.budget = budget;
      return SelectCoreset(r, cfg, rng);
    }
  }
  AssignWeights(r, res, rng);
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

}  // namespace e2gcl
