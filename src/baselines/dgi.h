#ifndef E2GCL_BASELINES_DGI_H_
#define E2GCL_BASELINES_DGI_H_

#include <cstdint>
#include <memory>

#include "core/trainer.h"
#include "graph/graph.h"
#include "nn/gcn.h"

namespace e2gcl {

/// Deep Graph Infomax [Velickovic et al. 2019]. Maximizes mutual
/// information between node embeddings and a graph-level summary via a
/// bilinear discriminator; negatives come from a feature-row-shuffled
/// corruption of the graph.
struct DgiConfig {
  std::int64_t hidden_dim = 64;
  std::int64_t embed_dim = 64;
  int num_layers = 1;  // DGI's canonical encoder is a single PReLU GCN.
  float lr = 5e-3f;
  float weight_decay = 1e-5f;
  int epochs = 60;
  /// Per-epoch discriminator batch (pos + neg each this size).
  std::int64_t batch_size = 500;
  std::uint64_t seed = 1;
};

class DgiTrainer {
 public:
  DgiTrainer(const Graph& graph, const DgiConfig& config);

  void Train(const EpochCallback& callback = nullptr);

  const GcnEncoder& encoder() const { return *encoder_; }
  const E2gclStats& stats() const { return stats_; }

 private:
  const Graph* graph_;
  DgiConfig config_;
  std::unique_ptr<GcnEncoder> encoder_;
  ParamSet disc_params_;
  Var disc_w_;  // bilinear discriminator weight (d x d)
  E2gclStats stats_;
  Rng rng_;
};

}  // namespace e2gcl

#endif  // E2GCL_BASELINES_DGI_H_
