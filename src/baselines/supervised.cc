#include "baselines/supervised.h"

#include <algorithm>

#include "autograd/loss.h"
#include "nn/optim.h"
#include "tensor/check.h"

namespace e2gcl {

namespace {

/// Fraction of `nodes` whose argmax logit equals the label.
double ArgmaxAccuracy(const Matrix& logits,
                      const std::vector<std::int64_t>& labels,
                      const std::vector<std::int64_t>& nodes) {
  if (nodes.empty()) return 0.0;
  std::int64_t hit = 0;
  for (std::int64_t v : nodes) {
    const float* row = logits.RowPtr(v);
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    if (best == labels[v]) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(nodes.size());
}

}  // namespace

double TrainSupervisedGcn(const Graph& g, const NodeSplit& split,
                          const SupervisedConfig& config) {
  E2GCL_CHECK(!g.labels.empty());
  Rng rng(config.seed);
  GcnConfig enc;
  enc.dims.assign(config.num_layers + 1, config.hidden_dim);
  enc.dims.front() = g.feature_dim();
  enc.dims.back() = g.num_classes;
  enc.dropout = config.dropout;
  GcnEncoder model(enc, rng);
  auto adj = std::make_shared<const CsrMatrix>(NormalizedAdjacency(g));

  Adam::Options opts;
  opts.lr = config.lr;
  opts.weight_decay = config.weight_decay;
  Adam adam(model.params().params(), opts);

  std::vector<std::int64_t> train_labels;
  for (std::int64_t v : split.train) train_labels.push_back(g.labels[v]);

  double best_val = -1.0, best_test = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Var logits =
        model.Forward(adj, Var::Constant(g.features), rng, /*training=*/true);
    Var train_logits = ag::GatherRows(logits, split.train);
    Var loss = ag::SoftmaxCrossEntropy(train_logits, train_labels);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();

    Rng eval_rng(0);
    Var eval_logits = model.Forward(adj, Var::Constant(g.features), eval_rng,
                                    /*training=*/false);
    const double val = ArgmaxAccuracy(eval_logits.value(), g.labels,
                                      split.val);
    if (val > best_val) {
      best_val = val;
      best_test =
          ArgmaxAccuracy(eval_logits.value(), g.labels, split.test);
    }
  }
  return best_test;
}

double TrainSupervisedMlp(const Graph& g, const NodeSplit& split,
                          const SupervisedConfig& config) {
  E2GCL_CHECK(!g.labels.empty());
  Rng rng(config.seed);
  MlpConfig mc;
  mc.dims = {g.feature_dim(), config.hidden_dim, g.num_classes};
  mc.dropout = config.dropout;
  Mlp model(mc, rng);

  Adam::Options opts;
  opts.lr = config.lr;
  opts.weight_decay = config.weight_decay;
  Adam adam(model.params().params(), opts);

  std::vector<std::int64_t> train_labels;
  for (std::int64_t v : split.train) train_labels.push_back(g.labels[v]);

  Var x_all = Var::Constant(g.features);
  double best_val = -1.0, best_test = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Var logits = model.Forward(x_all, rng, /*training=*/true);
    Var loss =
        ag::SoftmaxCrossEntropy(ag::GatherRows(logits, split.train),
                                train_labels);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();

    Rng eval_rng(0);
    Var eval_logits = model.Forward(x_all, eval_rng, /*training=*/false);
    const double val =
        ArgmaxAccuracy(eval_logits.value(), g.labels, split.val);
    if (val > best_val) {
      best_val = val;
      best_test =
          ArgmaxAccuracy(eval_logits.value(), g.labels, split.test);
    }
  }
  return best_test;
}

}  // namespace e2gcl
