#ifndef E2GCL_EVAL_LINEAR_PROBE_H_
#define E2GCL_EVAL_LINEAR_PROBE_H_

#include <cstdint>
#include <vector>

#include "graph/splits.h"
#include "tensor/matrix.h"

namespace e2gcl {

/// The paper's evaluation protocol (Alg. 1 line 6): a simple
/// l2-regularized linear (multinomial logistic) decoder trained on
/// frozen embeddings; test accuracy reported at the best validation
/// epoch.
struct LinearProbeConfig {
  float lr = 1e-2f;
  /// l2 regularization strength of the decoder weights.
  float weight_decay = 1e-3f;
  int epochs = 150;
  std::uint64_t seed = 7;
  /// L2-normalize embedding rows before probing (standard for GCL).
  bool normalize = true;
};

/// Trains the probe; returns test accuracy at the best validation epoch.
double LinearProbeAccuracy(const Matrix& embeddings,
                           const std::vector<std::int64_t>& labels,
                           std::int64_t num_classes, const NodeSplit& split,
                           const LinearProbeConfig& config = {});

/// Link-prediction probe: a logistic scorer on the Hadamard product of
/// endpoint embeddings, trained on the train split; returns test AUC at
/// the best validation AUC epoch.
double LinkProbeAuc(
    const Matrix& embeddings,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& train_pos,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& train_neg,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& val_pos,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& val_neg,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& test_pos,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& test_neg,
    const LinearProbeConfig& config = {});

}  // namespace e2gcl

#endif  // E2GCL_EVAL_LINEAR_PROBE_H_
