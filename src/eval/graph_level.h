#ifndef E2GCL_EVAL_GRAPH_LEVEL_H_
#define E2GCL_EVAL_GRAPH_LEVEL_H_

#include <vector>

#include "eval/protocol.h"
#include "graph/tu_generator.h"

namespace e2gcl {

/// Disjoint union of a graph collection (node ids shifted per graph).
/// `offsets` has one entry per graph (start of its node range) plus a
/// final sentinel equal to the union's node count.
struct UnionGraph {
  Graph graph;
  std::vector<std::int64_t> offsets;
};

UnionGraph DisjointUnion(const TuDataset& dataset);

/// READOUT = SUM (the paper's choice for graph classification): sums
/// each graph's node-embedding rows into one row per graph.
Matrix SumReadout(const Matrix& node_embeddings,
                  const std::vector<std::int64_t>& offsets);

/// Full Table IX link-prediction protocol: split edges 70/10/20,
/// pre-train `kind` on the training graph only (no leakage), probe with
/// the Hadamard logistic scorer. Returns test AUC in percent.
double RunLinkPrediction(ModelKind kind, const Graph& g,
                         const RunConfig& config);

/// Full Table IX graph-classification protocol: pre-train `kind` on the
/// disjoint union of all graphs, SUM-readout per graph, linear probe on
/// a 70/10/20 graph split. Returns test accuracy in percent.
double RunGraphClassification(ModelKind kind, const TuDataset& dataset,
                              const RunConfig& config);

}  // namespace e2gcl

#endif  // E2GCL_EVAL_GRAPH_LEVEL_H_
