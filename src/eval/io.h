#ifndef E2GCL_EVAL_IO_H_
#define E2GCL_EVAL_IO_H_

#include <string>

#include "graph/graph.h"
#include "tensor/matrix.h"

namespace e2gcl {

/// Simple text I/O so embeddings/graphs round-trip to disk for external
/// analysis (plotting, downstream models). All functions return false on
/// I/O failure (no exceptions). Loaders validate their input strictly —
/// ragged rows, non-numeric tokens, out-of-range node ids or labels, and
/// negative/oversized headers all return false rather than aborting or
/// invoking undefined behaviour.

/// Writes a matrix as comma-separated rows.
bool SaveMatrixCsv(const Matrix& m, const std::string& path);

/// Reads a CSV written by SaveMatrixCsv (rectangular, numeric).
/// On success stores into `out` and returns true.
bool LoadMatrixCsv(const std::string& path, Matrix* out);

/// Writes the graph as a header line "num_nodes num_classes" followed by
/// one "u v" line per undirected edge, then (if present) a "labels"
/// sentinel and one label per node. Features are saved separately via
/// SaveMatrixCsv.
bool SaveGraphEdgeList(const Graph& g, const std::string& path);

/// Reads a graph written by SaveGraphEdgeList (features left empty).
/// Requires node ids in [0, num_nodes), exactly num_nodes labels in
/// [0, num_classes) when the labels sentinel is present, and no trailing
/// garbage.
bool LoadGraphEdgeList(const std::string& path, Graph* out);

}  // namespace e2gcl

#endif  // E2GCL_EVAL_IO_H_
