#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "tensor/check.h"

namespace e2gcl {

double Accuracy(const std::vector<std::int64_t>& predicted,
                const std::vector<std::int64_t>& actual) {
  E2GCL_CHECK(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  std::int64_t hit = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == actual[i]) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(predicted.size());
}

std::vector<std::int64_t> ArgmaxRows(const Matrix& scores) {
  std::vector<std::int64_t> out(scores.rows());
  for (std::int64_t r = 0; r < scores.rows(); ++r) {
    const float* row = scores.RowPtr(r);
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < scores.cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

double RocAuc(const std::vector<float>& pos_scores,
              const std::vector<float>& neg_scores) {
  E2GCL_CHECK(!pos_scores.empty() && !neg_scores.empty());
  if (ObsEnabled()) {
    // Call count lets tests pin down exactly how many AUC evaluations a
    // probe performs (e.g. the final-model-only contract of LinkProbeAuc
    // without a validation split).
    static const Counter calls = Counter::Get("eval.rocauc.calls");
    calls.Increment();
  }
  // Rank-based computation: AUC = (sum of pos ranks - n_p(n_p+1)/2) /
  // (n_p * n_n), with average ranks for ties.
  struct Entry {
    float score;
    bool positive;
  };
  std::vector<Entry> all;
  all.reserve(pos_scores.size() + neg_scores.size());
  for (float s : pos_scores) all.push_back({s, true});
  for (float s : neg_scores) all.push_back({s, false});
  std::sort(all.begin(), all.end(),
            [](const Entry& a, const Entry& b) { return a.score < b.score; });
  const double np = static_cast<double>(pos_scores.size());
  const double nn = static_cast<double>(neg_scores.size());
  double rank_sum = 0.0;
  std::size_t i = 0;
  while (i < all.size()) {
    std::size_t j = i;
    while (j < all.size() && all[j].score == all[i].score) ++j;
    // Average rank of the tie group (1-based).
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);
    for (std::size_t t = i; t < j; ++t) {
      if (all[t].positive) rank_sum += avg_rank;
    }
    i = j;
  }
  return (rank_sum - np * (np + 1.0) / 2.0) / (np * nn);
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd ms;
  if (values.empty()) return ms;
  double sum = 0.0;
  for (double v : values) sum += v;
  ms.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double acc = 0.0;
    for (double v : values) acc += (v - ms.mean) * (v - ms.mean);
    ms.std = std::sqrt(acc / static_cast<double>(values.size() - 1));
  }
  return ms;
}

}  // namespace e2gcl
