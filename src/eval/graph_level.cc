#include "eval/graph_level.h"

#include <cstring>

#include "tensor/check.h"

namespace e2gcl {

UnionGraph DisjointUnion(const TuDataset& dataset) {
  E2GCL_CHECK(!dataset.graphs.empty());
  const std::int64_t d = dataset.graphs.front().feature_dim();
  std::int64_t total_nodes = 0;
  for (const Graph& g : dataset.graphs) {
    E2GCL_CHECK(g.feature_dim() == d);
    total_nodes += g.num_nodes;
  }
  UnionGraph out;
  out.offsets.reserve(dataset.graphs.size() + 1);
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  Matrix features(total_nodes, d);
  std::int64_t base = 0;
  for (const Graph& g : dataset.graphs) {
    out.offsets.push_back(base);
    for (const auto& [u, v] : UndirectedEdges(g)) {
      edges.emplace_back(base + u, base + v);
    }
    std::memcpy(features.RowPtr(base), g.features.data(),
                sizeof(float) * g.num_nodes * d);
    base += g.num_nodes;
  }
  out.offsets.push_back(base);
  out.graph = BuildGraph(total_nodes, edges, std::move(features));
  return out;
}

Matrix SumReadout(const Matrix& node_embeddings,
                  const std::vector<std::int64_t>& offsets) {
  E2GCL_CHECK(offsets.size() >= 2);
  const std::int64_t num_graphs =
      static_cast<std::int64_t>(offsets.size()) - 1;
  Matrix out(num_graphs, node_embeddings.cols());
  for (std::int64_t i = 0; i < num_graphs; ++i) {
    float* orow = out.RowPtr(i);
    for (std::int64_t v = offsets[i]; v < offsets[i + 1]; ++v) {
      const float* row = node_embeddings.RowPtr(v);
      for (std::int64_t c = 0; c < out.cols(); ++c) orow[c] += row[c];
    }
  }
  return out;
}

double RunLinkPrediction(ModelKind kind, const Graph& g,
                         const RunConfig& config) {
  Rng split_rng(config.seed * 104729 + 7);
  EdgeSplit split = RandomEdgeSplit(g, 0.7, 0.1, split_rng);
  Matrix emb = ComputeEmbedding(kind, split.train_graph, config);
  LinearProbeConfig probe = config.probe;
  probe.seed = config.seed * 17 + 3;
  return 100.0 * LinkProbeAuc(emb, split.train_pos, split.train_neg,
                              split.val_pos, split.val_neg, split.test_pos,
                              split.test_neg, probe);
}

double RunGraphClassification(ModelKind kind, const TuDataset& dataset,
                              const RunConfig& config) {
  UnionGraph u = DisjointUnion(dataset);
  Matrix node_emb = ComputeEmbedding(kind, u.graph, config);
  Matrix graph_emb = SumReadout(node_emb, u.offsets);
  Rng split_rng(config.seed * 31337 + 11);
  NodeSplit split =
      RandomNodeSplit(graph_emb.rows(), 0.7, 0.1, split_rng);
  LinearProbeConfig probe = config.probe;
  probe.seed = config.seed * 23 + 1;
  // SUM-readout magnitudes encode motif counts and graph size; keep
  // them (no row normalization) for the graph-level probe.
  probe.normalize = false;
  return 100.0 * LinearProbeAccuracy(graph_emb, dataset.graph_labels,
                                     dataset.num_classes, split, probe);
}

}  // namespace e2gcl
