#ifndef E2GCL_EVAL_PROJECTION_H_
#define E2GCL_EVAL_PROJECTION_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace e2gcl {

/// Principal-component projection via orthogonal power iteration:
/// centers the rows and returns the n x k projection onto the top-k
/// principal directions. Used by the coreset-visualization example
/// (the technique report's Appendix B4 plots selected nodes in 2-D).
Matrix PcaProject(const Matrix& points, int k, Rng& rng,
                  int power_iters = 50);

/// Renders a 2-D point cloud as ASCII art (rows = y, cols = x).
/// `marks[i]` selects the glyph per point ('.' ' ' etc.); later points
/// overwrite earlier ones in the same cell.
std::string AsciiScatter(const Matrix& points2d,
                         const std::vector<char>& marks, int width = 72,
                         int height = 24);

}  // namespace e2gcl

#endif  // E2GCL_EVAL_PROJECTION_H_
