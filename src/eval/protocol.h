#ifndef E2GCL_EVAL_PROTOCOL_H_
#define E2GCL_EVAL_PROTOCOL_H_

#include <string>
#include <vector>

#include "baselines/bgrl.h"
#include "baselines/deepwalk.h"
#include "baselines/dgi.h"
#include "baselines/gae.h"
#include "baselines/grace.h"
#include "baselines/mvgrl.h"
#include "baselines/supervised.h"
#include "core/trainer.h"
#include "eval/linear_probe.h"
#include "eval/metrics.h"

namespace e2gcl {

/// Every model the experiments compare. Matches the rows of Tables IV/V.
enum class ModelKind {
  kMlp,       // supervised
  kGcn,       // supervised
  kDeepWalk,  // traditional unsupervised
  kNode2Vec,
  kGae,  // GCL family
  kVgae,
  kDgi,
  kBgrl,
  kAfgrl,
  kMvgrl,
  kGrace,
  kGca,
  kE2gcl,
};

ModelKind ModelKindFromName(const std::string& name);
std::string ModelKindName(ModelKind kind);

/// All models of Table IV, in row order.
std::vector<ModelKind> Table4Models();

/// Shared experiment configuration. Model-family sub-configs inherit
/// `epochs`/`seed` unless the caller overrides them explicitly.
struct RunConfig {
  int epochs = 60;
  std::uint64_t seed = 1;
  double train_frac = 0.1;
  double val_frac = 0.1;
  E2gclConfig e2gcl;
  GraceConfig grace;
  DgiConfig dgi;
  BgrlConfig bgrl;
  MvgrlConfig mvgrl;
  GaeConfig gae;
  DeepWalkConfig deepwalk;
  SupervisedConfig supervised;
  LinearProbeConfig probe;
};

/// Result of one end-to-end run.
struct RunResult {
  double accuracy = 0.0;
  double selection_seconds = 0.0;  // ST (0 for baselines)
  double total_seconds = 0.0;      // TT of pre-training
};

/// Pre-trains `kind` on `g` and returns the frozen node embedding.
/// `stats`, if non-null, receives the timing breakdown. Supervised
/// models are not embedding models and abort here.
Matrix ComputeEmbedding(ModelKind kind, const Graph& g,
                        const RunConfig& config, E2gclStats* stats = nullptr,
                        const EpochCallback& callback = nullptr);

/// Full protocol for node classification (Alg. 1): pre-train, linear
/// probe, return test accuracy + timings. Supervised models train
/// end-to-end instead.
RunResult RunNodeClassification(ModelKind kind, const Graph& g,
                                const RunConfig& config);

/// Repeats RunNodeClassification over `num_runs` seeds (seed, seed+1,
/// ...) and aggregates accuracy; timing columns are averaged.
struct AggregateResult {
  MeanStd accuracy;  // in percent
  double selection_seconds = 0.0;
  double total_seconds = 0.0;
};
AggregateResult RunRepeated(ModelKind kind, const Graph& g,
                            const RunConfig& config, int num_runs);

}  // namespace e2gcl

#endif  // E2GCL_EVAL_PROTOCOL_H_
