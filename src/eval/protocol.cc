#include "eval/protocol.h"

#include <chrono>

#include "graph/splits.h"
#include "tensor/check.h"

namespace e2gcl {

ModelKind ModelKindFromName(const std::string& name) {
  if (name == "mlp") return ModelKind::kMlp;
  if (name == "gcn") return ModelKind::kGcn;
  if (name == "deepwalk" || name == "dw") return ModelKind::kDeepWalk;
  if (name == "node2vec" || name == "n2v") return ModelKind::kNode2Vec;
  if (name == "gae") return ModelKind::kGae;
  if (name == "vgae") return ModelKind::kVgae;
  if (name == "dgi") return ModelKind::kDgi;
  if (name == "bgrl") return ModelKind::kBgrl;
  if (name == "afgrl") return ModelKind::kAfgrl;
  if (name == "mvgrl") return ModelKind::kMvgrl;
  if (name == "grace") return ModelKind::kGrace;
  if (name == "gca") return ModelKind::kGca;
  if (name == "e2gcl") return ModelKind::kE2gcl;
  E2GCL_CHECK_MSG(false, "unknown model '%s'", name.c_str());
  return ModelKind::kMlp;
}

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMlp: return "MLP";
    case ModelKind::kGcn: return "GCN";
    case ModelKind::kDeepWalk: return "DW";
    case ModelKind::kNode2Vec: return "N2V";
    case ModelKind::kGae: return "GAE";
    case ModelKind::kVgae: return "VGAE";
    case ModelKind::kDgi: return "DGI";
    case ModelKind::kBgrl: return "BGRL";
    case ModelKind::kAfgrl: return "AFGRL";
    case ModelKind::kMvgrl: return "MVGRL";
    case ModelKind::kGrace: return "GRACE";
    case ModelKind::kGca: return "GCA";
    case ModelKind::kE2gcl: return "E2GCL";
  }
  return "?";
}

std::vector<ModelKind> Table4Models() {
  return {ModelKind::kMlp,   ModelKind::kGcn,   ModelKind::kDeepWalk,
          ModelKind::kNode2Vec, ModelKind::kGae, ModelKind::kVgae,
          ModelKind::kDgi,   ModelKind::kBgrl,  ModelKind::kAfgrl,
          ModelKind::kMvgrl, ModelKind::kGrace, ModelKind::kGca,
          ModelKind::kE2gcl};
}

Matrix ComputeEmbedding(ModelKind kind, const Graph& g,
                        const RunConfig& config, E2gclStats* stats,
                        const EpochCallback& callback) {
  auto fill = [&](const E2gclStats& s) {
    if (stats != nullptr) *stats = s;
  };
  switch (kind) {
    case ModelKind::kDeepWalk:
    case ModelKind::kNode2Vec: {
      DeepWalkConfig dw = config.deepwalk;
      dw.seed = config.seed;
      if (kind == ModelKind::kNode2Vec) {
        dw.p = 0.5f;
        dw.q = 2.0f;
      }
      const auto t0 = std::chrono::steady_clock::now();
      Matrix emb = TrainDeepWalk(g, dw);
      E2gclStats s;
      s.total_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      fill(s);
      return emb;
    }
    case ModelKind::kGae:
    case ModelKind::kVgae: {
      GaeConfig gc = config.gae;
      gc.variational = (kind == ModelKind::kVgae);
      gc.epochs = config.epochs;
      gc.seed = config.seed;
      GaeTrainer trainer(g, gc);
      trainer.Train(callback);
      fill(trainer.stats());
      return trainer.Embed();
    }
    case ModelKind::kDgi: {
      DgiConfig dc = config.dgi;
      // DGI's single corrupted pass costs about a third of the
      // two-view methods per epoch; give it the same wall-clock budget.
      dc.epochs = 3 * config.epochs;
      dc.seed = config.seed;
      DgiTrainer trainer(g, dc);
      trainer.Train(callback);
      fill(trainer.stats());
      return trainer.encoder().Encode(g);
    }
    case ModelKind::kBgrl:
    case ModelKind::kAfgrl: {
      BgrlConfig bc = config.bgrl;
      bc.augmentation_free = (kind == ModelKind::kAfgrl);
      bc.epochs = config.epochs;
      bc.seed = config.seed;
      BgrlTrainer trainer(g, bc);
      trainer.Train(callback);
      fill(trainer.stats());
      return trainer.encoder().Encode(g);
    }
    case ModelKind::kMvgrl: {
      MvgrlConfig mc = config.mvgrl;
      mc.epochs = config.epochs;
      mc.seed = config.seed;
      MvgrlTrainer trainer(g, mc);
      trainer.Train(callback);
      fill(trainer.stats());
      return trainer.Embed();
    }
    case ModelKind::kGrace:
    case ModelKind::kGca: {
      GraceConfig gc = config.grace;
      gc.adaptive = (kind == ModelKind::kGca);
      gc.epochs = config.epochs;
      gc.seed = config.seed;
      GraceTrainer trainer(g, gc);
      trainer.Train(callback);
      fill(trainer.stats());
      return trainer.encoder().Encode(g);
    }
    case ModelKind::kE2gcl: {
      E2gclConfig ec = config.e2gcl;
      ec.epochs = config.epochs;
      ec.seed = config.seed;
      E2gclTrainer trainer(g, ec);
      trainer.Train(callback);
      fill(trainer.stats());
      return trainer.encoder().Encode(g);
    }
    case ModelKind::kMlp:
    case ModelKind::kGcn:
      E2GCL_CHECK_MSG(false,
                      "supervised models have no embedding; use "
                      "RunNodeClassification");
  }
  return Matrix();
}

RunResult RunNodeClassification(ModelKind kind, const Graph& g,
                                const RunConfig& config) {
  E2GCL_CHECK(!g.labels.empty());
  Rng split_rng(config.seed * 7919 + 13);
  NodeSplit split = RandomNodeSplit(g.num_nodes, config.train_frac,
                                    config.val_frac, split_rng);
  RunResult result;
  if (kind == ModelKind::kMlp || kind == ModelKind::kGcn) {
    SupervisedConfig sc = config.supervised;
    sc.seed = config.seed;
    const auto t0 = std::chrono::steady_clock::now();
    result.accuracy = (kind == ModelKind::kGcn)
                          ? TrainSupervisedGcn(g, split, sc)
                          : TrainSupervisedMlp(g, split, sc);
    result.total_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  }
  E2gclStats stats;
  Matrix emb = ComputeEmbedding(kind, g, config, &stats);
  LinearProbeConfig probe = config.probe;
  probe.seed = config.seed * 31 + 5;
  result.accuracy =
      LinearProbeAccuracy(emb, g.labels, g.num_classes, split, probe);
  result.selection_seconds = stats.selection_seconds;
  result.total_seconds = stats.total_seconds;
  return result;
}

AggregateResult RunRepeated(ModelKind kind, const Graph& g,
                            const RunConfig& config, int num_runs) {
  E2GCL_CHECK(num_runs >= 1);
  std::vector<double> accs;
  double st = 0.0, tt = 0.0;
  for (int i = 0; i < num_runs; ++i) {
    RunConfig rc = config;
    rc.seed = config.seed + static_cast<std::uint64_t>(i);
    RunResult r = RunNodeClassification(kind, g, rc);
    accs.push_back(r.accuracy * 100.0);
    st += r.selection_seconds;
    tt += r.total_seconds;
  }
  AggregateResult agg;
  agg.accuracy = ComputeMeanStd(accs);
  agg.selection_seconds = st / num_runs;
  agg.total_seconds = tt / num_runs;
  return agg;
}

}  // namespace e2gcl
