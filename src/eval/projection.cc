#include "eval/projection.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace e2gcl {

Matrix PcaProject(const Matrix& points, int k, Rng& rng, int power_iters) {
  const std::int64_t n = points.rows();
  const std::int64_t d = points.cols();
  E2GCL_CHECK(k >= 1 && k <= d && n >= 2);

  // Center.
  Matrix x = points;
  Matrix mean = Scale(ColSums(x), 1.0f / static_cast<float>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    float* row = x.RowPtr(r);
    for (std::int64_t c = 0; c < d; ++c) row[c] -= mean(0, c);
  }

  // Orthogonal power iteration on X^T X without materializing it:
  // v <- X^T (X v), re-orthogonalized against earlier components.
  Matrix components(k, d);
  for (int comp = 0; comp < k; ++comp) {
    Matrix v = Matrix::RandomNormal(d, 1, 0.0f, 1.0f, rng);
    for (int it = 0; it < power_iters; ++it) {
      Matrix xv = MatMul(x, v);                    // n x 1
      Matrix next = MatMulTransposedA(x, xv);      // d x 1
      // Gram-Schmidt against previous components.
      for (int prev = 0; prev < comp; ++prev) {
        float dot = 0.0f;
        for (std::int64_t c = 0; c < d; ++c) {
          dot += next(c, 0) * components(prev, c);
        }
        for (std::int64_t c = 0; c < d; ++c) {
          next(c, 0) -= dot * components(prev, c);
        }
      }
      const float norm = FrobeniusNorm(next);
      if (norm < 1e-12f) break;
      v = Scale(next, 1.0f / norm);
    }
    for (std::int64_t c = 0; c < d; ++c) components(comp, c) = v(c, 0);
  }
  return MatMulTransposedB(x, components);  // n x k
}

std::string AsciiScatter(const Matrix& points2d,
                         const std::vector<char>& marks, int width,
                         int height) {
  E2GCL_CHECK(points2d.cols() >= 2);
  E2GCL_CHECK(static_cast<std::int64_t>(marks.size()) == points2d.rows());
  float min_x = 1e30f, max_x = -1e30f, min_y = 1e30f, max_y = -1e30f;
  for (std::int64_t i = 0; i < points2d.rows(); ++i) {
    min_x = std::min(min_x, points2d(i, 0));
    max_x = std::max(max_x, points2d(i, 0));
    min_y = std::min(min_y, points2d(i, 1));
    max_y = std::max(max_y, points2d(i, 1));
  }
  const float sx = max_x > min_x ? (width - 1) / (max_x - min_x) : 0.0f;
  const float sy = max_y > min_y ? (height - 1) / (max_y - min_y) : 0.0f;
  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (std::int64_t i = 0; i < points2d.rows(); ++i) {
    const int cx = static_cast<int>((points2d(i, 0) - min_x) * sx);
    const int cy = static_cast<int>((points2d(i, 1) - min_y) * sy);
    canvas[height - 1 - cy][cx] = marks[i];
  }
  std::string out;
  for (const std::string& row : canvas) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace e2gcl
