#include "eval/linear_probe.h"

#include <algorithm>

#include "autograd/loss.h"
#include "autograd/ops.h"
#include "eval/metrics.h"
#include "nn/init.h"
#include "nn/optim.h"
#include "tensor/check.h"

namespace e2gcl {

double LinearProbeAccuracy(const Matrix& embeddings,
                           const std::vector<std::int64_t>& labels,
                           std::int64_t num_classes, const NodeSplit& split,
                           const LinearProbeConfig& config) {
  E2GCL_CHECK(static_cast<std::int64_t>(labels.size()) == embeddings.rows());
  E2GCL_CHECK(!split.train.empty() && !split.test.empty());
  Rng rng(config.seed);

  const Matrix z = config.normalize ? NormalizeRowsL2(embeddings)
                                    : embeddings;
  ParamSet params;
  Var w = params.Create(GlorotUniform(z.cols(), num_classes, rng));
  Var b = params.Create(Matrix(1, num_classes));
  Adam::Options opts;
  opts.lr = config.lr;
  opts.weight_decay = config.weight_decay;
  Adam adam(params.params(), opts);

  const Matrix z_train = GatherRows(z, split.train);
  std::vector<std::int64_t> y_train;
  for (std::int64_t v : split.train) y_train.push_back(labels[v]);
  Var x_train = Var::Constant(z_train);

  auto evaluate = [&](const std::vector<std::int64_t>& nodes) {
    Matrix logits = MatMul(GatherRows(z, nodes), w.value());
    const float* bias = b.value().RowPtr(0);
    for (std::int64_t r = 0; r < logits.rows(); ++r) {
      float* row = logits.RowPtr(r);
      for (std::int64_t c = 0; c < num_classes; ++c) row[c] += bias[c];
    }
    std::vector<std::int64_t> actual;
    for (std::int64_t v : nodes) actual.push_back(labels[v]);
    return Accuracy(ArgmaxRows(logits), actual);
  };

  double best_val = -1.0, best_test = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Var logits = ag::AddRowBroadcast(ag::MatMul(x_train, w), b);
    Var loss = ag::SoftmaxCrossEntropy(logits, y_train);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    if (epoch % 5 == 4 || epoch + 1 == config.epochs) {
      const double val = split.val.empty() ? 0.0 : evaluate(split.val);
      if (val >= best_val) {
        best_val = val;
        best_test = evaluate(split.test);
      }
    }
  }
  return best_test;
}

namespace {

Matrix PairFeatures(
    const Matrix& z,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& pairs) {
  Matrix out(static_cast<std::int64_t>(pairs.size()), z.cols());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const float* a = z.RowPtr(pairs[i].first);
    const float* b = z.RowPtr(pairs[i].second);
    float* o = out.RowPtr(static_cast<std::int64_t>(i));
    for (std::int64_t c = 0; c < z.cols(); ++c) o[c] = a[c] * b[c];
  }
  return out;
}

std::vector<float> ScorePairs(const Matrix& feats, const Matrix& w,
                              float bias) {
  std::vector<float> scores(feats.rows());
  for (std::int64_t r = 0; r < feats.rows(); ++r) {
    const float* row = feats.RowPtr(r);
    float acc = bias;
    for (std::int64_t c = 0; c < feats.cols(); ++c) {
      acc += row[c] * w(c, 0);
    }
    scores[r] = acc;
  }
  return scores;
}

}  // namespace

double LinkProbeAuc(
    const Matrix& embeddings,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& train_pos,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& train_neg,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& val_pos,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& val_neg,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& test_pos,
    const std::vector<std::pair<std::int64_t, std::int64_t>>& test_neg,
    const LinearProbeConfig& config) {
  E2GCL_CHECK(!train_pos.empty() && !test_pos.empty());
  E2GCL_CHECK_MSG(!train_neg.empty(),
                  "LinkProbeAuc requires non-empty train_neg pairs");
  E2GCL_CHECK_MSG(!test_neg.empty(),
                  "LinkProbeAuc requires non-empty test_neg pairs");
  E2GCL_CHECK_MSG(val_pos.empty() == val_neg.empty(),
                  "LinkProbeAuc validation pairs must be both empty or both "
                  "non-empty");
  // With no validation split there is nothing to select on: train for the
  // full budget and evaluate the FINAL model exactly once. (Previously an
  // empty split scored val = 1.0, so `val >= best_val` re-snapshotted
  // best_test at every probe epoch — silent last-epoch selection that also
  // burned an extra test-AUC evaluation per probe epoch.)
  const bool has_val = !val_pos.empty();
  Rng rng(config.seed);
  const Matrix z = config.normalize ? NormalizeRowsL2(embeddings)
                                    : embeddings;

  Matrix x_train_m = PairFeatures(z, train_pos);
  Matrix x_neg = PairFeatures(z, train_neg);
  // Stack pos + neg.
  Matrix x_all(x_train_m.rows() + x_neg.rows(), z.cols());
  for (std::int64_t r = 0; r < x_train_m.rows(); ++r) {
    std::copy(x_train_m.RowPtr(r), x_train_m.RowPtr(r) + z.cols(),
              x_all.RowPtr(r));
  }
  for (std::int64_t r = 0; r < x_neg.rows(); ++r) {
    std::copy(x_neg.RowPtr(r), x_neg.RowPtr(r) + z.cols(),
              x_all.RowPtr(x_train_m.rows() + r));
  }
  std::vector<float> targets(x_all.rows(), 0.0f);
  for (std::int64_t r = 0; r < x_train_m.rows(); ++r) targets[r] = 1.0f;

  ParamSet params;
  Var w = params.Create(GlorotUniform(z.cols(), 1, rng));
  Var b = params.Create(Matrix(1, 1));
  Adam::Options opts;
  opts.lr = config.lr;
  opts.weight_decay = config.weight_decay;
  Adam adam(params.params(), opts);

  Var x_var = Var::Constant(x_all);
  const Matrix feats_val_pos = PairFeatures(z, val_pos);
  const Matrix feats_val_neg = PairFeatures(z, val_neg);
  const Matrix feats_test_pos = PairFeatures(z, test_pos);
  const Matrix feats_test_neg = PairFeatures(z, test_neg);

  double best_val = -1.0, best_test = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Var logits = ag::AddRowBroadcast(ag::MatMul(x_var, w), b);
    Var loss = ag::BceWithLogits(logits, targets);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
    if (has_val && (epoch % 5 == 4 || epoch + 1 == config.epochs)) {
      const float bias = b.value()(0, 0);
      const double val = RocAuc(ScorePairs(feats_val_pos, w.value(), bias),
                                ScorePairs(feats_val_neg, w.value(), bias));
      if (val >= best_val) {
        best_val = val;
        best_test = RocAuc(ScorePairs(feats_test_pos, w.value(), bias),
                           ScorePairs(feats_test_neg, w.value(), bias));
      }
    }
  }
  if (!has_val) {
    const float bias = b.value()(0, 0);
    best_test = RocAuc(ScorePairs(feats_test_pos, w.value(), bias),
                       ScorePairs(feats_test_neg, w.value(), bias));
  }
  return best_test;
}

}  // namespace e2gcl
