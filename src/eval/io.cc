#include "eval/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace e2gcl {

bool SaveMatrixCsv(const Matrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  for (std::int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.RowPtr(r);
    for (std::int64_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadMatrixCsv(const std::string& path, Matrix* out) {
  std::ifstream in(path);
  if (!in || out == nullptr) return false;
  std::vector<std::vector<float>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<float> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      row.push_back(std::strtof(cell.c_str(), nullptr));
    }
    if (!rows.empty() && row.size() != rows.front().size()) return false;
    rows.push_back(std::move(row));
  }
  *out = Matrix::FromRows(rows);
  return true;
}

bool SaveGraphEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << g.num_nodes << ' ' << g.num_classes << '\n';
  for (const auto& [u, v] : UndirectedEdges(g)) {
    out << u << ' ' << v << '\n';
  }
  if (!g.labels.empty()) {
    out << "labels\n";
    for (std::int64_t y : g.labels) out << y << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadGraphEdgeList(const std::string& path, Graph* out) {
  std::ifstream in(path);
  if (!in || out == nullptr) return false;
  std::int64_t n = 0, classes = 0;
  if (!(in >> n >> classes)) return false;
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  std::vector<std::int64_t> labels;
  std::string tok;
  while (in >> tok) {
    if (tok == "labels") {
      std::int64_t y;
      while (in >> y) labels.push_back(y);
      break;
    }
    std::int64_t u = std::strtoll(tok.c_str(), nullptr, 10);
    std::int64_t v;
    if (!(in >> v)) return false;
    edges.emplace_back(u, v);
  }
  if (!labels.empty() && static_cast<std::int64_t>(labels.size()) != n) {
    return false;
  }
  *out = BuildGraph(n, edges, Matrix(), std::move(labels), classes);
  return true;
}

}  // namespace e2gcl
