#include "eval/io.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "io/serialize.h"

namespace e2gcl {

namespace {

// Upper bound on header-declared node counts: a malformed or hostile
// header must not drive multi-gigabyte allocations in BuildGraph.
constexpr std::int64_t kMaxNodes = 100'000'000;

/// Strict float parse: the whole (whitespace-trimmed) token must be a
/// finite-syntax number; "", "abc", "1.5x" all fail.
bool ParseFloatToken(const std::string& token, float* out) {
  const char* begin = token.c_str();
  while (*begin != '\0' && std::isspace(static_cast<unsigned char>(*begin))) {
    ++begin;
  }
  if (*begin == '\0') return false;
  char* end = nullptr;
  const float value = std::strtof(begin, &end);
  if (end == begin) return false;
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  if (*end != '\0') return false;
  *out = value;
  return true;
}

/// Strict int64 parse with the same whole-token contract.
bool ParseInt64Token(const std::string& token, std::int64_t* out) {
  const char* begin = token.c_str();
  while (*begin != '\0' && std::isspace(static_cast<unsigned char>(*begin))) {
    ++begin;
  }
  if (*begin == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(begin, &end, 10);
  if (end == begin || errno == ERANGE) return false;
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  if (*end != '\0') return false;
  *out = static_cast<std::int64_t>(value);
  return true;
}

}  // namespace

bool SaveMatrixCsv(const Matrix& m, const std::string& path) {
  // Rendered in memory, then written atomically (tmp + fsync + rename)
  // so a crash mid-save never leaves a torn CSV.
  std::ostringstream out;
  for (std::int64_t r = 0; r < m.rows(); ++r) {
    const float* row = m.RowPtr(r);
    for (std::int64_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  }
  return WriteFileAtomic(path, out.str());
}

bool LoadMatrixCsv(const std::string& path, Matrix* out) {
  std::ifstream in(path);
  if (!in || out == nullptr) return false;
  std::vector<std::vector<float>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF
    if (line.empty()) continue;
    std::vector<float> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      float value = 0.0f;
      if (!ParseFloatToken(cell, &value)) return false;  // non-numeric cell
      row.push_back(value);
    }
    if (row.empty()) return false;  // e.g. a line of bare commas
    if (!rows.empty() && row.size() != rows.front().size()) {
      return false;  // ragged row
    }
    rows.push_back(std::move(row));
  }
  *out = Matrix::FromRows(rows);
  return true;
}

bool SaveGraphEdgeList(const Graph& g, const std::string& path) {
  std::ostringstream out;
  out << g.num_nodes << ' ' << g.num_classes << '\n';
  for (const auto& [u, v] : UndirectedEdges(g)) {
    out << u << ' ' << v << '\n';
  }
  if (!g.labels.empty()) {
    out << "labels\n";
    for (std::int64_t y : g.labels) out << y << '\n';
  }
  return WriteFileAtomic(path, out.str());
}

bool LoadGraphEdgeList(const std::string& path, Graph* out) {
  std::ifstream in(path);
  if (!in || out == nullptr) return false;

  std::string tok_n, tok_classes;
  if (!(in >> tok_n >> tok_classes)) return false;
  std::int64_t n = 0, classes = 0;
  if (!ParseInt64Token(tok_n, &n) || !ParseInt64Token(tok_classes, &classes)) {
    return false;
  }
  // Reject negative and oversized headers before any allocation.
  if (n < 0 || n > kMaxNodes || classes < 0 || classes > kMaxNodes) {
    return false;
  }

  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  std::vector<std::int64_t> labels;
  std::string tok;
  bool saw_labels = false;
  while (in >> tok) {
    if (tok == "labels") {
      saw_labels = true;
      break;
    }
    std::int64_t u = 0, v = 0;
    std::string tok_v;
    if (!ParseInt64Token(tok, &u)) return false;
    if (!(in >> tok_v) || !ParseInt64Token(tok_v, &v)) return false;
    // Out-of-range endpoints would abort in BuildGraph; fail instead.
    if (u < 0 || u >= n || v < 0 || v >= n) return false;
    edges.emplace_back(u, v);
  }
  if (saw_labels) {
    if (classes <= 0) return false;  // labels require a class count
    labels.reserve(n);
    for (std::int64_t i = 0; i < n; ++i) {
      std::int64_t y = 0;
      if (!(in >> tok) || !ParseInt64Token(tok, &y)) return false;
      if (y < 0 || y >= classes) return false;
      labels.push_back(y);
    }
    if (in >> tok) return false;  // trailing garbage after the labels
  }
  *out = BuildGraph(n, edges, Matrix(), std::move(labels), classes);
  return true;
}

}  // namespace e2gcl
