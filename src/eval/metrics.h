#ifndef E2GCL_EVAL_METRICS_H_
#define E2GCL_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace e2gcl {

/// Classification accuracy from predicted class ids.
double Accuracy(const std::vector<std::int64_t>& predicted,
                const std::vector<std::int64_t>& actual);

/// Argmax over each row of a score matrix.
std::vector<std::int64_t> ArgmaxRows(const Matrix& scores);

/// ROC-AUC from scores of positive and negative examples (probability
/// that a random positive outranks a random negative; ties count half).
double RocAuc(const std::vector<float>& pos_scores,
              const std::vector<float>& neg_scores);

/// Mean and sample standard deviation of a series.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace e2gcl

#endif  // E2GCL_EVAL_METRICS_H_
