// Citation-network scenario (the paper's motivating workload): compare
// E2GCL against a GCL baseline (GRACE) and an end-to-end supervised GCN
// on a Cora-like citation graph, with only 10% labeled nodes.
//
//   ./build/examples/citation_network

#include <cstdio>

#include "eval/protocol.h"
#include "graph/datasets.h"

int main() {
  using namespace e2gcl;

  Graph g = LoadDataset("cora", /*seed=*/0x5eed);
  std::printf("cora-like citation graph: %lld nodes, %lld edges\n",
              (long long)g.num_nodes, (long long)g.num_edges());
  std::printf("%-8s %10s %10s\n", "model", "accuracy%", "time(s)");

  for (ModelKind kind :
       {ModelKind::kGcn, ModelKind::kGrace, ModelKind::kGca,
        ModelKind::kE2gcl}) {
    RunConfig cfg;
    cfg.epochs = 40;
    cfg.supervised.epochs = 120;
    AggregateResult agg = RunRepeated(kind, g, cfg, 2);
    std::printf("%-8s %7.2f±%.2f %10.2f\n", ModelKindName(kind).c_str(),
                agg.accuracy.mean, agg.accuracy.std, agg.total_seconds);
  }
  std::printf(
      "\nE2GCL pre-trains on a 40%% coreset with importance-aware views;\n"
      "the others use all nodes (GCN is supervised end-to-end).\n");
  return 0;
}
