// Visualizes the selected coreset (the technique report's Appendix B4
// shows a t-SNE plot of selected nodes): projects the raw aggregation
// R = A_n^L X to 2-D with PCA and renders an ASCII scatter where '#'
// marks selected nodes and '.' the rest — the coreset should cover
// every cluster of the cloud.
//
//   ./build/examples/coreset_visualization

#include <cstdio>

#include "core/node_selector.h"
#include "core/raw_aggregation.h"
#include "eval/projection.h"
#include "graph/generators.h"

int main() {
  using namespace e2gcl;

  SbmSpec spec;
  spec.num_nodes = 900;
  spec.num_classes = 5;
  spec.feature_dim = 64;
  spec.avg_degree = 10;
  spec.informative_dims_per_class = 10;
  Graph g = GenerateSbm(spec, 31);

  Matrix r = RawAggregation(g, 2);
  SelectorConfig cfg;
  cfg.budget = 60;
  cfg.num_clusters = 20;
  Rng rng(32);
  SelectionResult sel = SelectCoreset(r, cfg, rng);

  Rng pca_rng(33);
  Matrix proj = PcaProject(r, 2, pca_rng);
  std::vector<char> marks(g.num_nodes, '.');
  for (std::int64_t v : sel.nodes) marks[v] = '#';

  std::printf(
      "raw-aggregation space (PCA 2-D), %lld nodes, '#' = %zu selected\n\n",
      (long long)g.num_nodes, sel.nodes.size());
  std::printf("%s\n", AsciiScatter(proj, marks).c_str());

  // Coverage summary: selected nodes per class.
  std::vector<int> per_class(g.num_classes, 0);
  for (std::int64_t v : sel.nodes) per_class[g.labels[v]] += 1;
  std::printf("selected nodes per class:");
  for (int c : per_class) std::printf(" %d", c);
  std::printf("  (cluster-based selection covers every class)\n");
  return 0;
}
