// Quickstart: pre-train E2GCL on a small synthetic attributed graph and
// evaluate the frozen embedding with the standard linear probe.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/trainer.h"
#include "eval/linear_probe.h"
#include "graph/generators.h"
#include "graph/splits.h"

int main() {
  using namespace e2gcl;

  // 1. A graph. Any undirected attributed graph works; here we plant a
  //    5-class community graph with class-correlated features.
  SbmSpec spec;
  spec.num_nodes = 1000;
  spec.num_classes = 5;
  spec.feature_dim = 64;
  spec.avg_degree = 8;
  spec.informative_dims_per_class = 8;
  Graph g = GenerateSbm(spec, /*seed=*/42);
  std::printf("graph: %lld nodes, %lld edges, %lld features, %lld classes\n",
              (long long)g.num_nodes, (long long)g.num_edges(),
              (long long)g.feature_dim(), (long long)g.num_classes);

  // 2. Configure E2GCL: select 40% of the nodes as the training coreset
  //    (Sec. III of the paper) and generate importance-aware positive
  //    views (Sec. IV).
  E2gclConfig config;
  config.node_ratio = 0.4;
  config.epochs = 40;
  config.seed = 7;

  // 3. Pre-train. No labels are used here.
  E2gclTrainer trainer(g, config);
  trainer.Train();
  std::printf("selected %zu coreset nodes in %.3fs; total training %.2fs\n",
              trainer.selection().nodes.size(),
              trainer.stats().selection_seconds,
              trainer.stats().total_seconds);

  // 4. Linear-probe evaluation (labels only used by the probe).
  Matrix embedding = trainer.encoder().Encode(g);
  Rng split_rng(1);
  NodeSplit split = RandomNodeSplit(g.num_nodes, 0.1, 0.1, split_rng);
  const double acc =
      LinearProbeAccuracy(embedding, g.labels, g.num_classes, split);
  std::printf("linear-probe test accuracy: %.2f%%\n", 100.0 * acc);
  return 0;
}
