// Link-prediction scenario (Table IX, left): pre-train on the training
// edges only, score held-out edges with a Hadamard logistic probe.
//
//   ./build/examples/link_prediction

#include <cstdio>

#include "eval/graph_level.h"
#include "graph/datasets.h"

int main() {
  using namespace e2gcl;

  Graph g = LoadDatasetScaled("photo", 0.4, /*seed=*/21);
  std::printf("photo-like co-purchase graph: %lld nodes, %lld edges\n",
              (long long)g.num_nodes, (long long)g.num_edges());
  std::printf("70%%/10%%/20%% edge split; AUC on held-out test edges.\n\n");

  std::printf("%-8s %10s\n", "model", "test AUC%");
  for (ModelKind kind :
       {ModelKind::kGrace, ModelKind::kGca, ModelKind::kE2gcl}) {
    RunConfig cfg;
    cfg.epochs = 40;
    const double auc = RunLinkPrediction(kind, g, cfg);
    std::printf("%-8s %10.2f\n", ModelKindName(kind).c_str(), auc);
  }
  std::printf(
      "\nValidation/test edges are removed from the graph before\n"
      "pre-training, so no leakage into GNN propagation.\n");
  return 0;
}
