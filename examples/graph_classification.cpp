// Graph-classification scenario (Table IX, right): pre-train one
// encoder on the disjoint union of many small molecule-like graphs,
// readout with SUM, probe graph labels.
//
//   ./build/examples/graph_classification

#include <cstdio>

#include "eval/graph_level.h"
#include "graph/tu_generator.h"

int main() {
  using namespace e2gcl;

  TuDataset ds = GenerateTuDataset(GetTuSpec("proteins"), /*seed=*/5);
  std::int64_t total_nodes = 0;
  for (const Graph& g : ds.graphs) total_nodes += g.num_nodes;
  std::printf("proteins-like dataset: %zu graphs, %lld nodes total\n",
              ds.graphs.size(), (long long)total_nodes);

  std::printf("%-8s %10s\n", "model", "accuracy%");
  for (ModelKind kind :
       {ModelKind::kGrace, ModelKind::kGca, ModelKind::kE2gcl}) {
    RunConfig cfg;
    cfg.epochs = 40;
    const double acc = RunGraphClassification(kind, ds, cfg);
    std::printf("%-8s %10.2f\n", ModelKindName(kind).c_str(), acc);
  }
  std::printf(
      "\nThe encoder is shared across graphs (pre-trained on their\n"
      "disjoint union); z_i = SUM over node embeddings (the paper's\n"
      "READOUT), probed by an l2-regularized linear decoder.\n");
  return 0;
}
