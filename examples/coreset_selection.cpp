// Coreset-selection deep dive: run the Sec. III node selector on its
// own, sweep the budget, and compare the clustered representativity
// objective (Eq. 14) against random selection.
//
//   ./build/examples/coreset_selection

#include <cstdio>

#include "cluster/kmeans.h"
#include "core/node_selector.h"
#include "core/raw_aggregation.h"
#include "graph/datasets.h"

int main() {
  using namespace e2gcl;

  Graph g = LoadDatasetScaled("citeseer", 1.0, /*seed=*/11);
  std::printf("citeseer-like graph: %lld nodes\n", (long long)g.num_nodes);

  // The selector operates on the raw aggregation R = A_n^L X: the
  // parameter-free summary Theorem 1 shows controls gradient geometry.
  Matrix r = RawAggregation(g, /*num_layers=*/2);

  // A fixed clustering to evaluate objectives on equal footing.
  KMeansOptions km_opts;
  km_opts.num_clusters = 60;
  Rng km_rng(1);
  KMeansResult km = KMeans(r, km_opts, km_rng);

  std::printf("%8s %16s %16s %12s\n", "budget", "greedy Eq.(14)",
              "random Eq.(14)", "select(s)");
  for (double ratio : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    const std::int64_t k =
        static_cast<std::int64_t>(ratio * g.num_nodes);
    SelectorConfig cfg;
    cfg.budget = k;
    cfg.num_clusters = 60;
    Rng rng(2);
    SelectionResult sel = SelectCoreset(r, cfg, rng);
    const double greedy_obj = RepresentativityObjective(r, km, sel.nodes);

    Rng rand_rng(3);
    double random_obj = 0.0;
    for (int t = 0; t < 3; ++t) {
      auto random_nodes = rand_rng.SampleWithoutReplacement(g.num_nodes, k);
      random_obj += RepresentativityObjective(r, km, random_nodes) / 3.0;
    }
    std::printf("%7.0f%% %16.1f %16.1f %12.3f\n", 100.0 * ratio, greedy_obj,
                random_obj, sel.seconds);
  }
  std::printf(
      "\nLower objective = the coreset represents the graph better.\n"
      "The greedy selector dominates random at every budget, and its\n"
      "weights lambda sum to |V| so the weighted coreset loss matches\n"
      "the full-graph loss in expectation.\n");
  return 0;
}
