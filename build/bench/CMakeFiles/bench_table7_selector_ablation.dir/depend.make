# Empty dependencies file for bench_table7_selector_ablation.
# This may be replaced when dependencies are built.
