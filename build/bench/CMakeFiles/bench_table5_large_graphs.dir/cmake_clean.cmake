file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_large_graphs.dir/bench_table5_large_graphs.cc.o"
  "CMakeFiles/bench_table5_large_graphs.dir/bench_table5_large_graphs.cc.o.d"
  "bench_table5_large_graphs"
  "bench_table5_large_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_large_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
