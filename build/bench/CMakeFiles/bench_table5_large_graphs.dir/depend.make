# Empty dependencies file for bench_table5_large_graphs.
# This may be replaced when dependencies are built.
