file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_cluster_number.dir/bench_fig4b_cluster_number.cc.o"
  "CMakeFiles/bench_fig4b_cluster_number.dir/bench_fig4b_cluster_number.cc.o.d"
  "bench_fig4b_cluster_number"
  "bench_fig4b_cluster_number.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_cluster_number.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
