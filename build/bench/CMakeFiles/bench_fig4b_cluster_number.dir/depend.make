# Empty dependencies file for bench_fig4b_cluster_number.
# This may be replaced when dependencies are built.
