# Empty dependencies file for bench_fig2_operation_upgrade.
# This may be replaced when dependencies are built.
