file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_operation_upgrade.dir/bench_fig2_operation_upgrade.cc.o"
  "CMakeFiles/bench_fig2_operation_upgrade.dir/bench_fig2_operation_upgrade.cc.o.d"
  "bench_fig2_operation_upgrade"
  "bench_fig2_operation_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_operation_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
