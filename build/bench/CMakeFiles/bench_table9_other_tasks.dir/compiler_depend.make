# Empty compiler generated dependencies file for bench_table9_other_tasks.
# This may be replaced when dependencies are built.
