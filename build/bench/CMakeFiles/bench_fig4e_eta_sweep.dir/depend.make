# Empty dependencies file for bench_fig4e_eta_sweep.
# This may be replaced when dependencies are built.
