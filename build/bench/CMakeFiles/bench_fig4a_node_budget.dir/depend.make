# Empty dependencies file for bench_fig4a_node_budget.
# This may be replaced when dependencies are built.
