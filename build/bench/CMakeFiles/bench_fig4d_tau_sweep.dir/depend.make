# Empty dependencies file for bench_fig4d_tau_sweep.
# This may be replaced when dependencies are built.
