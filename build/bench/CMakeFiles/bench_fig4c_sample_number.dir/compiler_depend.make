# Empty compiler generated dependencies file for bench_fig4c_sample_number.
# This may be replaced when dependencies are built.
