file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4c_sample_number.dir/bench_fig4c_sample_number.cc.o"
  "CMakeFiles/bench_fig4c_sample_number.dir/bench_fig4c_sample_number.cc.o.d"
  "bench_fig4c_sample_number"
  "bench_fig4c_sample_number.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c_sample_number.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
