
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bgrl.cc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/bgrl.cc.o" "gcc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/bgrl.cc.o.d"
  "/root/repo/src/baselines/deepwalk.cc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/deepwalk.cc.o" "gcc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/deepwalk.cc.o.d"
  "/root/repo/src/baselines/dgi.cc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/dgi.cc.o" "gcc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/dgi.cc.o.d"
  "/root/repo/src/baselines/gae.cc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/gae.cc.o" "gcc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/gae.cc.o.d"
  "/root/repo/src/baselines/grace.cc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/grace.cc.o" "gcc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/grace.cc.o.d"
  "/root/repo/src/baselines/mvgrl.cc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/mvgrl.cc.o" "gcc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/mvgrl.cc.o.d"
  "/root/repo/src/baselines/selectors.cc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/selectors.cc.o" "gcc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/selectors.cc.o.d"
  "/root/repo/src/baselines/supervised.cc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/supervised.cc.o" "gcc" "src/CMakeFiles/e2gcl_baselines.dir/baselines/supervised.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e2gcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e2gcl_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
