file(REMOVE_RECURSE
  "CMakeFiles/e2gcl_baselines.dir/baselines/bgrl.cc.o"
  "CMakeFiles/e2gcl_baselines.dir/baselines/bgrl.cc.o.d"
  "CMakeFiles/e2gcl_baselines.dir/baselines/deepwalk.cc.o"
  "CMakeFiles/e2gcl_baselines.dir/baselines/deepwalk.cc.o.d"
  "CMakeFiles/e2gcl_baselines.dir/baselines/dgi.cc.o"
  "CMakeFiles/e2gcl_baselines.dir/baselines/dgi.cc.o.d"
  "CMakeFiles/e2gcl_baselines.dir/baselines/gae.cc.o"
  "CMakeFiles/e2gcl_baselines.dir/baselines/gae.cc.o.d"
  "CMakeFiles/e2gcl_baselines.dir/baselines/grace.cc.o"
  "CMakeFiles/e2gcl_baselines.dir/baselines/grace.cc.o.d"
  "CMakeFiles/e2gcl_baselines.dir/baselines/mvgrl.cc.o"
  "CMakeFiles/e2gcl_baselines.dir/baselines/mvgrl.cc.o.d"
  "CMakeFiles/e2gcl_baselines.dir/baselines/selectors.cc.o"
  "CMakeFiles/e2gcl_baselines.dir/baselines/selectors.cc.o.d"
  "CMakeFiles/e2gcl_baselines.dir/baselines/supervised.cc.o"
  "CMakeFiles/e2gcl_baselines.dir/baselines/supervised.cc.o.d"
  "libe2gcl_baselines.a"
  "libe2gcl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2gcl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
