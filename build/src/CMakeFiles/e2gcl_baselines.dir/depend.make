# Empty dependencies file for e2gcl_baselines.
# This may be replaced when dependencies are built.
