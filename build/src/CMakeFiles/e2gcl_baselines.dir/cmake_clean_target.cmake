file(REMOVE_RECURSE
  "libe2gcl_baselines.a"
)
