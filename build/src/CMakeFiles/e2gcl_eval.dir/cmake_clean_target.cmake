file(REMOVE_RECURSE
  "libe2gcl_eval.a"
)
